//! The daemon's request/response frames — the `camelot-task v1` frame
//! family extended with service verbs.
//!
//! Same conventions as the task/reply/certificate formats: line
//! oriented, space-separated records, a bare `end` terminator. One
//! request frame travels client → daemon, one response frame travels
//! back. A certificate rides inside a frame with every line prefixed
//! `cert `, so the existing `camelot-certificate v1` format is embedded
//! verbatim rather than re-encoded.
//!
//! ```text
//! camelot-request v1          camelot-response v1
//! kind prepare                status ok
//! schedule smallest           output 1881365963509150208
//! poly 3 1 4                  rounds 5
//! sum-count 16                coalesced 2
//! value-bits 60               cache-hit 0
//! min-modulus 1048576         symbols 90
//! end                         bytes 1234
//!                             …
//!                             cert camelot-certificate v1
//!                             cert …
//!                             end
//! ```

use camelot_core::PrimeSchedule;
use std::io::BufRead;

/// Header line opening every service request frame.
pub const REQUEST_HEADER: &str = "camelot-request v1";
/// Header line opening every service response frame.
pub const RESPONSE_HEADER: &str = "camelot-response v1";

/// The problem a client asks the daemon to prepare a proof for: an
/// explicit proof polynomial `P(x)` (little-endian coefficients) whose
/// answer is `Σ_{x=0}^{sum_count-1} P(x)` over the integers — the
/// paper's "sum the evaluations" recovery map, with the polynomial
/// itself as the canonical input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PolyRequest {
    /// Little-endian coefficients of `P(x)`.
    pub coefficients: Vec<u64>,
    /// The answer sums `P(0), …, P(sum_count - 1)`.
    pub sum_count: u64,
    /// Magnitude bound: the answer fits in `2^value_bits`.
    pub value_bits: u64,
    /// Lower bound on usable prime moduli.
    pub min_modulus: u64,
    /// Prime schedule the certificate must be prepared under.
    pub schedule: PrimeSchedule,
}

/// One client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Prepare (or serve from cache) a certificate and the answer.
    Prepare(PolyRequest),
    /// Verify a client-supplied certificate against the problem by
    /// spot checks — no rounds, the Arthur side of the protocol.
    Verify {
        /// The problem the certificate claims to prove.
        poly: PolyRequest,
        /// The certificate in `camelot-certificate v1` wire text.
        certificate: String,
    },
    /// Report service counters.
    Status,
    /// Chaos hook: forcibly take down pool worker `node`.
    CrashWorker {
        /// The worker to take down.
        node: usize,
    },
    /// Stop accepting requests and shut the worker pool down.
    Shutdown,
}

/// One daemon response. Counter fields default to zero for verbs they
/// do not apply to.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Response {
    /// Whether the request succeeded.
    pub ok: bool,
    /// Failure description when `ok` is false.
    pub error: Option<String>,
    /// The recovered answer (prepare/verify).
    pub output: Option<u128>,
    /// Broadcast rounds this request ran (0 on a cache hit).
    pub rounds: usize,
    /// Requests that shared this request's broadcast rounds.
    pub coalesced: usize,
    /// Whether the certificate came from `camelot-store`.
    pub cache_hit: bool,
    /// Symbols broadcast on this request's rounds.
    pub symbols: usize,
    /// Payload bytes on the wire for this request's rounds.
    pub bytes: u64,
    /// Live pool workers (status).
    pub workers: usize,
    /// Lifetime worker respawns (status).
    pub respawns: usize,
    /// Rounds that failed with a worker failure (status).
    pub worker_failures: usize,
    /// Requests handled so far (status).
    pub requests: usize,
    /// Certificate-store hits so far (status).
    pub store_hits: usize,
    /// Certificate-store misses so far (status).
    pub store_misses: usize,
    /// The prepared certificate in `camelot-certificate v1` wire text.
    pub certificate: Option<String>,
}

/// Pushes a certificate into a frame, one `cert `-prefixed line per
/// original line.
fn push_certificate(out: &mut String, certificate: &str) {
    for line in certificate.lines() {
        out.push_str("cert ");
        out.push_str(line);
        out.push('\n');
    }
}

pub(crate) fn schedule_token(schedule: PrimeSchedule) -> &'static str {
    match schedule {
        PrimeSchedule::Smallest => "smallest",
        PrimeSchedule::NttFriendly => "ntt",
    }
}

fn parse_schedule(token: &str) -> Result<PrimeSchedule, String> {
    match token {
        "smallest" => Ok(PrimeSchedule::Smallest),
        "ntt" => Ok(PrimeSchedule::NttFriendly),
        other => Err(format!("unknown prime schedule {other:?}")),
    }
}

fn parse_u64(token: Option<&str>, what: &str) -> Result<u64, String> {
    token.ok_or_else(|| format!("missing {what}"))?.parse().map_err(|_| format!("bad {what}"))
}

impl PolyRequest {
    fn push_wire(&self, out: &mut String) {
        out.push_str(&format!("schedule {}\n", schedule_token(self.schedule)));
        out.push_str("poly");
        for &c in &self.coefficients {
            out.push_str(&format!(" {c}"));
        }
        out.push('\n');
        out.push_str(&format!("sum-count {}\n", self.sum_count));
        out.push_str(&format!("value-bits {}\n", self.value_bits));
        out.push_str(&format!("min-modulus {}\n", self.min_modulus));
    }
}

impl Request {
    /// Serializes to the v1 text wire format.
    #[must_use]
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        out.push_str(REQUEST_HEADER);
        out.push('\n');
        match self {
            Request::Prepare(poly) => {
                out.push_str("kind prepare\n");
                poly.push_wire(&mut out);
            }
            Request::Verify { poly, certificate } => {
                out.push_str("kind verify\n");
                poly.push_wire(&mut out);
                push_certificate(&mut out, certificate);
            }
            Request::Status => out.push_str("kind status\n"),
            Request::CrashWorker { node } => {
                out.push_str(&format!("kind crash-worker\nworker {node}\n"));
            }
            Request::Shutdown => out.push_str("kind shutdown\n"),
        }
        out.push_str("end\n");
        out
    }

    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// A description of the structural violation.
    pub fn from_wire(text: &str) -> Result<Request, String> {
        let mut lines = text.lines();
        if lines.next() != Some(REQUEST_HEADER) {
            return Err("missing request header".to_string());
        }
        let mut kind = None;
        let mut coefficients = Vec::new();
        let mut saw_poly = false;
        let mut sum_count = 1u64;
        let mut value_bits = None;
        let mut min_modulus = 1u64 << 20;
        let mut schedule = PrimeSchedule::Smallest;
        let mut worker = None;
        let mut certificate = String::new();
        for line in lines {
            if line == "end" {
                break;
            }
            if let Some(cert_line) = line.strip_prefix("cert ") {
                certificate.push_str(cert_line);
                certificate.push('\n');
                continue;
            }
            let mut tokens = line.split_whitespace();
            match tokens.next() {
                Some("kind") => kind = tokens.next().map(str::to_string),
                Some("schedule") => {
                    schedule = parse_schedule(tokens.next().unwrap_or_default())?;
                }
                Some("poly") => {
                    saw_poly = true;
                    coefficients = tokens
                        .map(|t| t.parse::<u64>().map_err(|_| "bad poly coefficient".to_string()))
                        .collect::<Result<Vec<u64>, String>>()?;
                }
                Some("sum-count") => sum_count = parse_u64(tokens.next(), "sum-count")?,
                Some("value-bits") => value_bits = Some(parse_u64(tokens.next(), "value-bits")?),
                Some("min-modulus") => min_modulus = parse_u64(tokens.next(), "min-modulus")?,
                Some("worker") => {
                    let raw = parse_u64(tokens.next(), "worker index")?;
                    worker = Some(usize::try_from(raw).map_err(|_| "bad worker index")?);
                }
                Some(other) => return Err(format!("unknown request record {other:?}")),
                None => {}
            }
        }
        let poly = |certificate_needed: bool| -> Result<PolyRequest, String> {
            if !saw_poly {
                return Err("missing poly record".to_string());
            }
            if certificate_needed && certificate.is_empty() {
                return Err("missing embedded certificate".to_string());
            }
            Ok(PolyRequest {
                coefficients: coefficients.clone(),
                sum_count,
                value_bits: value_bits.ok_or("missing value-bits")?,
                min_modulus,
                schedule,
            })
        };
        match kind.as_deref() {
            Some("prepare") => Ok(Request::Prepare(poly(false)?)),
            Some("verify") => Ok(Request::Verify { poly: poly(true)?, certificate }),
            Some("status") => Ok(Request::Status),
            Some("crash-worker") => {
                Ok(Request::CrashWorker { node: worker.ok_or("missing worker index")? })
            }
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(format!("unknown request kind {other:?}")),
            None => Err("missing request kind".to_string()),
        }
    }
}

impl Response {
    /// A failure response carrying `error` (newlines flattened so the
    /// message stays one record).
    #[must_use]
    pub fn failure(error: &str) -> Response {
        Response { ok: false, error: Some(error.replace('\n', "; ")), ..Response::default() }
    }

    /// Serializes to the v1 text wire format.
    #[must_use]
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        out.push_str(RESPONSE_HEADER);
        out.push('\n');
        out.push_str(if self.ok { "status ok\n" } else { "status error\n" });
        if let Some(error) = &self.error {
            out.push_str(&format!("error {}\n", error.replace('\n', "; ")));
        }
        if let Some(output) = self.output {
            out.push_str(&format!("output {output}\n"));
        }
        out.push_str(&format!("rounds {}\n", self.rounds));
        out.push_str(&format!("coalesced {}\n", self.coalesced));
        out.push_str(&format!("cache-hit {}\n", usize::from(self.cache_hit)));
        out.push_str(&format!("symbols {}\n", self.symbols));
        out.push_str(&format!("bytes {}\n", self.bytes));
        out.push_str(&format!("workers {}\n", self.workers));
        out.push_str(&format!("respawns {}\n", self.respawns));
        out.push_str(&format!("worker-failures {}\n", self.worker_failures));
        out.push_str(&format!("requests {}\n", self.requests));
        out.push_str(&format!("store-hits {}\n", self.store_hits));
        out.push_str(&format!("store-misses {}\n", self.store_misses));
        if let Some(certificate) = &self.certificate {
            push_certificate(&mut out, certificate);
        }
        out.push_str("end\n");
        out
    }

    /// Parses a response frame.
    ///
    /// # Errors
    ///
    /// A description of the structural violation.
    pub fn from_wire(text: &str) -> Result<Response, String> {
        let mut lines = text.lines();
        if lines.next() != Some(RESPONSE_HEADER) {
            return Err("missing response header".to_string());
        }
        let mut response = Response::default();
        let mut certificate = String::new();
        for line in lines {
            if line == "end" {
                break;
            }
            if let Some(cert_line) = line.strip_prefix("cert ") {
                certificate.push_str(cert_line);
                certificate.push('\n');
                continue;
            }
            if let Some(error) = line.strip_prefix("error ") {
                response.error = Some(error.to_string());
                continue;
            }
            let mut tokens = line.split_whitespace();
            let (record, value) = (tokens.next(), tokens.next());
            match record {
                Some("status") => response.ok = value == Some("ok"),
                Some("output") => {
                    response.output = Some(
                        value
                            .ok_or("missing output value")?
                            .parse::<u128>()
                            .map_err(|_| "bad output value")?,
                    );
                }
                Some("rounds") => response.rounds = parse_count(value, "rounds")?,
                Some("coalesced") => response.coalesced = parse_count(value, "coalesced")?,
                Some("cache-hit") => response.cache_hit = parse_count(value, "cache-hit")? != 0,
                Some("symbols") => response.symbols = parse_count(value, "symbols")?,
                Some("bytes") => response.bytes = parse_u64(value, "bytes")?,
                Some("workers") => response.workers = parse_count(value, "workers")?,
                Some("respawns") => response.respawns = parse_count(value, "respawns")?,
                Some("worker-failures") => {
                    response.worker_failures = parse_count(value, "worker-failures")?;
                }
                Some("requests") => response.requests = parse_count(value, "requests")?,
                Some("store-hits") => response.store_hits = parse_count(value, "store-hits")?,
                Some("store-misses") => response.store_misses = parse_count(value, "store-misses")?,
                Some(other) => return Err(format!("unknown response record {other:?}")),
                None => {}
            }
        }
        if !certificate.is_empty() {
            response.certificate = Some(certificate);
        }
        Ok(response)
    }
}

fn parse_count(token: Option<&str>, what: &str) -> Result<usize, String> {
    usize::try_from(parse_u64(token, what)?).map_err(|_| format!("{what} out of range"))
}

/// Reads one frame (through its `end` line) from a buffered stream;
/// `Ok(None)` on a clean EOF before any bytes.
///
/// # Errors
///
/// I/O failures and mid-frame disconnects.
pub fn read_frame<R: BufRead>(reader: &mut R) -> Result<Option<String>, String> {
    let mut text = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| format!("reading frame: {e}"))?;
        if n == 0 {
            if text.is_empty() {
                return Ok(None);
            }
            return Err("connection closed mid-frame".to_string());
        }
        text.push_str(&line);
        if line.trim_end() == "end" {
            return Ok(Some(text));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly() -> PolyRequest {
        PolyRequest {
            coefficients: vec![3, 1, 4],
            sum_count: 16,
            value_bits: 60,
            min_modulus: 1 << 20,
            schedule: PrimeSchedule::Smallest,
        }
    }

    #[test]
    fn requests_roundtrip() {
        let cases = [
            Request::Prepare(poly()),
            Request::Verify {
                poly: PolyRequest { schedule: PrimeSchedule::NttFriendly, ..poly() },
                certificate: "camelot-certificate v1\ncode-length 10\n".to_string(),
            },
            Request::Status,
            Request::CrashWorker { node: 3 },
            Request::Shutdown,
        ];
        for request in cases {
            assert_eq!(Request::from_wire(&request.to_wire()).unwrap(), request);
        }
    }

    #[test]
    fn responses_roundtrip() {
        let ok = Response {
            ok: true,
            output: Some(1u128 << 100),
            rounds: 5,
            coalesced: 2,
            cache_hit: true,
            symbols: 90,
            bytes: 1234,
            certificate: Some("camelot-certificate v1\ncode-length 10\n".to_string()),
            ..Response::default()
        };
        assert_eq!(Response::from_wire(&ok.to_wire()).unwrap(), ok);
        let err = Response::failure("worker 2 exploded\nbadly");
        let parsed = Response::from_wire(&err.to_wire()).unwrap();
        assert!(!parsed.ok);
        assert_eq!(parsed.error.as_deref(), Some("worker 2 exploded; badly"));
    }

    #[test]
    fn malformed_frames_error_out() {
        assert!(Request::from_wire("nope\nend\n").is_err());
        assert!(Request::from_wire("camelot-request v1\nkind prepare\nend\n").is_err());
        assert!(Request::from_wire("camelot-request v1\nkind verify\npoly 1\nvalue-bits 8\nend\n")
            .is_err());
        assert!(Request::from_wire("camelot-request v1\nkind warp\nend\n").is_err());
        assert!(Response::from_wire("camelot-response v1\nrounds x\nend\n").is_err());
    }
}
