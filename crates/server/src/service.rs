//! The proof service: a persistent engine + worker pool behind an
//! admission queue and a certificate store.
//!
//! Requests meet the cluster the way §1 of the paper prescribes for a
//! court that serves many petitioners at once:
//!
//! * **Coalescing** — concurrent [`Service::prepare`] calls are queued,
//!   and the request whose arrival opened the queue becomes the batch
//!   *leader*: it waits one admission window, drains the queue, and
//!   runs every queued problem through [`Engine::run_batch`] — one
//!   broadcast round per prime for the whole batch, so `n` concurrent
//!   strangers pay the rounds of one.
//! * **Caching** — prepared certificates land in a content-addressed
//!   [`CertStore`]; a repeat query redeems the cached certificate
//!   through [`Engine::redeem`] (spot checks, no trust) and is served
//!   with **zero** rounds.
//! * **Fault handling** — a dead pool worker is just `Crash` with a
//!   cause: the failed round surfaces as a worker failure, the pool is
//!   health-checked and respawned, and the batch retries once.

use crate::wire::{read_frame, schedule_token, PolyRequest, Request, Response};
use camelot_cluster::{EvalProgram, SocketTransport};
use camelot_core::{
    CamelotError, CamelotOutcome, CamelotProblem, Certificate, ChaosPlan, Deadline, Engine,
    EngineConfig, Evaluate, PrimeProof, PrimeSchedule, ProofSpec, RecoveryPolicy, RetryPolicy,
    TransportTuning, WorkerMode,
};
use camelot_ff::{crt_u, PrimeField, Residue};
use camelot_store::{cert_key, CertKey, CertStore};
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::Duration;

/// How long a connection may sit idle before the daemon (or the client
/// helper) gives up on it. Generous: a prepare holds its connection for
/// the admission window plus the rounds.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(120);

/// Configuration of one [`Service`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Compute nodes in the worker pool.
    pub nodes: usize,
    /// Fault budget `f` (code length `e = d + 1 + 2f`).
    pub fault_tolerance: usize,
    /// How pool workers run (threads or `camelot-node` processes).
    pub workers: WorkerMode,
    /// The admission window: how long a batch leader waits for
    /// strangers to coalesce with before running the shared rounds.
    pub batch_window: Duration,
    /// In-memory certificate-store capacity (LRU).
    pub store_capacity: usize,
    /// Optional directory mirror for the certificate store.
    pub store_dir: Option<PathBuf>,
    /// Prime schedule certificates are prepared under.
    pub schedule: PrimeSchedule,
    /// Spot-check trials per prime proof.
    pub verification_trials: usize,
    /// Verification randomness seed.
    pub seed: u64,
    /// Coordinator–worker I/O deadline; `None` defers to the
    /// `CAMELOT_SOCKET_TIMEOUT_MS` environment variable (60 s fallback).
    pub io_deadline: Option<Duration>,
    /// How long a client connection may sit idle before the daemon (or
    /// the client helper) gives up on it.
    pub client_timeout: Duration,
    /// Optional transport-level chaos plan injected into every round.
    pub chaos: Option<ChaosPlan>,
    /// Engine recovery policy (transport retries, redundancy
    /// escalation).
    pub recovery: RecoveryPolicy,
    /// Demote a dead/slow/hung pool worker to an erasure mid-round
    /// instead of failing the round (the round then completes via
    /// erasure decoding; the default keeps the historical
    /// fail-then-respawn-then-retry behaviour).
    pub demote_dead_workers: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            nodes: 4,
            fault_tolerance: 1,
            workers: WorkerMode::Threads,
            batch_window: Duration::from_millis(40),
            store_capacity: 64,
            store_dir: None,
            schedule: PrimeSchedule::Smallest,
            verification_trials: 2,
            seed: 0x00CA_110C_A11E,
            io_deadline: None,
            client_timeout: CLIENT_TIMEOUT,
            chaos: None,
            recovery: RecoveryPolicy::none(),
            demote_dead_workers: false,
        }
    }
}

/// The service-side problem wrapper: a [`PolyRequest`] as a
/// [`CamelotProblem`] whose answer is `Σ_{x=0}^{sum_count-1} P(x)` over
/// the integers. Wire-expressible by construction (the polynomial *is*
/// the canonical input), so rounds can run on process-spanning
/// transports.
#[derive(Clone, Debug)]
pub struct ServicePoly(pub PolyRequest);

/// Per-prime oracle for [`ServicePoly`]: Horner on the reduced
/// coefficients, shippable to workers as an [`EvalProgram`].
struct PolyEval {
    field: PrimeField,
    program: EvalProgram,
}

impl Evaluate for PolyEval {
    fn eval(&self, x0: u64) -> u64 {
        self.program.eval(&self.field, x0)
    }

    fn program(&self) -> Option<EvalProgram> {
        Some(self.program.clone())
    }
}

impl CamelotProblem for ServicePoly {
    type Output = u128;

    fn spec(&self) -> ProofSpec {
        ProofSpec::new(
            self.0.coefficients.len().saturating_sub(1),
            self.0.min_modulus,
            self.0.value_bits,
        )
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let reduced = self.0.coefficients.iter().map(|&c| field.reduce(c)).collect();
        Box::new(PolyEval { field: *field, program: EvalProgram::Poly(reduced) })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<u128, CamelotError> {
        let residues: Vec<Residue> =
            proofs.iter().map(|p| p.sum_residue(0, self.0.sum_count)).collect();
        crt_u(&residues).to_u128().ok_or_else(|| CamelotError::RecoveryFailed {
            reason: "recovered value exceeded u128".into(),
        })
    }
}

/// A queued prepare request awaiting its batch.
struct Pending {
    problem: ServicePoly,
    reply: Sender<Result<CamelotOutcome<u128>, CamelotError>>,
}

/// The long-lived proof service. Shared across connection handler
/// threads behind an [`Arc`]; all interior state is synchronized.
pub struct Service {
    config: ServiceConfig,
    /// The persistent transport; clones (one lives inside the engine)
    /// share the same worker pool.
    transport: SocketTransport,
    engine: Engine,
    store: Mutex<CertStore>,
    /// The admission queue; the request that makes it non-empty is the
    /// leader of the next batch.
    queue: Mutex<Vec<Pending>>,
    requests: AtomicUsize,
    worker_failures: AtomicUsize,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Service {
    /// Builds the service: a persistent socket transport (the pool
    /// starts lazily with the first round), an engine running on it,
    /// and the certificate store.
    ///
    /// # Errors
    ///
    /// Certificate-store directory trouble.
    pub fn new(config: ServiceConfig) -> Result<Service, String> {
        let mut tuning = TransportTuning::default().with_demotion(config.demote_dead_workers);
        if let Some(io_deadline) = config.io_deadline {
            tuning = tuning.with_io_deadline(io_deadline);
        }
        let transport = SocketTransport::persistent(config.workers.clone())
            .with_tuning(tuning)
            .with_chaos(config.chaos.clone());
        let mut engine_config = EngineConfig::sequential(config.nodes, config.fault_tolerance);
        engine_config.prime_schedule = config.schedule;
        engine_config.verification_trials = config.verification_trials;
        engine_config.seed = config.seed;
        engine_config.recovery = config.recovery;
        let engine = Engine::with_transport(engine_config, Arc::new(transport.clone()));
        let store = match &config.store_dir {
            Some(dir) => CertStore::with_dir(config.store_capacity, dir.clone())
                .map_err(|e| e.to_string())?,
            None => CertStore::in_memory(config.store_capacity),
        };
        Ok(Service {
            config,
            transport,
            engine,
            store: Mutex::new(store),
            queue: Mutex::new(Vec::new()),
            requests: AtomicUsize::new(0),
            worker_failures: AtomicUsize::new(0),
        })
    }

    /// The content address of a request: problem family, canonical
    /// input, prime schedule, and the engine parameters that change the
    /// prepared certificate.
    fn cache_key(&self, poly: &PolyRequest) -> CertKey {
        let mut coefficients = Vec::with_capacity(poly.coefficients.len() * 8);
        for &c in &poly.coefficients {
            coefficients.extend_from_slice(&c.to_le_bytes());
        }
        cert_key(&[
            b"service-poly-sum",
            &coefficients,
            &poly.sum_count.to_le_bytes(),
            &poly.value_bits.to_le_bytes(),
            &poly.min_modulus.to_le_bytes(),
            schedule_token(poly.schedule).as_bytes(),
            &(self.config.nodes as u64).to_le_bytes(),
            &(self.config.fault_tolerance as u64).to_le_bytes(),
        ])
    }

    /// Prepares (or redeems) a certificate and the answer for `poly`.
    ///
    /// Cache hit → [`Engine::redeem`], zero rounds. Miss → the request
    /// joins the admission queue and shares one batch of broadcast
    /// rounds with every other request admitted in the same window; the
    /// prepared certificate is stored for the next petitioner.
    ///
    /// # Errors
    ///
    /// Engine failures ([`CamelotError`]); a worker failure is retried
    /// once after respawning the pool, then surfaced.
    pub fn prepare(&self, poly: &PolyRequest) -> Result<CamelotOutcome<u128>, CamelotError> {
        self.requests.fetch_add(1, Ordering::SeqCst);
        let problem = ServicePoly(poly.clone());
        let key = self.cache_key(poly);
        let cached = lock(&self.store).get(&key);
        if let Some(certificate) = cached {
            if let Ok(outcome) = self.engine.redeem(&problem, &certificate) {
                return Ok(outcome);
            }
            // A cached certificate that no longer spot-checks is
            // ignored (never served unverified) — prepare freshly.
        }
        let (reply, receipt) = channel();
        let leader = {
            let mut queue = lock(&self.queue);
            queue.push(Pending { problem, reply });
            queue.len() == 1
        };
        if leader {
            // Let strangers coalesce, then run the batch and hand every
            // member (ourselves included) its outcome.
            thread::sleep(self.config.batch_window);
            let batch = std::mem::take(&mut *lock(&self.queue));
            self.run_batch_for(batch);
        }
        match receipt.recv() {
            Ok(result) => {
                if let Ok(outcome) = &result {
                    // In-memory store always succeeds; a directory
                    // mirror failure only costs persistence.
                    let _persisted = lock(&self.store).put(&key, &outcome.certificate);
                }
                result
            }
            Err(_) => {
                Err(CamelotError::TransportFailed { reason: "service dropped the request".into() })
            }
        }
    }

    /// Runs one admitted batch and distributes the results.
    fn run_batch_for(&self, batch: Vec<Pending>) {
        if batch.is_empty() {
            return;
        }
        let problems: Vec<ServicePoly> = batch.iter().map(|p| p.problem.clone()).collect();
        let mut result = self.engine.run_batch(&problems);
        if matches!(&result, Err(CamelotError::TransportFailed { .. })) {
            // A dead worker is just Crash with a cause: record it,
            // respawn via the pool health check, retry the batch once.
            self.worker_failures.fetch_add(1, Ordering::SeqCst);
            if self.transport.repair_pool().is_ok() {
                result = self.engine.run_batch(&problems);
            }
        }
        match result {
            Ok(outcomes) => {
                for (pending, outcome) in batch.into_iter().zip(outcomes) {
                    // A requester that gave up just misses its answer.
                    let _delivered = pending.reply.send(Ok(outcome));
                }
            }
            Err(err) => {
                for pending in batch {
                    let _delivered = pending.reply.send(Err(err.clone()));
                }
            }
        }
    }

    /// Verifies a client-supplied certificate against `poly` by spot
    /// checks (no rounds) and recovers the answer — the Arthur side.
    ///
    /// # Errors
    ///
    /// Malformed certificates and failed spot checks.
    pub fn verify(
        &self,
        poly: &PolyRequest,
        certificate_text: &str,
    ) -> Result<CamelotOutcome<u128>, CamelotError> {
        self.requests.fetch_add(1, Ordering::SeqCst);
        let certificate = Certificate::from_wire(certificate_text)?;
        self.engine.redeem(&ServicePoly(poly.clone()), &certificate)
    }

    /// Chaos hook: forcibly takes down pool worker `node`.
    ///
    /// # Errors
    ///
    /// No running pool, or the kill itself failing.
    pub fn crash_worker(&self, node: usize) -> Result<(), String> {
        self.transport.kill_pool_worker(node).map_err(|e| e.to_string())
    }

    /// Service counters as a status response.
    #[must_use]
    pub fn status(&self) -> Response {
        let stats = lock(&self.store).stats();
        Response {
            ok: true,
            workers: self.transport.pool_live_workers(),
            respawns: self.transport.pool_respawns(),
            worker_failures: self.worker_failures.load(Ordering::SeqCst),
            requests: self.requests.load(Ordering::SeqCst),
            store_hits: stats.hits,
            store_misses: stats.misses,
            ..Response::default()
        }
    }

    /// Shuts the worker pool down gracefully (shutdown frames, then
    /// join/reap — no kills). Idempotent.
    ///
    /// # Errors
    ///
    /// A worker that exited uncleanly.
    pub fn shutdown(&self) -> Result<(), String> {
        self.transport.shutdown_pool().map_err(|e| e.to_string())
    }
}

/// Builds the response for a prepare/verify outcome.
fn outcome_response(result: Result<CamelotOutcome<u128>, CamelotError>) -> Response {
    match result {
        Ok(outcome) => Response {
            ok: true,
            output: Some(outcome.output),
            rounds: outcome.report.rounds,
            coalesced: outcome.report.coalesced_requests,
            cache_hit: outcome.report.cache_hits > 0,
            symbols: outcome.report.symbols_broadcast,
            bytes: outcome.report.bytes_on_wire,
            certificate: Some(outcome.certificate.to_wire()),
            ..Response::default()
        },
        Err(err) => Response::failure(&err.to_string()),
    }
}

/// Serves one client connection: one request frame in, one response
/// frame out.
fn try_handle(stream: TcpStream, service: &Service, stop: &AtomicBool) -> Result<(), String> {
    stream.set_read_timeout(Some(service.config.client_timeout)).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut stream = stream;
    let Some(text) = read_frame(&mut reader)? else {
        return Ok(());
    };
    let response = match Request::from_wire(&text) {
        Err(err) => Response::failure(&format!("bad request: {err}")),
        Ok(Request::Prepare(poly)) => outcome_response(service.prepare(&poly)),
        Ok(Request::Verify { poly, certificate }) => {
            let mut response = outcome_response(service.verify(&poly, &certificate));
            // The client supplied the certificate; no need to echo it.
            response.certificate = None;
            response
        }
        Ok(Request::Status) => service.status(),
        Ok(Request::CrashWorker { node }) => match service.crash_worker(node) {
            Ok(()) => Response { ok: true, ..Response::default() },
            Err(err) => Response::failure(&err),
        },
        Ok(Request::Shutdown) => {
            stop.store(true, Ordering::SeqCst);
            Response { ok: true, ..Response::default() }
        }
    };
    stream
        .write_all(response.to_wire().as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("writing response: {e}"))
}

/// The daemon accept loop: serves requests (one handler thread per
/// connection) until a `shutdown` request arrives, then joins every
/// handler and shuts the worker pool down gracefully. Returns only
/// after all workers are reaped — a clean exit means no orphans.
///
/// # Errors
///
/// Listener failures, and pool-teardown failures at the end.
pub fn run_daemon(listener: &TcpListener, service: &Arc<Service>) -> Result<(), String> {
    listener.set_nonblocking(true).map_err(|e| format!("nonblocking listener: {e}"))?;
    let stop = Arc::new(AtomicBool::new(false));
    let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(service);
                let stop = Arc::clone(&stop);
                handlers.push(thread::spawn(move || {
                    // A client that vanishes mid-request only costs us
                    // this handler; the error has nowhere useful to go.
                    let _handled = try_handle(stream, &service, &stop);
                }));
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                handlers.retain(|handle| !handle.is_finished());
                thread::sleep(Duration::from_millis(2));
            }
            Err(err) => return Err(format!("accepting client: {err}")),
        }
    }
    for handle in handlers {
        // Handlers are bounded by CLIENT_TIMEOUT; joining keeps the
        // pool alive until the last in-flight request is answered.
        let _joined = handle.join();
    }
    service.shutdown()
}

/// Client helper: one request frame to `addr`, one response frame back,
/// with the default 120 s idle timeout and no retries. See
/// [`request_with`] for configurable deadlines and retry/backoff.
///
/// # Errors
///
/// Connection trouble, malformed frames, a daemon that hung up early.
pub fn request(addr: &str, request: &Request) -> Result<Response, String> {
    request_with(addr, request, CLIENT_TIMEOUT, &RetryPolicy::none())
}

/// Client helper with an explicit per-attempt idle timeout and a
/// retry/backoff policy: failed attempts (connection refused, daemon
/// hang-up, idle timeout) are retried with the policy's seeded backoff
/// until the attempt budget or the overall deadline (`timeout` from the
/// first attempt) runs out.
///
/// # Errors
///
/// The last attempt's failure: connection trouble, malformed frames, a
/// daemon that hung up early.
pub fn request_with(
    addr: &str,
    request: &Request,
    timeout: Duration,
    retry: &RetryPolicy,
) -> Result<Response, String> {
    let deadline = Deadline::after(timeout);
    let mut attempt = 0u32;
    loop {
        match try_request(addr, request, timeout) {
            Ok(response) => return Ok(response),
            Err(err) if attempt < retry.retries() && !deadline.expired() => {
                thread::sleep(retry.backoff(attempt));
                attempt += 1;
                // The error has nowhere to go until the budget runs out.
                let _retried = err;
            }
            Err(err) => return Err(err),
        }
    }
}

/// One request/response attempt against `addr`.
fn try_request(addr: &str, request: &Request, timeout: Duration) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writer
        .write_all(request.to_wire().as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("sending request: {e}"))?;
    let mut reader = BufReader::new(stream);
    match read_frame(&mut reader)? {
        Some(text) => Response::from_wire(&text),
        None => Err("server closed the connection without responding".to_string()),
    }
}
