//! # camelot-server — Camelot as a service
//!
//! The paper's protocol prepares a proof once so that many verifiers
//! can check it cheaply. This crate turns that economy into a daemon:
//! a persistent [`Service`] that keeps a warm worker pool (the
//! `socket-pool` transport) across requests, **coalesces** concurrent
//! prepare requests onto shared per-prime broadcast rounds via the
//! engine's batched path, and **caches** prepared certificates in a
//! content-addressed `camelot-store` so repeat queries are served with
//! zero rounds — after re-verification by spot checks, never on trust.
//!
//! The `camelot-serve` binary wraps [`run_daemon`] around a TCP
//! listener speaking the `camelot-request v1`/`camelot-response v1`
//! frames defined in [`wire`]; [`request`] is the matching one-call
//! client.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod service;
mod wire;

pub use service::{request, request_with, run_daemon, Service, ServiceConfig, ServicePoly};
pub use wire::{read_frame, PolyRequest, Request, Response, REQUEST_HEADER, RESPONSE_HEADER};
