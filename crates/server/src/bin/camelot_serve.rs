//! `camelot-serve` — the Camelot proof daemon.
//!
//! Binds a TCP listener, prints `camelot-serve listening on HOST:PORT`
//! (port 0 picks a free port — parse the line to find it), and serves
//! `camelot-request v1` frames until a `shutdown` request arrives. The
//! worker pool persists across requests; concurrent prepares coalesce
//! onto shared broadcast rounds; prepared certificates are cached and
//! repeat queries served with zero rounds.
//!
//! ```text
//! camelot-serve [--listen HOST:PORT] [--nodes K] [--fault-tolerance F]
//!               [--workers threads|process] [--batch-window-ms N]
//!               [--store-capacity N] [--store-dir DIR] [--ntt]
//!               [--io-deadline-ms N] [--client-timeout-ms N]
//!               [--demote-dead-workers] [--escalations N]
//! ```
//!
//! `--io-deadline-ms` bounds every coordinator–worker read (replacing
//! the 60 s default); `--demote-dead-workers` turns a dead or hung
//! worker into an erasure the round decodes through instead of a failed
//! round; `--escalations` lets the engine raise the fault budget when a
//! round decodes outside the configured radius.

use camelot_cluster::sibling_worker_binary;
use camelot_core::{PrimeSchedule, RecoveryPolicy, WorkerMode};
use camelot_server::{run_daemon, Service, ServiceConfig};
use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: camelot-serve [--listen HOST:PORT] [--nodes K] \
[--fault-tolerance F] [--workers threads|process] [--batch-window-ms N] \
[--store-capacity N] [--store-dir DIR] [--ntt] [--io-deadline-ms N] \
[--client-timeout-ms N] [--demote-dead-workers] [--escalations N]";

fn parse_args() -> Result<(String, ServiceConfig), String> {
    let mut listen = "127.0.0.1:0".to_string();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| args.next().ok_or(format!("{flag} needs {what}\n{USAGE}"));
        match flag.as_str() {
            "--listen" => listen = value("HOST:PORT")?,
            "--nodes" => {
                config.nodes = value("a count")?.parse().map_err(|_| "bad --nodes".to_string())?;
            }
            "--fault-tolerance" => {
                config.fault_tolerance =
                    value("a count")?.parse().map_err(|_| "bad --fault-tolerance".to_string())?;
            }
            "--workers" => {
                config.workers = match value("threads|process")?.as_str() {
                    "threads" => WorkerMode::Threads,
                    "process" => {
                        let binary = sibling_worker_binary().ok_or_else(|| {
                            "--workers process: camelot-node binary not found next to \
                             camelot-serve (build it with `cargo build`)"
                                .to_string()
                        })?;
                        WorkerMode::Process(binary)
                    }
                    other => return Err(format!("unknown worker mode {other:?}\n{USAGE}")),
                };
            }
            "--batch-window-ms" => {
                let ms: u64 =
                    value("milliseconds")?.parse().map_err(|_| "bad --batch-window-ms")?;
                config.batch_window = Duration::from_millis(ms);
            }
            "--store-capacity" => {
                config.store_capacity =
                    value("a count")?.parse().map_err(|_| "bad --store-capacity".to_string())?;
            }
            "--store-dir" => config.store_dir = Some(value("DIR")?.into()),
            "--ntt" => config.schedule = PrimeSchedule::NttFriendly,
            "--io-deadline-ms" => {
                let ms: u64 = value("milliseconds")?.parse().map_err(|_| "bad --io-deadline-ms")?;
                config.io_deadline = Some(Duration::from_millis(ms.max(1)));
            }
            "--client-timeout-ms" => {
                let ms: u64 =
                    value("milliseconds")?.parse().map_err(|_| "bad --client-timeout-ms")?;
                config.client_timeout = Duration::from_millis(ms.max(1));
            }
            "--demote-dead-workers" => config.demote_dead_workers = true,
            "--escalations" => {
                let count: u32 = value("a count")?.parse().map_err(|_| "bad --escalations")?;
                config.recovery = RecoveryPolicy::escalating(count);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok((listen, config))
}

fn serve() -> Result<(), String> {
    let (listen, config) = parse_args()?;
    let service = Service::new(config)?;
    let listener = TcpListener::bind(&listen).map_err(|e| format!("binding {listen}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| format!("local address: {e}"))?;
    println!("camelot-serve listening on {addr}");
    // Clients (and the CI smoke) parse the line to learn the port; make
    // sure it leaves the process even through a pipe.
    std::io::stdout().flush().map_err(|e| format!("flushing stdout: {e}"))?;
    run_daemon(&listener, &Arc::new(service))
}

fn main() -> ExitCode {
    match serve() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("camelot-serve: {message}");
            ExitCode::FAILURE
        }
    }
}
