//! # camelot-csp — enumerating 2-CSP assignments by satisfied count
//!
//! Theorem 12 / Appendix B of *“How Proofs are Prepared at Camelot”*.
//! Partition the `n` variables into six blocks `Z_1..Z_6` of `n/6` each;
//! every binary constraint has a unique *type* `(s, t)` (the
//! lexicographically least pair of blocks covering its variables). With
//! `χ^{(s,t)}_{a_s a_t}(w) = w^{f^{(s,t)}(a_s, a_t)}` counting satisfied
//! constraints of each type, the `(6 2)`-linear form over these 15
//! matrices is the generating polynomial
//!
//! ```text
//! X_{(6 2)}(w) = Σ_k (#assignments satisfying exactly k constraints) w^k,
//! ```
//!
//! recovered by evaluating the Camelot clique machinery of §5 at `m + 1`
//! integer points `w_0` and interpolating over the integers. Proof size
//! and per-node time are `O*(σ^{(ω+ε)n/6})`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod weighted;

pub use weighted::{enumerate_by_satisfied_weight, WeightedCsp2};

use camelot_cliques::{pair_index, Form62};
use camelot_core::{CamelotError, CamelotProblem, Engine, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::{crt_u, IBig, PrimeField, Residue, UBig};
use camelot_linalg::{MatMulTensor, Matrix};
use camelot_partition::interpolate_integer;

/// A binary constraint over two distinct variables with an explicit
/// allowed-pairs relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// First variable (must be `< v`).
    pub u: usize,
    /// Second variable.
    pub v: usize,
    /// Row-major `σ × σ` table: `allowed[a * σ + b]` is true iff the
    /// assignment `(u ← a, v ← b)` satisfies the constraint.
    pub allowed: Vec<bool>,
}

/// A 2-CSP instance with `n` variables over an alphabet of size `sigma`.
#[derive(Clone, Debug)]
pub struct Csp2 {
    n: usize,
    sigma: usize,
    constraints: Vec<Constraint>,
}

impl Csp2 {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a positive multiple of 6, `sigma >= 2`, every
    /// constraint has `u < v < n` and a `σ²`-sized table.
    #[must_use]
    pub fn new(n: usize, sigma: usize, constraints: Vec<Constraint>) -> Self {
        assert!(n > 0 && n.is_multiple_of(6), "variable count must be a positive multiple of 6");
        assert!(sigma >= 2, "alphabet needs at least two symbols");
        for c in &constraints {
            assert!(c.u < c.v && c.v < n, "constraint variables out of order/range");
            assert_eq!(c.allowed.len(), sigma * sigma, "relation table must be σ²");
        }
        Csp2 { n, sigma, constraints }
    }

    /// Deterministic random instance with `density_percent`% allowed
    /// pairs per constraint.
    #[must_use]
    pub fn random(n: usize, sigma: usize, m: usize, density_percent: u64, seed: u64) -> Self {
        use camelot_ff::{RngLike, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        let mut constraints = Vec::with_capacity(m);
        for _ in 0..m {
            let u = (rng.next_u64() % n as u64) as usize;
            let mut v = (rng.next_u64() % n as u64) as usize;
            while v == u {
                v = (rng.next_u64() % n as u64) as usize;
            }
            let (u, v) = (u.min(v), u.max(v));
            let allowed =
                (0..sigma * sigma).map(|_| rng.next_u64() % 100 < density_percent).collect();
            constraints.push(Constraint { u, v, allowed });
        }
        Csp2::new(n, sigma, constraints)
    }

    /// Number of constraints.
    #[must_use]
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// Number of variables.
    #[must_use]
    pub fn vars(&self) -> usize {
        self.n
    }

    /// Alphabet size.
    #[must_use]
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Per-constraint satisfaction flags for a full assignment.
    #[must_use]
    pub fn satisfied_flags(&self, assignment: &[usize]) -> Vec<bool> {
        self.constraints
            .iter()
            .map(|c| c.allowed[assignment[c.u] * self.sigma + assignment[c.v]])
            .collect()
    }

    /// Number of constraints the full assignment satisfies.
    #[must_use]
    pub fn satisfied_count(&self, assignment: &[usize]) -> usize {
        self.constraints
            .iter()
            .filter(|c| c.allowed[assignment[c.u] * self.sigma + assignment[c.v]])
            .count()
    }

    /// Ground truth histogram: entry `k` counts assignments satisfying
    /// exactly `k` constraints (brute force over `σ^n`).
    ///
    /// # Panics
    ///
    /// Panics if `σ^n > 2^24`.
    #[must_use]
    pub fn reference_histogram(&self) -> Vec<u64> {
        let total = (self.sigma as u64).pow(self.n as u32);
        assert!(total <= 1 << 24, "brute force space too large");
        let mut hist = vec![0u64; self.constraints.len() + 1];
        let mut assignment = vec![0usize; self.n];
        for code in 0..total {
            let mut c = code;
            for slot in assignment.iter_mut() {
                *slot = (c % self.sigma as u64) as usize;
                c /= self.sigma as u64;
            }
            hist[self.satisfied_count(&assignment)] += 1;
        }
        hist
    }

    /// Block of a variable (`n/6` variables per block).
    fn block_of(&self, var: usize) -> usize {
        var / (self.n / 6)
    }

    /// The unique type `(s, t)` (1-based, `s < t`) of a constraint.
    fn type_of(&self, c: &Constraint) -> (usize, usize) {
        let (gu, gv) = (self.block_of(c.u), self.block_of(c.v));
        if gu != gv {
            (gu.min(gv) + 1, gu.max(gv) + 1)
        } else if gu == 0 {
            (1, 2)
        } else {
            (1, gu + 1)
        }
    }

    /// Per-block assignment count `N = σ^{n/6}`.
    fn block_assignments(&self) -> usize {
        self.sigma.pow((self.n / 6) as u32)
    }

    /// Value of variable `var` under the pair of block assignments
    /// `(s, a_s)` and `(t, a_t)` (1-based block labels).
    fn var_value(&self, var: usize, s: usize, a_s: usize, t: usize, a_t: usize) -> usize {
        let block = self.block_of(var);
        let width = self.n / 6;
        let offset = var - block * width;
        let a = if block + 1 == s {
            a_s
        } else {
            debug_assert_eq!(block + 1, t, "variable outside its constraint type");
            a_t
        };
        a / self.sigma.pow(offset as u32) % self.sigma
    }

    /// `f^{(s,t)}(a_s, a_t)`: total weight of satisfied constraints of
    /// type `(s,t)` (unit weights give the plain count).
    fn satisfied_of_type(
        &self,
        weights: &[u64],
        s: usize,
        t: usize,
        a_s: usize,
        a_t: usize,
    ) -> u64 {
        self.constraints
            .iter()
            .zip(weights)
            .filter(|(c, _)| self.type_of(c) == (s, t))
            .filter(|(c, _)| {
                let va = self.var_value(c.u, s, a_s, t, a_t);
                let vb = self.var_value(c.v, s, a_s, t, a_t);
                c.allowed[va * self.sigma + vb]
            })
            .map(|(_, &w)| w)
            .sum()
    }
}

/// The Camelot problem computing `X_{(6 2)}(w_0)` for one integer weight
/// `w_0`.
#[derive(Clone, Debug)]
pub struct CspWeightValue {
    csp: Csp2,
    weights: Vec<u64>,
    w0: u64,
    tensor: MatMulTensor,
    t_pow: usize,
    padded: usize,
}

impl CspWeightValue {
    /// Creates the problem (Strassen tensor, unit weights).
    #[must_use]
    pub fn new(csp: Csp2, w0: u64) -> Self {
        let weights = vec![1; csp.constraint_count()];
        Self::with_weights(csp, weights, w0)
    }

    /// Creates the problem with per-constraint nonnegative integer
    /// weights (the remark after Theorem 12): the generating polynomial
    /// tracks total satisfied *weight*.
    ///
    /// # Panics
    ///
    /// Panics if the weight count does not match the constraint count.
    #[must_use]
    pub fn with_weights(csp: Csp2, weights: Vec<u64>, w0: u64) -> Self {
        assert_eq!(weights.len(), csp.constraint_count(), "one weight per constraint");
        let tensor = MatMulTensor::strassen();
        let real = csp.block_assignments();
        let mut padded = 1usize;
        let mut t_pow = 0usize;
        while padded < real {
            padded *= tensor.n0();
            t_pow += 1;
        }
        CspWeightValue { csp, weights, w0, tensor, t_pow, padded }
    }

    fn rank(&self) -> usize {
        self.tensor.r0().pow(self.t_pow as u32)
    }

    fn value_bits(&self) -> u64 {
        let total_weight = self.weights.iter().sum::<u64>() as f64;
        let assignments = (self.csp.n as f64) * (self.csp.sigma as f64).log2();
        (assignments + total_weight * ((self.w0 + 1) as f64).log2() + 2.0).ceil() as u64
    }
}

impl CamelotProblem for CspWeightValue {
    type Output = UBig;

    fn spec(&self) -> ProofSpec {
        let degree = Form62::proof_degree_bound(&self.tensor, self.t_pow);
        ProofSpec {
            degree_bound: degree,
            min_modulus: (degree as u64 + 2).max(self.rank() as u64 + 1),
            value_bits: self.value_bits(),
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let real = self.csp.block_assignments();
        let w0 = f.reduce(self.w0);
        // One matrix per pair: χ^{(s,t)}[a_s][a_t] = w0^{f^{(s,t)}},
        // zero-padded (padding zeroes the whole product for any tuple
        // touching a padded index).
        let mut mats: Vec<Matrix> = vec![Matrix::zeros(1, 1); 15];
        for s in 1..6 {
            for t in s + 1..=6 {
                mats[pair_index(s, t)] = Matrix::from_fn(self.padded, self.padded, |a, b| {
                    if a >= real || b >= real {
                        0
                    } else {
                        f.pow(w0, self.csp.satisfied_of_type(&self.weights, s, t, a, b))
                    }
                });
            }
        }
        let form = Form62::new(mats);
        let tensor = self.tensor.clone();
        let t_pow = self.t_pow;
        Box::new(move |x0: u64| form.eval_proof_at(&f, &tensor, t_pow, x0))
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<UBig, CamelotError> {
        let r_total = self.rank() as u64;
        let residues: Vec<Residue> = proofs.iter().map(|p| p.sum_residue(1, r_total)).collect();
        Ok(crt_u(&residues))
    }
}

/// The full Theorem 12 pipeline: the histogram of assignments by number
/// of satisfied constraints.
///
/// # Errors
///
/// Propagates engine failures from the per-weight runs.
pub fn enumerate_by_satisfied(csp: &Csp2, engine: &Engine) -> Result<Vec<UBig>, CamelotError> {
    let m = csp.constraint_count();
    let mut values = Vec::with_capacity(m + 1);
    for w0 in 0..=m as u64 {
        let problem = CspWeightValue::new(csp.clone(), w0);
        values.push(IBig::from_parts(false, engine.run(&problem)?.output));
    }
    let coeffs = interpolate_integer(&values, 0);
    let mut hist: Vec<UBig> = coeffs
        .into_iter()
        .map(|c| {
            debug_assert!(!c.is_negative(), "histogram entries are counts");
            c.magnitude().clone()
        })
        .collect();
    hist.resize(m + 1, UBig::zero());
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::sequential(4, 2)
    }

    fn hist_u64(h: &[UBig]) -> Vec<u64> {
        h.iter().map(|v| v.to_u64().unwrap()).collect()
    }

    #[test]
    fn histogram_matches_brute_force_binary() {
        for seed in 0..3 {
            let csp = Csp2::random(6, 2, 4, 50, seed);
            let expect = csp.reference_histogram();
            let hist = enumerate_by_satisfied(&csp, &engine()).unwrap();
            assert_eq!(hist_u64(&hist), expect, "seed {seed}");
        }
    }

    #[test]
    fn histogram_matches_brute_force_ternary() {
        let csp = Csp2::random(6, 3, 3, 40, 7);
        let expect = csp.reference_histogram();
        let hist = enumerate_by_satisfied(&csp, &engine()).unwrap();
        assert_eq!(hist_u64(&hist), expect);
    }

    #[test]
    fn no_constraints_everything_satisfies_zero() {
        let csp = Csp2::new(6, 2, vec![]);
        let hist = enumerate_by_satisfied(&csp, &engine()).unwrap();
        assert_eq!(hist_u64(&hist), vec![64]);
    }

    #[test]
    fn always_true_constraint_shifts_histogram() {
        let allowed = vec![true; 4];
        let csp = Csp2::new(6, 2, vec![Constraint { u: 0, v: 3, allowed }]);
        let hist = enumerate_by_satisfied(&csp, &engine()).unwrap();
        assert_eq!(hist_u64(&hist), vec![0, 64]);
    }

    #[test]
    fn same_block_constraints_are_typed_correctly() {
        // 12 variables: blocks of 2; a constraint inside block 0 and one
        // inside block 3 exercise both same-block branches. Use brute
        // force histogram as the oracle.
        let eq = |sigma: usize| {
            (0..sigma * sigma).map(|i| i / sigma == i % sigma).collect::<Vec<bool>>()
        };
        let csp = Csp2::new(
            12,
            2,
            vec![
                Constraint { u: 0, v: 1, allowed: eq(2) },
                Constraint { u: 6, v: 7, allowed: eq(2) },
                Constraint { u: 2, v: 9, allowed: eq(2) },
            ],
        );
        let expect = csp.reference_histogram();
        let hist = enumerate_by_satisfied(&csp, &engine()).unwrap();
        assert_eq!(hist_u64(&hist), expect);
    }

    #[test]
    fn total_mass_is_sigma_to_n() {
        let csp = Csp2::random(6, 2, 5, 60, 11);
        let hist = enumerate_by_satisfied(&csp, &engine()).unwrap();
        let total: u64 = hist_u64(&hist).iter().sum();
        assert_eq!(total, 64);
    }
}
