//! Weighted 2-CSPs (the remark after Theorem 12).
//!
//! *“Theorem 12 admits a generalization to weighted instances where each
//! 2-constraint has a nonnegative integer weight at most W. In this case
//! both the proof size and the per-node running time get multiplied by
//! W.”* — the generating polynomial becomes
//! `X(w) = Σ_k (#assignments of total satisfied weight k) w^k` of degree
//! at most `Σ weights <= mW`, so `mW + 1` weight points reconstruct the
//! histogram by total satisfied *weight*.

use crate::{Csp2, CspWeightValue};
use camelot_core::{CamelotError, Engine};
use camelot_ff::{IBig, UBig};
use camelot_partition::interpolate_integer;

/// A weighted 2-CSP: the base instance plus one nonnegative weight per
/// constraint.
#[derive(Clone, Debug)]
pub struct WeightedCsp2 {
    csp: Csp2,
    weights: Vec<u64>,
}

impl WeightedCsp2 {
    /// Attaches weights to an instance.
    ///
    /// # Panics
    ///
    /// Panics if the weight count does not match the constraint count.
    #[must_use]
    pub fn new(csp: Csp2, weights: Vec<u64>) -> Self {
        assert_eq!(weights.len(), csp.constraint_count(), "one weight per constraint required");
        WeightedCsp2 { csp, weights }
    }

    /// Total weight `Σ w_j` (the degree bound of the generating
    /// polynomial; the paper's `mW` envelope).
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// The underlying unweighted instance.
    #[must_use]
    pub fn csp(&self) -> &Csp2 {
        &self.csp
    }

    /// Satisfied weight of a full assignment.
    #[must_use]
    pub fn satisfied_weight(&self, assignment: &[usize]) -> u64 {
        self.csp
            .satisfied_flags(assignment)
            .iter()
            .zip(&self.weights)
            .filter_map(|(&sat, &w)| sat.then_some(w))
            .sum()
    }

    /// Ground truth histogram over total satisfied weight (brute force).
    ///
    /// # Panics
    ///
    /// Panics if `σ^n > 2^24`.
    #[must_use]
    pub fn reference_weight_histogram(&self) -> Vec<u64> {
        let sigma = self.csp.sigma();
        let n = self.csp.vars();
        let total = (sigma as u64).pow(n as u32);
        assert!(total <= 1 << 24, "brute force space too large");
        let mut hist = vec![0u64; self.total_weight() as usize + 1];
        let mut assignment = vec![0usize; n];
        for code in 0..total {
            let mut c = code;
            for slot in assignment.iter_mut() {
                *slot = (c % sigma as u64) as usize;
                c /= sigma as u64;
            }
            hist[self.satisfied_weight(&assignment) as usize] += 1;
        }
        hist
    }
}

/// The full weighted pipeline: histogram of assignments by total
/// satisfied weight, via `Σw + 1` Camelot weight-point runs.
///
/// # Errors
///
/// Propagates engine failures from the per-point runs.
pub fn enumerate_by_satisfied_weight(
    instance: &WeightedCsp2,
    engine: &Engine,
) -> Result<Vec<UBig>, CamelotError> {
    let degree = instance.total_weight() as usize;
    let mut values = Vec::with_capacity(degree + 1);
    for w0 in 0..=degree as u64 {
        let problem =
            CspWeightValue::with_weights(instance.csp.clone(), instance.weights.clone(), w0);
        values.push(IBig::from_parts(false, engine.run(&problem)?.output));
    }
    let coeffs = interpolate_integer(&values, 0);
    let mut hist: Vec<UBig> = coeffs
        .into_iter()
        .map(|c| {
            debug_assert!(!c.is_negative(), "histogram entries are counts");
            c.magnitude().clone()
        })
        .collect();
    hist.resize(degree + 1, UBig::zero());
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Constraint;

    fn engine() -> Engine {
        Engine::sequential(4, 2)
    }

    fn hist_u64(h: &[UBig]) -> Vec<u64> {
        h.iter().map(|v| v.to_u64().unwrap()).collect()
    }

    #[test]
    fn weighted_histogram_matches_brute_force() {
        for seed in 0..2 {
            let csp = Csp2::random(6, 2, 3, 50, seed);
            let instance = WeightedCsp2::new(csp, vec![1, 2, 3]);
            let expect = instance.reference_weight_histogram();
            let hist = enumerate_by_satisfied_weight(&instance, &engine()).unwrap();
            assert_eq!(hist_u64(&hist), expect, "seed {seed}");
        }
    }

    #[test]
    fn unit_weights_reduce_to_the_plain_histogram() {
        let csp = Csp2::random(6, 2, 4, 50, 9);
        let plain = crate::enumerate_by_satisfied(&csp, &engine()).unwrap();
        let instance = WeightedCsp2::new(csp, vec![1; 4]);
        let weighted = enumerate_by_satisfied_weight(&instance, &engine()).unwrap();
        assert_eq!(hist_u64(&plain), hist_u64(&weighted));
    }

    #[test]
    fn zero_weight_constraints_do_not_spread_the_histogram() {
        // One always-true constraint with weight 0: everything lands at 0.
        let allowed = vec![true; 4];
        let csp = Csp2::new(6, 2, vec![Constraint { u: 0, v: 3, allowed }]);
        let instance = WeightedCsp2::new(csp, vec![0]);
        let hist = enumerate_by_satisfied_weight(&instance, &engine()).unwrap();
        assert_eq!(hist_u64(&hist), vec![64]);
    }

    #[test]
    fn heavy_weight_shifts_the_mass() {
        // One always-true constraint with weight 5: everything at 5.
        let allowed = vec![true; 4];
        let csp = Csp2::new(6, 2, vec![Constraint { u: 1, v: 4, allowed }]);
        let instance = WeightedCsp2::new(csp, vec![5]);
        let hist = enumerate_by_satisfied_weight(&instance, &engine()).unwrap();
        assert_eq!(hist_u64(&hist), vec![0, 0, 0, 0, 0, 64]);
    }
}
