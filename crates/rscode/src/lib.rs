//! # camelot-rscode — nonsystematic Reed–Solomon codes and the Gao decoder
//!
//! §2.3 of *“How Proofs are Prepared at Camelot”*. A Camelot proof in
//! preparation **is** a Reed–Solomon codeword: the message is the
//! coefficient vector `(p_0, ..., p_d)` of the proof polynomial and the
//! codeword is the evaluation vector `(P(x_1), ..., P(x_e))` the compute
//! nodes produce. Decoding with the algorithm of Gao both recovers the
//! proof **and identifies the failed nodes** (the error locations), which
//! is what gives the framework its byzantine robustness.
//!
//! * [`RsCode::encode`] — message polynomial → codeword (what honest nodes
//!   jointly compute, each contributing a slice); one forward NTT for a
//!   [`RsCode::roots_of_unity`] code, subproduct-tree multipoint
//!   evaluation past a crossover length otherwise;
//! * [`RsCode::decode`] — received word (with erasures for crashed nodes
//!   and errors for corrupted ones) → proof polynomial + error locations,
//!   correct whenever `#errors <= (e' - d - 1) / 2` over the `e'` symbols
//!   actually received.
//!
//! ## Example
//!
//! ```
//! use camelot_ff::PrimeField;
//! use camelot_poly::Poly;
//! use camelot_rscode::RsCode;
//!
//! let f = PrimeField::new(97)?;
//! let proof = Poly::from_coeffs(&f, [7, 3, 1]); // degree d = 2
//! let code = RsCode::consecutive(&f, 11);       // e = 11 evaluations
//! let mut word: Vec<Option<u64>> = code.encode(&f, &proof).into_iter().map(Some).collect();
//! word[4] = Some(55);                            // a byzantine node lies...
//! word[9] = None;                                // ...and another crashes
//! let decoded = code.decode(&f, &word, 2).unwrap();
//! assert_eq!(decoded.poly, proof);
//! assert_eq!(decoded.error_positions, vec![4]);  // the liar is identified
//! # Ok::<(), camelot_ff::FieldError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use camelot_ff::PrimeField;
use camelot_poly::{
    cached_ntt_plan, div_rem_fast, eval_many_fast, interpolate_fast, vanishing_poly, PointTree,
    Poly, TREE_CACHE_CROSSOVER,
};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Punctured subproduct trees kept per code, most recently used first.
/// Crash-fault rounds present the same erasure set decode after decode,
/// so a handful of entries covers the working set; a churning set of
/// erasure patterns just degrades to rebuild-per-decode (puncturing,
/// not from scratch).
const PUNCTURED_CACHE_CAP: usize = 4;

/// A nonsystematic Reed–Solomon code: `e` distinct evaluation points in
/// `Z_q`.
#[derive(Debug)]
pub struct RsCode {
    points: Vec<u64>,
    /// `G_0(x) = Π_i (x - x_i)`, precomputed for decoding.
    g0: Poly,
    /// Set by [`RsCode::roots_of_unity`]: the points are the first `e`
    /// powers of a primitive `2^k`-th root of unity, stored as
    /// `(k, root)`, making encoding a single forward NTT.
    ntt: Option<(u32, u64)>,
    /// Cached subproduct tree over the full point set (with memoized
    /// node inverse series and Lagrange weights), built once past the
    /// crossover where the vanishing polynomial builds one anyway.
    /// `encode` and `decode`'s interpolation/re-encode reuse it instead
    /// of rebuilding an identical tree per call.
    tree: Option<Arc<PointTree>>,
    /// Full tree built on first *erasure* decode when `tree` is `None`
    /// (a full-orbit roots-of-unity code encodes and clean-decodes on
    /// NTTs alone, so it skips the eager build) — erasure subsets
    /// puncture this instead of rebuilding from scratch.
    erasure_tree: OnceLock<Arc<PointTree>>,
    /// Keyed LRU of punctured (erasure-subset) trees; see
    /// [`PUNCTURED_CACHE_CAP`].
    punctured: Mutex<Vec<(Vec<usize>, Arc<PointTree>)>>,
}

impl Clone for RsCode {
    fn clone(&self) -> Self {
        RsCode {
            points: self.points.clone(),
            g0: self.g0.clone(),
            ntt: self.ntt,
            tree: self.tree.clone(),
            erasure_tree: self.erasure_tree.clone(),
            punctured: Mutex::new(
                self.punctured.lock().map(|cache| cache.clone()).unwrap_or_default(),
            ),
        }
    }
}

impl PartialEq for RsCode {
    fn eq(&self, other: &Self) -> bool {
        // `g0` and the cached tree are derived from the points.
        self.points == other.points && self.ntt == other.ntt
    }
}

impl Eq for RsCode {}

/// Successful decode: the recovered message polynomial and the identified
/// corruption pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decoded {
    /// The recovered message polynomial (degree `<= degree_bound`).
    pub poly: Poly,
    /// Positions (indices into the code's point list) whose received
    /// symbol disagreed with the decoded codeword — the byzantine nodes'
    /// contributions.
    pub error_positions: Vec<usize>,
    /// Positions that were erased (crashed nodes); informational.
    pub erasure_positions: Vec<usize>,
}

/// Per-phase wall-clock breakdown of one [`RsCode::decode_profiled`]
/// call, for attributing round time to algebra phases (the engine's
/// `RunReport` aggregates these across deciding nodes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeProfile {
    /// Syndrome interpolation: building the erasure locator `G0`
    /// (punctured-tree root on the erasure path) and interpolating the
    /// received values into `G1`.
    pub interpolate: Duration,
    /// The partial extended Euclid on `(G0, G1)` — structured half-GCD
    /// past the crossover.
    pub xgcd: Duration,
    /// Root finding: dividing out the message and re-encoding it to
    /// identify the error positions.
    pub reencode: Duration,
}

impl DecodeProfile {
    /// Sum of the tracked phases (slightly under the caller's wall
    /// clock — symbol marshalling is untimed).
    #[must_use]
    pub fn total(&self) -> Duration {
        self.interpolate + self.xgcd + self.reencode
    }
}

/// Decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer than `degree_bound + 1` symbols were received.
    TooFewSymbols {
        /// Number of non-erased symbols available.
        received: usize,
        /// Number of symbols needed to pin down the message.
        needed: usize,
    },
    /// The Gao decoder asserted failure: the received word is further from
    /// every codeword than the unique-decoding radius.
    BeyondRadius,
    /// The received word length did not match the code length.
    LengthMismatch {
        /// Symbols supplied by the caller.
        got: usize,
        /// Code length `e`.
        expected: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooFewSymbols { received, needed } => {
                write!(f, "too few symbols: received {received}, need {needed}")
            }
            DecodeError::BeyondRadius => {
                write!(f, "received word is beyond the unique-decoding radius")
            }
            DecodeError::LengthMismatch { got, expected } => {
                write!(f, "received word has {got} symbols, code length is {expected}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl RsCode {
    /// Code over the consecutive points `0, 1, ..., e-1` — the evaluation
    /// schedule (1) of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `e > q` (points must be distinct field elements) or
    /// `e == 0`.
    #[must_use]
    pub fn consecutive(field: &PrimeField, e: usize) -> Self {
        assert!(e > 0, "code length must be positive");
        assert!(
            u64::try_from(e).is_ok_and(|e| e <= field.modulus()),
            "code length exceeds field size"
        );
        Self::with_points(field, (0..e as u64).collect())
    }

    /// Code over caller-chosen distinct points.
    ///
    /// # Panics
    ///
    /// Panics if the list is empty; repeated points are caught in debug
    /// builds.
    #[must_use]
    pub fn with_points(field: &PrimeField, points: Vec<u64>) -> Self {
        assert!(!points.is_empty(), "code needs at least one point");
        debug_assert!(
            {
                let mut s = points.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "evaluation points must be distinct"
        );
        let (g0, tree) = if points.len() >= TREE_CACHE_CROSSOVER {
            let tree = Arc::new(PointTree::new(field, &points));
            (tree.vanishing().clone(), Some(tree))
        } else {
            (vanishing_poly(field, &points), None)
        };
        RsCode {
            points,
            g0,
            ntt: None,
            tree,
            erasure_tree: OnceLock::new(),
            punctured: Mutex::new(Vec::new()),
        }
    }

    /// Code over the first `e` powers `ω^0, …, ω^{e-1}` of a primitive
    /// `2^k`-th root of unity `ω`, with `2^k` the smallest power of two
    /// `>= e` — the accelerated point schedule of the engine's
    /// NTT-friendly prime mode. Encoding is a single forward transform
    /// (`O(e log e)`), and when `e` fills the transform exactly, clean
    /// decoding interpolates with a single inverse transform.
    ///
    /// Returns `None` when the modulus has no root of the required order
    /// (`2^k` must divide `q - 1`).
    ///
    /// # Panics
    ///
    /// Panics if `e == 0`.
    #[must_use]
    pub fn roots_of_unity(field: &PrimeField, e: usize) -> Option<Self> {
        assert!(e > 0, "code length must be positive");
        let k = e.next_power_of_two().trailing_zeros();
        let plan = cached_ntt_plan(field, k)?;
        let w = plan.root();
        let mut points = Vec::with_capacity(e);
        let mut x = 1u64;
        for _ in 0..e {
            points.push(x);
            x = field.mul(x, w);
        }
        // The ω^i are distinct (ω has order 2^k >= e), and the vanishing
        // polynomial of the full orbit is x^{2^k} - 1. A partial orbit
        // interpolates through the general tree path, so cache the tree
        // for it; a full orbit runs on NTTs alone.
        let (g0, tree) = if e == plan.len() {
            let mut coeffs = vec![0u64; e + 1];
            coeffs[0] = field.neg(1);
            coeffs[e] = 1;
            (Poly::from_reduced(coeffs), None)
        } else if e >= TREE_CACHE_CROSSOVER {
            let tree = Arc::new(PointTree::new(field, &points));
            (tree.vanishing().clone(), Some(tree))
        } else {
            (vanishing_poly(field, &points), None)
        };
        Some(RsCode {
            points,
            g0,
            ntt: Some((k, w)),
            tree,
            erasure_tree: OnceLock::new(),
            punctured: Mutex::new(Vec::new()),
        })
    }

    /// Code length `e`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the code has no points (never constructible; kept for API
    /// completeness alongside [`RsCode::len`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The evaluation points.
    #[must_use]
    pub fn points(&self) -> &[u64] {
        &self.points
    }

    /// Maximum number of symbol errors correctable when all `e` symbols
    /// arrive, for messages of degree `<= degree_bound`:
    /// `(e - d - 1) / 2`.
    #[must_use]
    pub fn correction_radius(&self, degree_bound: usize) -> usize {
        self.points.len().saturating_sub(degree_bound + 1) / 2
    }

    /// Encodes a message polynomial into the codeword
    /// `(P(x_1), ..., P(x_e))`.
    ///
    /// For a [`RsCode::roots_of_unity`] code this is one forward NTT of
    /// the zero-padded coefficients (`O(e log e)`). Otherwise it routes
    /// through subproduct-tree multipoint evaluation past a crossover
    /// length and Horner per point below it — see
    /// [`camelot_poly::eval_many_fast`]. The output is bit-identical
    /// across all paths.
    ///
    /// # Panics
    ///
    /// Panics if `deg P >= e` (such a message is not uniquely decodable).
    #[must_use]
    pub fn encode(&self, field: &PrimeField, message: &Poly) -> Vec<u64> {
        assert!(
            message.degree().is_none_or(|d| d < self.points.len()),
            "message degree must be below the code length"
        );
        if let Some((k, _)) = self.ntt {
            if let Some(plan) = cached_ntt_plan(field, k) {
                let mut values = message.coeffs().to_vec();
                values.resize(plan.len(), 0);
                plan.forward(&mut values);
                values.truncate(self.points.len());
                return values;
            }
        }
        if let Some(tree) = &self.tree {
            if message.coeffs().len() <= self.points.len() {
                debug_assert_eq!(tree.modulus(), field.modulus(), "code built over another field");
                return tree.eval_many(message);
            }
        }
        eval_many_fast(field, message, &self.points)
    }

    /// Decodes a received word. `None` entries are erasures (symbols never
    /// received, e.g. from crashed nodes); `Some` entries may be corrupted.
    ///
    /// Succeeds whenever the number of *errors* among the `e'` received
    /// symbols is at most `(e' - degree_bound - 1) / 2` (Gao's unique
    /// decoding bound on the punctured code).
    ///
    /// # Errors
    ///
    /// [`DecodeError::LengthMismatch`] for a wrong-size word,
    /// [`DecodeError::TooFewSymbols`] if fewer than `degree_bound + 1`
    /// symbols survive, [`DecodeError::BeyondRadius`] if Gao's algorithm
    /// asserts failure.
    pub fn decode(
        &self,
        field: &PrimeField,
        received: &[Option<u64>],
        degree_bound: usize,
    ) -> Result<Decoded, DecodeError> {
        self.decode_profiled(field, received, degree_bound).map(|(decoded, _)| decoded)
    }

    /// [`RsCode::decode`] with a per-phase wall-clock breakdown
    /// alongside the result — same output, same errors; the profile is
    /// what the engine's `RunReport` aggregates to attribute round time
    /// to decode phases vs transport.
    ///
    /// # Errors
    ///
    /// Exactly those of [`RsCode::decode`].
    pub fn decode_profiled(
        &self,
        field: &PrimeField,
        received: &[Option<u64>],
        degree_bound: usize,
    ) -> Result<(Decoded, DecodeProfile), DecodeError> {
        let mut profile = DecodeProfile::default();
        if received.len() != self.points.len() {
            return Err(DecodeError::LengthMismatch {
                got: received.len(),
                expected: self.points.len(),
            });
        }
        let mut xs = Vec::with_capacity(received.len());
        let mut rs = Vec::with_capacity(received.len());
        let mut erasure_positions = Vec::new();
        for (i, sym) in received.iter().enumerate() {
            match sym {
                Some(v) => {
                    xs.push(self.points[i]);
                    rs.push(*v);
                }
                None => erasure_positions.push(i),
            }
        }
        // One bulk Barrett pass over the surviving symbols instead of a
        // reduction per symbol — bit-identical to `field.reduce` each.
        field.reduce_slice(&mut rs);
        let e_prime = xs.len();
        if e_prime < degree_bound + 1 {
            return Err(DecodeError::TooFewSymbols { received: e_prime, needed: degree_bound + 1 });
        }
        let interp_start = Instant::now();
        // G0 over the received points and a tree to interpolate with:
        // the precomputed full product when nothing was erased; the
        // cached punctured tree — whose root *is* the erasure locator —
        // otherwise. Only small codes (no tree kept) still rebuild the
        // subset product from scratch.
        let punctured = if erasure_positions.is_empty() {
            None
        } else {
            self.punctured_tree(field, &erasure_positions)
        };
        let g0 = if erasure_positions.is_empty() {
            self.g0.clone()
        } else if let Some(ptree) = &punctured {
            ptree.vanishing().clone()
        } else {
            vanishing_poly(field, &xs)
        };
        // G1 interpolates the received values: one inverse NTT when the
        // code fills a transform and nothing was erased; otherwise the
        // general interpolation (tree-based past the crossover, Newton
        // below it) on the cached full or punctured tree.
        let ntt_plan = match self.ntt {
            Some((k, _)) if e_prime == 1usize << k => cached_ntt_plan(field, k),
            _ => None,
        };
        let g1 = if let Some(plan) = ntt_plan {
            let mut values = rs.clone();
            plan.inverse(&mut values);
            Poly::from_reduced(values)
        } else if let Some(ptree) = &punctured {
            ptree.interpolate(&rs)
        } else if let (true, Some(tree)) = (erasure_positions.is_empty(), &self.tree) {
            // Full word received: interpolate on the cached tree (warm
            // Lagrange weights after the first decode).
            tree.interpolate(&rs)
        } else {
            let pts: Vec<(u64, u64)> = xs.iter().copied().zip(rs.iter().copied()).collect();
            interpolate_fast(field, &pts)
        };
        profile.interpolate = interp_start.elapsed();
        if g1.is_zero() {
            // All received symbols are zero: the unique closest codeword is
            // the zero polynomial (the Euclid below would divide by v = 0).
            let decoded =
                Decoded { poly: Poly::zero(), error_positions: Vec::new(), erasure_positions };
            return Ok((decoded, profile));
        }
        // Partial extended Euclid, stopping when deg g < (e' + d + 1)/2 —
        // the structured half-GCD past the crossover operand length.
        let stop = (e_prime + degree_bound + 2) / 2; // = ceil((e'+d+1)/2)
        let xgcd_start = Instant::now();
        let (_, v, g) = g0.partial_xgcd_fast(field, &g1, stop);
        profile.xgcd = xgcd_start.elapsed();
        if v.is_zero() {
            return Err(DecodeError::BeyondRadius);
        }
        let reencode_start = Instant::now();
        let (p, r) = div_rem_fast(field, &g, &v);
        if !r.is_zero() || p.degree().is_some_and(|d| d > degree_bound) {
            return Err(DecodeError::BeyondRadius);
        }
        // Identify error locations by re-encoding the decoded message
        // (one NTT for a roots-of-unity code, multipoint evaluation
        // otherwise).
        let reencoded = self.encode(field, &p);
        let mut error_positions = Vec::new();
        // `rs` already holds the reduced survivors in received order, so
        // the comparison needs no second reduction pass.
        let mut reduced = rs.iter();
        for (i, sym) in received.iter().enumerate() {
            if sym.is_some() {
                let v = reduced.next().expect("one reduced symbol per surviving position");
                if reencoded[i] != *v {
                    error_positions.push(i);
                }
            }
        }
        profile.reencode = reencode_start.elapsed();
        Ok((Decoded { poly: p, error_positions, erasure_positions }, profile))
    }

    /// The punctured subproduct tree for an erasure set: from the
    /// per-code LRU when the same crash pattern recurs, else built by
    /// puncturing the cached full tree (clean subtree nodes and their
    /// memoized inverse series are reused, not rebuilt). `None` below
    /// the tree-cache crossover, where the quadratic paths win anyway.
    fn punctured_tree(&self, field: &PrimeField, erased: &[usize]) -> Option<Arc<PointTree>> {
        let full: &Arc<PointTree> = if let Some(tree) = &self.tree {
            tree
        } else if self.points.len() >= TREE_CACHE_CROSSOVER {
            self.erasure_tree.get_or_init(|| Arc::new(PointTree::new(field, &self.points)))
        } else {
            return None;
        };
        let mut cache = self.punctured.lock().expect("punctured-tree cache poisoned");
        if let Some(pos) = cache.iter().position(|(key, _)| key == erased) {
            let entry = cache.remove(pos);
            let tree = Arc::clone(&entry.1);
            cache.insert(0, entry);
            return Some(tree);
        }
        let tree = Arc::new(full.punctured(erased));
        cache.insert(0, (erased.to_vec(), Arc::clone(&tree)));
        cache.truncate(PUNCTURED_CACHE_CAP);
        Some(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{RngLike, SplitMix64};

    fn f() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    fn random_message(field: &PrimeField, d: usize, rng: &mut SplitMix64) -> Poly {
        Poly::from_reduced(
            (0..=d)
                .map(|i| {
                    if i == d {
                        1 + rng.next_u64() % (field.modulus() - 1)
                    } else {
                        rng.next_u64() % field.modulus()
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn encode_then_decode_clean() {
        let field = f();
        let mut rng = SplitMix64::new(1);
        let msg = random_message(&field, 6, &mut rng);
        let code = RsCode::consecutive(&field, 20);
        let word: Vec<Option<u64>> = code.encode(&field, &msg).into_iter().map(Some).collect();
        let out = code.decode(&field, &word, 6).unwrap();
        assert_eq!(out.poly, msg);
        assert!(out.error_positions.is_empty());
        assert!(out.erasure_positions.is_empty());
    }

    #[test]
    fn corrects_up_to_radius_and_identifies_errors() {
        let field = f();
        let mut rng = SplitMix64::new(2);
        let d = 5;
        let e = 24;
        let code = RsCode::consecutive(&field, e);
        let radius = code.correction_radius(d);
        assert_eq!(radius, (e - d - 1) / 2);
        let msg = random_message(&field, d, &mut rng);
        let clean = code.encode(&field, &msg);
        for errors in 0..=radius {
            let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
            let mut expected = Vec::new();
            for k in 0..errors {
                let pos = (k * 5 + 1) % e;
                word[pos] = Some(field.add(clean[pos], 1 + k as u64));
                expected.push(pos);
            }
            expected.sort_unstable();
            expected.dedup();
            let out = code.decode(&field, &word, d).unwrap();
            assert_eq!(out.poly, msg, "errors = {errors}");
            assert_eq!(out.error_positions, expected);
        }
    }

    #[test]
    fn fails_beyond_radius() {
        let field = f();
        let mut rng = SplitMix64::new(3);
        let d = 4;
        let e = 13;
        let code = RsCode::consecutive(&field, e);
        let radius = code.correction_radius(d); // 4
        let msg = random_message(&field, d, &mut rng);
        let clean = code.encode(&field, &msg);
        let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        for pos in 0..radius + 2 {
            word[pos] = Some(field.add(clean[pos], 7));
        }
        match code.decode(&field, &word, d) {
            Err(DecodeError::BeyondRadius) => {}
            Ok(out) => assert_ne!(out.poly, msg, "if it decodes at all, it must miscorrect"),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn erasures_reduce_but_do_not_break_decoding() {
        let field = f();
        let mut rng = SplitMix64::new(4);
        let d = 5;
        let e = 30;
        let code = RsCode::consecutive(&field, e);
        let msg = random_message(&field, d, &mut rng);
        let clean = code.encode(&field, &msg);
        let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        // 8 crashes + 5 corruptions: e' = 22, radius (22-6)/2 = 8 >= 5.
        for pos in [0, 3, 6, 9, 12, 15, 18, 21] {
            word[pos] = None;
        }
        for pos in [1, 4, 7, 10, 13] {
            word[pos] = Some(field.add(clean[pos], 99));
        }
        let out = code.decode(&field, &word, d).unwrap();
        assert_eq!(out.poly, msg);
        assert_eq!(out.error_positions, vec![1, 4, 7, 10, 13]);
        assert_eq!(out.erasure_positions, vec![0, 3, 6, 9, 12, 15, 18, 21]);
    }

    #[test]
    fn too_few_symbols_is_reported() {
        let field = f();
        let code = RsCode::consecutive(&field, 8);
        let word: Vec<Option<u64>> = (0..8).map(|i| if i < 3 { Some(1) } else { None }).collect();
        assert_eq!(
            code.decode(&field, &word, 5),
            Err(DecodeError::TooFewSymbols { received: 3, needed: 6 })
        );
    }

    #[test]
    fn length_mismatch_is_reported() {
        let field = f();
        let code = RsCode::consecutive(&field, 8);
        assert_eq!(
            code.decode(&field, &[Some(1); 7], 2),
            Err(DecodeError::LengthMismatch { got: 7, expected: 8 })
        );
    }

    #[test]
    fn arbitrary_points_roundtrip() {
        let field = f();
        let mut rng = SplitMix64::new(5);
        let mut pts = std::collections::BTreeSet::new();
        while pts.len() < 16 {
            pts.insert(field.sample(&mut rng));
        }
        let code = RsCode::with_points(&field, pts.into_iter().collect());
        let msg = random_message(&field, 7, &mut rng);
        let mut word: Vec<Option<u64>> = code.encode(&field, &msg).into_iter().map(Some).collect();
        word[2] = Some(0);
        word[11] = Some(1);
        let out = code.decode(&field, &word, 7).unwrap();
        assert_eq!(out.poly, msg);
        assert_eq!(out.error_positions.len(), 2);
    }

    #[test]
    fn zero_message_decodes() {
        let field = f();
        let code = RsCode::consecutive(&field, 9);
        let word: Vec<Option<u64>> = vec![Some(0); 9];
        let out = code.decode(&field, &word, 3).unwrap();
        assert!(out.poly.is_zero());
    }

    /// `encode` must equal the Horner-per-point oracle on both sides of
    /// the multipoint-evaluation crossover, for an NTT-friendly prime and
    /// for one with no two-adic structure.
    #[test]
    fn encode_matches_horner_oracle_across_crossover() {
        let (ntt_q, _) = camelot_ff::ntt_prime(1 << 20, 12);
        for q in [ntt_q, 1_000_000_007] {
            let field = PrimeField::new(q).unwrap();
            let mut rng = SplitMix64::new(8);
            for e in [8usize, 63, 64, 100, 600] {
                let code = RsCode::consecutive(&field, e);
                let msg = random_message(&field, e - 1, &mut rng);
                let horner: Vec<u64> = code.points().iter().map(|&x| msg.eval(&field, x)).collect();
                assert_eq!(code.encode(&field, &msg), horner, "e = {e}, q = {q}");
            }
        }
    }

    /// Large-code decode (fast interpolation + fast re-encoding check)
    /// still corrects errors and erasures and identifies them exactly.
    #[test]
    fn large_code_decode_corrects_and_identifies() {
        let (q, _) = camelot_ff::ntt_prime(1 << 20, 12);
        let field = PrimeField::new(q).unwrap();
        let mut rng = SplitMix64::new(9);
        let d = 127;
        let e = 300;
        let code = RsCode::consecutive(&field, e);
        let msg = random_message(&field, d, &mut rng);
        let clean = code.encode(&field, &msg);
        let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        let mut expected_errors = std::collections::BTreeSet::new();
        let mut expected_erasures = std::collections::BTreeSet::new();
        // 40 erasures and 50 corruptions: e' = 260, radius (260-128)/2 = 66.
        while expected_erasures.len() < 40 {
            expected_erasures.insert((rng.next_u64() as usize) % e);
        }
        while expected_errors.len() < 50 {
            let pos = (rng.next_u64() as usize) % e;
            if !expected_erasures.contains(&pos) {
                expected_errors.insert(pos);
            }
        }
        for &pos in &expected_erasures {
            word[pos] = None;
        }
        for &pos in &expected_errors {
            word[pos] = Some(field.add(clean[pos], 1 + rng.next_u64() % 1000));
        }
        let out = code.decode(&field, &word, d).unwrap();
        assert_eq!(out.poly, msg);
        assert_eq!(out.error_positions, expected_errors.into_iter().collect::<Vec<_>>());
        assert_eq!(out.erasure_positions, expected_erasures.into_iter().collect::<Vec<_>>());
    }

    /// A roots-of-unity code's NTT encode must agree with the
    /// Horner-per-point oracle, for full and partial transform lengths.
    #[test]
    fn roots_of_unity_encode_matches_horner_oracle() {
        let (q, _) = camelot_ff::ntt_prime(1 << 20, 12);
        let field = PrimeField::new(q).unwrap();
        let mut rng = SplitMix64::new(10);
        for e in [16usize, 100, 256, 1000, 1024] {
            let code = RsCode::roots_of_unity(&field, e).expect("NTT-friendly prime");
            assert_eq!(code.len(), e);
            let msg = random_message(&field, e - 1, &mut rng);
            let horner: Vec<u64> = code.points().iter().map(|&x| msg.eval(&field, x)).collect();
            assert_eq!(code.encode(&field, &msg), horner, "e = {e}");
        }
        // An NTT-unfriendly modulus has no such code.
        let plain = PrimeField::new(1_000_000_007).unwrap();
        assert!(RsCode::roots_of_unity(&plain, 16).is_none());
    }

    /// Clean full-transform decode (single inverse NTT) and faulted
    /// decode (general path) both recover the message and the fault
    /// pattern on a roots-of-unity code.
    #[test]
    fn roots_of_unity_decode_roundtrips_and_identifies_faults() {
        let (q, _) = camelot_ff::ntt_prime(1 << 20, 12);
        let field = PrimeField::new(q).unwrap();
        let mut rng = SplitMix64::new(11);
        for e in [256usize, 300] {
            let d = 100;
            let code = RsCode::roots_of_unity(&field, e).expect("NTT-friendly prime");
            let msg = random_message(&field, d, &mut rng);
            let clean = code.encode(&field, &msg);
            // Clean word: exercises the inverse-NTT interpolation when
            // e == 256 fills the transform exactly.
            let word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
            let out = code.decode(&field, &word, d).unwrap();
            assert_eq!(out.poly, msg, "clean decode, e = {e}");
            assert!(out.error_positions.is_empty());
            // Errors + erasures: the general subset path.
            let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
            word[3] = None;
            word[77] = None;
            word[10] = Some(field.add(clean[10], 5));
            word[200] = Some(field.add(clean[200], 9));
            let out = code.decode(&field, &word, d).unwrap();
            assert_eq!(out.poly, msg, "faulted decode, e = {e}");
            assert_eq!(out.error_positions, vec![10, 200]);
            assert_eq!(out.erasure_positions, vec![3, 77]);
        }
    }

    /// Past the tree-cache crossover the code keeps its subproduct
    /// tree: repeated encodes and decodes (the `decode_at_all_nodes`
    /// pattern — every deciding node decodes the same code) must return
    /// identical results on warm caches, equal to a fresh code's.
    #[test]
    fn cached_tree_is_stable_across_repeated_encode_decode() {
        let field = f();
        let mut rng = SplitMix64::new(12);
        let d = 40;
        let e = 200; // >= TREE_CACHE_CROSSOVER: the tree is cached
        let code = RsCode::consecutive(&field, e);
        let msg = random_message(&field, d, &mut rng);
        let clean = code.encode(&field, &msg);
        assert_eq!(code.encode(&field, &msg), clean, "second encode on warm cache");
        let fresh = RsCode::consecutive(&field, e);
        assert_eq!(fresh.encode(&field, &msg), clean);
        assert_eq!(code, fresh);

        let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        word[7] = Some(field.add(clean[7], 3));
        word[100] = None;
        let first = code.decode(&field, &word, d).unwrap();
        let second = code.decode(&field, &word, d).unwrap();
        assert_eq!(first, second);
        assert_eq!(first.poly, msg);
        assert_eq!(first.error_positions, vec![7]);
        assert_eq!(first.erasure_positions, vec![100]);
    }

    /// Erasure decodes past the tree-cache crossover run on punctured
    /// trees: cold (first decode punctures the full tree), warm (the
    /// LRU returns the same tree), and a fresh code must all produce
    /// identical results — and the cloned code starts cold again.
    #[test]
    fn punctured_tree_cache_warm_and_cold_decodes_agree() {
        let field = f();
        let mut rng = SplitMix64::new(13);
        let d = 60;
        let e = 400; // >= TREE_CACHE_CROSSOVER: erasure decodes puncture
        let code = RsCode::consecutive(&field, e);
        let msg = random_message(&field, d, &mut rng);
        let clean = code.encode(&field, &msg);
        let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        let erasures = [3usize, 31, 32, 100, 101, 250, 399];
        for &pos in &erasures {
            word[pos] = None;
        }
        for pos in [7usize, 77, 200] {
            word[pos] = Some(field.add(clean[pos], 5));
        }
        let cold = code.decode(&field, &word, d).unwrap();
        let warm = code.decode(&field, &word, d).unwrap();
        assert_eq!(cold, warm, "warm punctured cache changed the result");
        assert_eq!(cold.poly, msg);
        assert_eq!(cold.error_positions, vec![7, 77, 200]);
        assert_eq!(cold.erasure_positions, erasures.to_vec());
        let fresh = RsCode::consecutive(&field, e).decode(&field, &word, d).unwrap();
        assert_eq!(cold, fresh, "cached-tree decode diverged from a fresh code");
        let cloned = code.clone().decode(&field, &word, d).unwrap();
        assert_eq!(cold, cloned, "cloned code (cold cache) diverged");
        // A second erasure pattern must not collide with the cached one.
        let mut other: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        for pos in [0usize, 1, 2] {
            other[pos] = None;
        }
        let out = code.decode(&field, &other, d).unwrap();
        assert_eq!(out.poly, msg);
        assert_eq!(out.erasure_positions, vec![0, 1, 2]);
    }

    /// A full-orbit roots-of-unity code keeps no eager tree; its first
    /// erasure decode must lazily build one, puncture it, and still
    /// agree with a fresh code on repeated (warm) decodes.
    #[test]
    fn roots_of_unity_erasure_decode_uses_lazy_tree() {
        let (q, _) = camelot_ff::ntt_prime(1 << 20, 12);
        let field = PrimeField::new(q).unwrap();
        let mut rng = SplitMix64::new(14);
        let d = 100;
        let e = 512; // full transform: no eager tree
        let code = RsCode::roots_of_unity(&field, e).expect("NTT-friendly prime");
        let msg = random_message(&field, d, &mut rng);
        let clean = code.encode(&field, &msg);
        let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        for pos in [5usize, 64, 300] {
            word[pos] = None;
        }
        word[9] = Some(field.add(clean[9], 1));
        let cold = code.decode(&field, &word, d).unwrap();
        let warm = code.decode(&field, &word, d).unwrap();
        assert_eq!(cold, warm);
        assert_eq!(cold.poly, msg);
        assert_eq!(cold.error_positions, vec![9]);
        assert_eq!(cold.erasure_positions, vec![5, 64, 300]);
        let fresh = RsCode::roots_of_unity(&field, e).unwrap().decode(&field, &word, d).unwrap();
        assert_eq!(cold, fresh);
    }

    /// `decode_profiled` returns exactly what `decode` returns, with a
    /// breakdown whose phases are populated on the paths that ran.
    #[test]
    fn decode_profiled_matches_decode_and_times_phases() {
        let field = f();
        let mut rng = SplitMix64::new(15);
        let d = 40;
        let e = 200;
        let code = RsCode::consecutive(&field, e);
        let msg = random_message(&field, d, &mut rng);
        let clean = code.encode(&field, &msg);
        let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        word[3] = Some(field.add(clean[3], 2));
        word[50] = None;
        let (decoded, profile) = code.decode_profiled(&field, &word, d).unwrap();
        assert_eq!(decoded, code.decode(&field, &word, d).unwrap());
        assert!(profile.total() >= profile.xgcd);
        // The zero word short-circuits before the Euclid phase.
        let zeros: Vec<Option<u64>> = vec![Some(0); e];
        let (z, zp) = code.decode_profiled(&field, &zeros, d).unwrap();
        assert!(z.poly.is_zero());
        assert_eq!(zp.xgcd, std::time::Duration::ZERO);
    }

    #[test]
    fn random_error_patterns_within_radius_always_decode() {
        let field = f();
        let mut rng = SplitMix64::new(6);
        for trial in 0..40 {
            let d = 1 + (rng.next_u64() % 8) as usize;
            let e = d + 3 + (rng.next_u64() % 20) as usize;
            let code = RsCode::consecutive(&field, e);
            let radius = code.correction_radius(d);
            let errors = (rng.next_u64() as usize) % (radius + 1);
            let msg = random_message(&field, d, &mut rng);
            let clean = code.encode(&field, &msg);
            let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
            let mut corrupted = std::collections::BTreeSet::new();
            while corrupted.len() < errors {
                corrupted.insert((rng.next_u64() as usize) % e);
            }
            for &pos in &corrupted {
                word[pos] = Some(field.add(clean[pos], 1 + rng.next_u64() % 1000));
            }
            let out = code.decode(&field, &word, d).unwrap();
            assert_eq!(out.poly, msg, "trial {trial}: d={d} e={e} errors={errors}");
            assert_eq!(out.error_positions, corrupted.into_iter().collect::<Vec<_>>());
        }
    }
}
