//! # camelot-linalg — matrices, tensors, and Yates transforms
//!
//! The linear-algebra substrate of *“How Proofs are Prepared at Camelot”*:
//!
//! * [`Matrix`] — dense matrices over `Z_q` with naive and Strassen
//!   multiplication (our stand-in for fast matrix multiplication, giving
//!   `ω = log2 7 ≈ 2.807`);
//! * [`MatMulTensor`] — trilinear decompositions of `⟨n,n,n⟩` (identity
//!   (10) of the paper) with Kronecker-power coefficient access, the
//!   backbone of the `(6 2)`-linear-form circuit (§4) and the sparse
//!   triangle algorithms (§6);
//! * [`yates`], [`SplitSparseYates`] — Yates's algorithm (§3.1), its
//!   split/sparse variant (§3.2), and the polynomial extension (§3.3) that
//!   turns the split into a Camelot proof polynomial.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod matrix;
mod tensor;
mod yates;

pub use matrix::Matrix;
pub use tensor::MatMulTensor;
pub use yates::{kronecker_apply_naive, yates, SmallMatrix, SparseVec, SplitSparseYates};
