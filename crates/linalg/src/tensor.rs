//! Trilinear decompositions of the matrix-multiplication tensor.
//!
//! Identity (10) of the paper: ring elements `α_{de}(r)`, `β_{ef}(r)`,
//! `γ_{df}(r)` for `r = 1..R` satisfying
//!
//! ```text
//! Σ_{d,e,f} u_{de} v_{ef} w_{df}
//!   = Σ_r (Σ_{d,e'} α_{de'}(r) u_{de'})
//!         (Σ_{e,f'} β_{ef'}(r) v_{ef'})
//!         (Σ_{d',f} γ_{d'f}(r) w_{d'f}) .
//! ```
//!
//! Any bilinear algorithm for `⟨n0,n0,n0⟩` of rank `R0` yields such a
//! decomposition, and Kronecker powers give `⟨n0^t, n0^t, n0^t⟩` with rank
//! `R0^t` — this closure property (§5.3, §6.2) is what lets the per-node
//! evaluation algorithms run Yates's algorithm over the coefficient
//! matrices. We ship the naive rank-`n0³` decomposition and Strassen's
//! rank-7 `⟨2,2,2⟩` (so `ω = log2 7`).

use crate::yates::SmallMatrix;

/// A rank-`R0` trilinear decomposition of the `⟨n0, n0, n0⟩` matrix
/// multiplication tensor with integer coefficients.
///
/// Coefficient layout: `alpha0` is an `n0² × R0` integer matrix whose row
/// index is the pair `(d, e)` flattened as `d * n0 + e` and whose column
/// index is `r` — exactly the orientation Yates's algorithm consumes in
/// §5.3 of the paper. Likewise `beta0` for `(e, f)` and `gamma0` for
/// `(d, f)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatMulTensor {
    n0: usize,
    r0: usize,
    alpha0: SmallMatrix,
    beta0: SmallMatrix,
    gamma0: SmallMatrix,
}

impl MatMulTensor {
    /// The trivial rank-`n0³` decomposition (one term per scalar product).
    ///
    /// # Panics
    ///
    /// Panics if `n0 == 0`.
    #[must_use]
    pub fn naive(n0: usize) -> Self {
        assert!(n0 > 0, "tensor order must be positive");
        let r0 = n0 * n0 * n0;
        let mut alpha = vec![0i64; n0 * n0 * r0];
        let mut beta = vec![0i64; n0 * n0 * r0];
        let mut gamma = vec![0i64; n0 * n0 * r0];
        let mut r = 0;
        for d in 0..n0 {
            for e in 0..n0 {
                for f in 0..n0 {
                    alpha[(d * n0 + e) * r0 + r] = 1;
                    beta[(e * n0 + f) * r0 + r] = 1;
                    gamma[(d * n0 + f) * r0 + r] = 1;
                    r += 1;
                }
            }
        }
        MatMulTensor {
            n0,
            r0,
            alpha0: SmallMatrix::new(n0 * n0, r0, alpha),
            beta0: SmallMatrix::new(n0 * n0, r0, beta),
            gamma0: SmallMatrix::new(n0 * n0, r0, gamma),
        }
    }

    /// Strassen's rank-7 decomposition of `⟨2, 2, 2⟩`.
    ///
    /// With `M_r = (Σ α_{de}(r) u_{de})(Σ β_{ef}(r) v_{ef})` the products
    /// are Strassen's `M1..M7`, and `gamma0` encodes how each output entry
    /// `c_{df}` combines them.
    #[must_use]
    pub fn strassen() -> Self {
        // Index pairs flattened as (row, col) -> row * 2 + col, 1-based
        // Strassen in comments, 0-based in code.
        // M1 = (A00 + A11)(B00 + B11)
        // M2 = (A10 + A11) B00
        // M3 = A00 (B01 - B11)
        // M4 = A11 (B10 - B00)
        // M5 = (A00 + A01) B11
        // M6 = (A10 - A00)(B00 + B01)
        // M7 = (A01 - A11)(B10 + B11)
        // C00 = M1 + M4 - M5 + M7
        // C01 = M3 + M5
        // C10 = M2 + M4
        // C11 = M1 - M2 + M3 + M6
        let r0 = 7;
        let mut alpha = vec![0i64; 4 * r0];
        let mut beta = vec![0i64; 4 * r0];
        let mut gamma = vec![0i64; 4 * r0];
        let set = |m: &mut Vec<i64>, pair: usize, r: usize, v: i64| m[pair * r0 + r] = v;
        // alpha: rows (d,e) of A
        set(&mut alpha, 0b00, 0, 1);
        set(&mut alpha, 0b11, 0, 1);
        set(&mut alpha, 0b10, 1, 1);
        set(&mut alpha, 0b11, 1, 1);
        set(&mut alpha, 0b00, 2, 1);
        set(&mut alpha, 0b11, 3, 1);
        set(&mut alpha, 0b00, 4, 1);
        set(&mut alpha, 0b01, 4, 1);
        set(&mut alpha, 0b10, 5, 1);
        set(&mut alpha, 0b00, 5, -1);
        set(&mut alpha, 0b01, 6, 1);
        set(&mut alpha, 0b11, 6, -1);
        // beta: rows (e,f) of B
        set(&mut beta, 0b00, 0, 1);
        set(&mut beta, 0b11, 0, 1);
        set(&mut beta, 0b00, 1, 1);
        set(&mut beta, 0b01, 2, 1);
        set(&mut beta, 0b11, 2, -1);
        set(&mut beta, 0b10, 3, 1);
        set(&mut beta, 0b00, 3, -1);
        set(&mut beta, 0b11, 4, 1);
        set(&mut beta, 0b00, 5, 1);
        set(&mut beta, 0b01, 5, 1);
        set(&mut beta, 0b10, 6, 1);
        set(&mut beta, 0b11, 6, 1);
        // gamma: rows (d,f) of C
        set(&mut gamma, 0b00, 0, 1);
        set(&mut gamma, 0b00, 3, 1);
        set(&mut gamma, 0b00, 4, -1);
        set(&mut gamma, 0b00, 6, 1);
        set(&mut gamma, 0b01, 2, 1);
        set(&mut gamma, 0b01, 4, 1);
        set(&mut gamma, 0b10, 1, 1);
        set(&mut gamma, 0b10, 3, 1);
        set(&mut gamma, 0b11, 0, 1);
        set(&mut gamma, 0b11, 1, -1);
        set(&mut gamma, 0b11, 2, 1);
        set(&mut gamma, 0b11, 5, 1);
        MatMulTensor {
            n0: 2,
            r0,
            alpha0: SmallMatrix::new(4, r0, alpha),
            beta0: SmallMatrix::new(4, r0, beta),
            gamma0: SmallMatrix::new(4, r0, gamma),
        }
    }

    /// Base matrix dimension `n0`.
    #[must_use]
    pub fn n0(&self) -> usize {
        self.n0
    }

    /// Base rank `R0`.
    #[must_use]
    pub fn r0(&self) -> usize {
        self.r0
    }

    /// The `n0² × R0` coefficient matrix for the `u` operand.
    #[must_use]
    pub fn alpha0(&self) -> &SmallMatrix {
        &self.alpha0
    }

    /// The `n0² × R0` coefficient matrix for the `v` operand.
    #[must_use]
    pub fn beta0(&self) -> &SmallMatrix {
        &self.beta0
    }

    /// The `n0² × R0` coefficient matrix for the `w` operand.
    #[must_use]
    pub fn gamma0(&self) -> &SmallMatrix {
        &self.gamma0
    }

    /// Effective matrix-multiplication exponent `log_{n0} R0` of this
    /// decomposition (2.807… for Strassen, 3 for naive).
    #[must_use]
    pub fn omega(&self) -> f64 {
        (self.r0 as f64).ln() / (self.n0 as f64).ln()
    }

    /// Kronecker coefficient `α_{de}(r)` for the `t`-fold power, where
    /// `d, e ∈ [n0^t]` and `r ∈ [R0^t]` (0-based), as a plain integer.
    ///
    /// Digits of `d`, `e` in base `n0` and of `r` in base `R0` are paired
    /// most-significant-first; the coefficient is the product of base
    /// coefficients (equation (17) of the paper).
    #[must_use]
    pub fn alpha_power(&self, t: usize, d: usize, e: usize, r: usize) -> i64 {
        self.coeff_power(&self.alpha0, t, d, e, r)
    }

    /// Kronecker coefficient `β_{ef}(r)` for the `t`-fold power.
    #[must_use]
    pub fn beta_power(&self, t: usize, e: usize, f: usize, r: usize) -> i64 {
        self.coeff_power(&self.beta0, t, e, f, r)
    }

    /// Kronecker coefficient `γ_{df}(r)` for the `t`-fold power.
    #[must_use]
    pub fn gamma_power(&self, t: usize, d: usize, f: usize, r: usize) -> i64 {
        self.coeff_power(&self.gamma0, t, d, f, r)
    }

    fn coeff_power(
        &self,
        m: &SmallMatrix,
        t: usize,
        mut a: usize,
        mut b: usize,
        mut r: usize,
    ) -> i64 {
        let mut prod = 1i64;
        for _ in 0..t {
            let (ad, bd, rd) = (a % self.n0, b % self.n0, r % self.r0);
            prod *= m.get(ad * self.n0 + bd, rd);
            a /= self.n0;
            b /= self.n0;
            r /= self.r0;
        }
        debug_assert_eq!(a, 0, "index out of range for power {t}");
        debug_assert_eq!(b, 0, "index out of range for power {t}");
        debug_assert_eq!(r, 0, "rank index out of range for power {t}");
        prod
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{PrimeField, RngLike, SplitMix64};

    /// Checks identity (10) exhaustively over random `u, v, w`.
    fn check_identity(tensor: &MatMulTensor, t: usize, seed: u64) {
        let field = PrimeField::new(1_000_000_007).unwrap();
        let n = tensor.n0().pow(t as u32);
        let r_total = tensor.r0().pow(t as u32);
        let mut rng = SplitMix64::new(seed);
        let mut sample =
            || (0..n * n).map(|_| rng.next_u64() % field.modulus()).collect::<Vec<u64>>();
        let (u, v, w) = (sample(), sample(), sample());
        // Left side: Σ u_de v_ef w_df.
        let mut lhs = 0u64;
        for d in 0..n {
            for e in 0..n {
                for f_ in 0..n {
                    let p = field.mul(field.mul(u[d * n + e], v[e * n + f_]), w[d * n + f_]);
                    lhs = field.add(lhs, p);
                }
            }
        }
        // Right side: Σ_r A_r B_r C_r.
        let mut rhs = 0u64;
        for r in 0..r_total {
            let mut ar = 0u64;
            let mut br = 0u64;
            let mut cr = 0u64;
            for a in 0..n {
                for b in 0..n {
                    let ca = field.from_i64(tensor.alpha_power(t, a, b, r));
                    let cb = field.from_i64(tensor.beta_power(t, a, b, r));
                    let cc = field.from_i64(tensor.gamma_power(t, a, b, r));
                    ar = field.mul_add(ar, ca, u[a * n + b]);
                    br = field.mul_add(br, cb, v[a * n + b]);
                    cr = field.mul_add(cr, cc, w[a * n + b]);
                }
            }
            rhs = field.add(rhs, field.mul(field.mul(ar, br), cr));
        }
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn naive_tensor_identity_n2() {
        check_identity(&MatMulTensor::naive(2), 1, 1);
    }

    #[test]
    fn naive_tensor_identity_n3() {
        check_identity(&MatMulTensor::naive(3), 1, 2);
    }

    #[test]
    fn strassen_identity_base() {
        check_identity(&MatMulTensor::strassen(), 1, 3);
    }

    #[test]
    fn strassen_identity_square() {
        check_identity(&MatMulTensor::strassen(), 2, 4);
    }

    #[test]
    fn strassen_identity_cube() {
        check_identity(&MatMulTensor::strassen(), 3, 5);
    }

    #[test]
    fn kronecker_power_of_naive() {
        check_identity(&MatMulTensor::naive(2), 2, 6);
    }

    #[test]
    fn omega_values() {
        assert!((MatMulTensor::naive(4).omega() - 3.0).abs() < 1e-12);
        let w = MatMulTensor::strassen().omega();
        assert!((w - 2.807).abs() < 0.001, "Strassen omega = {w}");
    }

    #[test]
    fn strassen_multiplies_two_by_two() {
        // Direct check: use the decomposition as a bilinear algorithm.
        let field = PrimeField::new(97).unwrap();
        let tensor = MatMulTensor::strassen();
        let a = [3u64, 5, 7, 11];
        let b = [13u64, 17, 19, 23];
        let mut c = [0u64; 4];
        for r in 0..7 {
            let mut ar = 0u64;
            let mut br = 0u64;
            for p in 0..4 {
                ar = field.add(ar, field.mul(field.from_i64(tensor.alpha0().get(p, r)), a[p]));
                br = field.add(br, field.mul(field.from_i64(tensor.beta0().get(p, r)), b[p]));
            }
            let m = field.mul(ar, br);
            for (p, cp) in c.iter_mut().enumerate() {
                let g = field.from_i64(tensor.gamma0().get(p, r));
                *cp = field.add(*cp, field.mul(g, m));
            }
        }
        // Expected: [[3,5],[7,11]] * [[13,17],[19,23]] = [[134,166],[300,372]]
        assert_eq!(c, [134 % 97, 166 % 97, 300 % 97, 372 % 97]);
    }
}
