//! Yates's algorithm and its split/sparse and polynomial extensions (§3).
//!
//! Yates's algorithm multiplies an `s^k`-vector by the `t^k × s^k`
//! Kronecker power `A^{⊗k}` of a small `t × s` matrix in `O((s^{k+1} +
//! t^{k+1}) k)` operations. The paper's §3.2 *split/sparse* variant
//! accepts a sparse input (support `D`) and produces the output in
//! `~t^{k-ℓ}` independent parts of `t^ℓ` entries each — the source of
//! parallelism in the triangle algorithms — and §3.3 replaces the outer
//! part index by a polynomial indeterminate `z`, which is what turns the
//! parallel algorithm into a Camelot proof polynomial.

use camelot_ff::PrimeField;
use camelot_poly::lagrange_basis_at;

/// A small dense integer matrix (the Kronecker factor `A`).
///
/// Entries are plain `i64` so that a single description serves every prime
/// modulus; they are embedded into a field on use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SmallMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<i64>,
}

impl SmallMatrix {
    /// Creates from row-major entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != rows * cols`.
    #[must_use]
    pub fn new(rows: usize, cols: usize, entries: Vec<i64>) -> Self {
        assert_eq!(entries.len(), rows * cols, "entry count must match shape");
        SmallMatrix { rows, cols, entries }
    }

    /// Number of rows (`t`, the output radix).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`s`, the input radix).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> i64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.entries[i * self.cols + j]
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> SmallMatrix {
        let mut entries = vec![0i64; self.entries.len()];
        for i in 0..self.rows {
            for j in 0..self.cols {
                entries[j * self.rows + i] = self.entries[i * self.cols + j];
            }
        }
        SmallMatrix { rows: self.cols, cols: self.rows, entries }
    }

    /// Entries embedded into a field.
    #[must_use]
    pub fn to_field(&self, field: &PrimeField) -> Vec<u64> {
        self.entries.iter().map(|&v| field.from_i64(v)).collect()
    }
}

/// Classical Yates: computes `y = A^{⊗k} x` (§3.1).
///
/// Indices are mixed-radix with the **first** digit most significant:
/// `x` has length `s^k`, `y` has length `t^k`, and
/// `y_{i_1 i_2 … i_k} = Σ_j Π_ℓ a_{i_ℓ j_ℓ} x_{j_1 j_2 … j_k}`.
///
/// # Panics
///
/// Panics if `x.len() != s^k`.
#[must_use]
pub fn yates(field: &PrimeField, a: &SmallMatrix, k: usize, x: &[u64]) -> Vec<u64> {
    let (t, s) = (a.rows(), a.cols());
    let expected = s.checked_pow(k as u32).expect("s^k overflows usize");
    assert_eq!(x.len(), expected, "input length must be s^k");
    let af = a.to_field(field);
    let mut cur = x.to_vec();
    // After `level` steps the shape is t^level × s^(k-level); each step
    // transforms the axis immediately after the already-processed prefix.
    for level in 0..k {
        let outer = t.pow(level as u32);
        let inner = s.pow((k - level - 1) as u32);
        let mut next = vec![0u64; outer * t * inner];
        for o in 0..outer {
            for j in 0..s {
                let src_base = (o * s + j) * inner;
                for i in 0..t {
                    let coeff = af[i * s + j];
                    if coeff == 0 {
                        continue;
                    }
                    let dst_base = (o * t + i) * inner;
                    for w in 0..inner {
                        next[dst_base + w] =
                            field.mul_add(next[dst_base + w], coeff, cur[src_base + w]);
                    }
                }
            }
        }
        cur = next;
    }
    cur
}

/// Naive reference for `A^{⊗k} x` in `O(s^k t^k k)` (tests/baselines).
#[must_use]
pub fn kronecker_apply_naive(field: &PrimeField, a: &SmallMatrix, k: usize, x: &[u64]) -> Vec<u64> {
    let (t, s) = (a.rows(), a.cols());
    let in_len = s.pow(k as u32);
    let out_len = t.pow(k as u32);
    assert_eq!(x.len(), in_len, "input length must be s^k");
    let af = a.to_field(field);
    let mut y = vec![0u64; out_len];
    for (i, yi) in y.iter_mut().enumerate() {
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0 {
                continue;
            }
            // Product of base-matrix entries over paired digits.
            let (mut ii, mut jj) = (i, j);
            let mut coeff = 1u64;
            for _ in 0..k {
                coeff = field.mul(coeff, af[(ii % t) * s + (jj % s)]);
                ii /= t;
                jj /= s;
            }
            *yi = field.mul_add(*yi, coeff, xj);
        }
    }
    y
}

/// A sparse input vector: `(index, value)` pairs with distinct indices in
/// `[0, s^k)`.
pub type SparseVec = Vec<(usize, u64)>;

/// The split/sparse variant of Yates's algorithm (§3.2).
///
/// For `y = A^{⊗k} x` with sparse `x`, produces `y` in `t^{k-ℓ}`
/// independent parts: part `o` (for `o ∈ [0, t^{k-ℓ})`) is the slice of
/// outputs whose **trailing** `k-ℓ` digits equal `o`, i.e.
/// `part(o)[p] = y[p * t^{k-ℓ} + o]` for `p ∈ [0, t^ℓ)`.
///
/// Each part costs `O(t^{ℓ+1} ℓ + |D|(k-ℓ))` operations and `O(t^ℓ + |D|)`
/// space, and the parts can be computed by different nodes in parallel.
#[derive(Clone, Debug)]
pub struct SplitSparseYates {
    a: SmallMatrix,
    k: usize,
    ell: usize,
}

impl SplitSparseYates {
    /// Creates the splitter; `ell` is the number of leading digits handled
    /// by the inner classical Yates.
    ///
    /// # Panics
    ///
    /// Panics if `ell > k`.
    #[must_use]
    pub fn new(a: SmallMatrix, k: usize, ell: usize) -> Self {
        assert!(ell <= k, "inner digit count cannot exceed k");
        SplitSparseYates { a, k, ell }
    }

    /// Chooses `ℓ = ceil(log_t |D|)` as in the paper, so each part has at
    /// least `|D|` entries.
    #[must_use]
    pub fn with_support_size(a: SmallMatrix, k: usize, support: usize) -> Self {
        let t = a.rows().max(2);
        let mut ell = 0usize;
        let mut cap = 1usize;
        while cap < support && ell < k {
            cap *= t;
            ell += 1;
        }
        Self::new(a, k, ell)
    }

    /// The inner digit count `ℓ`.
    #[must_use]
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// Number of independent parts `t^{k-ℓ}`.
    #[must_use]
    pub fn part_count(&self) -> usize {
        self.a.rows().pow((self.k - self.ell) as u32)
    }

    /// Entries per part, `t^ℓ`.
    #[must_use]
    pub fn part_len(&self) -> usize {
        self.a.rows().pow(self.ell as u32)
    }

    /// Computes part `outer` of the output (see the type-level docs for
    /// the indexing convention).
    ///
    /// # Panics
    ///
    /// Panics if `outer >= part_count()` or a sparse index is out of range.
    #[must_use]
    pub fn part(&self, field: &PrimeField, sparse: &[(usize, u64)], outer: usize) -> Vec<u64> {
        assert!(outer < self.part_count(), "part index out of range");
        let (t, s) = (self.a.rows(), self.a.cols());
        let af = self.a.to_field(field);
        let tail = self.k - self.ell;
        let s_inner = s.pow(self.ell as u32);
        let s_total = s.pow(self.k as u32);
        // Project the sparse input onto its leading ℓ digits, weighting by
        // the trailing-digit coefficients against `outer` (steps (a)-(b)).
        let mut x_inner = vec![0u64; s_inner];
        for &(j, v) in sparse {
            assert!(j < s_total, "sparse index out of range");
            let j_head = j / s.pow(tail as u32);
            let mut j_tail = j % s.pow(tail as u32);
            let mut o = outer;
            let mut coeff = 1u64;
            for _ in 0..tail {
                coeff = field.mul(coeff, af[(o % t) * s + (j_tail % s)]);
                o /= t;
                j_tail /= s;
            }
            if coeff != 0 {
                x_inner[j_head] = field.mul_add(x_inner[j_head], coeff, v);
            }
        }
        // Step (c): classical Yates on the ℓ leading digits.
        yates(field, &self.a, self.ell, &x_inner)
    }

    /// Convenience: assembles the full output from all parts (tests and
    /// sequential baselines; `O(t^k)` like the dense algorithm).
    #[must_use]
    pub fn full_output(&self, field: &PrimeField, sparse: &[(usize, u64)]) -> Vec<u64> {
        let parts: Vec<Vec<u64>> =
            (0..self.part_count()).map(|o| self.part(field, sparse, o)).collect();
        let mut y = vec![0u64; self.part_len() * self.part_count()];
        let stride = self.part_count();
        for (o, part) in parts.iter().enumerate() {
            for (p, &v) in part.iter().enumerate() {
                y[p * stride + o] = v;
            }
        }
        y
    }

    /// The polynomial extension (§3.3): evaluates the part polynomials
    /// `u^{(ℓ)}_{i_1…i_ℓ}(z)` at `z = z0`.
    ///
    /// For `z0 ∈ {1, …, t^{k-ℓ}}` this returns exactly
    /// `part(z0 - 1)`; each component is a polynomial in `z` of degree at
    /// most `t^{k-ℓ} - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `t^{k-ℓ} >= q` (the Lagrange nodes must be distinct).
    #[must_use]
    pub fn part_poly_eval(&self, field: &PrimeField, sparse: &[(usize, u64)], z0: u64) -> Vec<u64> {
        let (t, s) = (self.a.rows(), self.a.cols());
        let tail = self.k - self.ell;
        let outer_count = t.pow(tail as u32);
        // Φ_i(z0) over nodes 1..t^{k-ℓ}.
        let phi = lagrange_basis_at(field, outer_count, z0);
        // α_{j_tail}(z0) for every trailing pattern: the transposed
        // Kronecker power applied to Φ (equation (8) of the paper, computed
        // with classical Yates).
        let alpha_tail = yates(field, &self.a.transpose(), tail, &phi);
        debug_assert_eq!(alpha_tail.len(), s.pow(tail as u32));
        let s_inner = s.pow(self.ell as u32);
        let tail_size = s.pow(tail as u32);
        let mut x_inner = vec![0u64; s_inner];
        for &(j, v) in sparse {
            let (j_head, j_tail) = (j / tail_size, j % tail_size);
            let coeff = alpha_tail[j_tail];
            if coeff != 0 {
                x_inner[j_head] = field.mul_add(x_inner[j_head], coeff, v);
            }
        }
        yates(field, &self.a, self.ell, &x_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{RngLike, SplitMix64};

    fn f() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    fn zeta_matrix() -> SmallMatrix {
        // Subset-zeta kernel [[1,0],[1,1]].
        SmallMatrix::new(2, 2, vec![1, 0, 1, 1])
    }

    fn random_small(rows: usize, cols: usize, rng: &mut SplitMix64) -> SmallMatrix {
        SmallMatrix::new(
            rows,
            cols,
            (0..rows * cols).map(|_| (rng.next_u64() % 7) as i64 - 3).collect(),
        )
    }

    #[test]
    fn yates_matches_naive_square() {
        let field = f();
        let mut rng = SplitMix64::new(1);
        for k in 1..=4 {
            let a = random_small(3, 3, &mut rng);
            let x: Vec<u64> =
                (0..3usize.pow(k)).map(|_| rng.next_u64() % field.modulus()).collect();
            assert_eq!(
                yates(&field, &a, k as usize, &x),
                kronecker_apply_naive(&field, &a, k as usize, &x),
                "k = {k}"
            );
        }
    }

    #[test]
    fn yates_matches_naive_rectangular() {
        let field = f();
        let mut rng = SplitMix64::new(2);
        for (t, s, k) in [(2usize, 3usize, 3usize), (4, 2, 3), (7, 4, 2), (1, 3, 3)] {
            let a = random_small(t, s, &mut rng);
            let x: Vec<u64> =
                (0..s.pow(k as u32)).map(|_| rng.next_u64() % field.modulus()).collect();
            assert_eq!(
                yates(&field, &a, k, &x),
                kronecker_apply_naive(&field, &a, k, &x),
                "t={t} s={s} k={k}"
            );
        }
    }

    #[test]
    fn yates_zeta_transform_is_subset_sum() {
        // A^{⊗k} with the zeta kernel computes g(Y) = Σ_{X ⊆ Y} x(X),
        // with set bits read most-significant-digit-first.
        let field = f();
        let k = 5;
        let mut rng = SplitMix64::new(3);
        let x: Vec<u64> = (0..1 << k).map(|_| rng.next_u64() % 1000).collect();
        let y = yates(&field, &zeta_matrix(), k, &x);
        for (mask, &yv) in y.iter().enumerate() {
            let mut expect = 0u64;
            let mut sub = mask;
            loop {
                expect = field.add(expect, x[sub]);
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & mask;
            }
            assert_eq!(yv, expect, "mask {mask:b}");
        }
    }

    #[test]
    fn split_sparse_matches_dense_all_parts() {
        let field = f();
        let mut rng = SplitMix64::new(4);
        for (t, s, k, ell) in [
            (2usize, 2usize, 5usize, 2usize),
            (3, 2, 4, 1),
            (7, 4, 3, 2),
            (2, 2, 4, 0),
            (2, 2, 4, 4),
        ] {
            let a = random_small(t, s, &mut rng);
            let n_in = s.pow(k as u32);
            // sparse input with ~25% support
            let mut sparse = Vec::new();
            let mut dense = vec![0u64; n_in];
            for (j, dj) in dense.iter_mut().enumerate() {
                if rng.next_u64().is_multiple_of(4) {
                    let v = rng.next_u64() % field.modulus();
                    sparse.push((j, v));
                    *dj = v;
                }
            }
            let expected = yates(&field, &a, k, &dense);
            let splitter = SplitSparseYates::new(a, k, ell);
            assert_eq!(
                splitter.full_output(&field, &sparse),
                expected,
                "t={t} s={s} k={k} ell={ell}"
            );
        }
    }

    #[test]
    fn with_support_size_picks_log_t() {
        let a = zeta_matrix();
        let sp = SplitSparseYates::with_support_size(a.clone(), 10, 9);
        assert_eq!(sp.ell(), 4); // 2^4 = 16 >= 9 > 2^3
        let sp1 = SplitSparseYates::with_support_size(a.clone(), 10, 1);
        assert_eq!(sp1.ell(), 0);
        let cap = SplitSparseYates::with_support_size(a, 3, 1000);
        assert_eq!(cap.ell(), 3); // clamped at k
    }

    #[test]
    fn polynomial_extension_agrees_on_integer_nodes() {
        let field = f();
        let mut rng = SplitMix64::new(5);
        let a = random_small(3, 2, &mut rng);
        let (k, ell) = (4usize, 2usize);
        let n_in = 2usize.pow(k as u32);
        let sparse: SparseVec = (0..n_in)
            .filter_map(|j| {
                if rng.next_u64().is_multiple_of(3) {
                    Some((j, rng.next_u64() % field.modulus()))
                } else {
                    None
                }
            })
            .collect();
        let splitter = SplitSparseYates::new(a, k, ell);
        for o in 0..splitter.part_count() {
            let via_poly = splitter.part_poly_eval(&field, &sparse, o as u64 + 1);
            let direct = splitter.part(&field, &sparse, o);
            assert_eq!(via_poly, direct, "outer = {o}");
        }
    }

    #[test]
    fn polynomial_extension_has_bounded_degree() {
        // Each component of u(z) is a polynomial of degree < t^{k-ℓ}:
        // interpolating from t^{k-ℓ} generic evaluations must reproduce
        // evaluations elsewhere.
        let field = f();
        let mut rng = SplitMix64::new(6);
        let a = random_small(2, 2, &mut rng);
        let (k, ell) = (5usize, 2usize);
        let sparse: SparseVec = (0..32)
            .filter_map(|j| {
                if rng.next_u64().is_multiple_of(2) {
                    Some((j, rng.next_u64() % field.modulus()))
                } else {
                    None
                }
            })
            .collect();
        let splitter = SplitSparseYates::new(a, k, ell);
        let outer_count = splitter.part_count() as u64; // 8

        // Sample at z = 101..101+outer_count-1 and interpolate component 3.
        let comp = 3usize;
        let pts: Vec<(u64, u64)> = (0..outer_count)
            .map(|i| {
                let z = 101 + i;
                (z, splitter.part_poly_eval(&field, &sparse, z)[comp])
            })
            .collect();
        let poly = camelot_poly::interpolate(&field, &pts);
        for z in [0u64, 7, 55, 1_000_000] {
            assert_eq!(
                poly.eval(&field, z),
                splitter.part_poly_eval(&field, &sparse, z)[comp],
                "z = {z}"
            );
        }
    }

    #[test]
    fn small_matrix_transpose() {
        let m = SmallMatrix::new(2, 3, vec![1, 2, 3, 4, 5, 6]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(0, 1), 4);
        assert_eq!(t.get(2, 0), 3);
    }
}
