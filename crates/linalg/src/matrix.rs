//! Dense matrices over a prime field, with naive and Strassen
//! multiplication.
//!
//! The paper's per-node evaluation algorithms (§4.2, §5.3, §10.2) reduce to
//! a constant number of `N × N` matrix multiplications per term, so matrix
//! multiplication with a nontrivial exponent `ω < 3` is the engine of every
//! polynomial-time result. We substitute Strassen (`ω = log2 7 ≈ 2.807`)
//! for the Le Gall tensor the paper cites — every claim is parameterized by
//! the bilinear rank bound, so the code path is identical.

use camelot_ff::PrimeField;

/// Operand size at or below which multiplication stays naive.
const STRASSEN_THRESHOLD: usize = 64;

/// A dense row-major matrix over `Z_q`.
///
/// # Examples
///
/// ```
/// use camelot_ff::PrimeField;
/// use camelot_linalg::Matrix;
///
/// let f = PrimeField::new(97)?;
/// let a = Matrix::from_fn(2, 2, |i, j| (i + j) as u64);
/// let id = Matrix::identity(2);
/// assert_eq!(a.mul(&f, &id), a);
/// # Ok::<(), camelot_ff::FieldError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl Matrix {
    /// All-zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0; rows * cols] }
    }

    /// Identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1;
        }
        m
    }

    /// Builds entries from a function of `(row, col)`. Values must already
    /// be reduced.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> u64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> u64 {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets entry at `(i, j)` (pass a reduced value).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: u64) {
        assert!(i < self.rows && j < self.cols, "matrix index out of bounds");
        self.data[i * self.cols + j] = v;
    }

    /// Raw row-major data.
    #[must_use]
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, field: &PrimeField, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| field.add(a, b)).collect(),
        }
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn sub(&self, field: &PrimeField, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| field.sub(a, b)).collect(),
        }
    }

    /// Entrywise (Hadamard) product — the `χ ∘ H(r)` masking steps of the
    /// clique circuit (§4.2).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, field: &PrimeField, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| field.mul(a, b)).collect(),
        }
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Sum of all entries.
    #[must_use]
    pub fn sum(&self, field: &PrimeField) -> u64 {
        self.data.iter().fold(0, |acc, &v| field.add(acc, v))
    }

    /// Trace (square matrices).
    ///
    /// # Panics
    ///
    /// Panics if not square.
    #[must_use]
    pub fn trace(&self, field: &PrimeField) -> u64 {
        assert_eq!(self.rows, self.cols, "trace of a non-square matrix");
        (0..self.rows).fold(0, |acc, i| field.add(acc, self.data[i * self.cols + i]))
    }

    /// Matrix product, dispatching to Strassen for large square
    /// power-of-two operands and to the naive kernel otherwise.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    #[must_use]
    pub fn mul(&self, field: &PrimeField, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let n = self.rows;
        if n == self.cols && n == other.cols && n > STRASSEN_THRESHOLD && n.is_power_of_two() {
            return self.mul_strassen(field, other);
        }
        self.mul_naive(field, other)
    }

    /// Schoolbook product (kept public for baselines and tests).
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    #[must_use]
    pub fn mul_naive(&self, field: &PrimeField, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let q = u128::from(field.modulus());
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0 {
                    continue;
                }
                let a = u128::from(a);
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                let row_o = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in row_o.iter_mut().zip(row_b) {
                    let cur = u128::from(*o) + a * u128::from(b) % q;
                    *o = if cur >= q { (cur - q) as u64 } else { cur as u64 };
                }
            }
        }
        out
    }

    /// Strassen product for square power-of-two operands (public for the
    /// op-count experiments; [`Matrix::mul`] dispatches automatically).
    ///
    /// # Panics
    ///
    /// Panics unless both operands are square with the same power-of-two
    /// size.
    #[must_use]
    pub fn mul_strassen(&self, field: &PrimeField, other: &Matrix) -> Matrix {
        let n = self.rows;
        assert!(
            self.cols == n && other.rows == n && other.cols == n && n.is_power_of_two(),
            "Strassen requires square power-of-two operands"
        );
        if n <= STRASSEN_THRESHOLD {
            return self.mul_naive(field, other);
        }
        let h = n / 2;
        let (a11, a12, a21, a22) = self.quadrants();
        let (b11, b12, b21, b22) = other.quadrants();
        let m1 = a11.add(field, &a22).mul_strassen(field, &b11.add(field, &b22));
        let m2 = a21.add(field, &a22).mul_strassen(field, &b11);
        let m3 = a11.mul_strassen(field, &b12.sub(field, &b22));
        let m4 = a22.mul_strassen(field, &b21.sub(field, &b11));
        let m5 = a11.add(field, &a12).mul_strassen(field, &b22);
        let m6 = a21.sub(field, &a11).mul_strassen(field, &b11.add(field, &b12));
        let m7 = a12.sub(field, &a22).mul_strassen(field, &b21.add(field, &b22));
        let c11 = m1.add(field, &m4).sub(field, &m5).add(field, &m7);
        let c12 = m3.add(field, &m5);
        let c21 = m2.add(field, &m4);
        let c22 = m1.sub(field, &m2).add(field, &m3).add(field, &m6);
        Matrix::assemble(h, &c11, &c12, &c21, &c22)
    }

    /// Zero-pads to a larger shape (top-left corner keeps the data).
    ///
    /// # Panics
    ///
    /// Panics if the new shape is smaller.
    #[must_use]
    pub fn pad_to(&self, rows: usize, cols: usize) -> Matrix {
        assert!(rows >= self.rows && cols >= self.cols, "pad_to cannot shrink");
        let mut out = Matrix::zeros(rows, cols);
        for i in 0..self.rows {
            out.data[i * cols..i * cols + self.cols]
                .copy_from_slice(&self.data[i * self.cols..(i + 1) * self.cols]);
        }
        out
    }

    fn quadrants(&self) -> (Matrix, Matrix, Matrix, Matrix) {
        let h = self.rows / 2;
        let block = |r0: usize, c0: usize| {
            let mut m = Matrix::zeros(h, h);
            for i in 0..h {
                let src = (r0 + i) * self.cols + c0;
                m.data[i * h..(i + 1) * h].copy_from_slice(&self.data[src..src + h]);
            }
            m
        };
        (block(0, 0), block(0, h), block(h, 0), block(h, h))
    }

    fn assemble(h: usize, c11: &Matrix, c12: &Matrix, c21: &Matrix, c22: &Matrix) -> Matrix {
        let n = 2 * h;
        let mut out = Matrix::zeros(n, n);
        for i in 0..h {
            out.data[i * n..i * n + h].copy_from_slice(&c11.data[i * h..(i + 1) * h]);
            out.data[i * n + h..(i + 1) * n].copy_from_slice(&c12.data[i * h..(i + 1) * h]);
            out.data[(h + i) * n..(h + i) * n + h].copy_from_slice(&c21.data[i * h..(i + 1) * h]);
            out.data[(h + i) * n + h..(h + i + 1) * n]
                .copy_from_slice(&c22.data[i * h..(i + 1) * h]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{RngLike, SplitMix64};

    fn f() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    fn random_matrix(field: &PrimeField, r: usize, c: usize, rng: &mut SplitMix64) -> Matrix {
        Matrix::from_fn(r, c, |_, _| rng.next_u64() % field.modulus())
    }

    #[test]
    fn identity_is_neutral() {
        let field = f();
        let mut rng = SplitMix64::new(1);
        let a = random_matrix(&field, 5, 5, &mut rng);
        assert_eq!(a.mul(&field, &Matrix::identity(5)), a);
        assert_eq!(Matrix::identity(5).mul(&field, &a), a);
    }

    #[test]
    fn naive_mul_small_known() {
        let field = f();
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j + 1) as u64);
        let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j + 1) as u64);
        let c = a.mul_naive(&field, &b);
        assert_eq!(c.get(0, 0), 22);
        assert_eq!(c.get(0, 1), 28);
        assert_eq!(c.get(1, 0), 49);
        assert_eq!(c.get(1, 1), 64);
    }

    #[test]
    fn strassen_matches_naive() {
        let field = f();
        let mut rng = SplitMix64::new(2);
        for n in [128usize, 256] {
            let a = random_matrix(&field, n, n, &mut rng);
            let b = random_matrix(&field, n, n, &mut rng);
            assert_eq!(a.mul_strassen(&field, &b), a.mul_naive(&field, &b), "n = {n}");
        }
    }

    #[test]
    fn mul_dispatch_handles_rectangles() {
        let field = f();
        let mut rng = SplitMix64::new(3);
        let a = random_matrix(&field, 3, 70, &mut rng);
        let b = random_matrix(&field, 70, 9, &mut rng);
        let c = a.mul(&field, &b);
        assert_eq!((c.rows(), c.cols()), (3, 9));
        assert_eq!(c, a.mul_naive(&field, &b));
    }

    #[test]
    fn add_sub_hadamard_are_entrywise() {
        let field = f();
        let mut rng = SplitMix64::new(4);
        let a = random_matrix(&field, 4, 6, &mut rng);
        let b = random_matrix(&field, 4, 6, &mut rng);
        let s = a.add(&field, &b);
        assert_eq!(s.sub(&field, &b), a);
        let h = a.hadamard(&field, &b);
        assert_eq!(h.get(2, 3), field.mul(a.get(2, 3), b.get(2, 3)));
    }

    #[test]
    fn transpose_involution_and_product_rule() {
        let field = f();
        let mut rng = SplitMix64::new(5);
        let a = random_matrix(&field, 4, 7, &mut rng);
        let b = random_matrix(&field, 7, 3, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.mul(&field, &b).transpose(), b.transpose().mul(&field, &a.transpose()));
    }

    #[test]
    fn trace_and_sum() {
        let field = f();
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as u64);
        assert_eq!(a.trace(&field), 4 + 8);
        assert_eq!(a.sum(&field), (0..9).sum::<u64>());
    }

    #[test]
    fn pad_preserves_topleft() {
        let field = f();
        let mut rng = SplitMix64::new(6);
        let a = random_matrix(&field, 3, 5, &mut rng);
        let p = a.pad_to(8, 8);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(p.get(i, j), a.get(i, j));
            }
        }
        assert_eq!(p.get(7, 7), 0);
        // Padding commutes with multiplication on the embedded block.
        let b = random_matrix(&field, 5, 4, &mut rng);
        let full = a.mul(&field, &b);
        let padded = a.pad_to(8, 8).mul(&field, &b.pad_to(8, 8));
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(padded.get(i, j), full.get(i, j));
            }
        }
    }
}
