//! Property tests for the lexer's totality and span invariants.
//!
//! `camelot-lint` must be safe to point at *anything* — generated files,
//! fixtures full of deliberately broken syntax, non-Rust bytes — so the
//! lexer is hammered with adversarial input here: it must never panic, and
//! the concatenation of token texts must reproduce the input byte for byte
//! with monotonically nondecreasing, newline-accurate line numbers.
//! (Hand-rolled SplitMix64 generator: the workspace has no crates.io
//! access, so no proptest — same idiom as the repo's other property tests.)

use camelot_lint::lexer::{lex, TokenKind};

/// SplitMix64 — tiny deterministic RNG for property tests.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Assert the lexer invariants on one input; returns the token count.
fn check_invariants(src: &str) -> usize {
    let tokens = lex(src);
    let joined: String = tokens.iter().map(|t| t.text).collect();
    assert_eq!(joined, src, "token spans must cover the input exactly");
    let mut line = 1u32;
    for t in &tokens {
        assert!(!t.text.is_empty(), "empty token");
        assert_eq!(t.line, line, "line number drifted at {:?}", t.text);
        line += t.text.bytes().filter(|&b| b == b'\n').count() as u32;
    }
    tokens.len()
}

#[test]
fn never_panics_and_preserves_spans_on_arbitrary_bytes() {
    let mut rng = SplitMix64(0xC0FF_EE00_D15E_A5E5);
    for _ in 0..3000 {
        let len = rng.below(240) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        // from_utf8_lossy mirrors exactly what the CLI does with files
        // that are not valid UTF-8.
        let src = String::from_utf8_lossy(&bytes).into_owned();
        check_invariants(&src);
    }
}

#[test]
fn never_panics_on_rust_shaped_soup() {
    // Fragments biased toward the lexer's tricky state transitions:
    // quote handling, raw-string hashes, nesting, escapes at EOF.
    const FRAGMENTS: &[&str] = &[
        "fn ",
        "let ",
        "x",
        "'a",
        "'a'",
        "'\\''",
        "b'",
        "b\"",
        "br#\"",
        "r#\"",
        "r##\"",
        "\"#",
        "\"##",
        "r#match",
        "\"",
        "\\",
        "\\\"",
        "//",
        "/*",
        "*/",
        "\n",
        "0x1f",
        "1.5e3",
        "0..9",
        "%",
        "::",
        "#![",
        "#[",
        "]",
        "(",
        ")",
        "{",
        "}",
        ".unwrap()",
        "é",
        "🦀",
        ";",
        "=",
        "b",
        "r",
        "''",
    ];
    let mut rng = SplitMix64(0xDEAD_BEEF_0BAD_F00D);
    for _ in 0..3000 {
        let pieces = rng.below(40) as usize;
        let src: String =
            (0..pieces).map(|_| FRAGMENTS[rng.below(FRAGMENTS.len() as u64) as usize]).collect();
        check_invariants(&src);
    }
}

#[test]
fn real_sources_roundtrip() {
    // The lexer's own source (and this test's) are real-world inputs with
    // strings-about-strings, escapes, and raw strings in doc text.
    for src in [
        include_str!("../src/lexer.rs"),
        include_str!("../src/rules.rs"),
        include_str!("lexer_properties.rs"),
    ] {
        let n = check_invariants(src);
        assert!(n > 100, "suspiciously few tokens");
    }
}

#[test]
fn tricky_cases_classify_correctly() {
    // (input, kind of first token) table for the classifications rules
    // depend on: comments and strings must never leak into code tokens.
    let cases: &[(&str, TokenKind)] = &[
        ("// %s.clone()", TokenKind::LineComment),
        ("/* unwrap() */", TokenKind::BlockComment),
        ("\"a % b\"", TokenKind::Str),
        ("r#\"let _ = x.unwrap();\"#", TokenKind::Str),
        ("b\"%\"", TokenKind::Str),
        ("'%'", TokenKind::Char),
        ("'\\n'", TokenKind::Char),
        ("b'\\''", TokenKind::Char),
        ("'static", TokenKind::Lifetime),
        ("'_", TokenKind::Lifetime),
        ("r#fn", TokenKind::Ident),
        ("br\"\"", TokenKind::Str),
        ("1_000u64", TokenKind::Number),
    ];
    for &(src, kind) in cases {
        check_invariants(src);
        let toks = lex(src);
        assert_eq!(toks[0].kind, kind, "first token of {src:?}");
        assert_eq!(toks[0].text, src, "first token of {src:?} should cover the whole input");
    }
}

#[test]
fn unterminated_constructs_are_single_tokens() {
    for src in ["\"abc", "r#\"abc", "/* a /* b */", "'", "b\"oops", "'\\"] {
        check_invariants(src);
    }
}
