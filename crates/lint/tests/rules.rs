//! Fixture-driven rule tests: every file in `tests/fixtures/` carries
//! `//~ rule-id` annotations on the lines where a rule must fire (repeated
//! ids mean repeated findings on that line), and the engine's finding set
//! must equal the annotation set exactly — no missed violations, no false
//! positives, anywhere in the corpus.

use std::collections::BTreeMap;
use std::path::PathBuf;

use camelot_lint::rules::{lint_file, RuleScope};

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parse `//~ rule [rule ...]` annotations into (line, rule) -> count.
fn annotations(source: &str) -> BTreeMap<(u32, String), usize> {
    let mut out = BTreeMap::new();
    for (idx, line) in source.lines().enumerate() {
        let Some((_, tail)) = line.split_once("//~") else { continue };
        for rule in tail.split_whitespace() {
            *out.entry((idx as u32 + 1, rule.to_string())).or_insert(0) += 1;
        }
    }
    out
}

#[test]
fn fixtures_fire_exactly_where_annotated() {
    let dir = fixtures_dir();
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no fixtures found in {}", dir.display());
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).expect("utf-8 name").to_string();
        let source = std::fs::read_to_string(&path).expect("readable fixture");
        let expected = annotations(&source);
        let findings = lint_file(&name, &source, &RuleScope::all());
        let mut got: BTreeMap<(u32, String), usize> = BTreeMap::new();
        for f in &findings {
            *got.entry((f.line, f.rule.to_string())).or_insert(0) += 1;
        }
        assert_eq!(
            got, expected,
            "finding/annotation mismatch in fixture {name}:\n  findings: {findings:#?}"
        );
        checked += 1;
    }
    assert!(checked >= 5, "fixture corpus shrank unexpectedly ({checked} files)");
}

#[test]
fn clean_fixture_is_clean() {
    let path = fixtures_dir().join("clean.rs");
    let source = std::fs::read_to_string(path).expect("readable fixture");
    let findings = lint_file("clean.rs", &source, &RuleScope::all());
    assert!(findings.is_empty(), "clean fixture produced findings: {findings:#?}");
}

#[test]
fn scoped_rules_skip_out_of_scope_files() {
    let source = std::fs::read_to_string(fixtures_dir().join("panic_sites.rs")).expect("fixture");
    // Under workspace scoping, a file outside every prefix only gets the
    // (unconditional for lib.rs, otherwise skipped) header rule.
    let scope = RuleScope {
        panic_free: vec!["crates/core/".to_string()],
        dropped_result: vec![],
        hot_regions: vec![],
        all_paths: false,
    };
    let findings = lint_file("crates/bench/src/panic_sites.rs", &source, &scope);
    assert!(findings.is_empty(), "out-of-scope file was linted: {findings:#?}");
    let findings = lint_file("crates/core/src/panic_sites.rs", &source, &scope);
    assert!(findings.iter().all(|f| f.rule == "panic-path"));
    assert!(!findings.is_empty());
}
