//! camelot-lint fixture: the `hot-path` rule. Violations only count inside
//! `lint:hot-begin/end` regions; the same constructs outside a region are
//! exempt. Never compiled; annotations as in `panic_sites.rs`.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

fn cold_setup(xs: &[u64]) -> Vec<u64> {
    // Outside any region: reductions and allocations are fine here.
    let mut out = xs.to_vec();
    out.push(xs.iter().sum::<u64>() % 97);
    out
}

fn kernel(q: u64, xs: &mut [u64], ys: &[u64]) -> u64 {
    let mut acc = 0u64;
    // lint:hot-begin(fixture-kernel)
    for (x, &y) in xs.iter_mut().zip(ys) {
        *x = (*x + y) % q; //~ hot-path
        acc ^= *x;
    }
    let copied = ys.to_vec(); //~ hot-path
    let cloned = copied.clone(); //~ hot-path
    let boxed = Box::new(acc); //~ hot-path
    let buffer = vec![0u64; 4]; //~ hot-path
    let gathered: u64 = cloned.iter().chain(buffer.iter()).copied().sum();
    let label = format!("{acc}"); //~ hot-path
    // lint:hot-end
    acc + gathered + *boxed + label.len() as u64
}

fn stray_close() {
    // lint:hot-end //~ hot-path
}
