//! camelot-lint fixture: the `dropped-result` rule. Never compiled.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

fn fallible() -> Result<u32, String> {
    Err("nope".to_string())
}

fn driver() -> u32 {
    let _ = fallible(); //~ dropped-result
    let _ = std::fs::remove_file("scratch.txt"); //~ dropped-result
    // Exempt shapes: a named hole documents intent to the reader, plain
    // value discards have no Result to lose, and handling is handling.
    let _ignored = fallible();
    let _ = 42;
    let ok = fallible().unwrap_or(7);
    ok
}

#[cfg(test)]
mod tests {
    #[test]
    fn discard_in_tests_is_fine() {
        let _ = super::fallible();
    }
}
