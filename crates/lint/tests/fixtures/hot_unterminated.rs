//! camelot-lint fixture: region-marker bookkeeping errors are findings in
//! their own right — an unclosed region would silently stop the rule from
//! checking anything after it. Never compiled.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

fn outer(a: u64, b: u64) -> u64 {
    // lint:hot-begin(outer) //~ hot-path
    let s = a.wrapping_add(b);
    // lint:hot-begin(inner) //~ hot-path
    s.wrapping_mul(a) % 17 //~ hot-path
}
