//! camelot-lint fixture: a fully conforming file — complete shared header,
//! no panicking constructs, a hot region with only field-op shapes in it,
//! and every `Result` handled. Zero findings expected. Never compiled.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

fn reduce_all(q: u64, xs: &mut [u64]) -> Result<u64, String> {
    if q == 0 {
        return Err("zero modulus".to_string());
    }
    let mut acc = 0u64;
    // lint:hot-begin(clean-kernel)
    for x in xs.iter_mut() {
        let s = x.wrapping_add(acc);
        *x = s.min(s.wrapping_sub(q));
        acc = *x;
    }
    // lint:hot-end
    Ok(acc)
}

fn caller(q: u64, xs: &mut [u64]) -> u64 {
    match reduce_all(q, xs) {
        Ok(v) => v,
        Err(_) => 0,
    }
}
