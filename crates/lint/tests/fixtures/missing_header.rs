//! Fixture: crate root missing the shared header. //~ crate-header crate-header crate-header
//!
//! All three required attributes are absent, so `crate-header` fires three
//! times, anchored at line 1. Never compiled.

fn quiet() -> u32 {
    7
}
