//! camelot-lint fixture: the `panic-path` rule. Lines that must fire carry
//! a tilde-marker annotation naming the rule; `tests/rules.rs` asserts the
//! finding set equals the annotation set exactly. Never compiled.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

fn parse(input: &str) -> usize {
    let n: usize = input.trim().parse().unwrap(); //~ panic-path
    let first = input.bytes().next().expect("nonempty"); //~ panic-path
    if first == b'!' {
        panic!("bang"); //~ panic-path
    }
    let b = input.as_bytes()[0]; //~ panic-path
    match b {
        0 => unreachable!(), //~ panic-path
        1 => todo!(), //~ panic-path
        _ => {}
    }
    assert!(n > 0); //~ panic-path
    assert_eq!(b, first); //~ panic-path
    // Exempt constructs: debug_assert compiles out of release builds, and
    // none of these bracket forms are index expressions.
    debug_assert!(n > 0);
    let _ok: &[u8] = &[1, 2, 3];
    let _arr = [0u8; 4];
    let v = vec![1, 2, 3];
    let safe = v.get(0).copied().unwrap_or(0);
    n + safe as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: usize = "7".parse().unwrap();
        assert_eq!(v, 7);
        let bytes = b"xy";
        let _first = bytes[0];
        panic!("even this is fine in test code");
    }
}
