//! `camelot-lint.toml` parsing: rule scopes and the justified allowlist.
//!
//! The workspace is dependency-free, so this is a hand-rolled parser for the
//! small TOML subset the config actually uses: `[paths]` / `[[allow]]`
//! tables, `key = "string"`, and `key = [ "a", "b" ]` arrays (single- or
//! multi-line). Comments start with `#` outside strings. Unknown sections or
//! keys are hard errors — a typo in the allowlist must not silently widen
//! the gate.

use crate::rules::{Finding, RuleScope};

/// One `[[allow]]` exemption. A finding is suppressed when `rule` and
/// `file` match exactly and the finding's source line contains `pattern`
/// (line-text matching survives unrelated edits shifting line numbers).
/// `justification` is mandatory and must be nonempty: every exemption is
/// argued for in-repo.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Rule id the exemption applies to.
    pub rule: String,
    /// Workspace-relative `/`-separated path, matched exactly.
    pub file: String,
    /// Substring that must occur in the offending source line.
    pub pattern: String,
    /// Why this violation is acceptable. Required, surfaced in reports.
    pub justification: String,
}

/// Parsed configuration: rule scopes plus the allowlist.
#[derive(Clone, Debug)]
pub struct Config {
    /// Which paths each scoped rule applies to.
    pub scope: RuleScope,
    /// Justified exemptions.
    pub allows: Vec<Allow>,
}

impl Config {
    /// The scopes used when no `camelot-lint.toml` exists: the canonical
    /// Camelot invariant surfaces. Kept in sync with the shipped config.
    pub fn default_config() -> Self {
        let scope = RuleScope {
            panic_free: vec![
                "crates/core/src/wire.rs".to_string(),
                "crates/cluster/src/transport/".to_string(),
                "crates/cluster/src/bin/camelot_node.rs".to_string(),
                "crates/server/src/".to_string(),
                "crates/store/src/".to_string(),
            ],
            dropped_result: vec![
                "crates/core/src/".to_string(),
                "crates/cluster/src/".to_string(),
                "crates/server/src/".to_string(),
                "crates/store/src/".to_string(),
            ],
            hot_regions: vec!["crates/ff/src/".to_string(), "crates/poly/src/".to_string()],
            all_paths: false,
        };
        Config { scope, allows: Vec::new() }
    }
}

/// Split findings into (blocking, allowed-with-entry-index) and report
/// stale allowlist entries that matched nothing.
pub fn apply_allowlist(
    findings: Vec<Finding>,
    allows: &[Allow],
) -> (Vec<Finding>, Vec<(Finding, usize)>, Vec<usize>) {
    let mut used = vec![false; allows.len()];
    let mut blocking = Vec::new();
    let mut allowed = Vec::new();
    for f in findings {
        let hit = allows.iter().enumerate().find(|(_, a)| {
            a.rule == f.rule && a.file == f.file && f.snippet.contains(a.pattern.as_str())
        });
        match hit {
            Some((i, _)) => {
                used[i] = true;
                allowed.push((f, i));
            }
            None => blocking.push(f),
        }
    }
    let stale = used.iter().enumerate().filter(|&(_, &u)| !u).map(|(i, _)| i).collect();
    (blocking, allowed, stale)
}

/// Parse the config text. Errors carry a line number and are fatal (exit 2
/// in the CLI): a malformed allowlist must not be interpreted as "allow
/// nothing" *or* "allow everything".
pub fn parse(text: &str) -> Result<Config, String> {
    enum Section {
        None,
        Paths,
        Allow,
    }
    let mut config = Config { scope: RuleScope::default(), allows: Vec::new() };
    let mut section = Section::None;
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[paths]" {
            section = Section::Paths;
            continue;
        }
        if line == "[[allow]]" {
            section = Section::Allow;
            config.allows.push(Allow {
                rule: String::new(),
                file: String::new(),
                pattern: String::new(),
                justification: String::new(),
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown section `{line}`"));
        }
        let (key, mut value) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        // Multi-line arrays: keep consuming lines until the closing `]`.
        while value.starts_with('[') && !value.ends_with(']') {
            let (_, next) =
                lines.next().ok_or_else(|| format!("line {lineno}: unterminated array"))?;
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        match section {
            Section::Paths => {
                let items = parse_string_array(&value)
                    .map_err(|e| format!("line {lineno}: {e} in `{key}`"))?;
                match key.as_str() {
                    "panic-free" => config.scope.panic_free = items,
                    "no-dropped-result" => config.scope.dropped_result = items,
                    "hot-regions" => config.scope.hot_regions = items,
                    _ => return Err(format!("line {lineno}: unknown [paths] key `{key}`")),
                }
            }
            Section::Allow => {
                let s = parse_string(&value).map_err(|e| format!("line {lineno}: {e}"))?;
                let entry = config
                    .allows
                    .last_mut()
                    .ok_or_else(|| format!("line {lineno}: key outside [[allow]]"))?;
                match key.as_str() {
                    "rule" => entry.rule = s,
                    "file" => entry.file = s,
                    "pattern" => entry.pattern = s,
                    "justification" => entry.justification = s,
                    _ => return Err(format!("line {lineno}: unknown [[allow]] key `{key}`")),
                }
            }
            Section::None => {
                return Err(format!("line {lineno}: key `{key}` outside any section"));
            }
        }
    }
    for (i, a) in config.allows.iter().enumerate() {
        let which = |what: &str| format!("[[allow]] entry {}: missing or empty `{what}`", i + 1);
        if a.rule.trim().is_empty() {
            return Err(which("rule"));
        }
        if a.file.trim().is_empty() {
            return Err(which("file"));
        }
        if a.pattern.trim().is_empty() {
            return Err(which("pattern"));
        }
        if a.justification.trim().is_empty() {
            return Err(format!(
                "[[allow]] entry {} ({} in {}): every exemption requires a nonempty `justification`",
                i + 1,
                a.rule,
                a.file
            ));
        }
    }
    Ok(config)
}

/// Remove a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse a single `"…"` TOML string with basic escapes.
fn parse_string(value: &str) -> Result<String, String> {
    let value = value.trim();
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{value}`"))?;
    unescape(inner)
}

/// Parse `[ "a", "b" ]`.
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| "expected an array of strings".to_string())?;
    let mut items = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let body = rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected a quoted string, got `{rest}`"))?;
        let mut end = None;
        let mut escaped = false;
        for (i, c) in body.char_indices() {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| "unterminated string in array".to_string())?;
        items.push(unescape(&body[..end])?);
        rest = body[end + 1..].trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected `,` between array items, got `{rest}`"));
        }
    }
    Ok(items)
}

fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => return Err(format!("unsupported escape `\\{other}`")),
            None => return Err("dangling `\\` at end of string".to_string()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn parses_paths_and_allows() {
        let cfg = parse(
            r##"
# comment
[paths]
panic-free = [
    "a/",   # trailing comment
    "b.rs",
]
hot-regions = ["c/"]

[[allow]]
rule = "panic-path"
file = "a/x.rs"
pattern = "points[lo..hi]"
justification = "bounds proven by node_slice"
"##,
        )
        .unwrap();
        assert_eq!(cfg.scope.panic_free, vec!["a/", "b.rs"]);
        assert_eq!(cfg.scope.hot_regions, vec!["c/"]);
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].pattern, "points[lo..hi]");
    }

    #[test]
    fn empty_justification_is_fatal() {
        let err = parse(
            "[[allow]]\nrule = \"x\"\nfile = \"y\"\npattern = \"z\"\njustification = \"  \"\n",
        )
        .unwrap_err();
        assert!(err.contains("justification"), "{err}");
    }

    #[test]
    fn unknown_keys_are_fatal() {
        assert!(parse("[paths]\nnope = [\"a\"]\n").is_err());
        assert!(parse("[wat]\n").is_err());
    }

    #[test]
    fn allowlist_matching_and_staleness() {
        let allows = vec![
            Allow {
                rule: "panic-path".into(),
                file: "f.rs".into(),
                pattern: "v[0]".into(),
                justification: "ok".into(),
            },
            Allow {
                rule: "panic-path".into(),
                file: "f.rs".into(),
                pattern: "never-matches".into(),
                justification: "ok".into(),
            },
        ];
        let findings = vec![Finding {
            file: "f.rs".into(),
            line: 3,
            rule: "panic-path",
            message: "indexing".into(),
            snippet: "let x = v[0];".into(),
        }];
        let (blocking, allowed, stale) = apply_allowlist(findings, &allows);
        assert!(blocking.is_empty());
        assert_eq!(allowed.len(), 1);
        assert_eq!(stale, vec![1]);
    }
}
