//! The `camelot-lint` CLI: walk the workspace sources, run the rule engine,
//! apply the justified allowlist, emit reports, and gate CI.
//!
//! Exit codes: `0` clean (every finding allowlisted), `1` blocking findings,
//! `2` usage or configuration error.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use camelot_lint::config::{apply_allowlist, parse, Config};
use camelot_lint::report::Report;
use camelot_lint::rules::{lint_file, Finding};

const USAGE: &str = "\
camelot-lint — domain-invariant static analysis for the Camelot workspace

USAGE:
    camelot-lint [--root DIR] [--config PATH] [--json PATH] [--all-paths]

OPTIONS:
    --root DIR      Directory to lint (default: current directory). In the
                    default mode, scans ROOT/src and ROOT/crates/*/src.
    --config PATH   Allowlist/scope config (default: ROOT/camelot-lint.toml;
                    built-in scopes are used when the file does not exist).
    --json PATH     Also write a machine-readable JSON report.
    --all-paths     Scan every .rs file under ROOT and apply every rule to
                    every file (fixture/smoke mode; ignores [paths] scopes).
    --help          Show this help.
";

struct Options {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    all_paths: bool,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options { root: PathBuf::from("."), config: None, json: None, all_paths: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--all-paths" => opts.all_paths = true,
            "--root" => {
                opts.root = args.next().map(PathBuf::from).ok_or("--root needs a value")?;
            }
            "--config" => {
                opts.config = Some(args.next().map(PathBuf::from).ok_or("--config needs a value")?);
            }
            "--json" => {
                opts.json = Some(args.next().map(PathBuf::from).ok_or("--json needs a value")?);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("camelot-lint: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("camelot-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<bool, String> {
    let config_path = opts.config.clone().unwrap_or_else(|| opts.root.join("camelot-lint.toml"));
    let config = if config_path.exists() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
        parse(&text).map_err(|e| format!("{}: {e}", config_path.display()))?
    } else if opts.config.is_some() {
        return Err(format!("config file {} does not exist", config_path.display()));
    } else {
        Config::default_config()
    };

    let mut scope = config.scope.clone();
    scope.all_paths = opts.all_paths;

    let files = collect_files(&opts.root, opts.all_paths)?;
    let files_scanned = files.len();
    let mut findings: Vec<Finding> = Vec::new();
    for path in &files {
        let rel = relative_label(&opts.root, path);
        let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let source = String::from_utf8_lossy(&bytes);
        findings.extend(lint_file(&rel, &source, &scope));
    }
    findings
        .sort_by(|a, b| (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule)));

    let (blocking, allowed, stale) = apply_allowlist(findings, &config.allows);
    let report = Report {
        root: &opts.root.display().to_string(),
        files_scanned,
        blocking: &blocking,
        allowed: &allowed,
        allows: &config.allows,
        stale: &stale,
    };
    print!("{}", report.human());
    if let Some(json_path) = &opts.json {
        std::fs::write(json_path, report.json())
            .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    }
    Ok(blocking.is_empty())
}

/// The files to lint. Default mode mirrors the workspace layout: the
/// umbrella `src/` plus every `crates/*/src` tree (test sources live under
/// `tests/` and are intentionally out of scope). `--all-paths` takes every
/// `.rs` under the root, minus build output and VCS internals.
fn collect_files(root: &Path, all_paths: bool) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    if all_paths {
        walk(root, &mut out)?;
    } else {
        let umbrella = root.join("src");
        if umbrella.is_dir() {
            walk(&umbrella, &mut out)?;
        }
        let crates = root.join("crates");
        if crates.is_dir() {
            let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)
                .map_err(|e| format!("reading {}: {e}", crates.display()))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .collect();
            members.sort();
            for member in members {
                let src = member.join("src");
                if src.is_dir() {
                    walk(&src, &mut out)?;
                }
            }
        }
        if out.is_empty() {
            return Err(format!(
                "no sources found under {} (expected src/ or crates/*/src)",
                root.display()
            ));
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A stable, `/`-separated label for `path` relative to `root` (used in
/// reports and matched against config prefixes and allowlist entries).
fn relative_label(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}
