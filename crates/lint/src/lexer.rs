//! A small, total Rust lexer.
//!
//! The workspace has no crates.io access, so the lint ships its own lexer
//! instead of depending on `syn`/`proc-macro2`. It is deliberately *not* a
//! full Rust grammar: the rules in [`crate::rules`] only need a faithful
//! token stream that distinguishes code from comments and string literals,
//! and char literals from lifetimes. Two invariants make it safe to run on
//! arbitrary input (including non-Rust bytes, enforced by property tests):
//!
//! 1. **Totality** — `lex` never panics, whatever the input.
//! 2. **Span coverage** — the concatenation of all token texts equals the
//!    input exactly; every byte belongs to exactly one token.
//!
//! Unterminated constructs (a `"` with no closing quote, an open `/*`) are
//! lexed as a single token running to end of input, mirroring what rustc's
//! recovery does; the rule engine treats them like their closed forms.

/// Lexical class of a [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Runs of whitespace (including newlines).
    Whitespace,
    /// A `// ...` comment, up to but not including the newline.
    LineComment,
    /// A `/* ... */` comment; nesting is honoured, unterminated runs to EOF.
    BlockComment,
    /// A string literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A character or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime such as `'static` or `'a` (no closing quote).
    Lifetime,
    /// A numeric literal (integer or float, any radix, with suffixes).
    Number,
    /// An identifier, keyword, or raw identifier (`r#match`).
    Ident,
    /// Any single character not covered above (operators, brackets, …).
    Punct,
}

/// One token of the input, borrowing its text.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    /// Lexical class.
    pub kind: TokenKind,
    /// Exact slice of the source covered by this token.
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `src` completely. Never panics; see the module docs for the
/// invariants callers may rely on.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let n = chars.len();
    let at = |i: usize| chars.get(i).map(|&(_, c)| c);
    let off = |i: usize| chars.get(i).map_or(src.len(), |&(o, _)| o);

    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let start = i;
        let c = chars[i].1;
        let kind = if c.is_whitespace() {
            while at(i).is_some_and(|c| c.is_whitespace()) {
                i += 1;
            }
            TokenKind::Whitespace
        } else if c == '/' && at(i + 1) == Some('/') {
            while at(i).is_some_and(|c| c != '\n') {
                i += 1;
            }
            TokenKind::LineComment
        } else if c == '/' && at(i + 1) == Some('*') {
            i += 2;
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if at(i) == Some('/') && at(i + 1) == Some('*') {
                    depth += 1;
                    i += 2;
                } else if at(i) == Some('*') && at(i + 1) == Some('/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokenKind::BlockComment
        } else if c == '"' {
            i = scan_string(&at, n, i);
            TokenKind::Str
        } else if c == 'r' || c == 'b' {
            // Possible raw string (r"…", r#"…"#), byte string (b"…", br"…"),
            // byte char (b'x'), raw identifier (r#ident), or a plain ident.
            let is_raw = c == 'r' || (c == 'b' && at(i + 1) == Some('r'));
            let mut j = i + 1;
            if c == 'b' && at(j) == Some('r') {
                j += 1;
            }
            let mut hashes = 0usize;
            while is_raw && at(j) == Some('#') {
                hashes += 1;
                j += 1;
            }
            if at(j) == Some('"') && is_raw {
                i = scan_raw_string(&at, n, j + 1, hashes);
                TokenKind::Str
            } else if c == 'b' && at(i + 1) == Some('"') {
                // Byte string b"…" — escapes work like a regular string.
                i = scan_string(&at, n, i + 1);
                TokenKind::Str
            } else if c == 'b' && at(i + 1) == Some('\'') {
                // Byte literal b'x' — always a char literal, never a lifetime.
                i = scan_char_body(&at, n, i + 1);
                TokenKind::Char
            } else if c == 'r' && hashes == 1 && at(i + 2).is_some_and(is_ident_start) {
                // Raw identifier r#match.
                i += 2;
                while at(i).is_some_and(is_ident_continue) {
                    i += 1;
                }
                TokenKind::Ident
            } else {
                // Plain identifier starting with r/b.
                i += 1;
                while at(i).is_some_and(is_ident_continue) {
                    i += 1;
                }
                TokenKind::Ident
            }
        } else if c == '\'' {
            match at(i + 1) {
                Some(c1) if is_ident_start(c1) && at(i + 2) != Some('\'') => {
                    // 'static, 'a — a lifetime (or a loop label; same shape).
                    i += 1;
                    while at(i).is_some_and(is_ident_continue) {
                        i += 1;
                    }
                    TokenKind::Lifetime
                }
                Some(_) => {
                    i = scan_char_body(&at, n, i);
                    TokenKind::Char
                }
                None => {
                    i += 1;
                    TokenKind::Punct
                }
            }
        } else if c.is_ascii_digit() {
            i += 1;
            loop {
                if at(i).is_some_and(is_ident_continue) {
                    i += 1;
                } else if at(i) == Some('.') && at(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 2;
                } else {
                    break;
                }
            }
            TokenKind::Number
        } else if is_ident_start(c) {
            while at(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            TokenKind::Ident
        } else {
            i += 1;
            TokenKind::Punct
        };
        debug_assert!(i > start, "lexer must always make progress");
        if i == start {
            i = start + 1;
        }
        let text = &src[off(start)..off(i)];
        out.push(Token { kind, text, line });
        line += text.bytes().filter(|&b| b == b'\n').count() as u32;
    }
    out
}

/// Scan a `"…"` string body; `i` points at the opening quote. Returns the
/// index one past the closing quote (or `n` if unterminated).
fn scan_string(at: &dyn Fn(usize) -> Option<char>, n: usize, mut i: usize) -> usize {
    i += 1;
    while i < n {
        match at(i) {
            Some('\\') => i = (i + 2).min(n),
            Some('"') => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// Scan a raw string body; `i` points one past the opening quote and the
/// delimiter is `"` followed by `hashes` `#`s.
fn scan_raw_string(
    at: &dyn Fn(usize) -> Option<char>,
    n: usize,
    mut i: usize,
    hashes: usize,
) -> usize {
    while i < n {
        if at(i) == Some('"') {
            let mut k = 0usize;
            while k < hashes && at(i + 1 + k) == Some('#') {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    n
}

/// Scan a char/byte literal body; `i` points at the opening quote. Bounded
/// by the next unescaped quote, newline, or EOF so a stray `'` cannot
/// swallow the rest of the file.
fn scan_char_body(at: &dyn Fn(usize) -> Option<char>, n: usize, mut i: usize) -> usize {
    i += 1;
    while i < n {
        match at(i) {
            Some('\\') => i = (i + 2).min(n),
            Some('\'') => return i + 1,
            Some('\n') => return i,
            _ => i += 1,
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn spans_cover_input() {
        let src = "fn main() { let x = \"a\\\"b\"; /* c /* d */ */ }";
        let joined: String = lex(src).iter().map(|t| t.text).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'")[0], (TokenKind::Char, "'a'"));
        assert_eq!(kinds("'static ")[0], (TokenKind::Lifetime, "'static"));
        assert_eq!(kinds("&'a str")[1], (TokenKind::Lifetime, "'a"));
        assert_eq!(kinds("'\\''")[0], (TokenKind::Char, "'\\''"));
        assert_eq!(kinds("b'x'")[0], (TokenKind::Char, "b'x'"));
    }

    #[test]
    fn raw_strings_and_idents() {
        assert_eq!(kinds("r\"a\"")[0], (TokenKind::Str, "r\"a\""));
        assert_eq!(kinds("r##\"a\"# b\"##")[0], (TokenKind::Str, "r##\"a\"# b\"##"));
        assert_eq!(kinds("br\"a\"")[0], (TokenKind::Str, "br\"a\""));
        assert_eq!(kinds("r#match ")[0], (TokenKind::Ident, "r#match"));
        assert_eq!(kinds("b\"bytes\"")[0], (TokenKind::Str, "b\"bytes\""));
    }

    #[test]
    fn comments_nest_and_line_numbers_advance() {
        let toks = lex("a\n/* x /* y */ z */\nb");
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 3);
        assert!(toks.iter().any(|t| t.kind == TokenKind::BlockComment));
    }

    #[test]
    fn unterminated_constructs_run_to_eof() {
        assert_eq!(kinds("\"abc")[0], (TokenKind::Str, "\"abc"));
        assert_eq!(kinds("/* abc")[0], (TokenKind::BlockComment, "/* abc"));
        assert_eq!(kinds("r#\"abc")[0], (TokenKind::Str, "r#\"abc"));
    }

    #[test]
    fn numbers_with_ranges() {
        let toks = kinds("0..10");
        assert_eq!(toks[0], (TokenKind::Number, "0"));
        assert_eq!(toks[1], (TokenKind::Punct, "."));
        assert_eq!(toks[3], (TokenKind::Number, "10"));
        assert_eq!(kinds("1.5e3")[0], (TokenKind::Number, "1.5e3"));
        assert_eq!(kinds("0xff_u64")[0], (TokenKind::Number, "0xff_u64"));
    }
}
