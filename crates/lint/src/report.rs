//! Human table + machine-readable JSON rendering of lint results.

use crate::config::Allow;
use crate::rules::Finding;

/// Everything one lint run produced, ready to render.
pub struct Report<'a> {
    /// Root directory the walk started from (as given on the CLI).
    pub root: &'a str,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings not covered by any allowlist entry — these fail the gate.
    pub blocking: &'a [Finding],
    /// Findings suppressed by an allowlist entry (with the entry's index).
    pub allowed: &'a [(Finding, usize)],
    /// The allowlist itself (for justifications in the JSON report).
    pub allows: &'a [Allow],
    /// Indices of allowlist entries that matched nothing (stale).
    pub stale: &'a [usize],
}

impl Report<'_> {
    /// Render the human-oriented table.
    pub fn human(&self) -> String {
        let mut out = String::new();
        if !self.blocking.is_empty() {
            out.push_str("BLOCKING findings (fix, or justify in camelot-lint.toml):\n");
            push_table(&mut out, self.blocking.iter());
        }
        if !self.allowed.is_empty() {
            out.push_str("allowlisted (justified in camelot-lint.toml):\n");
            push_table(&mut out, self.allowed.iter().map(|(f, _)| f));
        }
        for &i in self.stale {
            if let Some(a) = self.allows.get(i) {
                out.push_str(&format!(
                    "warning: stale allowlist entry {} ({} in {}, pattern \"{}\") matched nothing — remove it\n",
                    i + 1,
                    a.rule,
                    a.file,
                    a.pattern
                ));
            }
        }
        out.push_str(&format!(
            "camelot-lint: {} file(s) scanned, {} blocking finding(s), {} allowlisted, {} stale allow(s)\n",
            self.files_scanned,
            self.blocking.len(),
            self.allowed.len(),
            self.stale.len()
        ));
        out
    }

    /// Render the machine-readable JSON report (schema version 1).
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"root\": {},\n", json_str(self.root)));
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"findings\": [");
        for (i, f) in self.blocking.iter().enumerate() {
            push_sep(&mut out, i);
            push_finding(&mut out, f, None);
        }
        close_list(&mut out, self.blocking.is_empty());
        out.push_str(",\n  \"allowed\": [");
        for (i, (f, ai)) in self.allowed.iter().enumerate() {
            push_sep(&mut out, i);
            let justification = self.allows.get(*ai).map(|a| a.justification.as_str());
            push_finding(&mut out, f, justification);
        }
        close_list(&mut out, self.allowed.is_empty());
        out.push_str(",\n  \"stale_allows\": [");
        for (i, &ai) in self.stale.iter().enumerate() {
            push_sep(&mut out, i);
            if let Some(a) = self.allows.get(ai) {
                out.push_str(&format!(
                    "{{ \"rule\": {}, \"file\": {}, \"pattern\": {} }}",
                    json_str(&a.rule),
                    json_str(&a.file),
                    json_str(&a.pattern)
                ));
            }
        }
        close_list(&mut out, self.stale.is_empty());
        out.push_str("\n}\n");
        out
    }
}

fn push_sep(out: &mut String, i: usize) {
    if i > 0 {
        out.push(',');
    }
    out.push_str("\n    ");
}

fn close_list(out: &mut String, empty: bool) {
    if !empty {
        out.push_str("\n  ");
    }
    out.push(']');
}

fn push_finding(out: &mut String, f: &Finding, justification: Option<&str>) {
    out.push_str(&format!(
        "{{ \"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}",
        json_str(&f.file),
        f.line,
        json_str(f.rule),
        json_str(&f.message)
    ));
    if let Some(j) = justification {
        out.push_str(&format!(", \"justification\": {}", json_str(j)));
    }
    out.push_str(" }");
}

fn push_table<'a>(out: &mut String, findings: impl Iterator<Item = &'a Finding>) {
    for f in findings {
        out.push_str(&format!("  {}:{}: [{}] {}\n", f.file, f.line, f.rule, f.message));
        if !f.snippet.is_empty() {
            out.push_str(&format!("      | {}\n", f.snippet));
        }
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
