//! The rule engine: domain invariants checked over the token stream.
//!
//! Rule catalogue (ids are what `camelot-lint.toml` allowlist entries and
//! the JSON report reference):
//!
//! | id               | scope (config `[paths]`)    | invariant |
//! |------------------|-----------------------------|-----------|
//! | `panic-path`     | `panic-free` prefixes       | no `unwrap`/`expect`, no panicking macros, no `[]` indexing — untrusted input must surface as `CamelotError`/`TransportError`, never abort a worker |
//! | `hot-path`       | `hot-regions` prefixes      | inside `// lint:hot-begin(name)` … `// lint:hot-end` regions: no `%` reduction, no `.clone()`, no allocation |
//! | `crate-header`   | every `src/lib.rs`          | crate root carries `#![forbid(unsafe_code)]` + the shared `#![deny(...)]` set |
//! | `dropped-result` | `no-dropped-result` prefixes| no `let _ = fallible(...)` — errors must propagate or be handled |
//!
//! Code under `#[cfg(test)]` / `#[test]` items is exempt from every rule:
//! tests panicking on broken invariants is exactly what tests are for.
//! `debug_assert!` family macros are likewise allowed in panic-free scopes —
//! they compile out of release builds, so they cannot abort a production
//! worker, while still documenting invariants in debug runs.

use crate::lexer::{lex, Token, TokenKind};

/// One rule violation, positioned by file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (`/`-separated) of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Rule id (see the module docs for the catalogue).
    pub rule: &'static str,
    /// Human-oriented description of the violation.
    pub message: String,
    /// The trimmed source line, used for allowlist pattern matching.
    pub snippet: String,
}

/// Which rules apply to which files; built from `camelot-lint.toml` by
/// [`crate::config`], or set to [`RuleScope::all`] to run every rule on
/// every file (the `--all-paths` fixture/smoke mode).
#[derive(Clone, Debug, Default)]
pub struct RuleScope {
    /// Path prefixes whose files must be panic-free.
    pub panic_free: Vec<String>,
    /// Path prefixes whose files may not drop `Result`s via `let _ =`.
    pub dropped_result: Vec<String>,
    /// Path prefixes whose `lint:hot-begin/end` regions are checked.
    pub hot_regions: Vec<String>,
    /// When set, every rule applies to every file regardless of prefixes.
    pub all_paths: bool,
}

impl RuleScope {
    /// A scope that applies every rule to every file.
    pub fn all() -> Self {
        RuleScope { all_paths: true, ..RuleScope::default() }
    }

    fn applies(&self, path: &str, prefixes: &[String]) -> bool {
        self.all_paths || prefixes.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// Run every in-scope rule over one file's source. `rel_path` must use `/`
/// separators (it is matched against config prefixes and allowlist entries).
pub fn lint_file(rel_path: &str, source: &str, scope: &RuleScope) -> Vec<Finding> {
    let tokens = lex(source);
    let file = FileView::new(rel_path, source, &tokens);
    let mut findings = Vec::new();
    if scope.applies(rel_path, &scope.panic_free) {
        panic_path_rule(&file, &mut findings);
    }
    if scope.applies(rel_path, &scope.hot_regions) {
        hot_path_rule(&file, &mut findings);
    }
    if scope.all_paths || rel_path.ends_with("src/lib.rs") {
        crate_header_rule(&file, &mut findings);
    }
    if scope.applies(rel_path, &scope.dropped_result) {
        dropped_result_rule(&file, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Pre-computed per-file views shared by the rules: the significant
/// (non-trivia) token sequence, which of those tokens sit inside test-only
/// items, and the raw source lines for snippets.
struct FileView<'a> {
    path: &'a str,
    tokens: &'a [Token<'a>],
    /// Indices into `tokens` of non-whitespace, non-comment tokens.
    sig: Vec<usize>,
    /// Parallel to `sig`: true when the token is inside `#[cfg(test)]` /
    /// `#[test]` items.
    in_test: Vec<bool>,
    lines: Vec<&'a str>,
}

impl<'a> FileView<'a> {
    fn new(path: &'a str, source: &'a str, tokens: &'a [Token<'a>]) -> Self {
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let in_test = mark_test_items(tokens, &sig);
        FileView { path, tokens, sig, in_test, lines: source.lines().collect() }
    }

    /// The significant token at significant-index `s`.
    fn tok(&self, s: usize) -> &Token<'a> {
        &self.tokens[self.sig[s]]
    }

    fn text(&self, s: usize) -> &'a str {
        self.tok(s).text
    }

    fn kind(&self, s: usize) -> TokenKind {
        self.tok(s).kind
    }

    fn finding(&self, s: usize, rule: &'static str, message: String) -> Finding {
        let line = self.tok(s).line;
        let snippet =
            self.lines.get(line as usize - 1).map_or(String::new(), |l| l.trim().to_string());
        Finding { file: self.path.to_string(), line, rule, message, snippet }
    }
}

/// Mark significant tokens covered by `#[cfg(test)]` / `#[test]` items.
///
/// Heuristic but robust for rustfmt-formatted code: on seeing one of those
/// attributes, skip any further attributes, then mark everything up to the
/// end of the next item — the matching `}` of its first brace, or a `;` for
/// braceless items.
fn mark_test_items(tokens: &[Token<'_>], sig: &[usize]) -> Vec<bool> {
    let text = |s: usize| tokens[sig[s]].text;
    let n = sig.len();
    let mut marked = vec![false; n];
    let mut s = 0usize;
    while s < n {
        if let Some(after_attr) = match_test_attribute(tokens, sig, s) {
            let mut j = after_attr;
            // Skip stacked attributes (e.g. `#[cfg(test)] #[allow(...)] mod t`).
            while j < n && text(j) == "#" && j + 1 < n && text(j + 1) == "[" {
                let mut depth = 0i32;
                while j < n {
                    match text(j) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Find the item body: first `{` before a top-level `;`.
            let body_start = j;
            let mut end = n;
            let mut k = j;
            let mut paren = 0i32;
            while k < n {
                match text(k) {
                    "(" | "[" => paren += 1,
                    ")" | "]" => paren -= 1,
                    ";" if paren <= 0 => {
                        end = k + 1;
                        break;
                    }
                    "{" if paren <= 0 => {
                        let mut depth = 0i32;
                        while k < n {
                            match text(k) {
                                "{" => depth += 1,
                                "}" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            k += 1;
                        }
                        end = (k + 1).min(n);
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            for flag in marked.iter_mut().take(end).skip(s.min(body_start)) {
                *flag = true;
            }
            s = end.max(s + 1);
        } else {
            s += 1;
        }
    }
    marked
}

/// If significant index `s` starts a `#[cfg(test)]` or `#[test]` attribute,
/// return the significant index one past its closing `]`.
fn match_test_attribute(tokens: &[Token<'_>], sig: &[usize], s: usize) -> Option<usize> {
    let text = |s: usize| sig.get(s).map(|&i| tokens[i].text);
    if text(s) != Some("#") || text(s + 1) != Some("[") {
        return None;
    }
    let is_test = match text(s + 2) {
        Some("test") => text(s + 3) == Some("]"),
        Some("cfg") => {
            text(s + 3) == Some("(")
                && text(s + 4) == Some("test")
                && text(s + 5) == Some(")")
                && text(s + 6) == Some("]")
        }
        _ => false,
    };
    if !is_test {
        return None;
    }
    // Walk to the closing `]` (we already know its position, but keep it
    // uniform for both shapes).
    let mut depth = 0i32;
    let mut j = s + 1;
    while let Some(t) = text(j) {
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j + 1);
                }
            }
            _ => {}
        }
        j += 1;
    }
    Some(j)
}

const PANICKING_MACROS: &[&str] =
    &["panic", "unreachable", "todo", "unimplemented", "assert", "assert_eq", "assert_ne"];

fn panic_path_rule(file: &FileView<'_>, out: &mut Vec<Finding>) {
    for s in 0..file.sig.len() {
        if file.in_test[s] {
            continue;
        }
        let prev = s.checked_sub(1).map(|p| file.text(p));
        let next = file.sig.get(s + 1).map(|_| file.text(s + 1));
        match file.kind(s) {
            TokenKind::Ident => {
                let name = file.text(s);
                if (name == "unwrap" || name == "expect") && prev == Some(".") && next == Some("(")
                {
                    out.push(file.finding(
                        s,
                        "panic-path",
                        format!("`.{name}()` can abort a worker; return a `CamelotError` instead"),
                    ));
                } else if PANICKING_MACROS.contains(&name) && next == Some("!") {
                    out.push(file.finding(
                        s,
                        "panic-path",
                        format!("`{name}!` panics; untrusted input must surface as an error"),
                    ));
                }
            }
            // `expr[...]` indexing can panic. The previous significant
            // token is an identifier, `]`, or `)` exactly when `[` is an
            // index expression (attributes follow `#`/`!`, slice types
            // follow `&`/`<`/`(`, array literals follow `=`/`,`/…,
            // macro brackets follow `!`).
            TokenKind::Punct
                if file.text(s) == "["
                    && (matches!(prev, Some("]") | Some(")"))
                        || (s > 0
                            && file.kind(s - 1) == TokenKind::Ident
                            && !is_keyword(file.text(s - 1)))) =>
            {
                out.push(file.finding(
                    s,
                    "panic-path",
                    "indexing can panic on out-of-range input; use `.get(..)`".to_string(),
                ));
            }
            _ => {}
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (e.g. `return [..]`, `in [..]`).
fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "return" | "in" | "if" | "else" | "match" | "break" | "const" | "static" | "mut" | "dyn"
    )
}

const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "collect"];
const ALLOC_MACROS: &[&str] = &["vec", "format"];
const ALLOC_TYPES: &[&str] = &["Vec", "String", "Box", "HashMap", "BTreeMap", "VecDeque"];
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

fn hot_path_rule(file: &FileView<'_>, out: &mut Vec<Finding>) {
    // Regions are delimited by comments; walk the *full* token stream to see
    // them, but report only on significant tokens inside a region.
    let mut region: Option<(String, usize)> = None; // (name, opening token idx)
    let mut sig_cursor = 0usize;
    for (i, t) in file.tokens.iter().enumerate() {
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            // A marker is a comment whose body *starts* with the directive
            // (prose that merely mentions `lint:hot-begin` is not one).
            let body = t.text.trim_start_matches(['/', '*', '!']).trim_start();
            if body.starts_with("lint:hot-begin") {
                let name = body
                    .split_once("lint:hot-begin")
                    .and_then(|(_, rest)| rest.strip_prefix('('))
                    .and_then(|rest| rest.split_once(')'))
                    .map_or_else(|| "unnamed".to_string(), |(n, _)| n.to_string());
                if region.is_some() {
                    // Keep the outer region open so everything after the
                    // stray marker is still checked (and the unterminated
                    // finding, if any, points at the outer begin).
                    out.push(finding_at(
                        file,
                        i,
                        "hot-path",
                        "nested `lint:hot-begin` marker; close the previous region first"
                            .to_string(),
                    ));
                } else {
                    region = Some((name, i));
                }
            } else if body.starts_with("lint:hot-end") && region.take().is_none() {
                out.push(finding_at(
                    file,
                    i,
                    "hot-path",
                    "`lint:hot-end` without a matching `lint:hot-begin`".to_string(),
                ));
            }
            continue;
        }
        // Advance the significant cursor so we can consult neighbours/test
        // status for this token.
        while sig_cursor < file.sig.len() && file.sig[sig_cursor] < i {
            sig_cursor += 1;
        }
        let Some((name, _)) = &region else { continue };
        if sig_cursor >= file.sig.len() || file.sig[sig_cursor] != i || file.in_test[sig_cursor] {
            continue;
        }
        let s = sig_cursor;
        let prev = s.checked_sub(1).map(|p| file.text(p));
        let next = file.sig.get(s + 1).map(|_| file.text(s + 1));
        match t.kind {
            TokenKind::Punct if t.text == "%" => {
                out.push(file.finding(
                    s,
                    "hot-path",
                    format!(
                        "`%` reduction inside hot region `{name}`; use Barrett/Shoup field ops"
                    ),
                ));
            }
            TokenKind::Ident => {
                let word = t.text;
                if word == "clone" && prev == Some(".") && next == Some("(") {
                    out.push(file.finding(
                        s,
                        "hot-path",
                        format!("`.clone()` inside hot region `{name}`"),
                    ));
                } else if ALLOC_METHODS.contains(&word) && prev == Some(".") && next == Some("(") {
                    out.push(file.finding(
                        s,
                        "hot-path",
                        format!("allocating `.{word}()` inside hot region `{name}`"),
                    ));
                } else if ALLOC_MACROS.contains(&word) && next == Some("!") {
                    out.push(file.finding(
                        s,
                        "hot-path",
                        format!("allocating `{word}!` inside hot region `{name}`"),
                    ));
                } else if ALLOC_CTORS.contains(&word)
                    && s >= 3
                    && file.text(s - 1) == ":"
                    && file.text(s - 2) == ":"
                    && ALLOC_TYPES.contains(&file.text(s - 3))
                {
                    out.push(file.finding(
                        s,
                        "hot-path",
                        format!(
                            "allocation `{}::{word}` inside hot region `{name}`",
                            file.text(s - 3)
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    if let Some((name, i)) = region {
        out.push(finding_at(
            file,
            i,
            "hot-path",
            format!("hot region `{name}` is never closed with `lint:hot-end`"),
        ));
    }
}

/// Build a finding from a *raw* token index (used for comment markers, which
/// are not significant tokens).
fn finding_at(file: &FileView<'_>, i: usize, rule: &'static str, message: String) -> Finding {
    let line = file.tokens[i].line;
    let snippet = file.lines.get(line as usize - 1).map_or(String::new(), |l| l.trim().to_string());
    Finding { file: file.path.to_string(), line, rule, message, snippet }
}

/// The shared header every crate root must carry, in normalized
/// (whitespace-free) attribute form.
pub const REQUIRED_HEADER: &[&str] =
    &["forbid(unsafe_code)", "deny(missing_docs)", "deny(rustdoc::broken_intra_doc_links)"];

fn crate_header_rule(file: &FileView<'_>, out: &mut Vec<Finding>) {
    // Collect all inner attributes `#![...]`, normalized by concatenating
    // their significant token texts.
    let mut present: Vec<String> = Vec::new();
    let mut s = 0usize;
    while s + 2 < file.sig.len() {
        if file.text(s) == "#" && file.text(s + 1) == "!" && file.text(s + 2) == "[" {
            let mut depth = 0i32;
            let mut j = s + 2;
            let mut body = String::new();
            while j < file.sig.len() {
                match file.text(j) {
                    "[" => {
                        depth += 1;
                        if depth > 1 {
                            body.push('[');
                        }
                    }
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        body.push(']');
                    }
                    t => body.push_str(t),
                }
                j += 1;
            }
            present.push(body);
            s = j + 1;
        } else {
            s += 1;
        }
    }
    for required in REQUIRED_HEADER {
        if !present.iter().any(|p| p == required) {
            let snippet = file.lines.first().map_or(String::new(), |l| l.trim().to_string());
            out.push(Finding {
                file: file.path.to_string(),
                line: 1,
                rule: "crate-header",
                message: format!("crate root is missing `#![{required}]` from the shared header"),
                snippet,
            });
        }
    }
}

fn dropped_result_rule(file: &FileView<'_>, out: &mut Vec<Finding>) {
    let n = file.sig.len();
    for s in 0..n {
        if file.in_test[s]
            || file.text(s) != "let"
            || file.kind(s) != TokenKind::Ident
            || s + 2 >= n
            || file.text(s + 1) != "_"
            || file.text(s + 2) != "="
        {
            continue;
        }
        // `let _ = expr;` — flag when the right-hand side contains a call
        // (parentheses at any depth), i.e. a potentially fallible expression
        // whose `Result` is being silently discarded.
        let mut depth = 0i32;
        let mut has_call = false;
        let mut j = s + 3;
        while j < n {
            match file.text(j) {
                "(" => {
                    depth += 1;
                    has_call = true;
                }
                ")" => depth -= 1,
                "{" | "[" => depth += 1,
                "}" | "]" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        if has_call {
            out.push(file.finding(
                s,
                "dropped-result",
                "`let _ =` silently drops a possible `Result`; propagate or handle it".to_string(),
            ));
        }
    }
}
