//! `camelot-lint` — in-repo domain-invariant static analysis for the
//! Camelot workspace.
//!
//! The general-purpose toolchain (clippy, rustc lints) cannot express the
//! invariants this codebase actually lives or dies by: a hostile frame must
//! never panic a broadcast worker (an uninjected `Crash` breaks the paper's
//! fault model), and a `%` reduction or stray allocation must never creep
//! back into the Barrett/Shoup/NTT kernels that PR 3 and PR 6 tuned by
//! hand. This crate checks those invariants lexically, with zero external
//! dependencies (the workspace has no crates.io access): a small total Rust
//! lexer ([`lexer`]), a rule engine ([`rules`]), a justified allowlist
//! ([`config`]), and table/JSON reporting ([`report`]). The `camelot-lint`
//! binary wires them into a CI gate.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p camelot-lint                 # gate: exit 0 clean, 1 findings
//! cargo run -p camelot-lint -- --json r.json
//! cargo run -p camelot-lint -- --root crates/lint/tests/fixtures --all-paths
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
