//! Criterion benches for E6/E7: chromatic and Potts per-node evaluation
//! vs the sequential baselines.

use camelot_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use camelot_core::CamelotProblem;
use camelot_ff::{next_prime, PrimeField};
use camelot_graph::{chromatic::chromatic_value_mod, gen, MultiGraph};
use camelot_partition::{ChromaticValue, PottsValue};

fn bench_chromatic(c: &mut Criterion) {
    let field = PrimeField::new(1_000_000_007).unwrap();
    let mut group = c.benchmark_group("chromatic");
    group.sample_size(10);
    for &n in &[10usize, 14] {
        let g = gen::gnm(n, 2 * n, n as u64);
        group.bench_with_input(BenchmarkId::new("sequential_2^n", n), &n, |b, _| {
            b.iter(|| chromatic_value_mod(&g, 3, &field));
        });
        let problem = ChromaticValue::new(g.clone(), 3);
        let q = next_prime(problem.spec().min_modulus.max(1 << 20));
        let pf = PrimeField::new(q).unwrap();
        let ev = problem.evaluator(&pf);
        group.bench_with_input(BenchmarkId::new("camelot_eval_2^n/2", n), &n, |b, _| {
            b.iter(|| ev.eval(4242));
        });
    }
    group.finish();
}

fn bench_potts(c: &mut Criterion) {
    let mut group = c.benchmark_group("potts");
    group.sample_size(10);
    for &n in &[6usize, 9] {
        let g = MultiGraph::from_graph(&gen::gnm(n, 2 * n, 3));
        let problem = PottsValue::new(g, 3, 2);
        let q = next_prime(problem.spec().min_modulus.max(1 << 20));
        let pf = PrimeField::new(q).unwrap();
        let ev = problem.evaluator(&pf);
        group.bench_with_input(BenchmarkId::new("tripartite_eval", n), &n, |b, _| {
            b.iter(|| ev.eval(777));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chromatic, bench_potts);
criterion_main!(benches);
