//! Criterion benches for E10/E11: per-node evaluation of the
//! polynomial-time designs.

use camelot_algebraic::{BoolMatrix, Convolution3Sum, HammingDistribution, OrthogonalVectors};
use camelot_bench::criterion::{self, criterion_group, criterion_main, BenchmarkId, Criterion};
use camelot_core::CamelotProblem;
use camelot_csp::{Csp2, CspWeightValue};
use camelot_ff::{next_prime, PrimeField};

fn bench_eval<P: CamelotProblem>(
    group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>,
    name: &str,
    size: usize,
    problem: &P,
) {
    let q = next_prime(problem.spec().min_modulus.max(1 << 20));
    let pf = PrimeField::new(q).unwrap();
    let ev = problem.evaluator(&pf);
    group.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
        b.iter(|| ev.eval(424_242));
    });
}

fn bench_polytime(c: &mut Criterion) {
    let mut group = c.benchmark_group("polytime_eval");
    group.sample_size(10);
    for &n in &[32usize, 64] {
        let a = BoolMatrix::random(n, 8, 40, 1);
        let b = BoolMatrix::random(n, 8, 40, 2);
        bench_eval(&mut group, "ov", n, &OrthogonalVectors::new(a, b));
    }
    for &n in &[8usize, 16] {
        let a = BoolMatrix::random(n, 6, 50, 3);
        let b = BoolMatrix::random(n, 6, 50, 4);
        bench_eval(&mut group, "hamming", n, &HammingDistribution::new(a, b));
        bench_eval(&mut group, "conv3sum", n, &Convolution3Sum::random(n, 4, 5));
    }
    for &sigma in &[2usize, 3] {
        let csp = Csp2::random(6, sigma, 4, 50, 9);
        bench_eval(&mut group, "csp_weight", sigma, &CspWeightValue::new(csp, 2));
    }
    group.finish();
}

criterion_group!(benches, bench_polytime);
criterion_main!(benches);
