//! Criterion benches for E1/E2: the (6 2)-linear form evaluators and the
//! per-node clique proof evaluation.

use camelot_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use camelot_cliques::{clique_chi, Form62};
use camelot_ff::PrimeField;
use camelot_graph::gen;
use camelot_linalg::MatMulTensor;

fn bench_form62(c: &mut Criterion) {
    let field = PrimeField::new(1_000_000_007).unwrap();
    let tensor = MatMulTensor::strassen();
    let mut group = c.benchmark_group("form62");
    group.sample_size(10);
    for &t_pow in &[2usize, 3] {
        let n = 2usize.pow(t_pow as u32);
        let g = gen::complete(n);
        let chi = clique_chi(&g, 1, n);
        let form = Form62::uniform(chi);
        group.bench_with_input(BenchmarkId::new("nesetril_poljak", n), &n, |b, _| {
            b.iter(|| form.eval_nesetril_poljak(&field).0);
        });
        group.bench_with_input(BenchmarkId::new("new_circuit", n), &n, |b, _| {
            b.iter(|| form.eval_circuit(&field, &tensor, t_pow).0);
        });
        group.bench_with_input(BenchmarkId::new("proof_eval_one_point", n), &n, |b, _| {
            b.iter(|| form.eval_proof_at(&field, &tensor, t_pow, 123_456));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_form62);
criterion_main!(benches);
