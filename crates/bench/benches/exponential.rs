//! Criterion benches for E8/E9: per-node evaluation of the exponential
//! designs vs their sequential baselines.

use camelot_algebraic::{CnfFormula, CountCnfSat, Permanent, SetCovers};
use camelot_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use camelot_core::CamelotProblem;
use camelot_ff::{next_prime, PrimeField};

fn bench_permanent(c: &mut Criterion) {
    let mut group = c.benchmark_group("permanent");
    group.sample_size(10);
    for &n in &[8usize, 10] {
        let p = Permanent::random(n, 2, n as u64);
        group.bench_with_input(BenchmarkId::new("ryser_2^n", n), &n, |b, _| {
            b.iter(|| p.reference_permanent());
        });
        let q = next_prime(p.spec().min_modulus.max(1 << 20));
        let pf = PrimeField::new(q).unwrap();
        let ev = p.evaluator(&pf);
        group.bench_with_input(BenchmarkId::new("camelot_eval_2^n/2", n), &n, |b, _| {
            b.iter(|| ev.eval(31337));
        });
    }
    group.finish();
}

fn bench_cnf(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnfsat");
    group.sample_size(10);
    for &v in &[10usize, 12] {
        let formula = CnfFormula::random_ksat(v, 3 * v / 2, 3, v as u64);
        let problem = CountCnfSat::new(formula);
        let q = next_prime(problem.spec().min_modulus.max(1 << 20));
        let pf = PrimeField::new(q).unwrap();
        let ev = problem.evaluator(&pf);
        group.bench_with_input(BenchmarkId::new("camelot_eval", v), &v, |b, _| {
            b.iter(|| ev.eval(5555));
        });
    }
    group.finish();
}

fn bench_setcover(c: &mut Criterion) {
    let mut group = c.benchmark_group("setcover");
    group.sample_size(10);
    for &n in &[10usize, 12] {
        let family: Vec<u64> = (0..n as u64).map(|i| (0b1011 << i) & ((1 << n) - 1)).collect();
        let problem = SetCovers::new(n, family, 3);
        let q = next_prime(problem.spec().min_modulus.max(1 << 20));
        let pf = PrimeField::new(q).unwrap();
        let ev = problem.evaluator(&pf);
        group.bench_with_input(BenchmarkId::new("camelot_eval", n), &n, |b, _| {
            b.iter(|| ev.eval(919));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_permanent, bench_cnf, bench_setcover);
criterion_main!(benches);
