//! Criterion benches for E3–E5: split/sparse parts, proof evaluation,
//! and the AYZ counter across densities.

use camelot_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use camelot_core::CamelotProblem;
use camelot_ff::{next_prime, PrimeField};
use camelot_graph::gen;
use camelot_linalg::MatMulTensor;
use camelot_triangles::{count_triangles_ayz, Family, TriangleCount, TriangleSplit};

fn bench_parts(c: &mut Criterion) {
    let tensor = MatMulTensor::strassen();
    let mut group = c.benchmark_group("triangle_parts");
    group.sample_size(10);
    for &m in &[60usize, 240] {
        let g = gen::gnm(32, m, 4);
        let split = TriangleSplit::new(&g, &tensor);
        let q = next_prime(((split.padded_size() as u64).pow(3) + 1).max(1 << 20));
        let field = PrimeField::new(q).unwrap();
        group.bench_with_input(BenchmarkId::new("one_part", m), &m, |b, _| {
            b.iter(|| split.family_part(&field, Family::Alpha, 0));
        });
    }
    group.finish();
}

fn bench_proof_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("triangle_proof");
    group.sample_size(10);
    for &m in &[60usize, 240] {
        let g = gen::gnm(32, m, 4);
        let problem = TriangleCount::new(&g);
        let q = problem.spec().min_modulus;
        let field = PrimeField::new(next_prime(q)).unwrap();
        let ev = problem.evaluator(&field);
        group.bench_with_input(BenchmarkId::new("eval_one_point", m), &m, |b, _| {
            b.iter(|| ev.eval(98_765));
        });
    }
    group.finish();
}

fn bench_ayz(c: &mut Criterion) {
    let tensor = MatMulTensor::strassen();
    let mut group = c.benchmark_group("ayz");
    group.sample_size(10);
    for &m in &[100usize, 300] {
        let g = gen::gnm(32, m, 5);
        group.bench_with_input(BenchmarkId::new("count", m), &m, |b, _| {
            b.iter(|| count_triangles_ayz(&g, &tensor).triangles);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parts, bench_proof_eval, bench_ayz);
criterion_main!(benches);
