//! Criterion benches for the Reed–Solomon codeword pipeline: encode
//! (Horner baseline vs subproduct-tree fast path), interpolation (Newton
//! baseline vs tree), and full Gao decoding, over an NTT-friendly prime.

use camelot_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use camelot_bench::{fault_every_16th, random_message};
use camelot_ff::{ntt_prime, PrimeField, SplitMix64};
use camelot_poly::{eval_many, interpolate, interpolate_fast};
use camelot_rscode::RsCode;

fn bench_rscode(c: &mut Criterion) {
    let (q, _) = ntt_prime(1 << 20, 16);
    let field = PrimeField::new(q).unwrap();
    let mut group = c.benchmark_group("rscode");
    group.sample_size(5);
    for &log in &[10u32, 12] {
        let e = 1usize << log;
        let d = e / 2;
        let mut rng = SplitMix64::new(u64::from(log));
        let msg = random_message(&field, d, &mut rng);
        let code = RsCode::consecutive(&field, e);
        let clean = code.encode(&field, &msg);

        group.bench_with_input(BenchmarkId::new("encode_horner", e), &e, |b, _| {
            b.iter(|| eval_many(&field, &msg, code.points()));
        });
        group.bench_with_input(BenchmarkId::new("encode_fast", e), &e, |b, _| {
            b.iter(|| code.encode(&field, &msg));
        });

        let pts: Vec<(u64, u64)> =
            code.points().iter().copied().zip(clean.iter().copied()).collect();
        group.bench_with_input(BenchmarkId::new("interpolate_newton", e), &e, |b, _| {
            b.iter(|| interpolate(&field, &pts));
        });
        group.bench_with_input(BenchmarkId::new("interpolate_fast", e), &e, |b, _| {
            b.iter(|| interpolate_fast(&field, &pts));
        });

        let word = fault_every_16th(&field, &clean);
        group.bench_with_input(BenchmarkId::new("decode_gao", e), &e, |b, _| {
            b.iter(|| code.decode(&field, &word, d).unwrap());
        });

        // Roots-of-unity schedule: encode is one forward transform.
        let roots = RsCode::roots_of_unity(&field, e).expect("NTT-friendly prime");
        group.bench_with_input(BenchmarkId::new("encode_ntt", e), &e, |b, _| {
            b.iter(|| roots.encode(&field, &msg));
        });
        let clean_r = roots.encode(&field, &msg);
        let word_r = fault_every_16th(&field, &clean_r);
        group.bench_with_input(BenchmarkId::new("decode_gao_ntt", e), &e, |b, _| {
            b.iter(|| roots.decode(&field, &word_r, d).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rscode);
criterion_main!(benches);
