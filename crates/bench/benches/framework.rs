//! Criterion benches for the framework substrates: field arithmetic,
//! Reed–Solomon encode/decode (the per-node §1.3 costs), and Yates
//! transforms.

use camelot_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use camelot_ff::{PrimeField, RngLike, SplitMix64};
use camelot_linalg::{yates, SmallMatrix};
use camelot_poly::Poly;
use camelot_rscode::RsCode;

fn bench_rscode(c: &mut Criterion) {
    let field = PrimeField::new(1_048_583).unwrap();
    let mut rng = SplitMix64::new(1);
    let mut group = c.benchmark_group("rscode");
    group.sample_size(10);
    for &(d, e) in &[(64usize, 96usize), (256, 384)] {
        let msg = Poly::from_reduced((0..=d).map(|_| rng.next_u64() % field.modulus()).collect());
        let code = RsCode::consecutive(&field, e);
        let clean = code.encode(&field, &msg);
        group.bench_with_input(BenchmarkId::new("encode", e), &e, |b, _| {
            b.iter(|| code.encode(&field, &msg));
        });
        let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
        for pos in 0..(e - d - 1) / 2 {
            word[pos * 2] = Some(field.add(clean[pos * 2], 1));
        }
        group.bench_with_input(BenchmarkId::new("gao_decode_max_errors", e), &e, |b, _| {
            b.iter(|| code.decode(&field, &word, d).unwrap());
        });
    }
    group.finish();
}

fn bench_yates(c: &mut Criterion) {
    let field = PrimeField::new(1_000_000_007).unwrap();
    let mut rng = SplitMix64::new(2);
    let zeta = SmallMatrix::new(2, 2, vec![1, 0, 1, 1]);
    let mut group = c.benchmark_group("yates");
    group.sample_size(10);
    for &k in &[10usize, 14, 16] {
        let x: Vec<u64> = (0..1usize << k).map(|_| rng.next_u64() % 1000).collect();
        group.bench_with_input(BenchmarkId::new("zeta_2^k", k), &k, |b, _| {
            b.iter(|| yates(&field, &zeta, k, &x));
        });
    }
    group.finish();
}

fn bench_field(c: &mut Criterion) {
    let field = PrimeField::new((1 << 61) - 1).unwrap();
    let mut rng = SplitMix64::new(3);
    let xs: Vec<u64> = (0..1024).map(|_| field.sample(&mut rng)).collect();
    c.bench_function("field/1024_mul_add_chain", |b| {
        b.iter(|| {
            let mut acc = 1u64;
            for &x in &xs {
                acc = field.mul_add(acc, x, x);
            }
            acc
        });
    });
    c.bench_function("field/batch_inverse_1024", |b| {
        b.iter(|| {
            let mut v = xs.clone();
            field.inv_batch(&mut v);
            v[0]
        });
    });
}

criterion_group!(benches, bench_rscode, bench_yates, bench_field);
criterion_main!(benches);
