//! Experiment F2 — verification soundness (§1.3 step 3).
//!
//! Claim: a wrong proof is accepted by one random spot check with
//! probability at most `d/q`, driven down exponentially by repetition.
//! We measure the empirical acceptance rate of adversarially corrupted
//! proofs over a small field where the bound is visible.

use camelot_bench::Table;
use camelot_ff::{next_prime, PrimeField, RngLike, SplitMix64};
use camelot_poly::Poly;

fn main() {
    let mut rng = SplitMix64::new(2024);
    let mut table = Table::new(&["d", "q", "bound d/q", "measured accept rate", "trials"]);
    for (d, q_floor) in [(20usize, 1_000u64), (100, 1_000), (100, 10_000), (500, 10_000)] {
        let q = next_prime(q_floor);
        let field = PrimeField::new(q).unwrap();
        // True proof P and a worst-case lie P' = P + (x-1)(x-2)...(x-d):
        // the difference has the maximum number of roots, so P' maximizes
        // the acceptance probability among wrong proofs.
        let p = Poly::from_reduced((0..=d).map(|_| rng.next_u64() % q).collect());
        let mut diff = Poly::constant(1);
        for j in 1..=d as u64 {
            diff = diff.mul(&field, &Poly::from_reduced(vec![field.neg(j % q), 1]));
        }
        let lie = p.add(&field, &diff);
        let trials = 200_000usize;
        let mut accepted = 0usize;
        for _ in 0..trials {
            let x0 = field.sample(&mut rng);
            if p.eval(&field, x0) == lie.eval(&field, x0) {
                accepted += 1;
            }
        }
        table.row(&[
            d.to_string(),
            q.to_string(),
            format!("{:.5}", d as f64 / q as f64),
            format!("{:.5}", accepted as f64 / trials as f64),
            trials.to_string(),
        ]);
    }
    table.print("F2: acceptance rate of a worst-case wrong proof");
    println!("paper claim: rate <= d/q per trial (tight for a d-root difference)");
}
