//! Experiment G4 — chaos engineering the proof cluster.
//!
//! Claim: transport-level chaos (delays, dropped and truncated frames,
//! garbled symbols, duplicate delivery, connection resets, hangs) is
//! absorbed by the same Reed–Solomon distance that the paper's fault
//! model budgets for byzantine nodes. A seeded [`ChaosPlan`] afflicts
//! the same nodes the same way on every backend, so a chaos run is as
//! reproducible as a clean one: slow or dead workers are demoted to
//! crash erasures at the I/O deadline, garbled replies surface as
//! decoder-corrected errors, and when a draw lands outside the decoding
//! radius the engine escalates the fault budget and retries.
//!
//! The sweep raises the per-node fault rate and reports, per backend:
//! wall clock, the recovery counters (erasures seen, errors corrected,
//! retries, degraded escalations, demotions), and whether the produced
//! certificate is bit-identical to the in-process reference under the
//! same plan.
//!
//! Flags: `--nodes K` (default 16), `--fault-tolerance F` (default
//! `(K - d - 1) / 2`, one point per node), `--rates P1,P2,...` (percent,
//! default `0,12,25,50`), `--seed S`, `--escalations N` (default 2),
//! `--deadline-ms N` (default 300), `--backend
//! all|inproc|channel|socket|socket-pool` (default all).

use camelot_bench::{fmt_duration, Table};
use camelot_cluster::{
    Backend, ChaosPlan, EvalProgram, SocketTransport, TransportTuning, WorkerMode,
};
use camelot_core::{
    CamelotError, CamelotOutcome, CamelotProblem, Engine, EngineConfig, Evaluate, PrimeProof,
    ProofSpec, RecoveryPolicy,
};
use camelot_ff::{crt_u, PrimeField, Residue};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    nodes: usize,
    fault_tolerance: Option<usize>,
    rates: Vec<u8>,
    seed: u64,
    escalations: u32,
    deadline_ms: u64,
    backend: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        nodes: 16,
        fault_tolerance: None,
        rates: vec![0, 12, 25, 50],
        seed: 0xC4A0_55ED,
        escalations: 2,
        deadline_ms: 300,
        backend: "all".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--nodes" => args.nodes = value().parse().expect("--nodes"),
            "--fault-tolerance" => {
                args.fault_tolerance = Some(value().parse().expect("--fault-tolerance"));
            }
            "--rates" => {
                args.rates = value()
                    .split(',')
                    .map(|r| r.trim().parse().expect("--rates takes percents like 0,12,25,50"))
                    .collect();
            }
            "--seed" => args.seed = value().parse().expect("--seed"),
            "--escalations" => args.escalations = value().parse().expect("--escalations"),
            "--deadline-ms" => args.deadline_ms = value().parse().expect("--deadline-ms"),
            "--backend" => args.backend = value(),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// A wire-expressible problem (explicit polynomial coefficients), so
/// the round runs identically on socket workers; the recovered answer
/// is `P(0)` over the integers.
struct WirePoly {
    coeffs: Vec<u64>,
}

struct WirePolyEval {
    field: PrimeField,
    coeffs: Vec<u64>,
}

impl Evaluate for WirePolyEval {
    fn eval(&self, x0: u64) -> u64 {
        EvalProgram::Poly(self.coeffs.clone()).eval(&self.field, x0)
    }

    fn program(&self) -> Option<EvalProgram> {
        Some(EvalProgram::Poly(self.coeffs.clone()))
    }
}

impl CamelotProblem for WirePoly {
    type Output = u128;

    fn spec(&self) -> ProofSpec {
        ProofSpec::new(self.coeffs.len() - 1, 1 << 20, 64)
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let coeffs = self.coeffs.iter().map(|&c| field.reduce(c)).collect();
        Box::new(WirePolyEval { field: *field, coeffs })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<u128, CamelotError> {
        let residues: Vec<Residue> =
            proofs.iter().map(|p| Residue { modulus: p.modulus, value: p.eval(0) }).collect();
        crt_u(&residues)
            .to_u128()
            .ok_or_else(|| CamelotError::RecoveryFailed { reason: "value exceeded u128".into() })
    }
}

fn backend_names(selected: &str) -> Vec<&'static str> {
    let all = ["inproc", "channel", "socket", "socket-pool"];
    if selected == "all" {
        return all.to_vec();
    }
    let found: Vec<&'static str> = all.iter().copied().filter(|name| *name == selected).collect();
    assert!(!found.is_empty(), "unknown --backend {selected}");
    found
}

fn run_backend(
    name: &str,
    args: &Args,
    fault_tolerance: usize,
    chaos: &ChaosPlan,
    tuning: &TransportTuning,
    problem: &WirePoly,
) -> Result<CamelotOutcome<u128>, CamelotError> {
    let config = EngineConfig::sequential(args.nodes, fault_tolerance)
        .with_tuning(tuning.clone())
        .with_chaos(chaos.clone())
        .with_recovery(RecoveryPolicy::escalating(args.escalations));
    match name {
        "inproc" => Engine::new(config.with_backend(Backend::InProcess)).run(problem),
        "channel" => Engine::new(config.with_backend(Backend::Channel)).run(problem),
        "socket" => {
            Engine::new(config.with_backend(Backend::Socket(WorkerMode::Threads))).run(problem)
        }
        "socket-pool" => {
            // The persistent pool carries its own tuning and chaos; the
            // engine only supplies the recovery policy.
            let pool = SocketTransport::persistent(WorkerMode::Threads)
                .with_tuning(tuning.clone())
                .with_chaos(Some(chaos.clone()));
            let outcome = Engine::with_transport(config, Arc::new(pool.clone())).run(problem);
            pool.shutdown_pool().map_err(|err| CamelotError::TransportFailed {
                reason: format!("shutting down the pool: {err}"),
            })?;
            outcome
        }
        other => panic!("unknown backend {other}"),
    }
}

fn main() {
    let args = parse_args();
    let problem = WirePoly { coeffs: vec![271_828_182, 8, 4, 5] };
    let degree = problem.spec().degree_bound;
    // One point per node by default: e = d + 1 + 2f = nodes.
    let fault_tolerance =
        args.fault_tolerance.unwrap_or_else(|| (args.nodes.saturating_sub(degree + 1)) / 2);
    let tuning = TransportTuning::default()
        .with_io_deadline(Duration::from_millis(args.deadline_ms.max(1)))
        .with_demotion(true);
    let backends = backend_names(&args.backend);

    let mut headers = vec!["rate %", "afflicted", "backend", "time", "status"];
    headers.extend(["erasures", "errors", "retries", "degraded", "demoted", "identical"]);
    let mut table = Table::new(&headers);

    for &rate in &args.rates {
        let chaos = ChaosPlan::random(args.nodes, rate, args.seed);
        let afflicted = chaos.affected_nodes().len();
        // The in-process run is the per-rate reference every other
        // backend's certificate must match bit for bit.
        let reference =
            run_backend("inproc", &args, fault_tolerance, &chaos, &tuning, &problem).ok();
        for name in &backends {
            let start = Instant::now();
            let result = run_backend(name, &args, fault_tolerance, &chaos, &tuning, &problem);
            let elapsed = start.elapsed();
            match result {
                Ok(outcome) => {
                    assert_eq!(
                        outcome.output,
                        u128::from(problem.coeffs[0]),
                        "{name} at {rate}%: chaos corrupted the recovered answer"
                    );
                    let identical = match &reference {
                        Some(want) => {
                            if outcome.certificate.to_wire() == want.certificate.to_wire() {
                                "yes".to_string()
                            } else {
                                "NO".to_string()
                            }
                        }
                        None => "-".to_string(),
                    };
                    table.row(&[
                        rate.to_string(),
                        afflicted.to_string(),
                        (*name).to_string(),
                        fmt_duration(elapsed),
                        "ok".to_string(),
                        outcome.report.erasures_seen.to_string(),
                        outcome.report.errors_corrected.to_string(),
                        outcome.report.retries.to_string(),
                        outcome.report.degraded.to_string(),
                        outcome.report.demotions.len().to_string(),
                        identical,
                    ]);
                }
                Err(err) => {
                    table.row(&[
                        rate.to_string(),
                        afflicted.to_string(),
                        (*name).to_string(),
                        fmt_duration(elapsed),
                        format!("failed: {err}"),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                        "-".to_string(),
                    ]);
                }
            }
        }
    }
    table.print(&format!(
        "G4: chaos sweep, K = {} nodes, f = {fault_tolerance}, io deadline {} ms, \
         up to {} escalations, seed {:#x}",
        args.nodes, args.deadline_ms, args.escalations, args.seed
    ));
    println!(
        "paper claim: transport chaos within the decoding radius is just more noise for the \
         Reed-Solomon distance (footnote 7's fault model, met at the transport layer)"
    );
}
