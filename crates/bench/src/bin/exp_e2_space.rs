//! Experiment E2/E12 — Theorem 2/13: the new `(6 2)` circuit cuts space
//! from `O(N⁴)` to `O(N²)` at the same operation-count exponent.
//!
//! We report the peak live field elements of both evaluators on growing
//! `N`, and their wall-times (the shapes, not absolute constants, are
//! what the theorem predicts).

use camelot_bench::{fmt_duration, time, Table};
use camelot_cliques::Form62;
use camelot_ff::{PrimeField, RngLike, SplitMix64};
use camelot_linalg::{MatMulTensor, Matrix};

fn main() {
    let field = PrimeField::new(1_000_000_007).unwrap();
    let tensor = MatMulTensor::strassen();
    let mut rng = SplitMix64::new(1);
    let mut table =
        Table::new(&["N", "NP space (elems)", "circuit space", "ratio", "NP time", "circuit time"]);
    for t_pow in [1usize, 2, 3] {
        let n = 2usize.pow(t_pow as u32);
        let chi = Matrix::from_fn(n, n, |_, _| rng.next_u64() % 3);
        let form = Form62::uniform(chi);
        let ((v_np, s_np), t_np) = time(|| form.eval_nesetril_poljak(&field));
        let ((v_c, s_c), t_c) = time(|| form.eval_circuit(&field, &tensor, t_pow));
        assert_eq!(v_np, v_c, "evaluators must agree");
        table.row(&[
            n.to_string(),
            s_np.peak_field_elements.to_string(),
            s_c.peak_field_elements.to_string(),
            format!("{:.1}x", s_np.peak_field_elements as f64 / s_c.peak_field_elements as f64),
            fmt_duration(t_np),
            fmt_duration(t_c),
        ]);
    }
    table.print("E2/E12: (6 2)-form space, Nešetřil–Poljak vs the new circuit");
    println!("paper claim: space O(N^4) vs O(N^2) at matching operation exponent;");
    println!("the ratio must grow as N^2 (4x per doubling of N).");
}
