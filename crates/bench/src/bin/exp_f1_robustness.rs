//! Experiment F1 — robustness (§1.3 step 2 of the paper).
//!
//! Claim: with `e = d + 1 + 2f` evaluations, proof preparation tolerates
//! up to `f` byzantine corruptions — every honest node decodes the true
//! proof AND identifies exactly the failed nodes; one corruption past the
//! radius breaks unique decoding.

use camelot_bench::Table;
use camelot_cluster::FaultPlan;
use camelot_core::{CamelotProblem, Engine, EngineConfig};
use camelot_graph::gen;
use camelot_triangles::TriangleCount;

fn main() {
    let g = gen::gnm(10, 24, 42);
    let problem = TriangleCount::new(&g);
    let nodes = 40usize;
    let budget = 10usize; // f = 10 symbol errors
    let spec = problem.spec();
    let e = spec.degree_bound + 1 + 2 * budget;
    // Each node owns ~e/nodes symbols; corrupting c nodes costs
    // ceil(e/nodes)*c symbol errors.
    let per_node = e.div_ceil(nodes);
    let mut table = Table::new(&[
        "corrupt nodes",
        "symbol errors",
        "radius f=10",
        "decoded",
        "identified correctly",
    ]);
    for corrupt in 0..=6usize {
        let plan = FaultPlan::random_corrupt(nodes, corrupt, 7 + corrupt as u64);
        let expected: Vec<usize> = plan.faulty_nodes();
        let config = EngineConfig::auto(nodes, budget).with_plan(plan).with_full_decoding();
        let result = Engine::new(config).run(&problem);
        let (decoded, identified) = match &result {
            Ok(out) => (
                "yes".to_string(),
                if out.certificate.identified_faulty_nodes == expected {
                    "yes".to_string()
                } else {
                    format!("NO: {:?}", out.certificate.identified_faulty_nodes)
                },
            ),
            Err(e) => (format!("no ({e})"), "-".to_string()),
        };
        table.row(&[
            corrupt.to_string(),
            (corrupt * per_node).to_string(),
            (corrupt * per_node <= budget).to_string(),
            decoded,
            identified,
        ]);
    }
    table.print("F1: byzantine corruption sweep (triangle proof, e = d+1+2f)");
    println!("paper claim: decode + identification succeed iff errors <= (e-d-1)/2");
}
