//! Experiment E11 — Theorem 12: 2-CSP assignment enumeration by number
//! of satisfied constraints at `O*(σ^{(ω+ε)n/6})`.

use camelot_bench::{fmt_duration, time, Table};
use camelot_core::{CamelotProblem, Engine};
use camelot_csp::{enumerate_by_satisfied, Csp2, CspWeightValue};

fn main() {
    let engine = Engine::auto(6, 3);
    let mut table = Table::new(&[
        "n",
        "sigma",
        "m",
        "sigma^{n/6} (N)",
        "proof size d/run",
        "runs (m+1)",
        "time",
        "verified",
    ]);
    for (n, sigma, m) in [(6usize, 2usize, 4usize), (6, 3, 4), (6, 4, 3), (12, 2, 4)] {
        let csp = Csp2::random(n, sigma, m, 50, (n * sigma) as u64);
        let expect = csp.reference_histogram();
        let spec = CspWeightValue::new(csp.clone(), 1).spec();
        let (hist, t) = time(|| enumerate_by_satisfied(&csp, &engine).unwrap());
        let ok = hist.iter().map(|v| v.to_u64().unwrap()).collect::<Vec<_>>() == expect;
        table.row(&[
            n.to_string(),
            sigma.to_string(),
            m.to_string(),
            sigma.pow((n / 6) as u32).to_string(),
            spec.degree_bound.to_string(),
            (m + 1).to_string(),
            fmt_duration(t),
            ok.to_string(),
        ]);
    }
    table.print("E11: 2-CSP enumeration by satisfied count (Theorem 12)");
    println!("paper claim: proof size O*(sigma^(2.81 n/6)) per weight point;");
    println!("trivial sequential is sigma^n, best known sigma^(2.81 n/3).");
}
