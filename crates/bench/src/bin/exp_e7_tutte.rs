//! Experiment E7 — Theorem 7: the Tutte polynomial with proof size
//! `O*(2^{n/3})`, per-node time `O*(2^{(ω+ε)n/3})`, space `O*(2^{2n/3})`.
//!
//! We compute full Tutte polynomials through the Potts grid and validate
//! against deletion–contraction, reporting the proof geometry.

use camelot_bench::{fmt_duration, time, Table};
use camelot_core::{CamelotProblem, Engine};
use camelot_graph::{gen, tutte::tutte_coefficients, MultiGraph};
use camelot_partition::{eval_tutte, tutte_polynomial, PottsValue};

fn main() {
    let engine = Engine::auto(4, 2);
    let mut table = Table::new(&[
        "graph",
        "n",
        "m",
        "|B|=n/3",
        "proof size d",
        "grid runs",
        "time",
        "matches del-con",
    ]);
    for (name, g) in [
        ("K4", MultiGraph::from_graph(&gen::complete(4))),
        ("C6", MultiGraph::from_graph(&gen::cycle(6))),
        (
            "K4+loop",
            MultiGraph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (0, 0)]),
        ),
        ("2xC3", MultiGraph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])),
    ] {
        let (n, m) = (g.vertex_count(), g.edge_count());
        let spec = PottsValue::new(g.clone(), 2, 1).spec();
        let (outcome, t) = time(|| tutte_polynomial(&g, &engine).unwrap());
        let reference = tutte_coefficients(&g);
        let mut ok = true;
        for (i, row) in reference.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                let got = outcome
                    .coefficients
                    .get(i)
                    .and_then(|r| r.get(j))
                    .map(|v| v.to_i128())
                    .unwrap_or(Some(0));
                ok &= got == Some(i128::try_from(c).unwrap());
            }
        }
        // Spot identity: T(2,2) = 2^m.
        ok &= eval_tutte(&outcome.coefficients, 2, 2).to_i128() == Some(1i128 << m);
        table.row(&[
            name.to_string(),
            n.to_string(),
            m.to_string(),
            (n / 3).max(1).to_string(),
            spec.degree_bound.to_string(),
            ((n + 1) * (m + 1)).to_string(),
            fmt_duration(t),
            ok.to_string(),
        ]);
    }
    table.print("E7: full Tutte polynomials via the Potts grid");
    println!("paper claim: proof size O*(2^(n/3)); per-node time O*(2^(2.81 n/3))");
    println!("via the tripartite decomposition; K <= T^(1/3) parallelism only.");
}
