//! Experiment G1 — transport scaling (the broadcast layer of §1.4).
//!
//! Claim: the broadcast round is transport-independent. All backends —
//! the in-process bus (sequential and threaded), per-node OS threads
//! over mpsc frames, and loopback TCP workers (optionally spawned
//! `camelot-node` processes, so the round really spans processes) —
//! produce bit-identical broadcasts; what varies is wall-clock overhead
//! and where the bytes go, which the per-round traffic counters make
//! measurable.
//!
//! Modes:
//!
//! * default — one multi-polynomial round per selected backend, checked
//!   bit-identical against the in-process reference, with per-backend
//!   wall-clock and the round's `symbols_broadcast` / `bytes_on_wire`;
//! * `--engine-batch N` — `Engine::run_batch` over `N` triangle
//!   problems on the channel backend, demonstrating the
//!   one-broadcast-round-per-prime-per-batch property end to end.
//!
//! Flags: `--nodes K` (default 8), `--len E` (default 2048), `--width W`
//! (default 2), `--backend all|inproc|inproc-par|channel|socket|socket-process`
//! (default all; `socket-process` needs the `camelot-node` binary next
//! to this one — built by `cargo build --release`), `--engine-batch N`.

use camelot_bench::{fmt_duration, Table};
use camelot_cluster::{
    sibling_worker_binary, ChannelTransport, EvalProgram, FaultKind, FaultPlan, InProcess,
    ProgramEval, RoundOutcome, RoundSpec, SocketTransport, Transport,
};
use camelot_core::{Backend, Engine, EngineConfig, RunReport};
use camelot_ff::{PrimeField, SplitMix64};
use camelot_graph::{count_triangles, gen};
use camelot_triangles::TriangleCount;
use std::time::Instant;

struct Args {
    nodes: usize,
    len: usize,
    width: usize,
    backend: String,
    engine_batch: Option<usize>,
}

fn parse_args() -> Args {
    let mut args =
        Args { nodes: 8, len: 2048, width: 2, backend: "all".to_string(), engine_batch: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--nodes" => args.nodes = value().parse().expect("--nodes"),
            "--len" => args.len = value().parse().expect("--len"),
            "--width" => args.width = value().parse().expect("--width"),
            "--backend" => args.backend = value(),
            "--engine-batch" => args.engine_batch = Some(value().parse().expect("--engine-batch")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The full fault matrix, scaled to the cluster size.
fn mixed_plan(nodes: usize) -> FaultPlan {
    let mut faults = vec![(1 % nodes, FaultKind::Crash)];
    if nodes >= 4 {
        faults.push((2, FaultKind::Corrupt { seed: 7 }));
        faults.push((3, FaultKind::Adversarial { offset: 41 }));
    }
    if nodes >= 6 {
        faults.push((5, FaultKind::Equivocate { seed: 13 }));
    }
    FaultPlan::with_faults(nodes, &faults)
}

fn backends(selected: &str, parallel_too: bool) -> Vec<(String, Box<dyn Transport>)> {
    let mut list: Vec<(String, Box<dyn Transport>)> = Vec::new();
    let all = selected == "all";
    if all || selected == "inproc" {
        list.push(("inproc".into(), Box::new(InProcess::new(false))));
    }
    if (all && parallel_too) || selected == "inproc-par" {
        list.push(("inproc-par".into(), Box::new(InProcess::new(true))));
    }
    if all || selected == "channel" {
        list.push(("channel".into(), Box::new(ChannelTransport::new())));
    }
    if all || selected == "socket" {
        list.push(("socket".into(), Box::new(SocketTransport::loopback())));
    }
    if all || selected == "socket-process" {
        match sibling_worker_binary() {
            Some(bin) => list.push((
                "socket-process".into(),
                Box::new(SocketTransport::with_worker_binary(bin)),
            )),
            None if selected == "socket-process" => {
                panic!("camelot-node binary not found next to this executable; run `cargo build --release` first")
            }
            None => eprintln!(
                "note: camelot-node binary not found next to this executable; \
                 skipping the socket-process backend"
            ),
        }
    }
    assert!(!list.is_empty(), "unknown --backend {selected}");
    list
}

fn round_experiment(args: &Args) {
    let field = PrimeField::new(16_777_259).expect("prime"); // > any sane e
    assert!(args.len as u64 <= field.modulus(), "--len exceeds the field");
    let mut rng = SplitMix64::new(0xC1A0);
    let programs: Vec<EvalProgram> = (0..args.width)
        .map(|_| EvalProgram::Poly((0..args.len / 2).map(|_| field.sample(&mut rng)).collect()))
        .collect();
    let eval = ProgramEval::new(&field, programs);
    let points: Vec<u64> = (0..args.len as u64).collect();
    let plan = mixed_plan(args.nodes);
    let spec = RoundSpec { field: &field, points: &points, plan: &plan };

    let reference = InProcess::new(false).run(&spec, &eval).expect("in-process round");
    let mut table = Table::new(&["backend", "round time", "identical", "symbols", "bytes on wire"]);
    for (name, transport) in backends(&args.backend, true) {
        let start = Instant::now();
        let outcome: RoundOutcome = match transport.run(&spec, &eval) {
            Ok(outcome) => outcome,
            Err(err) => {
                table.row(&[name, format!("failed: {err}"), "-".into(), "-".into(), "-".into()]);
                continue;
            }
        };
        let elapsed = start.elapsed();
        let identical = outcome.broadcasts.iter().zip(&reference.broadcasts).all(|(a, b)| {
            a.same_word(b) && (0..args.nodes).all(|r| a.view_for(r) == b.view_for(r))
        }) && outcome.traffic == reference.traffic;
        table.row(&[
            name,
            fmt_duration(elapsed),
            if identical { "yes".into() } else { "NO".into() },
            outcome.traffic.symbols_broadcast.to_string(),
            outcome.traffic.bytes_on_wire.to_string(),
        ]);
    }
    table.print(&format!(
        "G1: one round, K = {} nodes, e = {} points, width = {} polynomials, mixed faults",
        args.nodes, args.len, args.width
    ));
    println!("paper claim: the broadcast word is transport-independent (bit-identical backends)");
}

fn engine_batch_experiment(args: &Args, batch: usize) {
    let graphs: Vec<_> = (0..batch).map(|i| gen::gnm(10 + i, 20 + 3 * i, 42 + i as u64)).collect();
    let problems: Vec<TriangleCount> = graphs.iter().map(TriangleCount::new).collect();
    let config = EngineConfig::sequential(args.nodes.max(2), 8).with_backend(Backend::Channel);
    let engine = Engine::new(config);

    let start = Instant::now();
    let outcomes = engine.run_batch(&problems).expect("batched run");
    let elapsed = start.elapsed();

    // One reporting path for every experiment: the traffic columns come
    // from RunReport itself.
    let mut headers = vec!["problem", "triangles"];
    headers.extend(RunReport::traffic_headers());
    headers.extend(["decode", "xgcd"]);
    let mut table = Table::new(&headers);
    for (i, (outcome, graph)) in outcomes.iter().zip(&graphs).enumerate() {
        assert_eq!(outcome.output, count_triangles(graph), "batched output diverged");
        assert_eq!(
            outcome.report.rounds,
            outcome.report.primes.len(),
            "a batch must run exactly one broadcast round per prime"
        );
        assert_eq!(
            outcome.report.coalesced_requests, batch,
            "every batch member must report the shared admission size"
        );
        let mut row = vec![i.to_string(), outcome.output.to_string()];
        row.extend(outcome.report.traffic_cells());
        row.extend([
            fmt_duration(outcome.report.decode_time),
            fmt_duration(outcome.report.xgcd_time),
        ]);
        table.row(&row);
    }
    table.print(&format!(
        "G1: Engine::run_batch of {batch} problems on the channel backend ({}, shared rounds)",
        fmt_duration(elapsed)
    ));
    println!(
        "rounds == primes per outcome: the whole batch shares one broadcast round per prime \
         (identical shared counters across outcomes)"
    );
}

fn main() {
    let args = parse_args();
    match args.engine_batch {
        Some(batch) => engine_batch_experiment(&args, batch),
        None => round_experiment(&args),
    }
}
