//! Machine-readable benchmark of the fast algebra stack, across code
//! lengths `2^min_log .. 2^max_log` over NTT-friendly primes:
//!
//! * consecutive-point Reed–Solomon code: encode (Horner baseline vs
//!   subproduct-tree dispatch), interpolation (Newton baseline vs tree),
//!   full Gao decode with a per-phase breakdown;
//! * roots-of-unity code (the engine's NTT-friendly schedule): encode
//!   (Horner baseline vs single forward NTT), full Gao decode with the
//!   same breakdown, and erasure decoding cold vs warm (punctured-tree
//!   cache);
//! * the partial-xgcd step in isolation, classical vs half-GCD, on the
//!   exact `(g0, g1, stop)` triple the Gao decoder feeds it.
//!
//! Quadratic baselines (Horner, Newton, classical xgcd) are skipped
//! above `2^14` — their columns read `-` / `null` there — so the large
//! decode-centric rows stay affordable.
//!
//! Writes `BENCH_algebra.json` (override with `--out`), the committed
//! trajectory for the algebra hot path. Regenerate with:
//!
//! ```text
//! cargo run --release -p camelot-bench --bin bench_algebra
//! ```
//!
//! Flags: `--min-log N` (default 8), `--max-log N` (default 16),
//! `--samples N` (default 3, the timer keeps the minimum), `--out PATH`,
//! `--hgcd-crossover N` (override the half-GCD dispatch crossover; `0`
//! forces the structured path everywhere). CI smoke-runs tiny sizes
//! with the structured path forced on:
//! `--min-log 4 --max-log 7 --samples 1 --hgcd-crossover 0`.

use camelot_bench::{fault_every_16th, fmt_duration, random_message, Table};
use camelot_ff::{ntt_prime, PrimeField, SplitMix64};
use camelot_poly::{eval_many, interpolate, interpolate_fast, set_hgcd_crossover, vanishing_poly};
use camelot_rscode::{DecodeProfile, RsCode};
use std::time::{Duration, Instant};

/// Largest `log2(len)` at which the quadratic baselines (Horner encode,
/// Newton interpolation, classical partial xgcd) still run; above this
/// only the quasi-linear paths are measured.
const NAIVE_MAX_LOG: u32 = 14;

struct Args {
    min_log: u32,
    max_log: u32,
    samples: usize,
    out: String,
    hgcd_crossover: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        min_log: 8,
        max_log: 16,
        samples: 3,
        out: "BENCH_algebra.json".to_string(),
        hgcd_crossover: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--min-log" => args.min_log = value().parse().expect("--min-log takes an integer"),
            "--max-log" => args.max_log = value().parse().expect("--max-log takes an integer"),
            "--samples" => args.samples = value().parse().expect("--samples takes an integer"),
            "--out" => args.out = value(),
            "--hgcd-crossover" => {
                args.hgcd_crossover =
                    Some(value().parse().expect("--hgcd-crossover takes an integer"))
            }
            other => panic!(
                "unknown flag {other} \
                 (expected --min-log/--max-log/--samples/--out/--hgcd-crossover)"
            ),
        }
    }
    assert!(args.min_log <= args.max_log, "--min-log must not exceed --max-log");
    assert!(args.max_log < 30, "--max-log is unreasonably large");
    assert!(args.samples > 0, "--samples must be positive");
    args
}

/// Minimum wall time over `samples` runs (after one warm-up).
fn best_of<T>(samples: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// The per-phase profile of the fastest (by phase total) of `samples`
/// decode runs, after one warm-up.
fn best_profile(samples: usize, mut f: impl FnMut() -> DecodeProfile) -> DecodeProfile {
    std::hint::black_box(f());
    let mut best = f();
    for _ in 1..samples {
        let p = f();
        if p.total() < best.total() {
            best = p;
        }
    }
    best
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn speedup(naive: Duration, fast: Duration) -> f64 {
    us(naive) / us(fast).max(1e-9)
}

/// JSON number or `null` for skipped quadratic baselines.
fn j_us(d: Option<Duration>) -> String {
    d.map_or("null".to_string(), |d| format!("{:.2}", us(d)))
}

fn j_speedup(naive: Option<Duration>, fast: Duration) -> String {
    naive.map_or("null".to_string(), |n| format!("{:.2}", speedup(n, fast)))
}

/// Table cell: speedup or `-` when the baseline was skipped.
fn t_speedup(naive: Option<Duration>, fast: Duration) -> String {
    naive.map_or("-".to_string(), |n| format!("{:.1}", speedup(n, fast)))
}

/// Strictly increasing erasure positions for the cold/warm punctured-tree
/// bench: five spread-out points, fixed per length.
fn erasure_positions(e: usize) -> Vec<usize> {
    (0..5).map(|k| k * e / 8 + 3).collect()
}

fn main() {
    let args = parse_args();
    if let Some(crossover) = args.hgcd_crossover {
        set_hgcd_crossover(crossover);
    }
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "len", "prime", "enc tree", "x", "enc NTT", "x", "int tree", "x", "dec tree", "dec NTT",
        "~int", "~xgcd", "~reenc", "xgcd x",
    ]);

    for log in args.min_log..=args.max_log {
        let e = 1usize << log;
        let d = e / 2;
        let naive_too = log <= NAIVE_MAX_LOG;
        // One NTT-friendly prime per length, admitting transforms of
        // length 2^(log+1) (products of two codeword-degree operands).
        let (q, _) = ntt_prime(1 << 20, log + 1);
        let field = PrimeField::new(q).unwrap();
        let mut rng = SplitMix64::new(0xBE_AC * u64::from(log));
        let msg = random_message(&field, d, &mut rng);

        // Consecutive points: subproduct-tree paths.
        let code = RsCode::consecutive(&field, e);
        let clean = code.encode(&field, &msg);
        let t_enc_naive = naive_too.then(|| {
            assert_eq!(clean, eval_many(&field, &msg, code.points()), "tree encode disagrees");
            best_of(args.samples, || eval_many(&field, &msg, code.points()))
        });
        let t_enc_tree = best_of(args.samples, || code.encode(&field, &msg));
        let pts: Vec<(u64, u64)> =
            code.points().iter().copied().zip(clean.iter().copied()).collect();
        let t_int_naive = naive_too.then(|| {
            assert_eq!(interpolate_fast(&field, &pts), interpolate(&field, &pts));
            best_of(args.samples, || interpolate(&field, &pts))
        });
        let t_int_tree = best_of(args.samples, || interpolate_fast(&field, &pts));
        let word = fault_every_16th(&field, &clean);
        let prof = best_profile(args.samples, || code.decode_profiled(&field, &word, d).unwrap().1);

        // Roots-of-unity points: transform-backed paths (the engine's
        // NTT-friendly schedule).
        let roots = RsCode::roots_of_unity(&field, e).expect("prime admits a length-e orbit");
        let clean_r = roots.encode(&field, &msg);
        let t_enc_r_naive = naive_too.then(|| {
            assert_eq!(clean_r, eval_many(&field, &msg, roots.points()), "NTT encode disagrees");
            best_of(args.samples, || eval_many(&field, &msg, roots.points()))
        });
        let t_enc_ntt = best_of(args.samples, || roots.encode(&field, &msg));
        let word_r = fault_every_16th(&field, &clean_r);
        let prof_r =
            best_profile(args.samples, || roots.decode_profiled(&field, &word_r, d).unwrap().1);

        // Erasure decoding: same word with five symbols withheld. Cold
        // punctures the full point tree from scratch (fresh clone each
        // run, empty cache); warm hits the keyed punctured-tree cache.
        let mut word_e = word_r.clone();
        for &pos in &erasure_positions(e) {
            word_e[pos] = None;
        }
        let t_erase_cold = best_of(args.samples, || {
            let fresh = roots.clone();
            fresh.decode(&field, &word_e, d).unwrap()
        });
        let warm = roots.clone();
        warm.decode(&field, &word_e, d).unwrap();
        let t_erase_warm = best_of(args.samples, || warm.decode(&field, &word_e, d).unwrap());

        // The partial-xgcd step in isolation, on the exact triple the
        // Gao decoder feeds it: g0 vanishing on the points, g1 the
        // interpolation of the (faulted) received word.
        let g0 = vanishing_poly(&field, code.points());
        let word_vals: Vec<(u64, u64)> = code
            .points()
            .iter()
            .zip(&word)
            .map(|(&x, sym)| (x, sym.expect("fault_every_16th keeps all symbols")))
            .collect();
        let g1 = interpolate_fast(&field, &word_vals);
        let stop = (e + d + 2) / 2;
        let t_xgcd_fast = best_of(args.samples, || g0.partial_xgcd_fast(&field, &g1, stop));
        let t_xgcd_classical = naive_too.then(|| {
            assert_eq!(
                g0.partial_xgcd_fast(&field, &g1, stop),
                g0.partial_xgcd(&field, &g1, stop),
                "half-GCD xgcd diverged from the classical oracle"
            );
            best_of(args.samples, || g0.partial_xgcd(&field, &g1, stop))
        });

        table.row(&[
            e.to_string(),
            q.to_string(),
            fmt_duration(t_enc_tree),
            t_speedup(t_enc_naive, t_enc_tree),
            fmt_duration(t_enc_ntt),
            t_speedup(t_enc_r_naive, t_enc_ntt),
            fmt_duration(t_int_tree),
            t_speedup(t_int_naive, t_int_tree),
            fmt_duration(prof.total()),
            fmt_duration(prof_r.total()),
            fmt_duration(prof_r.interpolate),
            fmt_duration(prof_r.xgcd),
            fmt_duration(prof_r.reencode),
            t_speedup(t_xgcd_classical, t_xgcd_fast),
        ]);
        rows.push(format!(
            concat!(
                "    {{\"log2_len\": {}, \"len\": {}, \"prime\": {}, \"degree\": {},\n",
                "     \"consecutive\": {{",
                "\"encode_horner_us\": {}, \"encode_tree_us\": {:.2}, ",
                "\"encode_speedup\": {}, ",
                "\"interpolate_newton_us\": {}, \"interpolate_tree_us\": {:.2}, ",
                "\"interpolate_speedup\": {}, \"decode_us\": {:.2}, ",
                "\"decode_interpolate_us\": {:.2}, \"decode_xgcd_us\": {:.2}, ",
                "\"decode_reencode_us\": {:.2}}},\n",
                "     \"roots_of_unity\": {{",
                "\"encode_horner_us\": {}, \"encode_ntt_us\": {:.2}, ",
                "\"encode_speedup\": {}, \"decode_us\": {:.2}, ",
                "\"decode_interpolate_us\": {:.2}, \"decode_xgcd_us\": {:.2}, ",
                "\"decode_reencode_us\": {:.2}, ",
                "\"erasure_decode_cold_us\": {:.2}, \"erasure_decode_warm_us\": {:.2}}},\n",
                "     \"xgcd\": {{\"stop_degree\": {}, \"classical_us\": {}, ",
                "\"fast_us\": {:.2}, \"speedup\": {}}}}}"
            ),
            log,
            e,
            q,
            d,
            j_us(t_enc_naive),
            us(t_enc_tree),
            j_speedup(t_enc_naive, t_enc_tree),
            j_us(t_int_naive),
            us(t_int_tree),
            j_speedup(t_int_naive, t_int_tree),
            us(prof.total()),
            us(prof.interpolate),
            us(prof.xgcd),
            us(prof.reencode),
            j_us(t_enc_r_naive),
            us(t_enc_ntt),
            j_speedup(t_enc_r_naive, t_enc_ntt),
            us(prof_r.total()),
            us(prof_r.interpolate),
            us(prof_r.xgcd),
            us(prof_r.reencode),
            us(t_erase_cold),
            us(t_erase_warm),
            stop,
            j_us(t_xgcd_classical),
            us(t_xgcd_fast),
            j_speedup(t_xgcd_classical, t_xgcd_fast),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"camelot-bench-algebra/v3\",\n",
            "  \"description\": \"Reed-Solomon codeword pipeline: Horner/Newton/classical-xgcd ",
            "baselines vs subproduct-tree, NTT, and half-GCD fast paths (message degree = len/2; ",
            "decode_us is the sum of its three phase columns; quadratic baselines are null above ",
            "2^14)\",\n",
            "  \"prime_schedule\": \"smallest q >= 2^20 with q = 1 mod 2^(log2_len+1)\",\n",
            "  \"samples\": {},\n",
            "  \"timer\": \"best-of-samples wall clock, release build\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        args.samples,
        rows.join(",\n")
    );
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|err| panic!("cannot write {}: {err}", args.out));
    table.print("algebra stack: fast paths (speedups vs naive baselines where measured)");
    println!("\nwrote {}", args.out);
}
