//! Machine-readable benchmark of the fast algebra stack, across code
//! lengths `2^min_log .. 2^max_log` over NTT-friendly primes:
//!
//! * consecutive-point Reed–Solomon code: encode (Horner baseline vs
//!   subproduct-tree dispatch), interpolation (Newton baseline vs tree),
//!   full Gao decode;
//! * roots-of-unity code (the engine's NTT-friendly schedule): encode
//!   (Horner baseline vs single forward NTT) and full Gao decode.
//!
//! Writes `BENCH_algebra.json` (override with `--out`), the committed
//! trajectory for the algebra hot path. Regenerate with:
//!
//! ```text
//! cargo run --release -p camelot-bench --bin bench_algebra
//! ```
//!
//! Flags: `--min-log N` (default 8), `--max-log N` (default 14),
//! `--samples N` (default 3, the timer keeps the minimum), `--out PATH`.
//! CI smoke-runs tiny sizes: `--min-log 4 --max-log 6 --samples 1`.

use camelot_bench::{fault_every_16th, fmt_duration, random_message, Table};
use camelot_ff::{ntt_prime, PrimeField, SplitMix64};
use camelot_poly::{eval_many, interpolate, interpolate_fast};
use camelot_rscode::RsCode;
use std::time::{Duration, Instant};

struct Args {
    min_log: u32,
    max_log: u32,
    samples: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args =
        Args { min_log: 8, max_log: 14, samples: 3, out: "BENCH_algebra.json".to_string() };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--min-log" => args.min_log = value().parse().expect("--min-log takes an integer"),
            "--max-log" => args.max_log = value().parse().expect("--max-log takes an integer"),
            "--samples" => args.samples = value().parse().expect("--samples takes an integer"),
            "--out" => args.out = value(),
            other => panic!("unknown flag {other} (expected --min-log/--max-log/--samples/--out)"),
        }
    }
    assert!(args.min_log <= args.max_log, "--min-log must not exceed --max-log");
    assert!(args.max_log < 30, "--max-log is unreasonably large");
    assert!(args.samples > 0, "--samples must be positive");
    args
}

/// Minimum wall time over `samples` runs (after one warm-up).
fn best_of<T>(samples: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn speedup(naive: Duration, fast: Duration) -> f64 {
    us(naive) / us(fast).max(1e-9)
}

fn main() {
    let args = parse_args();
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "len",
        "prime",
        "enc Horner",
        "enc tree",
        "x",
        "enc NTT",
        "x",
        "int Newton",
        "int tree",
        "x",
        "decode",
    ]);

    for log in args.min_log..=args.max_log {
        let e = 1usize << log;
        let d = e / 2;
        // One NTT-friendly prime per length, admitting transforms of
        // length 2^(log+1) (products of two codeword-degree operands).
        let (q, _) = ntt_prime(1 << 20, log + 1);
        let field = PrimeField::new(q).unwrap();
        let mut rng = SplitMix64::new(0xBE_AC * u64::from(log));
        let msg = random_message(&field, d, &mut rng);

        // Consecutive points: subproduct-tree paths.
        let code = RsCode::consecutive(&field, e);
        let clean = code.encode(&field, &msg);
        assert_eq!(clean, eval_many(&field, &msg, code.points()), "tree encode disagrees");
        let t_enc_naive = best_of(args.samples, || eval_many(&field, &msg, code.points()));
        let t_enc_tree = best_of(args.samples, || code.encode(&field, &msg));
        let pts: Vec<(u64, u64)> =
            code.points().iter().copied().zip(clean.iter().copied()).collect();
        assert_eq!(interpolate_fast(&field, &pts), interpolate(&field, &pts));
        let t_int_naive = best_of(args.samples, || interpolate(&field, &pts));
        let t_int_tree = best_of(args.samples, || interpolate_fast(&field, &pts));
        let word = fault_every_16th(&field, &clean);
        let t_decode = best_of(args.samples, || code.decode(&field, &word, d).unwrap());

        // Roots-of-unity points: transform-backed paths (the engine's
        // NTT-friendly schedule).
        let roots = RsCode::roots_of_unity(&field, e).expect("prime admits a length-e orbit");
        let clean_r = roots.encode(&field, &msg);
        assert_eq!(clean_r, eval_many(&field, &msg, roots.points()), "NTT encode disagrees");
        let t_enc_r_naive = best_of(args.samples, || eval_many(&field, &msg, roots.points()));
        let t_enc_ntt = best_of(args.samples, || roots.encode(&field, &msg));
        let word_r = fault_every_16th(&field, &clean_r);
        let t_decode_ntt = best_of(args.samples, || roots.decode(&field, &word_r, d).unwrap());

        table.row(&[
            e.to_string(),
            q.to_string(),
            fmt_duration(t_enc_naive),
            fmt_duration(t_enc_tree),
            format!("{:.1}", speedup(t_enc_naive, t_enc_tree)),
            fmt_duration(t_enc_ntt),
            format!("{:.0}", speedup(t_enc_r_naive, t_enc_ntt)),
            fmt_duration(t_int_naive),
            fmt_duration(t_int_tree),
            format!("{:.1}", speedup(t_int_naive, t_int_tree)),
            fmt_duration(t_decode),
        ]);
        rows.push(format!(
            concat!(
                "    {{\"log2_len\": {}, \"len\": {}, \"prime\": {}, \"degree\": {},\n",
                "     \"consecutive\": {{",
                "\"encode_horner_us\": {:.2}, \"encode_tree_us\": {:.2}, ",
                "\"encode_speedup\": {:.2}, ",
                "\"interpolate_newton_us\": {:.2}, \"interpolate_tree_us\": {:.2}, ",
                "\"interpolate_speedup\": {:.2}, \"decode_us\": {:.2}}},\n",
                "     \"roots_of_unity\": {{",
                "\"encode_horner_us\": {:.2}, \"encode_ntt_us\": {:.2}, ",
                "\"encode_speedup\": {:.2}, \"decode_us\": {:.2}}}}}"
            ),
            log,
            e,
            q,
            d,
            us(t_enc_naive),
            us(t_enc_tree),
            speedup(t_enc_naive, t_enc_tree),
            us(t_int_naive),
            us(t_int_tree),
            speedup(t_int_naive, t_int_tree),
            us(t_decode),
            us(t_enc_r_naive),
            us(t_enc_ntt),
            speedup(t_enc_r_naive, t_enc_ntt),
            us(t_decode_ntt),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"camelot-bench-algebra/v2\",\n",
            "  \"description\": \"Reed-Solomon codeword pipeline: Horner/Newton baselines ",
            "vs subproduct-tree and NTT fast paths (message degree = len/2)\",\n",
            "  \"prime_schedule\": \"smallest q >= 2^20 with q = 1 mod 2^(log2_len+1)\",\n",
            "  \"samples\": {},\n",
            "  \"timer\": \"best-of-samples wall clock, release build\",\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        args.samples,
        rows.join(",\n")
    );
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|err| panic!("cannot write {}: {err}", args.out));
    table.print("algebra stack: naive baselines vs fast paths");
    println!("\nwrote {}", args.out);
}
