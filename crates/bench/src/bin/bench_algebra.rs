//! Machine-readable benchmark of the fast algebra stack, across code
//! lengths `2^min_log .. 2^max_log` over NTT-friendly primes:
//!
//! * field slice kernels in isolation (Melem/s): per-element scalar
//!   loops vs the chunked slice kernels of `camelot-ff` (Barrett
//!   `mul_slice`, Shoup `mul_shoup_slice`, blocked batch inversion),
//!   plus a scoped-thread split of the Shoup kernel under the process
//!   thread budget;
//! * consecutive-point Reed–Solomon code: encode (Horner baseline vs
//!   subproduct-tree dispatch), interpolation (Newton baseline vs tree),
//!   full Gao decode with a per-phase breakdown;
//! * roots-of-unity code (the engine's NTT-friendly schedule): encode
//!   (Horner baseline vs single forward NTT), full Gao decode with the
//!   same breakdown, and erasure decoding cold vs warm (punctured-tree
//!   cache);
//! * the partial-xgcd step in isolation, classical vs half-GCD, on the
//!   exact `(g0, g1, stop)` triple the Gao decoder feeds it.
//!
//! Every per-length row records the thread budget the NTT/decode paths
//! ran under (`CAMELOT_THREADS`, defaulting to the machine parallelism).
//!
//! Quadratic baselines (Horner, Newton, classical xgcd) are skipped
//! above `2^14` — their columns read `-` / `null` there — so the large
//! decode-centric rows stay affordable.
//!
//! Writes `BENCH_algebra.json` (override with `--out`), the committed
//! trajectory for the algebra hot path. Regenerate with:
//!
//! ```text
//! cargo run --release -p camelot-bench --bin bench_algebra
//! ```
//!
//! Flags: `--min-log N` (default 8), `--max-log N` (default 16),
//! `--samples N` (default 3, the timer keeps the minimum), `--out PATH`,
//! `--hgcd-crossover N` (override the half-GCD dispatch crossover; `0`
//! forces the structured path everywhere). CI smoke-runs tiny sizes
//! with the structured path forced on:
//! `--min-log 4 --max-log 7 --samples 1 --hgcd-crossover 0`.

use camelot_bench::{fault_every_16th, fmt_duration, random_message, Table};
use camelot_ff::{ntt_prime, thread_budget, PrimeField, RngLike, SplitMix64};
use camelot_poly::{eval_many, interpolate, interpolate_fast, set_hgcd_crossover, vanishing_poly};
use camelot_rscode::{DecodeProfile, RsCode};
use std::time::{Duration, Instant};

/// `log2` of the element count the kernel microbenchmarks run on: large
/// enough to leave L1 yet small enough that a sample is sub-millisecond.
const KERNEL_LOG: u32 = 16;

/// Largest `log2(len)` at which the quadratic baselines (Horner encode,
/// Newton interpolation, classical partial xgcd) still run; above this
/// only the quasi-linear paths are measured.
const NAIVE_MAX_LOG: u32 = 14;

struct Args {
    min_log: u32,
    max_log: u32,
    samples: usize,
    out: String,
    hgcd_crossover: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        min_log: 8,
        max_log: 16,
        samples: 3,
        out: "BENCH_algebra.json".to_string(),
        hgcd_crossover: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--min-log" => args.min_log = value().parse().expect("--min-log takes an integer"),
            "--max-log" => args.max_log = value().parse().expect("--max-log takes an integer"),
            "--samples" => args.samples = value().parse().expect("--samples takes an integer"),
            "--out" => args.out = value(),
            "--hgcd-crossover" => {
                args.hgcd_crossover =
                    Some(value().parse().expect("--hgcd-crossover takes an integer"))
            }
            other => panic!(
                "unknown flag {other} \
                 (expected --min-log/--max-log/--samples/--out/--hgcd-crossover)"
            ),
        }
    }
    assert!(args.min_log <= args.max_log, "--min-log must not exceed --max-log");
    assert!(args.max_log < 30, "--max-log is unreasonably large");
    assert!(args.samples > 0, "--samples must be positive");
    args
}

/// Minimum wall time over `samples` runs (after one warm-up).
fn best_of<T>(samples: usize, mut f: impl FnMut() -> T) -> Duration {
    std::hint::black_box(f());
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// The per-phase profile of the fastest (by phase total) of `samples`
/// decode runs, after one warm-up.
fn best_profile(samples: usize, mut f: impl FnMut() -> DecodeProfile) -> DecodeProfile {
    std::hint::black_box(f());
    let mut best = f();
    for _ in 1..samples {
        let p = f();
        if p.total() < best.total() {
            best = p;
        }
    }
    best
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn speedup(naive: Duration, fast: Duration) -> f64 {
    us(naive) / us(fast).max(1e-9)
}

/// JSON number or `null` for skipped quadratic baselines.
fn j_us(d: Option<Duration>) -> String {
    d.map_or("null".to_string(), |d| format!("{:.2}", us(d)))
}

fn j_speedup(naive: Option<Duration>, fast: Duration) -> String {
    naive.map_or("null".to_string(), |n| format!("{:.2}", speedup(n, fast)))
}

/// Table cell: speedup or `-` when the baseline was skipped.
fn t_speedup(naive: Option<Duration>, fast: Duration) -> String {
    naive.map_or("-".to_string(), |n| format!("{:.1}", speedup(n, fast)))
}

/// Strictly increasing erasure positions for the cold/warm punctured-tree
/// bench: five spread-out points, fixed per length.
fn erasure_positions(e: usize) -> Vec<usize> {
    (0..5).map(|k| k * e / 8 + 3).collect()
}

/// Million field elements per second for `len` elements processed in
/// `best` wall time.
fn melem_s(len: usize, best: Duration) -> f64 {
    len as f64 / best.as_secs_f64().max(1e-12) / 1e6
}

/// Field-kernel microbenchmarks: per-element scalar loops vs the chunked
/// slice kernels, on `2^KERNEL_LOG` in-field elements. Returns the
/// `"kernels"` JSON object and prints a small table. All variants
/// compute in place (field ops keep values in-field, and their cost is
/// data-independent), so no per-sample reset pollutes the throughput.
fn kernel_bench(field: &PrimeField, samples: usize, rng: &mut SplitMix64) -> String {
    let len = 1usize << KERNEL_LOG;
    let q = field.modulus();
    // Nonzero inputs so batch inversion never hits the zero short-circuit.
    let mut acc: Vec<u64> = (0..len).map(|_| 1 + rng.next_u64() % (q - 1)).collect();
    let b: Vec<u64> = (0..len).map(|_| 1 + rng.next_u64() % (q - 1)).collect();
    let bs: Vec<u64> = b.iter().map(|&c| field.shoup_precompute(c)).collect();

    // The textbook per-element reduction — `(a as u128 * b as u128) % q`
    // via hardware 128-bit division — is the baseline the Barrett/Shoup
    // kernels were built to displace (camelot-lint bans `%` from hot
    // regions); the scalar columns below are the already-branchless
    // `PrimeField::mul` / `mul_shoup` loops.
    let t_mul_mod = best_of(samples, || {
        for (a, &c) in acc.iter_mut().zip(&b) {
            *a = ((u128::from(*a) * u128::from(c)) % u128::from(q)) as u64;
        }
    });
    let t_mul_scalar = best_of(samples, || {
        for (a, &c) in acc.iter_mut().zip(&b) {
            *a = field.mul(*a, c);
        }
    });
    let t_mul_slice = best_of(samples, || field.mul_slice(&mut acc, &b));
    let t_shoup_scalar = best_of(samples, || {
        for ((a, &c), &cs) in acc.iter_mut().zip(&b).zip(&bs) {
            *a = field.mul_shoup(*a, c, cs);
        }
    });
    let t_shoup_slice = best_of(samples, || field.mul_shoup_slice(&mut acc, &b, &bs));
    // The Shoup kernel split across scoped threads under the process
    // budget — the same decomposition the NTT butterfly passes use.
    let workers = thread_budget().max(1);
    let chunk = len.div_ceil(workers);
    let t_shoup_threaded = best_of(samples, || {
        if workers < 2 {
            // A budget of one means no split anywhere in the stack —
            // measure the kernel itself rather than spawn overhead.
            field.mul_shoup_slice(&mut acc, &b, &bs);
        } else {
            std::thread::scope(|s| {
                for ((a, c), cs) in acc.chunks_mut(chunk).zip(b.chunks(chunk)).zip(bs.chunks(chunk))
                {
                    s.spawn(move || field.mul_shoup_slice(a, c, cs));
                }
            });
        }
    });
    let t_inv_batch = best_of(samples, || field.inv_batch(&mut acc));
    let t_inv_blocked = best_of(samples, || field.inv_batch_blocked(&mut acc));

    let mut table = Table::new(&["kernel (2^16 elems)", "baseline Me/s", "fast Me/s", "x"]);
    let row = |t: &mut Table, name: &str, base: Duration, fast: Duration| {
        t.row(&[
            name.to_string(),
            format!("{:.1}", melem_s(len, base)),
            format!("{:.1}", melem_s(len, fast)),
            format!("{:.2}", speedup(base, fast)),
        ]);
    };
    row(&mut table, "mod loop -> mul_slice", t_mul_mod, t_mul_slice);
    row(&mut table, "scalar mul -> mul_slice", t_mul_scalar, t_mul_slice);
    row(&mut table, "mod loop -> mul_shoup_slice", t_mul_mod, t_shoup_slice);
    row(&mut table, "scalar shoup -> mul_shoup_slice", t_shoup_scalar, t_shoup_slice);
    row(
        &mut table,
        &format!("mul_shoup_slice x{workers} threads"),
        t_shoup_scalar,
        t_shoup_threaded,
    );
    row(&mut table, "inv_batch -> blocked", t_inv_batch, t_inv_blocked);
    table.print("field slice kernels (vs textbook `%` loop and per-element scalar loops)");

    format!(
        concat!(
            "  \"kernels\": {{\"elements\": {}, \"threads\": {},\n",
            "    \"baseline_note\": \"mod_loop is the textbook (a*b) % q u128-division loop; ",
            "scalar columns are per-element loops of the branchless Barrett/Shoup field ops\",\n",
            "    \"mul\": {{\"mod_loop_melem_s\": {:.2}, \"scalar_melem_s\": {:.2}, ",
            "\"slice_melem_s\": {:.2}, ",
            "\"slice_speedup_vs_mod_loop\": {:.2}, \"slice_speedup_vs_scalar_mul\": {:.2}}},\n",
            "    \"mul_shoup\": {{\"scalar_melem_s\": {:.2}, \"slice_melem_s\": {:.2}, ",
            "\"threaded_melem_s\": {:.2}, ",
            "\"slice_speedup_vs_mod_loop\": {:.2}, ",
            "\"slice_speedup_vs_scalar_mul_shoup\": {:.2}, ",
            "\"slice_speedup_vs_scalar_barrett_mul\": {:.2}}},\n",
            "    \"inv\": {{\"batch_melem_s\": {:.2}, \"batch_blocked_melem_s\": {:.2}, ",
            "\"blocked_speedup\": {:.2}}}}}"
        ),
        len,
        workers,
        melem_s(len, t_mul_mod),
        melem_s(len, t_mul_scalar),
        melem_s(len, t_mul_slice),
        speedup(t_mul_mod, t_mul_slice),
        speedup(t_mul_scalar, t_mul_slice),
        melem_s(len, t_shoup_scalar),
        melem_s(len, t_shoup_slice),
        melem_s(len, t_shoup_threaded),
        speedup(t_mul_mod, t_shoup_slice),
        speedup(t_shoup_scalar, t_shoup_slice),
        speedup(t_mul_scalar, t_shoup_slice),
        melem_s(len, t_inv_batch),
        melem_s(len, t_inv_blocked),
        speedup(t_inv_batch, t_inv_blocked),
    )
}

fn main() {
    let args = parse_args();
    if let Some(crossover) = args.hgcd_crossover {
        set_hgcd_crossover(crossover);
    }
    let threads = thread_budget().max(1);
    let kernel_field = PrimeField::new(ntt_prime(1 << 20, KERNEL_LOG + 1).0).unwrap();
    let kernels = kernel_bench(&kernel_field, args.samples, &mut SplitMix64::new(0xCA_FE_F0_0D));
    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "len", "prime", "thr", "enc tree", "x", "enc NTT", "x", "int tree", "x", "dec tree",
        "dec NTT", "~int", "~xgcd", "~reenc", "xgcd x",
    ]);

    for log in args.min_log..=args.max_log {
        let e = 1usize << log;
        let d = e / 2;
        let naive_too = log <= NAIVE_MAX_LOG;
        // One NTT-friendly prime per length, admitting transforms of
        // length 2^(log+1) (products of two codeword-degree operands).
        let (q, _) = ntt_prime(1 << 20, log + 1);
        let field = PrimeField::new(q).unwrap();
        let mut rng = SplitMix64::new(0xBE_AC * u64::from(log));
        let msg = random_message(&field, d, &mut rng);

        // Consecutive points: subproduct-tree paths.
        let code = RsCode::consecutive(&field, e);
        let clean = code.encode(&field, &msg);
        let t_enc_naive = naive_too.then(|| {
            assert_eq!(clean, eval_many(&field, &msg, code.points()), "tree encode disagrees");
            best_of(args.samples, || eval_many(&field, &msg, code.points()))
        });
        let t_enc_tree = best_of(args.samples, || code.encode(&field, &msg));
        let pts: Vec<(u64, u64)> =
            code.points().iter().copied().zip(clean.iter().copied()).collect();
        let t_int_naive = naive_too.then(|| {
            assert_eq!(interpolate_fast(&field, &pts), interpolate(&field, &pts));
            best_of(args.samples, || interpolate(&field, &pts))
        });
        let t_int_tree = best_of(args.samples, || interpolate_fast(&field, &pts));
        let word = fault_every_16th(&field, &clean);
        let prof = best_profile(args.samples, || code.decode_profiled(&field, &word, d).unwrap().1);

        // Roots-of-unity points: transform-backed paths (the engine's
        // NTT-friendly schedule).
        let roots = RsCode::roots_of_unity(&field, e).expect("prime admits a length-e orbit");
        let clean_r = roots.encode(&field, &msg);
        let t_enc_r_naive = naive_too.then(|| {
            assert_eq!(clean_r, eval_many(&field, &msg, roots.points()), "NTT encode disagrees");
            best_of(args.samples, || eval_many(&field, &msg, roots.points()))
        });
        let t_enc_ntt = best_of(args.samples, || roots.encode(&field, &msg));
        let word_r = fault_every_16th(&field, &clean_r);
        let prof_r =
            best_profile(args.samples, || roots.decode_profiled(&field, &word_r, d).unwrap().1);

        // Erasure decoding: same word with five symbols withheld. Cold
        // punctures the full point tree from scratch (fresh clone each
        // run, empty cache); warm hits the keyed punctured-tree cache.
        let mut word_e = word_r.clone();
        for &pos in &erasure_positions(e) {
            word_e[pos] = None;
        }
        let t_erase_cold = best_of(args.samples, || {
            let fresh = roots.clone();
            fresh.decode(&field, &word_e, d).unwrap()
        });
        let warm = roots.clone();
        warm.decode(&field, &word_e, d).unwrap();
        let t_erase_warm = best_of(args.samples, || warm.decode(&field, &word_e, d).unwrap());

        // The partial-xgcd step in isolation, on the exact triple the
        // Gao decoder feeds it: g0 vanishing on the points, g1 the
        // interpolation of the (faulted) received word.
        let g0 = vanishing_poly(&field, code.points());
        let word_vals: Vec<(u64, u64)> = code
            .points()
            .iter()
            .zip(&word)
            .map(|(&x, sym)| (x, sym.expect("fault_every_16th keeps all symbols")))
            .collect();
        let g1 = interpolate_fast(&field, &word_vals);
        let stop = (e + d + 2) / 2;
        let t_xgcd_fast = best_of(args.samples, || g0.partial_xgcd_fast(&field, &g1, stop));
        let t_xgcd_classical = naive_too.then(|| {
            assert_eq!(
                g0.partial_xgcd_fast(&field, &g1, stop),
                g0.partial_xgcd(&field, &g1, stop),
                "half-GCD xgcd diverged from the classical oracle"
            );
            best_of(args.samples, || g0.partial_xgcd(&field, &g1, stop))
        });

        table.row(&[
            e.to_string(),
            q.to_string(),
            threads.to_string(),
            fmt_duration(t_enc_tree),
            t_speedup(t_enc_naive, t_enc_tree),
            fmt_duration(t_enc_ntt),
            t_speedup(t_enc_r_naive, t_enc_ntt),
            fmt_duration(t_int_tree),
            t_speedup(t_int_naive, t_int_tree),
            fmt_duration(prof.total()),
            fmt_duration(prof_r.total()),
            fmt_duration(prof_r.interpolate),
            fmt_duration(prof_r.xgcd),
            fmt_duration(prof_r.reencode),
            t_speedup(t_xgcd_classical, t_xgcd_fast),
        ]);
        rows.push(format!(
            concat!(
                "    {{\"log2_len\": {}, \"len\": {}, \"prime\": {}, \"degree\": {}, ",
                "\"threads\": {},\n",
                "     \"consecutive\": {{",
                "\"encode_horner_us\": {}, \"encode_tree_us\": {:.2}, ",
                "\"encode_speedup\": {}, ",
                "\"interpolate_newton_us\": {}, \"interpolate_tree_us\": {:.2}, ",
                "\"interpolate_speedup\": {}, \"decode_us\": {:.2}, ",
                "\"decode_interpolate_us\": {:.2}, \"decode_xgcd_us\": {:.2}, ",
                "\"decode_reencode_us\": {:.2}}},\n",
                "     \"roots_of_unity\": {{",
                "\"encode_horner_us\": {}, \"encode_ntt_us\": {:.2}, ",
                "\"encode_speedup\": {}, \"decode_us\": {:.2}, ",
                "\"decode_interpolate_us\": {:.2}, \"decode_xgcd_us\": {:.2}, ",
                "\"decode_reencode_us\": {:.2}, ",
                "\"erasure_decode_cold_us\": {:.2}, \"erasure_decode_warm_us\": {:.2}}},\n",
                "     \"xgcd\": {{\"stop_degree\": {}, \"classical_us\": {}, ",
                "\"fast_us\": {:.2}, \"speedup\": {}}}}}"
            ),
            log,
            e,
            q,
            d,
            threads,
            j_us(t_enc_naive),
            us(t_enc_tree),
            j_speedup(t_enc_naive, t_enc_tree),
            j_us(t_int_naive),
            us(t_int_tree),
            j_speedup(t_int_naive, t_int_tree),
            us(prof.total()),
            us(prof.interpolate),
            us(prof.xgcd),
            us(prof.reencode),
            j_us(t_enc_r_naive),
            us(t_enc_ntt),
            j_speedup(t_enc_r_naive, t_enc_ntt),
            us(prof_r.total()),
            us(prof_r.interpolate),
            us(prof_r.xgcd),
            us(prof_r.reencode),
            us(t_erase_cold),
            us(t_erase_warm),
            stop,
            j_us(t_xgcd_classical),
            us(t_xgcd_fast),
            j_speedup(t_xgcd_classical, t_xgcd_fast),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"camelot-bench-algebra/v4\",\n",
            "  \"description\": \"Field slice-kernel throughput (Melem/s, chunked vs per-element ",
            "scalar loops) plus the Reed-Solomon codeword pipeline: Horner/Newton/classical-xgcd ",
            "baselines vs subproduct-tree, NTT, and half-GCD fast paths (message degree = len/2; ",
            "decode_us is the sum of its three phase columns; quadratic baselines are null above ",
            "2^14; threads is the CAMELOT_THREADS budget the NTT/decode paths ran under)\",\n",
            "  \"prime_schedule\": \"smallest q >= 2^20 with q = 1 mod 2^(log2_len+1)\",\n",
            "  \"samples\": {},\n",
            "  \"threads\": {},\n",
            "  \"timer\": \"best-of-samples wall clock, release build\",\n",
            "{},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        args.samples,
        threads,
        kernels,
        rows.join(",\n")
    );
    std::fs::write(&args.out, &json)
        .unwrap_or_else(|err| panic!("cannot write {}: {err}", args.out));
    table.print("algebra stack: fast paths (speedups vs naive baselines where measured)");
    println!("\nwrote {}", args.out);
}
