//! Experiment E8 — Theorem 8: #CNFSAT, the permanent, and Hamiltonian
//! cycles at proof size and time `O*(2^{n/2})`.

use camelot_algebraic::{CnfFormula, CountCnfSat, HamiltonianCycles, Permanent};
use camelot_bench::{fmt_duration, time, Table};
use camelot_core::{CamelotProblem, Engine};
use camelot_graph::{count_hamiltonian_cycles, gen};

fn main() {
    let mut table =
        Table::new(&["problem", "size", "2^{n/2} scale", "proof size d", "time", "verified"]);

    for v in [8usize, 10, 12] {
        let formula = CnfFormula::random_ksat(v, 3 * v / 2, 3, v as u64);
        let expect = formula.count_solutions_brute();
        let problem = CountCnfSat::new(formula);
        let spec = problem.spec();
        let (outcome, t) = time(|| Engine::auto(8, 3).run(&problem).unwrap());
        table.row(&[
            "#CNFSAT".into(),
            format!("v={v}"),
            (1u64 << (v / 2)).to_string(),
            spec.degree_bound.to_string(),
            fmt_duration(t),
            (outcome.output.to_u64() == Some(expect)).to_string(),
        ]);
    }

    for n in [6usize, 8] {
        let p = Permanent::random(n, 3, n as u64);
        let expect = p.reference_permanent();
        let spec = p.spec();
        let (outcome, t) = time(|| Engine::auto(8, 3).run(&p).unwrap());
        table.row(&[
            "permanent".into(),
            format!("n={n}"),
            (1u64 << (n / 2)).to_string(),
            spec.degree_bound.to_string(),
            fmt_duration(t),
            (outcome.output == expect).to_string(),
        ]);
    }

    for n in [7usize, 8] {
        let g = gen::gnm(n, n * (n - 1) / 3, n as u64);
        let expect = count_hamiltonian_cycles(&g);
        let problem = HamiltonianCycles::new(g);
        let spec = problem.spec();
        let (outcome, t) = time(|| Engine::auto(8, 3).run(&problem).unwrap());
        table.row(&[
            "Hamilton cycles".into(),
            format!("n={n}"),
            (1u64 << (n / 2)).to_string(),
            spec.degree_bound.to_string(),
            fmt_duration(t),
            (outcome.output.to_u64() == Some(expect)).to_string(),
        ]);
    }
    table.print("E8: exponential-time Camelot algorithms (Theorem 8)");
    println!("paper claim: proof size tracks 2^(n/2) (x2 per size step of 2),");
    println!("against sequential O*(2^n) baselines.");
}
