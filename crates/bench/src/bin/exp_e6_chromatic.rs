//! Experiment E6 — Theorem 6: the chromatic polynomial at `O*(2^{n/2})`.
//!
//! Claim: proof size and per-node time `O*(2^{n/2})` against the best
//! sequential `O*(2^n)` — an optimal-tradeoff Camelot algorithm. We sweep
//! n, comparing the Camelot per-value cost against the inclusion–
//! exclusion baseline, and validating values.

use camelot_bench::{fmt_duration, time, Table};
use camelot_core::{CamelotProblem, Engine};
use camelot_ff::PrimeField;
use camelot_graph::{chromatic::chromatic_value_mod, gen};
use camelot_partition::ChromaticValue;

fn main() {
    let field = PrimeField::new(1_000_000_007).unwrap();
    let mut table = Table::new(&[
        "n",
        "proof size d=2^(B-1)|B|",
        "2^n baseline",
        "camelot x(3)",
        "seq x(3)",
        "agree",
    ]);
    for n in [8usize, 10, 12, 14] {
        let g = gen::gnm(n, 2 * n, n as u64);
        let problem = ChromaticValue::new(g.clone(), 3);
        let spec = problem.spec();
        let (outcome, t_cam) = time(|| Engine::auto(8, 3).run(&problem).unwrap());
        let (seq, t_seq) = time(|| chromatic_value_mod(&g, 3, &field));
        let agree = outcome.output.rem_u64(field.modulus()) == seq;
        table.row(&[
            n.to_string(),
            spec.degree_bound.to_string(),
            (1u64 << n).to_string(),
            fmt_duration(t_cam),
            fmt_duration(t_seq),
            agree.to_string(),
        ]);
    }
    table.print("E6: chromatic value x_G(3), Camelot vs O*(2^n) sequential");
    println!("paper claim: proof size 2^(n/2)*n/2 — note d quadrupling every n += 2");
    println!("while the sequential baseline's 2^n state quadruples too, but the");
    println!("per-NODE Camelot share is d/K (optimal tradeoff at K <= sqrt(T)).");
}
