//! Ablation A2 — the split/sparse inner-digit parameter ℓ (§3.2).
//!
//! The paper picks `ℓ = ⌈log_t |D|⌉` so each part holds at least the
//! input. This sweep shows why: smaller ℓ explodes the part count (more
//! parallelism but each part re-reads the whole input — total work
//! blows up); larger ℓ kills parallelism and inflates per-part space.

use camelot_bench::{fmt_duration, time, Table};
use camelot_ff::{next_prime, PrimeField};
use camelot_graph::{count_triangles, gen};
use camelot_linalg::{MatMulTensor, SplitSparseYates};
use camelot_triangles::adjacency_sparse;

fn main() {
    let tensor = MatMulTensor::strassen();
    let g = gen::gnm(16, 40, 11);
    let expect = count_triangles(&g);
    let t_pow = 4usize; // n padded to 16 = 2^4, R = 7^4 = 2401
    let sparse = adjacency_sparse(&g, 2, t_pow);
    let q = next_prime((16u64.pow(3) + 1).max(1 << 20));
    let field = PrimeField::new(q).unwrap();
    let a0 = tensor.alpha0().transpose();
    let paper_ell = SplitSparseYates::with_support_size(a0.clone(), t_pow, sparse.len()).ell();
    let mut table = Table::new(&[
        "ell",
        "parts",
        "part len",
        "total outputs",
        "all-parts time",
        "paper's choice",
    ]);
    for ell in 0..=t_pow {
        let mk = |m: camelot_linalg::SmallMatrix| SplitSparseYates::new(m, t_pow, ell);
        let sa = mk(tensor.alpha0().transpose());
        let sb = mk(tensor.beta0().transpose());
        let sc = mk(tensor.gamma0().transpose());
        let (trace, t_all) = time(|| {
            let mut acc = 0u64;
            for outer in 0..sa.part_count() {
                let a = sa.part(&field, &sparse, outer);
                let b = sb.part(&field, &sparse, outer);
                let c = sc.part(&field, &sparse, outer);
                for i in 0..a.len() {
                    acc = field.add(acc, field.mul(field.mul(a[i], b[i]), c[i]));
                }
            }
            acc
        });
        assert_eq!(trace / 6, expect, "ell = {ell}");
        table.row(&[
            ell.to_string(),
            sa.part_count().to_string(),
            sa.part_len().to_string(),
            (sa.part_count() * sa.part_len()).to_string(),
            fmt_duration(t_all),
            (ell == paper_ell).to_string(),
        ]);
    }
    table.print("A2: sweeping the split parameter ℓ (triangles, n=16, m=40)");
    println!("paper's ℓ = ceil(log_7 |D|) balances per-part work against the");
    println!("redundant |D|-scan every part performs.");
}
