//! Experiment E1 — Theorem 1: Camelot k-clique counting matches the
//! Nešetřil–Poljak total.
//!
//! Claim: proof size and per-node time `O(n^{(ω+ε)k/6})` (so total
//! `O(n^{(ω+ε)k/3})`), against NP's sequential `O(n^{(ω+ε)k/3})` — the
//! optimal tradeoff. We report measured wall times and the resource
//! ratios as n grows, k = 6, Strassen tensor (ω = log2 7).
//!
//! Pass `--ntt` to switch the engine to the NTT-friendly prime schedule
//! (accelerated codeword pipeline) and compare end-to-end prepare times.

use camelot_bench::{fmt_duration, time, Table};
use camelot_cliques::{count_cliques_circuit, count_cliques_nesetril_poljak, KCliqueCount};
use camelot_core::{CamelotProblem, Engine, EngineConfig};
use camelot_graph::{count_k_cliques, gen};
use camelot_linalg::MatMulTensor;

fn main() {
    let ntt = std::env::args().any(|a| a == "--ntt");
    let tensor = MatMulTensor::strassen();
    let mut table = Table::new(&[
        "n",
        "6-cliques",
        "NP seq",
        "new circuit (Thm 2)",
        "Camelot/node evals",
        "proof size d",
        "prepare",
        "brute",
    ]);
    for n in [6usize, 7, 8] {
        let extra = (n * (n - 1) / 2 - 15).min(n); // stay within the K_n edge budget
        let g = gen::planted_clique(n, extra, 6, n as u64); // guaranteed 6-cliques
        let (brute, t_brute) = time(|| count_k_cliques(&g, 6));
        let (np, t_np) = time(|| count_cliques_nesetril_poljak(&g, 6));
        let (circ, t_circ) = time(|| count_cliques_circuit(&g, 6, &tensor));
        assert_eq!(np.to_u64(), Some(brute));
        assert_eq!(circ.to_u64(), Some(brute));
        let problem = KCliqueCount::new(g, 6);
        let nodes = 16usize;
        let mut config = EngineConfig::auto(nodes, 4);
        if ntt {
            config = config.with_ntt_primes();
        }
        let (outcome, t_camelot) = time(|| Engine::new(config.clone()).run(&problem).unwrap());
        assert_eq!(outcome.output.to_u64(), Some(brute));
        table.row(&[
            n.to_string(),
            brute.to_string(),
            fmt_duration(t_np),
            fmt_duration(t_circ),
            outcome.report.max_node_evaluations.to_string(),
            problem.spec().degree_bound.to_string(),
            fmt_duration(t_camelot),
            fmt_duration(t_brute),
        ]);
    }
    let schedule = if ntt { "NTT-friendly" } else { "default" };
    table.print(&format!(
        "E1: 6-clique counting, Camelot ({schedule} primes) vs Nešetřil–Poljak vs brute force"
    ));
    println!("paper claim: per-node O(n^(2.81*k/6)); NP total O(n^(2.81*k/3));");
    println!("Camelot total resource = NP total (optimal tradeoff of §1.4).");
}
