//! Experiment G3 — Camelot as a service (the daemon end to end).
//!
//! Claim: a persistent proof daemon amortises the paper's preparation
//! cost across petitioners. The experiment spawns the real
//! `camelot-serve` binary with **process** workers (so rounds span OS
//! processes), then demonstrates, against one daemon lifetime:
//!
//! 1. **Coalescing** — two overlapping prepare requests for different
//!    polynomials land in one admission batch and share its per-prime
//!    broadcast rounds (`coalesced == 2`, equal round counts, total
//!    strictly below two solo runs);
//! 2. **Caching** — a repeat query is served from the certificate
//!    store with **zero** rounds and a bit-identical certificate;
//! 3. **Fault recovery** — a forcibly killed pool worker surfaces as a
//!    recorded worker failure, the pool respawns it, and the next
//!    request succeeds;
//! 4. **Clean shutdown** — the daemon exits 0 with every worker
//!    reaped (no orphan processes).
//!
//! Flags: `--nodes K` (default 4), `--batch-window-ms N` (default 400).

use camelot_bench::Table;
use camelot_cluster::sibling_binary;
use camelot_core::PrimeSchedule;
use camelot_server::{request, PolyRequest, Request, Response};
use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};
use std::sync::{Arc, Barrier};
use std::thread;

fn poly(coefficients: Vec<u64>) -> PolyRequest {
    PolyRequest {
        coefficients,
        sum_count: 32,
        value_bits: 60,
        min_modulus: 1 << 20,
        schedule: PrimeSchedule::Smallest,
    }
}

fn prepare(addr: &str, p: &PolyRequest) -> Response {
    let response = request(addr, &Request::Prepare(p.clone())).expect("prepare request");
    assert!(response.ok, "prepare failed: {:?}", response.error);
    response
}

fn main() {
    let mut nodes = 4usize;
    let mut batch_window_ms = 400u64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| panic!("missing value for {flag}"));
        match flag.as_str() {
            "--nodes" => nodes = value().parse().expect("--nodes"),
            "--batch-window-ms" => batch_window_ms = value().parse().expect("--batch-window-ms"),
            other => panic!("unknown flag {other}"),
        }
    }

    let serve = sibling_binary("camelot-serve").expect(
        "camelot-serve binary not found next to this executable; run `cargo build --release`",
    );
    let mut daemon = Command::new(&serve)
        .args([
            "--listen",
            "127.0.0.1:0",
            "--nodes",
            &nodes.to_string(),
            "--workers",
            "process",
            "--batch-window-ms",
            &batch_window_ms.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawning camelot-serve");
    let stdout = daemon.stdout.take().expect("daemon stdout");
    let mut banner = String::new();
    BufReader::new(stdout).read_line(&mut banner).expect("daemon banner");
    let addr = banner
        .trim()
        .strip_prefix("camelot-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected daemon banner {banner:?}"))
        .to_string();
    println!("daemon: {} on {addr} ({nodes} process workers)", serve.display());

    // 1. Two overlapping clients coalesce onto one admission batch.
    let polys = [poly(vec![3, 1, 4, 1, 5]), poly(vec![2, 7, 1, 8])];
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = polys
        .iter()
        .map(|p| {
            let (addr, barrier, p) = (addr.clone(), Arc::clone(&barrier), p.clone());
            thread::spawn(move || {
                barrier.wait();
                prepare(&addr, &p)
            })
        })
        .collect();
    let overlapping: Vec<Response> =
        handles.into_iter().map(|h| h.join().expect("client thread")).collect();
    let shared_rounds = overlapping[0].rounds;
    for response in &overlapping {
        assert_eq!(response.coalesced, 2, "overlapping requests must share one batch");
        assert_eq!(response.rounds, shared_rounds, "one batch, one set of rounds");
        assert!(!response.cache_hit);
    }
    assert!(shared_rounds > 0);

    // Solo baseline: the same two requests again would each pay their
    // own rounds if run alone — repeat queries are cache hits, so use
    // fresh polynomials.
    let solo_total: usize = [poly(vec![9, 2, 6]), poly(vec![5, 3, 5, 8])]
        .iter()
        .map(|p| {
            let response = prepare(&addr, p);
            assert_eq!(response.coalesced, 1);
            response.rounds
        })
        .sum();
    assert!(
        shared_rounds < solo_total,
        "coalesced rounds ({shared_rounds}) must undercut the solo total ({solo_total})"
    );

    // 2. A repeat query is a zero-round cache hit, bit-identical.
    let repeat = prepare(&addr, &polys[0]);
    assert_eq!(repeat.rounds, 0, "cache hit must run no rounds");
    assert!(repeat.cache_hit);
    assert_eq!(repeat.output, overlapping[0].output);
    assert_eq!(
        repeat.certificate, overlapping[0].certificate,
        "served certificate must be bit-identical to the prepared one"
    );

    // 3. Kill a pool worker; the service records the failure, respawns,
    // and keeps serving.
    let killed = request(&addr, &Request::CrashWorker { node: 0 }).expect("crash-worker request");
    assert!(killed.ok, "crash-worker failed: {:?}", killed.error);
    let after_kill = prepare(&addr, &poly(vec![1, 1, 2, 3, 5, 8]));
    assert!(after_kill.rounds > 0);
    let status = request(&addr, &Request::Status).expect("status request");
    assert!(status.ok);
    assert!(status.worker_failures >= 1, "the killed worker must be recorded");
    assert!(status.respawns >= 1, "the pool must have respawned the worker");
    assert_eq!(status.workers, nodes, "the pool must be back to full strength");

    let mut table = Table::new(&["request", "rounds", "coalesced", "cache hit", "output"]);
    let mut show = |name: &str, r: &Response| {
        table.row(&[
            name.to_string(),
            r.rounds.to_string(),
            r.coalesced.to_string(),
            if r.cache_hit { "yes".into() } else { "no".into() },
            r.output.map_or("-".into(), |o| o.to_string()),
        ]);
    };
    show("overlap A", &overlapping[0]);
    show("overlap B", &overlapping[1]);
    show("repeat A", &repeat);
    show("after kill", &after_kill);
    table.print(&format!(
        "G3: camelot-serve, {nodes} process workers, {}ms admission window, \
         {} requests, {} store hits, {} respawns",
        batch_window_ms, status.requests, status.store_hits, status.respawns
    ));

    // 4. Clean shutdown: daemon exits 0 only after every worker is
    // reaped — an orphan would make the pool teardown report an error.
    let bye = request(&addr, &Request::Shutdown).expect("shutdown request");
    assert!(bye.ok, "shutdown failed: {:?}", bye.error);
    let exit = daemon.wait().expect("daemon exit status");
    assert!(exit.success(), "daemon must exit cleanly, got {exit}");
    println!(
        "paper claim: prepare once, serve many — coalesced rounds {shared_rounds} < {solo_total} \
         solo, repeat queries at 0 rounds, worker loss absorbed by respawn"
    );
}
