//! Experiment E3 — Theorem 3: Camelot triangle counting with proof size
//! `O(n^ω / m)` and per-node time `Õ(m)`.
//!
//! Sweep density m at fixed n: the proof must SHRINK as the input grows
//! denser (the paper's signature sparsity-awareness), while per-node
//! evaluation work stays `Õ(m + n^ω/m)`.

use camelot_bench::{fmt_duration, time, Table};
use camelot_core::{CamelotProblem, Engine};
use camelot_graph::{count_triangles, gen};
use camelot_triangles::TriangleCount;

fn main() {
    let n = 32usize;
    let mut table = Table::new(&[
        "m",
        "triangles",
        "proof size d",
        "parts R/m'",
        "part len ~m",
        "per-node evals",
        "prepare",
    ]);
    for m in [40usize, 80, 160, 320] {
        let g = gen::gnm(n, m, 9);
        let expect = count_triangles(&g);
        let problem = TriangleCount::new(&g);
        let spec = problem.spec();
        let (outcome, t) = time(|| Engine::auto(8, 4).run(&problem).unwrap());
        assert_eq!(outcome.output, expect);
        table.row(&[
            m.to_string(),
            expect.to_string(),
            spec.degree_bound.to_string(),
            problem.split().part_count().to_string(),
            problem.split().part_len().to_string(),
            outcome.report.max_node_evaluations.to_string(),
            fmt_duration(t),
        ]);
    }
    table.print("E3: triangle proof size vs density (n = 32 fixed)");
    println!("paper claim: proof size O(n^ω/m) — rows must shrink as m grows;");
    println!("part length tracks m (per-node space Õ(m)).");
}
