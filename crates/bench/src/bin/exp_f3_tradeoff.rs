//! Experiment F3 — the optimal speedup tradeoff (§1.4).
//!
//! Claim: per-node work `E ≈ T/K` for `K` up to `T^{1/2}`, with intrinsic
//! workload balance (slices differ by at most one evaluation), and
//! verification costs what one node contributes.

use camelot_bench::Table;
use camelot_core::{CamelotProblem, Engine};
use camelot_graph::gen;
use camelot_triangles::TriangleCount;

fn main() {
    let g = gen::gnm(16, 24, 3); // sparse: long proof, wide K range
    let problem = TriangleCount::new(&g);
    let spec = problem.spec();
    let mut table =
        Table::new(&["K nodes", "total evals T", "per-node E", "E*K", "verify evals", "balanced"]);
    let mut t_ref = 0usize;
    for k in [1usize, 2, 4, 8, 16, 32] {
        let outcome = Engine::auto(k, 4).run(&problem).unwrap();
        let total = outcome.report.total_evaluations;
        let per_node = outcome.report.max_node_evaluations;
        if k == 1 {
            t_ref = total;
        }
        table.row(&[
            k.to_string(),
            total.to_string(),
            per_node.to_string(),
            (per_node * k).to_string(),
            outcome.report.verification_evaluations.to_string(),
            (per_node * k <= total + k).to_string(),
        ]);
    }
    table.print("F3: K-sweep on a fixed triangle instance");
    println!("paper claim: E = T/K (here T = {t_ref} evaluations per full run; E*K stays ~T)");
    println!(
        "proof degree d = {}, so K <= T^(1/2) ~ {}",
        spec.degree_bound,
        (t_ref as f64).sqrt() as usize
    );
}
