//! Experiment E10 — Theorem 11: polynomial-time Camelot algorithms.
//!
//! Claim: proof size and per-node time `Õ(n t^c)` with `c = 1` for
//! orthogonal vectors, `c = 2` for the Hamming distribution and
//! Convolution3SUM. We sweep n at fixed t and fit the linear shape.

use camelot_algebraic::{BoolMatrix, Convolution3Sum, HammingDistribution, OrthogonalVectors};
use camelot_bench::{fmt_duration, time, Table};
use camelot_core::{CamelotProblem, Engine};

fn main() {
    let mut table = Table::new(&["problem", "n", "t", "proof size d", "d/(n t^c)", "time"]);
    let t_dim = 6usize;
    for n in [8usize, 16, 32] {
        let a = BoolMatrix::random(n, t_dim, 40, 1);
        let b = BoolMatrix::random(n, t_dim, 40, 2);
        let problem = OrthogonalVectors::new(a, b);
        let spec = problem.spec();
        let (outcome, t) = time(|| Engine::auto(8, 3).run(&problem).unwrap());
        assert_eq!(outcome.output, problem.reference_counts());
        table.row(&[
            "OV (c=1)".into(),
            n.to_string(),
            t_dim.to_string(),
            spec.degree_bound.to_string(),
            format!("{:.2}", spec.degree_bound as f64 / (n * t_dim) as f64),
            fmt_duration(t),
        ]);
    }
    for n in [6usize, 10, 14] {
        let a = BoolMatrix::random(n, t_dim, 50, 3);
        let b = BoolMatrix::random(n, t_dim, 50, 4);
        let problem = HammingDistribution::new(a, b);
        let spec = problem.spec();
        let (outcome, t) = time(|| Engine::auto(8, 3).run(&problem).unwrap());
        assert_eq!(outcome.output, problem.reference_distribution());
        table.row(&[
            "Hamming (c=2)".into(),
            n.to_string(),
            t_dim.to_string(),
            spec.degree_bound.to_string(),
            format!("{:.2}", spec.degree_bound as f64 / (n * t_dim * t_dim) as f64),
            fmt_duration(t),
        ]);
    }
    for n in [8usize, 12, 16] {
        let problem = Convolution3Sum::random(n, 4, 5);
        let spec = problem.spec();
        let (outcome, t) = time(|| Engine::auto(8, 3).run(&problem).unwrap());
        assert_eq!(outcome.output, problem.reference_counts());
        table.row(&[
            "Conv3SUM (c=2)".into(),
            n.to_string(),
            "4".into(),
            spec.degree_bound.to_string(),
            format!("{:.2}", spec.degree_bound as f64 / (n * 16) as f64),
            fmt_duration(t),
        ]);
    }
    table.print("E10: polynomial-time designs (Theorem 11)");
    println!("paper claim: d/(n t^c) stays bounded as n grows (c = 1, 2, 2).");
}
