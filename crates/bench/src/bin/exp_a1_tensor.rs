//! Ablation A1 — tensor decomposition choice.
//!
//! Theorem 1's proof size is `O(R)` for any rank-`R` decomposition of
//! `⟨N,N,N⟩`. Swapping Strassen (`R0 = 7`, `ω = 2.807`) for the naive
//! rank-8 base (`ω = 3`) changes proof size, per-node time, AND the
//! modulus floor — the clean ablation of the fast-matrix-multiplication
//! dependence the paper highlights for Theorems 1, 7, 12.

use camelot_bench::{fmt_duration, time, Table};
use camelot_cliques::{count_cliques_circuit, KCliqueCount};
use camelot_core::{CamelotProblem, Engine};
use camelot_graph::{count_k_cliques, gen};
use camelot_linalg::MatMulTensor;

fn main() {
    let mut table = Table::new(&[
        "tensor",
        "omega",
        "n",
        "rank R",
        "proof size d",
        "count time",
        "camelot time",
        "agree",
    ]);
    for n in [7usize, 8] {
        let g = gen::planted_clique(n, (n * (n - 1) / 2 - 15).min(n), 6, n as u64);
        let expect = count_k_cliques(&g, 6);
        for (name, tensor) in
            [("strassen", MatMulTensor::strassen()), ("naive-2", MatMulTensor::naive(2))]
        {
            let (circ, t_circ) = time(|| count_cliques_circuit(&g, 6, &tensor));
            let problem = KCliqueCount::with_tensor(g.clone(), 6, tensor.clone());
            let (outcome, t_cam) = time(|| Engine::auto(8, 2).run(&problem).unwrap());
            table.row(&[
                name.to_string(),
                format!("{:.3}", tensor.omega()),
                n.to_string(),
                problem.rank().to_string(),
                problem.spec().degree_bound.to_string(),
                fmt_duration(t_circ),
                fmt_duration(t_cam),
                (circ.to_u64() == Some(expect) && outcome.output.to_u64() == Some(expect))
                    .to_string(),
            ]);
        }
    }
    table.print("A1: Strassen vs naive tensor in Theorem 1");
    println!("ablation: rank 7^t vs 8^t drives proof size and per-node time —");
    println!("the paper's entire ω-dependence isolated to one swap.");
}
