//! Experiment E5 — Theorem 5: matching the Alon–Yuster–Zwick bound.
//!
//! Claim: with the degree split at Δ = m^{(ω-1)/(ω+1)}, triangles are
//! counted in total time O(m^{2ω/(ω+1)}) with per-node work Õ(m) on
//! O(m^{(ω-1)/(ω+1)}) + O((m/Δ)^ω / m) parallel nodes. We sweep density
//! and watch the high/low work split and the node counts.

use camelot_bench::{fmt_duration, time, Table};
use camelot_graph::{count_triangles, gen};
use camelot_linalg::MatMulTensor;
use camelot_triangles::count_triangles_ayz;

fn main() {
    let tensor = MatMulTensor::strassen();
    let mut table = Table::new(&[
        "n",
        "m",
        "delta",
        "high verts",
        "high tri",
        "low tri",
        "dense nodes",
        "low nodes",
        "time",
    ]);
    for (n, m) in [(24usize, 40usize), (24, 120), (32, 100), (32, 300), (48, 200)] {
        let g = gen::gnm(n, m, 5);
        let (run, t) = time(|| count_triangles_ayz(&g, &tensor));
        assert_eq!(run.triangles, count_triangles(&g), "n={n} m={m}");
        table.row(&[
            n.to_string(),
            m.to_string(),
            run.delta.to_string(),
            run.high_vertices.to_string(),
            run.high_triangles.to_string(),
            run.low_triangles.to_string(),
            run.dense_nodes.to_string(),
            run.low_nodes.to_string(),
            fmt_duration(t),
        ]);
    }
    table.print("E5: AYZ high/low degree split");
    println!("paper claim: Δ = m^((ω-1)/(ω+1)); high part has <= 2m/Δ vertices;");
    println!("per-node work Õ(m) in both phases.");
}
