//! Experiment E4 — Theorem 4: the split/sparse parallel layout.
//!
//! Claim: trace(A³) is produced in `O(n^ω/m)` independent parts of `Õ(m)`
//! work each — per-node time and space `Õ(m)` on `O(n^ω/m)` nodes. We
//! measure single-part wall time (the per-node cost) across densities.

use camelot_bench::{fmt_duration, time, Table};
use camelot_ff::{next_prime, PrimeField};
use camelot_graph::{count_triangles, gen};
use camelot_linalg::MatMulTensor;
use camelot_triangles::{Family, TriangleSplit};

fn main() {
    let tensor = MatMulTensor::strassen();
    let n = 32usize;
    let mut table =
        Table::new(&["m", "rank R", "parts", "part len", "one-part time", "all-parts verify"]);
    for m in [30usize, 60, 120, 240] {
        let g = gen::gnm(n, m, 4);
        let split = TriangleSplit::new(&g, &tensor);
        let q = next_prime(((split.padded_size() as u64).pow(3) + 1).max(1 << 20));
        let field = PrimeField::new(q).unwrap();
        let (_, t_part) = time(|| split.family_part(&field, Family::Alpha, 0));
        let (count, _) = time(|| split.count_triangles(&field));
        assert_eq!(count, count_triangles(&g));
        table.row(&[
            m.to_string(),
            split.rank().to_string(),
            split.part_count().to_string(),
            split.part_len().to_string(),
            fmt_duration(t_part),
            count.to_string(),
        ]);
    }
    table.print("E4: split/sparse part geometry (n = 32)");
    println!("paper claim: parts x part_len ~ R = O(n^ω); per-part work Õ(m).");
}
