//! Experiment E9 — Theorems 9 and 10: counting set covers (polynomial
//! family) and exact set partitions (family up to `O*(2^{n/2})`) at
//! `O*(2^{n/2})` proof size and time.

use camelot_algebraic::SetCovers;
use camelot_bench::{fmt_duration, time, Table};
use camelot_core::{CamelotProblem, Engine};
use camelot_ff::{RngLike, SplitMix64};
use camelot_partition::SetPartitions;

fn main() {
    let mut table = Table::new(&["problem", "n", "|F|", "t", "proof size d", "count", "time"]);
    let mut rng = SplitMix64::new(77);
    for n in [8usize, 10, 12] {
        let family: Vec<u64> = (0..n).map(|_| 1 + rng.next_u64() % ((1 << n) - 1)).collect();
        let problem = SetCovers::new(n, family.clone(), 3);
        let spec = problem.spec();
        let (outcome, t) = time(|| Engine::auto(6, 3).run(&problem).unwrap());
        assert_eq!(outcome.output.to_u128(), Some(problem.reference_count()));
        table.row(&[
            "set covers (Thm 9)".into(),
            n.to_string(),
            family.len().to_string(),
            "3".into(),
            spec.degree_bound.to_string(),
            outcome.output.to_string(),
            fmt_duration(t),
        ]);
    }
    for n in [6usize, 8, 10] {
        // Exponential-size family: all nonempty subsets (2^n - 1 sets).
        let family: Vec<u64> = (1..1u64 << n).collect();
        let problem = SetPartitions::new(n, family.clone(), 3);
        let spec = problem.spec();
        let (outcome, t) = time(|| Engine::auto(6, 3).run(&problem).unwrap());
        table.row(&[
            "set partitions (Thm 10)".into(),
            n.to_string(),
            family.len().to_string(),
            "3".into(),
            spec.degree_bound.to_string(),
            format!("{} = S({n},3)", outcome.output),
            fmt_duration(t),
        ]);
    }
    table.print("E9: covers and partitions");
    println!("paper claim: proof size 2^(n/2)-scale even for 2^n-sized families");
    println!("(the Thm 10 rows take an exponential family yet keep the small proof).");
}
