//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! benchmark API this workspace's benches use.
//!
//! The container this repository builds in has no crates.io registry, so
//! the real `criterion` crate cannot be resolved. Rather than lose the
//! bench harnesses, the benches import this module
//! (`camelot_bench::criterion`) and keep their criterion-shaped bodies
//! unchanged; swapping back to the real crate is a one-line import change
//! per bench.
//!
//! Timing model: each `Bencher::iter` call runs one untimed warm-up
//! iteration, then `sample_size` timed iterations, and reports the mean
//! per-iteration wall-clock time. Override the default sample count with
//! the `CAMELOT_BENCH_SAMPLES` environment variable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Default number of timed iterations per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 20;

fn env_sample_size() -> Option<usize> {
    std::env::var("CAMELOT_BENCH_SAMPLES").ok()?.parse().ok()
}

fn fmt_mean(total: Duration, iters: usize) -> String {
    let ns = total.as_nanos() as f64 / iters.max(1) as f64;
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.2}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// Entry point handed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    fn effective_samples(&self, group_override: usize) -> usize {
        env_sample_size()
            .or(if group_override > 0 { Some(group_override) } else { None })
            .unwrap_or(DEFAULT_SAMPLE_SIZE)
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let samples = self.effective_samples(0);
        run_one(name, samples, f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 0,
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A named benchmark parameterisation, printed as `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

/// Measurement marker types, mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock time measurement (the only mode the shim supports).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// A group of related benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Sets the number of timed iterations for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group with an input parameter.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let samples = self.criterion.effective_samples(self.sample_size);
        run_one(&format!("{}/{}", self.name, id.id), samples, |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: usize,
    timed: Option<Duration>,
}

impl Bencher {
    /// Times `iters` runs of `f` after one warm-up run; the mean is
    /// reported by the enclosing benchmark runner.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.timed = Some(start.elapsed());
    }
}

fn run_one(label: &str, samples: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { iters: samples, timed: None };
    let start = Instant::now();
    f(&mut bencher);
    // Report the duration of the timed loop only; fall back to the whole
    // closure if it never called `iter` (excludes per-bench setup cost).
    let elapsed = bencher.timed.unwrap_or_else(|| start.elapsed());
    println!("{label:<48} {} /iter  ({samples} samples)", fmt_mean(elapsed, samples));
}

/// Registers bench functions under a single runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::criterion::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates a `main` that runs the registered groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};
