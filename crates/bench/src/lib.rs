//! # camelot-bench — experiment harness
//!
//! Shared plumbing for the experiment binaries (`exp_e1_cliques` …
//! `exp_f3_tradeoff`) that regenerate the paper's per-theorem claims, and
//! for the benches. See `README.md` at the repository root for the
//! experiment index.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod criterion;

use camelot_ff::{PrimeField, RngLike, SplitMix64};
use camelot_poly::Poly;
use std::time::{Duration, Instant};

/// Times a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A deterministic random message polynomial of degree exactly `d`
/// (monic), the shared workload shape of the Reed–Solomon benches — one
/// definition so the criterion bench and the committed
/// `BENCH_algebra.json` trajectory measure the same thing.
#[must_use]
pub fn random_message(field: &PrimeField, d: usize, rng: &mut SplitMix64) -> Poly {
    Poly::from_reduced(
        (0..=d).map(|i| if i == d { 1 } else { rng.next_u64() % field.modulus() }).collect(),
    )
}

/// A received word with an error planted on every 16th symbol (within
/// the unique-decoding radius for message degree `len/2`): the shared
/// fault pattern of the Reed–Solomon decode benches.
#[must_use]
pub fn fault_every_16th(field: &PrimeField, clean: &[u64]) -> Vec<Option<u64>> {
    let mut word: Vec<Option<u64>> = clean.iter().copied().map(Some).collect();
    for k in 0..clean.len() / 16 {
        word[k * 16] = Some(field.add(clean[k * 16], 1 + k as u64));
    }
    word
}

/// A plain-text results table matching the paper-reproduction reports.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table { headers: headers.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to stdout.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:>w$}", w = w)).collect();
            println!("  {}", joined.join("  "));
        };
        line(&self.headers);
        println!("  {}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats a `Duration` in adaptive units.
#[must_use]
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}us")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{:.2}s", us as f64 / 1e6)
    }
}
