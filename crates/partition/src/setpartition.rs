//! Counting exact set covers / set partitions (Theorem 10, §8).
//!
//! Given a family `F` of nonempty subsets of `[n]` (possibly of size
//! `O*(2^{n/2})`) and `t`, count the unordered partitions of `[n]` into
//! exactly `t` sets from `F`. The template instantiation: `f` is the
//! indicator of `F`, and the node function `g` is computed within the
//! `O*(2^{n/2})` budget by bucketing the family on `X ∩ E` and running
//! one zeta transform — §8.2's dedicated algorithm.

use crate::bipoly::BiPoly;
use crate::template::{alternating_power_coefficient, zeta_in_place, Split};
use camelot_core::{CamelotError, CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::{crt_u, PrimeField, Residue, UBig};

/// The set-partition-counting Camelot problem.
#[derive(Clone, Debug)]
pub struct SetPartitions {
    split: Split,
    family: Vec<u64>,
    tuple_len: u64,
}

impl SetPartitions {
    /// Creates the problem for subsets of `[universe]` given as bitmasks.
    ///
    /// # Panics
    ///
    /// Panics if the universe is empty or exceeds 32 elements, the family
    /// contains the empty set or out-of-range sets, or `tuple_len == 0`.
    #[must_use]
    pub fn new(universe: usize, family: Vec<u64>, tuple_len: u64) -> Self {
        assert!(universe > 0 && universe <= 32, "universe must have 1..=32 elements");
        assert!(tuple_len > 0, "tuple length must be positive");
        let full = if universe == 64 { u64::MAX } else { (1u64 << universe) - 1 };
        for &x in &family {
            assert!(x != 0, "the family must not contain the empty set");
            assert!(x & !full == 0, "set outside the universe");
        }
        SetPartitions { split: Split::balanced(universe), family, tuple_len }
    }

    /// Ground truth by backtracking over ordered tuples (tiny inputs).
    #[must_use]
    pub fn reference_count(&self) -> u128 {
        let full = (1u64 << self.split.n) - 1;
        fn rec(family: &[u64], covered: u64, full: u64, left: u64) -> u128 {
            if left == 0 {
                return u128::from(covered == full);
            }
            let mut acc = 0u128;
            for &x in family {
                if x & covered == 0 {
                    acc += rec(family, covered | x, full, left - 1);
                }
            }
            acc
        }
        let ordered = rec(&self.family, 0, full, self.tuple_len);
        let mut fact = 1u128;
        for i in 1..=u128::from(self.tuple_len) {
            fact *= i;
        }
        debug_assert_eq!(ordered % fact, 0);
        ordered / fact
    }
}

impl CamelotProblem for SetPartitions {
    type Output = UBig;

    fn spec(&self) -> ProofSpec {
        let bits = (self.tuple_len as f64) * ((self.family.len().max(2)) as f64).log2() + 4.0;
        ProofSpec {
            degree_bound: self.split.degree_bound(),
            min_modulus: self.split.degree_bound() as u64 + 2,
            value_bits: bits.ceil() as u64,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let split = self.split;
        Box::new(move |x0: u64| {
            let x0 = f.reduce(x0);
            let mut g: Vec<BiPoly> = (0..1usize << split.e_size)
                .map(|_| BiPoly::zero(split.e_size, split.b_size))
                .collect();
            // Bucket the family on X ∩ E (the §8.2 iteration).
            for &x in &self.family {
                let (me, mb) = split.split_mask(x);
                let weight = f.pow(x0, mb); // x0^{Σ bits of X ∩ B}
                g[me as usize].add_monomial(
                    &f,
                    me.count_ones() as usize,
                    mb.count_ones() as usize,
                    weight,
                );
            }
            zeta_in_place(&f, &mut g, split.e_size);
            alternating_power_coefficient(&f, &g, &split, self.tuple_len)
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<UBig, CamelotError> {
        // The answer is the proof coefficient p_{2^{|B|}-1}, divided by t!.
        let target = self.split.target_coefficient();
        let residues: Vec<Residue> = proofs.iter().map(|p| p.coefficient_residue(target)).collect();
        let ordered = crt_u(&residues);
        let mut value = ordered;
        for i in 1..=self.tuple_len {
            let (q, r) = value.div_rem_u64(i);
            if r != 0 {
                return Err(CamelotError::RecoveryFailed {
                    reason: "ordered partition count not divisible by t!".into(),
                });
            }
            value = q;
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::{arthur_verify, merlin_prove, Engine};

    #[test]
    fn perfect_matchings_of_a_four_set() {
        // Family: all 2-subsets of {0..3}; t = 2: partitions into two
        // pairs — the 3 perfect matchings of K4.
        let family: Vec<u64> = vec![0b0011, 0b0101, 0b1001, 0b0110, 0b1010, 0b1100];
        let problem = SetPartitions::new(4, family, 2);
        assert_eq!(problem.reference_count(), 3);
        let outcome = Engine::sequential(3, 2).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(3));
    }

    #[test]
    fn random_families_match_reference() {
        use camelot_ff::{RngLike, SplitMix64};
        for seed in 0..4 {
            let mut rng = SplitMix64::new(seed);
            let n = 6;
            let family: Vec<u64> = (0..8)
                .map(|_| 1 + rng.next_u64() % ((1 << n) - 1))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            for t in [2u64, 3] {
                let problem = SetPartitions::new(n, family.clone(), t);
                let expect = problem.reference_count();
                let outcome = Engine::sequential(4, 2).run(&problem).unwrap();
                assert_eq!(outcome.output.to_u128(), Some(expect), "seed {seed} t {t}");
            }
        }
    }

    #[test]
    fn exponential_family_all_subsets() {
        // F = all nonempty subsets of [5]; t = 2: unordered partitions of
        // a 5-set into 2 nonempty parts = S(5,2) = 15.
        let family: Vec<u64> = (1..32).collect();
        let problem = SetPartitions::new(5, family, 2);
        assert_eq!(problem.reference_count(), 15);
        let outcome = Engine::sequential(4, 2).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(15));
    }

    #[test]
    fn stirling_numbers_via_all_subsets() {
        // S(6, 3) = 90.
        let family: Vec<u64> = (1..64).collect();
        let problem = SetPartitions::new(6, family, 3);
        let outcome = Engine::sequential(4, 2).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(90));
    }

    #[test]
    fn impossible_partition_counts_zero() {
        // Only one set, can't partition a 4-universe into 2 parts.
        let problem = SetPartitions::new(4, vec![0b1111], 2);
        assert_eq!(problem.reference_count(), 0);
        let outcome = Engine::sequential(2, 1).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(0));
    }

    #[test]
    fn merlin_arthur_roundtrip() {
        let family: Vec<u64> = vec![0b00011, 0b11100, 0b00111, 0b11000, 0b10101];
        let problem = SetPartitions::new(5, family, 2);
        let proofs = merlin_prove(&problem).unwrap();
        arthur_verify(&problem, &proofs, 4, 21).unwrap();
        assert_eq!(problem.recover(&proofs).unwrap().to_u128(), Some(problem.reference_count()));
    }
}
