//! The Tutte polynomial (Theorem 7, §10).
//!
//! Fortuin–Kasteleyn: `Z_G(t, r) = Σ_{σ: V→[t]} Π_{e} (1 + r [σ(e₁)=σ(e₂)])`
//! is the partitioning sum-product with `f(X) = (1+r)^{|E(G[X])|}`. Unlike
//! the chromatic case, `f` couples the `E`- and `B`-sides of the split, so
//! the node function is computed with the **tripartite decomposition**
//! (Williams): split `E = E₁ ∪ E₂` with `|E₁| = |E₂| ≈ |B|`, factor
//!
//! ```text
//! f(X ∪ Y₁ ∪ Y₂) = f̂_{B,E₁}(X∪Y₁) · f̂_{B,E₂}(X∪Y₂) · f_{E₁,E₂}(Y₁∪Y₂),
//! ```
//!
//! and absorb the sum over `X ⊆ B` into `|B|+1` matrix products (one per
//! `|X|`), which is where fast matrix multiplication enters the per-node
//! time `O*(2^{(ω+ε)n/3})`. Proof size is `O*(2^{n/3})`, per-node space
//! `O*(2^{2n/3})`.

use crate::bipoly::BiPoly;
use crate::ipoly::{eval_integer_2d, interpolate_integer_2d};
use crate::template::{alternating_power_coefficient, zeta_in_place, Split};
use camelot_core::{CamelotError, CamelotProblem, Engine, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::{crt_u, IBig, PrimeField, Residue, UBig};
use camelot_graph::MultiGraph;
use camelot_linalg::Matrix;

/// The Camelot problem computing the single Potts value `Z_G(t, r)`.
#[derive(Clone, Debug)]
pub struct PottsValue {
    graph: MultiGraph,
    split: Split,
    e1_size: usize,
    states: u64,
    weight: u64,
}

impl PottsValue {
    /// Creates the problem for integer `t = states >= 1` and
    /// `r = weight >= 1`.
    ///
    /// # Panics
    ///
    /// Panics for an empty vertex set or zero parameters.
    #[must_use]
    pub fn new(graph: MultiGraph, states: u64, weight: u64) -> Self {
        assert!(graph.vertex_count() > 0, "empty graph");
        assert!(states > 0 && weight > 0, "need t, r >= 1");
        let n = graph.vertex_count();
        // |B| = ⌊n/3⌋ (capped at 1 minimum when possible), |E| = n - |B|.
        let b_size = (n / 3).max(usize::from(n >= 2));
        let split = Split::with_explicit(n, n - b_size);
        let e1_size = split.e_size.div_ceil(2);
        PottsValue { graph, split, e1_size, states, weight }
    }

    /// The universe split in use (`|E| ≈ 2|B|`).
    #[must_use]
    pub fn split(&self) -> &Split {
        &self.split
    }

    /// Edges with both endpoints inside `mask` (loops at members count).
    fn edges_within(&self, mask: u64) -> u64 {
        self.graph
            .edges()
            .iter()
            .filter(|&&(u, v)| mask >> u & 1 == 1 && mask >> v & 1 == 1)
            .count() as u64
    }

    /// Edges with one endpoint in `a` and the other in `b` (disjoint).
    fn edges_between(&self, a: u64, b: u64) -> u64 {
        self.graph
            .edges()
            .iter()
            .filter(|&&(u, v)| {
                (a >> u & 1 == 1 && b >> v & 1 == 1) || (b >> u & 1 == 1 && a >> v & 1 == 1)
            })
            .count() as u64
    }
}

impl CamelotProblem for PottsValue {
    type Output = UBig;

    fn spec(&self) -> ProofSpec {
        let n = self.graph.vertex_count() as f64;
        let m = self.graph.edge_count() as f64;
        let bits =
            m + n * ((self.states + 1) as f64).log2() + m * ((self.weight + 1) as f64).log2() + 2.0;
        ProofSpec {
            degree_bound: self.split.degree_bound(),
            min_modulus: self.split.degree_bound() as u64 + 2,
            value_bits: bits.ceil() as u64,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let split = self.split;
        let (e1, e2, b) = (self.e1_size, split.e_size - self.e1_size, split.b_size);
        let e_size = split.e_size;
        // Vertex masks: E1 = bits 0..e1, E2 = bits e1..e1+e2, B = rest.
        let y1_of = |y1: u64| y1;
        let y2_of = |y2: u64| y2 << e1;
        let x_of = |x: u64| x << e_size;
        let one_plus_r = f.reduce(1 + self.weight);
        // x0-independent tables.
        let v_entry: Vec<Vec<u64>> = (0..1u64 << b)
            .map(|x| {
                (0..1u64 << e2)
                    .map(|y2| {
                        let exp =
                            self.edges_between(x_of(x), y2_of(y2)) + self.edges_within(y2_of(y2));
                        f.pow(one_plus_r, exp)
                    })
                    .collect()
            })
            .collect();
        let u_base: Vec<Vec<u64>> = (0..1u64 << e1)
            .map(|y1| {
                (0..1u64 << b)
                    .map(|x| {
                        let exp =
                            self.edges_between(x_of(x), y1_of(y1)) + self.edges_within(x_of(x));
                        f.pow(one_plus_r, exp)
                    })
                    .collect()
            })
            .collect();
        let pair_factor: Vec<Vec<u64>> = (0..1u64 << e1)
            .map(|y1| {
                (0..1u64 << e2)
                    .map(|y2| {
                        let exp =
                            self.edges_between(y1_of(y1), y2_of(y2)) + self.edges_within(y1_of(y1));
                        f.pow(one_plus_r, exp)
                    })
                    .collect()
            })
            .collect();
        let states = self.states;
        Box::new(move |x0: u64| {
            let x0 = f.reduce(x0);
            // |B|+1 matrix products, one per κ = |X| (the w_B-degree).
            let mut m_kappa: Vec<Matrix> = Vec::with_capacity(b + 1);
            for kappa in 0..=b {
                let u = Matrix::from_fn(1 << e1, 1 << b, |y1, x| {
                    if (x as u64).count_ones() as usize != kappa {
                        0
                    } else {
                        f.mul(u_base[y1][x], f.pow(x0, x as u64))
                    }
                });
                let v = Matrix::from_fn(1 << b, 1 << e2, |x, y2| {
                    if (x as u64).count_ones() as usize != kappa {
                        0
                    } else {
                        v_entry[x][y2]
                    }
                });
                m_kappa.push(u.mul(&f, &v));
            }
            // Assemble g0 over E = E1 × E2 and sweep with ζ.
            let mut g: Vec<BiPoly> = (0..1usize << e_size)
                .map(|y| {
                    let (y1, y2) = (y & ((1 << e1) - 1), y >> e1);
                    let weight_e = (y as u64).count_ones() as usize;
                    let scale = pair_factor[y1][y2];
                    let mut poly = BiPoly::zero(e_size, b);
                    for (kappa, m) in m_kappa.iter().enumerate() {
                        let c = f.mul(scale, m.get(y1, y2));
                        poly.add_monomial(&f, weight_e, kappa, c);
                    }
                    poly
                })
                .collect();
            zeta_in_place(&f, &mut g, e_size);
            alternating_power_coefficient(&f, &g, &split, states)
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<UBig, CamelotError> {
        let target = self.split.target_coefficient();
        let residues: Vec<Residue> = proofs.iter().map(|p| p.coefficient_residue(target)).collect();
        Ok(crt_u(&residues))
    }
}

/// Result of the full Tutte pipeline.
#[derive(Clone, Debug)]
pub struct TutteOutcome {
    /// `coefficients[i][j]` is the coefficient of `x^i y^j` in `T_G`.
    pub coefficients: Vec<Vec<IBig>>,
    /// The interpolated Potts coefficients `z_ij` of `t^i r^j` (kept for
    /// inspection).
    pub potts_coefficients: Vec<Vec<IBig>>,
}

/// Computes the full Tutte polynomial: one Camelot run per grid point
/// `(t, r) ∈ [1, n+1] × [1, m+1]`, exact bivariate interpolation of
/// `Z_G`, then the change of variables (34).
///
/// # Errors
///
/// Propagates engine failures; fails recovery if the change of variables
/// does not divide exactly (impossible for faithful values).
pub fn tutte_polynomial(graph: &MultiGraph, engine: &Engine) -> Result<TutteOutcome, CamelotError> {
    let n = graph.vertex_count();
    let m = graph.edge_count();
    let mut grid: Vec<Vec<IBig>> = Vec::with_capacity(n + 1);
    for t in 1..=n as u64 + 1 {
        let mut row = Vec::with_capacity(m + 1);
        for r in 1..=m as u64 + 1 {
            let problem = PottsValue::new(graph.clone(), t, r);
            let outcome = engine.run(&problem)?;
            row.push(IBig::from_parts(false, outcome.output));
        }
        grid.push(row);
    }
    let z = interpolate_integer_2d(&grid, 1, 1);
    // T(x, y) = (x-1)^{-c(E)} (y-1)^{-|V|} Z((x-1)(y-1), y-1):
    // in u = x-1, v = y-1:  N(u, v) = Σ z_ij u^i v^{i+j}, then divide by
    // u^{c} v^{n} and expand the binomials back to x, y.
    let c_e = graph.component_count();
    let mut nuv: Vec<Vec<IBig>> = Vec::new();
    for (i, row) in z.iter().enumerate() {
        for (j, coeff) in row.iter().enumerate() {
            if coeff.is_zero() {
                continue;
            }
            let (a, b) = (i, i + j);
            while nuv.len() <= a {
                nuv.push(Vec::new());
            }
            while nuv[a].len() <= b {
                nuv[a].push(IBig::zero());
            }
            nuv[a][b] = nuv[a][b].add(coeff);
        }
    }
    // Divide by u^{c_e} v^{n}: all lower-order coefficients must vanish.
    let mut shifted: Vec<Vec<IBig>> = Vec::new();
    for (a, row) in nuv.iter().enumerate() {
        for (b, coeff) in row.iter().enumerate() {
            if coeff.is_zero() {
                continue;
            }
            if a < c_e || b < n {
                return Err(CamelotError::RecoveryFailed {
                    reason: format!("nonzero coefficient u^{a} v^{b} below (x-1)^{c_e}(y-1)^{n}"),
                });
            }
            let (a2, b2) = (a - c_e, b - n);
            while shifted.len() <= a2 {
                shifted.push(Vec::new());
            }
            while shifted[a2].len() <= b2 {
                shifted[a2].push(IBig::zero());
            }
            shifted[a2][b2] = coeff.clone();
        }
    }
    // Substitute u = x - 1, v = y - 1 by binomial expansion.
    let x_deg = shifted.len();
    let y_deg = shifted.iter().map(Vec::len).max().unwrap_or(0);
    let mut coefficients: Vec<Vec<IBig>> = vec![vec![IBig::zero(); y_deg.max(1)]; x_deg.max(1)];
    for (a, row) in shifted.iter().enumerate() {
        for (b, coeff) in row.iter().enumerate() {
            if coeff.is_zero() {
                continue;
            }
            for (p, ca) in binomial_signed(a).into_iter().enumerate() {
                for (q, cb) in binomial_signed(b).iter().enumerate() {
                    let term = coeff.mul_i64(ca).mul_i64(*cb);
                    coefficients[p][q] = coefficients[p][q].add(&term);
                }
            }
        }
    }
    // Trim empty high rows/cols.
    while coefficients.len() > 1 && coefficients.last().is_some_and(|r| r.iter().all(IBig::is_zero))
    {
        coefficients.pop();
    }
    Ok(TutteOutcome { coefficients, potts_coefficients: z })
}

/// Coefficients of `(x - 1)^a` (little-endian in `x`).
fn binomial_signed(a: usize) -> Vec<i64> {
    let mut row = vec![0i64; a + 1];
    row[0] = 1;
    for _ in 0..a {
        for i in (0..row.len()).rev() {
            let below = if i > 0 { row[i - 1] } else { 0 };
            row[i] = below - row[i];
        }
    }
    row
}

/// Evaluates a Tutte coefficient table at integer `(x, y)`.
#[must_use]
pub fn eval_tutte(coeffs: &[Vec<IBig>], x: i64, y: i64) -> IBig {
    eval_integer_2d(coeffs, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_graph::gen;
    use camelot_graph::tutte::{potts_value_mod, tutte_coefficients};

    fn engine() -> Engine {
        Engine::sequential(3, 2)
    }

    #[test]
    fn binomial_signed_rows() {
        assert_eq!(binomial_signed(0), vec![1]);
        assert_eq!(binomial_signed(1), vec![-1, 1]);
        assert_eq!(binomial_signed(2), vec![1, -2, 1]);
        assert_eq!(binomial_signed(3), vec![-1, 3, -3, 1]);
    }

    #[test]
    fn potts_values_match_brute_force() {
        let field = PrimeField::new(1_000_000_007).unwrap();
        for g in [
            MultiGraph::from_graph(&gen::cycle(4)),
            MultiGraph::from_graph(&gen::complete(4)),
            MultiGraph::from_edges(3, [(0, 1), (0, 1), (1, 1), (1, 2)]),
        ] {
            for (t, r) in [(1u64, 1u64), (2, 1), (2, 2), (3, 2), (4, 3)] {
                let problem = PottsValue::new(g.clone(), t, r);
                let outcome = engine().run(&problem).unwrap();
                assert_eq!(
                    outcome.output.rem_u64(field.modulus()),
                    potts_value_mod(&g, t, r, &field),
                    "graph m={} t={t} r={r}",
                    g.edge_count()
                );
            }
        }
    }

    #[test]
    fn tutte_triangle() {
        let mg = MultiGraph::from_graph(&gen::complete(3));
        let outcome = tutte_polynomial(&mg, &engine()).unwrap();
        // T = x² + x + y.
        let reference = tutte_coefficients(&mg);
        compare(&outcome.coefficients, &reference);
    }

    #[test]
    fn tutte_k4_and_cycle() {
        for g in [gen::complete(4), gen::cycle(5)] {
            let mg = MultiGraph::from_graph(&g);
            let outcome = tutte_polynomial(&mg, &engine()).unwrap();
            compare(&outcome.coefficients, &tutte_coefficients(&mg));
        }
    }

    #[test]
    fn tutte_multigraph_with_loop_and_parallel() {
        let mg = MultiGraph::from_edges(4, [(0, 1), (0, 1), (1, 2), (2, 2), (2, 3), (3, 0)]);
        let outcome = tutte_polynomial(&mg, &engine()).unwrap();
        compare(&outcome.coefficients, &tutte_coefficients(&mg));
    }

    #[test]
    fn tutte_disconnected() {
        let mg = MultiGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let outcome = tutte_polynomial(&mg, &engine()).unwrap();
        compare(&outcome.coefficients, &tutte_coefficients(&mg));
    }

    fn compare(got: &[Vec<IBig>], reference: &[Vec<u128>]) {
        for i in 0..got.len().max(reference.len()) {
            for j in 0..8 {
                let g = got.get(i).and_then(|r| r.get(j)).cloned().unwrap_or_else(IBig::zero);
                let r = reference.get(i).and_then(|r| r.get(j)).copied().unwrap_or(0);
                assert_eq!(
                    g.to_i128(),
                    Some(i128::try_from(r).unwrap()),
                    "coefficient x^{i} y^{j}"
                );
            }
        }
    }
}
