//! The §7 proof template for partitioning sum-products.
//!
//! Universe `U = E ∪ B`: subsets of the *explicit* set `E` are tracked by
//! table index, while membership in the *bit* set `B` is encoded through
//! Kronecker substitution — element `i` of `B` carries the bit value
//! `2^i`, and a part `X` contributes the factor `x^{Σ bits(X ∩ B)}`.
//! Selecting `|B|` bits (with repetition) sums to `2^{|B|} - 1` **iff**
//! each bit was chosen exactly once, so the proof coefficient
//!
//! ```text
//! p_{2^{|B|}-1}  =  Σ_{(X_1..X_t) partitions U} f(X_1)···f(X_t)
//! ```
//!
//! is the partitioning sum-product (22). The proof polynomial has degree
//! `d = 2^{|B|-1} |B|`, and each node evaluates `P(x_0)` as the
//! coefficient of `w_E^{|E|} w_B^{|B|}` in
//! `a(w) = Σ_{Y ⊆ E} (-1)^{|E∖Y|} g(Y)^t` (equation (28)).

use crate::bipoly::BiPoly;
use camelot_ff::PrimeField;

/// The universe split `U = E ∪ B` with `E` the low `e_size` elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Split {
    /// `|U|`.
    pub n: usize,
    /// `|E|` (elements `0..e_size`).
    pub e_size: usize,
    /// `|B|` (elements `e_size..n`).
    pub b_size: usize,
}

impl Split {
    /// Balanced split `|E| = ⌈n/2⌉` (the §7.4 optimum `|E| = |B|`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 40` (the `2^{|E|}` table must fit).
    #[must_use]
    pub fn balanced(n: usize) -> Self {
        Self::with_explicit(n, n.div_ceil(2))
    }

    /// Split with a chosen explicit size (`|E| = 2|B|` for the Tutte
    /// design of §10).
    ///
    /// # Panics
    ///
    /// Panics if sizes are inconsistent or `b_size > 20`.
    #[must_use]
    pub fn with_explicit(n: usize, e_size: usize) -> Self {
        assert!(n > 0, "empty universe");
        assert!(e_size <= n, "explicit part exceeds the universe");
        let b_size = n - e_size;
        assert!(e_size <= 24 && b_size <= 20, "split too large for in-memory tables");
        Split { n, e_size, b_size }
    }

    /// Degree bound of the proof polynomial: `2^{|B|-1} |B|` (the largest
    /// achievable bit-multiset sum).
    #[must_use]
    pub fn degree_bound(&self) -> usize {
        if self.b_size == 0 {
            0
        } else {
            (1usize << (self.b_size - 1)) * self.b_size
        }
    }

    /// The proof coefficient index carrying the answer: `2^{|B|} - 1`.
    #[must_use]
    pub fn target_coefficient(&self) -> usize {
        (1usize << self.b_size) - 1
    }

    /// Mask of `E` inside `U`.
    #[must_use]
    pub fn e_mask(&self) -> u64 {
        (1u64 << self.e_size) - 1
    }

    /// Splits a universe subset into `(X ∩ E, X ∩ B)` with the `B` part
    /// re-based to bits `0..b_size`.
    #[must_use]
    pub fn split_mask(&self, x: u64) -> (u64, u64) {
        (x & self.e_mask(), x >> self.e_size)
    }
}

/// In-place zeta transform over the explicit part: `g[Y] = Σ_{Z ⊆ Y}
/// g0[Z]` (Yates's algorithm specialised to the subset lattice).
///
/// # Panics
///
/// Panics if `table.len() != 2^e_size`.
pub fn zeta_in_place(field: &PrimeField, table: &mut [BiPoly], e_size: usize) {
    assert_eq!(table.len(), 1 << e_size, "table must have 2^|E| entries");
    for j in 0..e_size {
        for y in 0..table.len() {
            if y >> j & 1 == 1 {
                let (lo, hi) = table.split_at_mut(y);
                hi[0].add_assign(field, &lo[y & !(1 << j)]);
            }
        }
    }
}

/// Equation (28): `a(w) = Σ_{Y ⊆ E} (-1)^{|E∖Y|} g(Y)^t`, returning the
/// target coefficient `a_{|E|,|B|} = P(x_0) (mod q)`.
///
/// # Panics
///
/// Panics if `g.len() != 2^e_size`.
#[must_use]
pub fn alternating_power_coefficient(
    field: &PrimeField,
    g: &[BiPoly],
    split: &Split,
    t: u64,
) -> u64 {
    assert_eq!(g.len(), 1 << split.e_size, "table must have 2^|E| entries");
    let mut acc = 0u64;
    for (y, poly) in g.iter().enumerate() {
        let coeff = poly.pow(field, t).coeff(split.e_size, split.b_size);
        if (split.e_size - (y as u64).count_ones() as usize).is_multiple_of(2) {
            acc = field.add(acc, coeff);
        } else {
            acc = field.sub(acc, coeff);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    #[test]
    fn split_geometry() {
        let s = Split::balanced(7);
        assert_eq!((s.e_size, s.b_size), (4, 3));
        assert_eq!(s.degree_bound(), 4 * 3);
        assert_eq!(s.target_coefficient(), 7);
        assert_eq!(s.split_mask(0b101_1010), (0b1010, 0b101));
        let t = Split::with_explicit(9, 6);
        assert_eq!((t.e_size, t.b_size), (6, 3));
    }

    #[test]
    fn zeta_is_subset_sum() {
        let field = f();
        let e = 3;
        let mut table: Vec<BiPoly> =
            (0..8).map(|i| BiPoly::monomial(2, 2, 0, 0, i as u64 + 1)).collect();
        let original: Vec<u64> = table.iter().map(|p| p.coeff(0, 0)).collect();
        zeta_in_place(&field, &mut table, e);
        for (y, entry) in table.iter().enumerate() {
            let mut expect = 0u64;
            let mut sub = y;
            loop {
                expect += original[sub];
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & y;
            }
            assert_eq!(entry.coeff(0, 0), expect, "Y = {y:b}");
        }
    }

    #[test]
    fn template_counts_ordered_set_partitions_brute() {
        // Tiny end-to-end sanity check of the machinery itself: count
        // ordered pairs of disjoint sets covering U = {0,1,2} drawn from
        // the family of ALL nonempty subsets, with |E| = 2, |B| = 1.
        // Expected: each of the 2^3 - 2 = 6 proper bipartitions ordered:
        // ({0},{1,2}),({1},{0,2}),({2},{0,1}) and swaps = 6... plus
        // nothing else (parts nonempty, exactly cover).
        let field = f();
        let split = Split::with_explicit(3, 2);
        let family: Vec<u64> = (1..8).collect();
        // Build g for x0 = the target evaluation x0 such that the answer
        // is the target coefficient... here we instead check Σ over the
        // evaluations: P(x0) at x0 = 1 sums all coefficients; easier to
        // check the fully-explicit coefficient extraction path on a
        // single point with x0 chosen as a variable stand-in is overkill —
        // use x0 = 2 so bit sums are faithfully Kronecker-separated:
        // p_s coefficients with s <= 2^{|B|-1}|B| = 1 * 1... b_size = 1,
        // degree bound 1, target coefficient 1, so P(x) = p0 + p1 x and
        // p1 is the answer. Interpolate from x = 0, 1.
        let eval = |x0: u64| -> u64 {
            let mut g0: Vec<BiPoly> =
                (0..4).map(|_| BiPoly::zero(split.e_size, split.b_size)).collect();
            for &x in &family {
                let (me, mb) = split.split_mask(x);
                let c = field.pow(field.reduce(x0), mb);
                g0[me as usize].add_monomial(
                    &field,
                    me.count_ones() as usize,
                    mb.count_ones() as usize,
                    c,
                );
            }
            zeta_in_place(&field, &mut g0, split.e_size);
            alternating_power_coefficient(&field, &g0, &split, 2)
        };
        let p0 = eval(0);
        let p1 = field.sub(eval(1), p0);
        assert_eq!(p1, 6, "ordered bipartitions of a 3-set");
    }
}
