//! The chromatic polynomial (Theorem 6, §9).
//!
//! `χ_G(t)` equals the partitioning sum-product with `f` the
//! independent-set indicator: proper `t`-colorings are exactly the
//! ordered partitions of `V(G)` into `t` (possibly empty) independent
//! sets. The family has up to `2^n` members, so the node function `g` is
//! computed *implicitly* (§9.2): independent sets in `B` are swept by a
//! zeta transform, glued to each independent `X ⊆ E` through the
//! compatible set `B ∖ Γ(X)`, and swept again over `E` — `O*(2^{n/2})`
//! per evaluation, proof size `O*(2^{n/2})`, against the best known
//! sequential `O*(2^n)`.

use crate::bipoly::BiPoly;
use crate::ipoly::interpolate_integer;
use crate::template::{alternating_power_coefficient, zeta_in_place, Split};
use camelot_core::{
    CamelotError, CamelotProblem, Certificate, Engine, Evaluate, PrimeProof, ProofSpec,
};
use camelot_ff::{crt_u, IBig, PrimeField, Residue, UBig};
use camelot_graph::Graph;

/// The Camelot problem computing the single value `χ_G(t)`.
#[derive(Clone, Debug)]
pub struct ChromaticValue {
    graph: Graph,
    split: Split,
    colors: u64,
}

impl ChromaticValue {
    /// Creates the problem for `t = colors`.
    ///
    /// # Panics
    ///
    /// Panics for the empty graph or `colors == 0`.
    #[must_use]
    pub fn new(graph: Graph, colors: u64) -> Self {
        assert!(graph.vertex_count() > 0, "empty graph");
        assert!(colors > 0, "need at least one color");
        let split = Split::balanced(graph.vertex_count());
        ChromaticValue { graph, split, colors }
    }

    /// The universe split in use.
    #[must_use]
    pub fn split(&self) -> &Split {
        &self.split
    }
}

impl CamelotProblem for ChromaticValue {
    type Output = UBig;

    fn spec(&self) -> ProofSpec {
        let n = self.graph.vertex_count() as u64;
        let bits = n as f64 * ((self.colors + 1) as f64).log2() + 2.0;
        ProofSpec {
            degree_bound: self.split.degree_bound(),
            min_modulus: self.split.degree_bound() as u64 + 2,
            value_bits: bits.ceil() as u64,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let split = self.split;
        let g = self.graph.clone();
        let e_size = split.e_size;
        let b_size = split.b_size;
        // B-side masks of each E-vertex's neighborhood, re-based.
        let e_nbr_in_b: Vec<u64> = (0..e_size).map(|v| g.neighbors(v) >> e_size).collect();
        Box::new(move |x0: u64| {
            let x0 = f.reduce(x0);
            // f_B, then ζ over B: g_B[Y] = Σ_{X ⊆ Y independent} w_B^{|X|} x0^X.
            let mut g_b: Vec<BiPoly> = (0..1usize << b_size)
                .map(|x| {
                    let mask = (x as u64) << e_size;
                    if g.is_independent(mask) {
                        BiPoly::monomial(
                            e_size,
                            b_size,
                            0,
                            (x as u64).count_ones() as usize,
                            f.pow(x0, x as u64),
                        )
                    } else {
                        BiPoly::zero(e_size, b_size)
                    }
                })
                .collect();
            zeta_in_place(&f, &mut g_b, b_size);
            // f̂_E(X) = [X independent] w_E^{|X|} g_B(B ∖ Γ(X)), then ζ over E.
            let full_b = (1u64 << b_size) - 1;
            let mut g_e: Vec<BiPoly> = (0..1usize << e_size)
                .map(|x| {
                    let mask = x as u64;
                    if !g.is_independent(mask) {
                        return BiPoly::zero(e_size, b_size);
                    }
                    let mut gamma = 0u64;
                    let mut rest = mask;
                    while rest != 0 {
                        let v = rest.trailing_zeros() as usize;
                        rest &= rest - 1;
                        gamma |= e_nbr_in_b[v];
                    }
                    let compatible = (full_b & !gamma) as usize;
                    g_b[compatible].mul_monomial(&f, mask.count_ones() as usize, 0, 1)
                })
                .collect();
            zeta_in_place(&f, &mut g_e, e_size);
            alternating_power_coefficient(&f, &g_e, &split, self.colors)
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<UBig, CamelotError> {
        let target = self.split.target_coefficient();
        let residues: Vec<Residue> = proofs.iter().map(|p| p.coefficient_residue(target)).collect();
        Ok(crt_u(&residues))
    }
}

/// Result of the full chromatic-polynomial pipeline.
#[derive(Clone, Debug)]
pub struct ChromaticOutcome {
    /// Monomial coefficients of `χ_G` (little-endian, exact integers).
    pub coefficients: Vec<IBig>,
    /// The recovered values `χ_G(1), …, χ_G(n+1)`.
    pub values: Vec<UBig>,
    /// One certificate per evaluation point `t`.
    pub certificates: Vec<Certificate>,
}

/// Computes the full chromatic polynomial: one Camelot run per color
/// count `t = 1..n+1`, then exact integer interpolation.
///
/// # Errors
///
/// Propagates any engine failure from the per-`t` runs.
pub fn chromatic_polynomial(
    graph: &Graph,
    engine: &Engine,
) -> Result<ChromaticOutcome, CamelotError> {
    let n = graph.vertex_count();
    let mut values = Vec::with_capacity(n + 1);
    let mut certificates = Vec::with_capacity(n + 1);
    for t in 1..=n as u64 + 1 {
        let problem = ChromaticValue::new(graph.clone(), t);
        let outcome = engine.run(&problem)?;
        values.push(outcome.output);
        certificates.push(outcome.certificate);
    }
    let signed: Vec<IBig> = values.iter().map(|v| IBig::from_parts(false, v.clone())).collect();
    let coefficients = interpolate_integer(&signed, 1);
    Ok(ChromaticOutcome { coefficients, values, certificates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::{arthur_verify, merlin_prove};
    use camelot_graph::chromatic::chromatic_value_mod;
    use camelot_graph::gen;

    fn engine() -> Engine {
        Engine::sequential(4, 2)
    }

    #[test]
    fn values_match_reference_on_small_graphs() {
        let field = PrimeField::new(1_000_000_007).unwrap();
        for g in [gen::cycle(5), gen::path(6), gen::complete(4), gen::star(5)] {
            for t in 1..=4u64 {
                let problem = ChromaticValue::new(g.clone(), t);
                let outcome = engine().run(&problem).unwrap();
                assert_eq!(
                    outcome.output.rem_u64(field.modulus()),
                    chromatic_value_mod(&g, t, &field),
                    "graph {g}, t = {t}"
                );
            }
        }
    }

    #[test]
    fn petersen_values() {
        let problem = ChromaticValue::new(gen::petersen(), 3);
        let outcome = engine().run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(120));
        let problem2 = ChromaticValue::new(gen::petersen(), 2);
        assert_eq!(engine().run(&problem2).unwrap().output.to_u64(), Some(0));
    }

    #[test]
    fn full_polynomial_cycle4() {
        // χ_{C4}(t) = (t-1)^4 + (t-1) = t^4 - 4t³ + 6t² - 3t.
        let outcome = chromatic_polynomial(&gen::cycle(4), &engine()).unwrap();
        let expect: Vec<i64> = vec![0, -3, 6, -4, 1];
        assert_eq!(
            outcome.coefficients.iter().map(|c| c.to_i64().unwrap()).collect::<Vec<_>>(),
            expect
        );
    }

    #[test]
    fn full_polynomial_tree_and_complete() {
        // Star S4 (a tree on 4 vertices): t(t-1)^3 = t^4 - 3t³ + 3t² - t.
        let outcome = chromatic_polynomial(&gen::star(4), &engine()).unwrap();
        assert_eq!(
            outcome.coefficients.iter().map(|c| c.to_i64().unwrap()).collect::<Vec<_>>(),
            vec![0, -1, 3, -3, 1]
        );
        // K4: t(t-1)(t-2)(t-3) = t^4 - 6t³ + 11t² - 6t.
        let outcome = chromatic_polynomial(&gen::complete(4), &engine()).unwrap();
        assert_eq!(
            outcome.coefficients.iter().map(|c| c.to_i64().unwrap()).collect::<Vec<_>>(),
            vec![0, -6, 11, -6, 1]
        );
    }

    #[test]
    fn proof_size_is_2_to_half_n() {
        let problem = ChromaticValue::new(gen::gnm(10, 20, 1), 3);
        // |B| = 5: degree bound 2^4 * 5 = 80 = O*(2^{n/2}).
        assert_eq!(problem.spec().degree_bound, 80);
    }

    #[test]
    fn merlin_arthur_roundtrip() {
        let problem = ChromaticValue::new(gen::cycle(5), 3);
        let proofs = merlin_prove(&problem).unwrap();
        arthur_verify(&problem, &proofs, 4, 31).unwrap();
        // χ_{C5}(3) = 2^5 - 2 = 30.
        assert_eq!(problem.recover(&proofs).unwrap().to_u64(), Some(30));
    }
}
