//! Truncated bivariate polynomials in the weight-tracking indeterminates
//! `w_E, w_B` of the §7 template.
//!
//! Every node computes with polynomials in `Z_q[w_E, w_B]` truncated at
//! degrees `(|E|, |B|)` — higher powers can never contribute to the
//! target coefficient `a_{|E|,|B|}`, so the truncation is lossless for
//! the template's purposes.

use camelot_ff::PrimeField;

/// A dense bivariate polynomial truncated to `we_deg x wb_deg`:
/// `coeff(i, j)` is the coefficient of `w_E^i w_B^j`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BiPoly {
    rows: usize,
    cols: usize,
    coeffs: Vec<u64>,
}

impl BiPoly {
    /// The zero polynomial with truncation degrees `(we_deg, wb_deg)`.
    #[must_use]
    pub fn zero(we_deg: usize, wb_deg: usize) -> Self {
        BiPoly { rows: we_deg + 1, cols: wb_deg + 1, coeffs: vec![0; (we_deg + 1) * (wb_deg + 1)] }
    }

    /// The monomial `c · w_E^i w_B^j` (silently zero if beyond the
    /// truncation; `c` must be reduced).
    #[must_use]
    pub fn monomial(we_deg: usize, wb_deg: usize, i: usize, j: usize, c: u64) -> Self {
        let mut p = Self::zero(we_deg, wb_deg);
        if i < p.rows && j < p.cols {
            p.coeffs[i * p.cols + j] = c;
        }
        p
    }

    /// Adds `c · w_E^i w_B^j` in place (no-op beyond the truncation).
    pub fn add_monomial(&mut self, field: &PrimeField, i: usize, j: usize, c: u64) {
        if i < self.rows && j < self.cols {
            let idx = i * self.cols + j;
            self.coeffs[idx] = field.add(self.coeffs[idx], c);
        }
    }

    /// Coefficient of `w_E^i w_B^j` (zero beyond the truncation).
    #[must_use]
    pub fn coeff(&self, i: usize, j: usize) -> u64 {
        if i < self.rows && j < self.cols {
            self.coeffs[i * self.cols + j]
        } else {
            0
        }
    }

    /// `self += other` (equal truncations required).
    ///
    /// # Panics
    ///
    /// Panics on truncation mismatch.
    pub fn add_assign(&mut self, field: &PrimeField, other: &BiPoly) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "truncation mismatch");
        for (a, &b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a = field.add(*a, b);
        }
    }

    /// `self * other`, truncated.
    ///
    /// # Panics
    ///
    /// Panics on truncation mismatch.
    #[must_use]
    pub fn mul(&self, field: &PrimeField, other: &BiPoly) -> BiPoly {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "truncation mismatch");
        let mut out = BiPoly::zero(self.rows - 1, self.cols - 1);
        for i1 in 0..self.rows {
            for j1 in 0..self.cols {
                let a = self.coeffs[i1 * self.cols + j1];
                if a == 0 {
                    continue;
                }
                for i2 in 0..self.rows - i1 {
                    for j2 in 0..self.cols - j1 {
                        let b = other.coeffs[i2 * other.cols + j2];
                        if b == 0 {
                            continue;
                        }
                        let idx = (i1 + i2) * out.cols + (j1 + j2);
                        out.coeffs[idx] = field.mul_add(out.coeffs[idx], a, b);
                    }
                }
            }
        }
        out
    }

    /// Multiplies by the monomial `w_E^i w_B^j c` (shift + scale).
    #[must_use]
    pub fn mul_monomial(&self, field: &PrimeField, i: usize, j: usize, c: u64) -> BiPoly {
        let mut out = BiPoly::zero(self.rows - 1, self.cols - 1);
        for i1 in 0..self.rows.saturating_sub(i) {
            for j1 in 0..self.cols.saturating_sub(j) {
                let a = self.coeffs[i1 * self.cols + j1];
                if a != 0 {
                    out.coeffs[(i1 + i) * out.cols + (j1 + j)] = field.mul(a, c);
                }
            }
        }
        out
    }

    /// `self^exp`, truncated, by square-and-multiply.
    #[must_use]
    pub fn pow(&self, field: &PrimeField, mut exp: u64) -> BiPoly {
        let mut acc = BiPoly::monomial(self.rows - 1, self.cols - 1, 0, 0, 1);
        let mut base = self.clone();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(field, &base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(field, &base);
            }
        }
        acc
    }

    /// True if every coefficient is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    #[test]
    fn monomial_and_coeff() {
        let p = BiPoly::monomial(3, 2, 1, 2, 7);
        assert_eq!(p.coeff(1, 2), 7);
        assert_eq!(p.coeff(0, 0), 0);
        assert_eq!(p.coeff(9, 9), 0);
        // Beyond truncation: silently zero.
        let q = BiPoly::monomial(3, 2, 4, 0, 7);
        assert!(q.is_zero());
    }

    #[test]
    fn multiplication_truncates() {
        let field = f();
        // (w_E + w_B)^2 truncated at (1, 1): only the cross term 2 w_E w_B
        // survives; w_E² and w_B² are cut.
        let mut p = BiPoly::zero(1, 1);
        p.add_monomial(&field, 1, 0, 1);
        p.add_monomial(&field, 0, 1, 1);
        let sq = p.mul(&field, &p);
        assert_eq!(sq.coeff(1, 1), 2);
        assert_eq!(sq.coeff(0, 0), 0);
        assert_eq!(sq.coeff(1, 0), 0);
    }

    #[test]
    fn pow_matches_iterated_mul() {
        let field = f();
        let mut p = BiPoly::zero(4, 3);
        p.add_monomial(&field, 0, 0, 2);
        p.add_monomial(&field, 1, 1, 3);
        p.add_monomial(&field, 2, 0, 1);
        let mut iter = BiPoly::monomial(4, 3, 0, 0, 1);
        for e in 0..=5u64 {
            assert_eq!(p.pow(&field, e), iter, "exponent {e}");
            iter = iter.mul(&field, &p);
        }
    }

    #[test]
    fn mul_monomial_is_shift_scale() {
        let field = f();
        let mut p = BiPoly::zero(3, 3);
        p.add_monomial(&field, 0, 1, 5);
        p.add_monomial(&field, 1, 0, 4);
        let shifted = p.mul_monomial(&field, 1, 1, 2);
        assert_eq!(shifted.coeff(1, 2), 10);
        assert_eq!(shifted.coeff(2, 1), 8);
        assert_eq!(shifted.coeff(0, 1), 0);
    }

    #[test]
    fn add_assign_accumulates() {
        let field = f();
        let mut p = BiPoly::monomial(2, 2, 1, 1, field.modulus() - 1);
        p.add_assign(&field, &BiPoly::monomial(2, 2, 1, 1, 2));
        assert_eq!(p.coeff(1, 1), 1);
    }
}
