//! # camelot-partition — the §7 partitioning sum-product template
//!
//! Proof polynomials for problems of the form
//! `Σ f(X_1) ··· f(X_t)` over ordered partitions of a universe, via
//! Kronecker substitution over a bit-set `B` and weight tracking in the
//! `w_E, w_B` indeterminates (§7 of *“How Proofs are Prepared at
//! Camelot”*):
//!
//! * [`SetPartitions`] — exact covers from an explicit (possibly
//!   `O*(2^{n/2})`-sized) family (Theorem 10, §8);
//! * [`ChromaticValue`] / [`chromatic_polynomial`] — the chromatic
//!   polynomial with `O*(2^{n/2})` proof size and time (Theorem 6, §9);
//! * [`PottsValue`] / [`tutte_polynomial`] — the Tutte polynomial through
//!   the Potts partition function and the tripartite decomposition with
//!   fast matrix multiplication (Theorem 7, §10).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod bipoly;
mod chromatic;
mod ipoly;
mod setpartition;
mod template;
mod tutte;

pub use bipoly::BiPoly;
pub use chromatic::{chromatic_polynomial, ChromaticOutcome, ChromaticValue};
pub use ipoly::{eval_integer, eval_integer_2d, interpolate_integer, interpolate_integer_2d};
pub use setpartition::SetPartitions;
pub use template::{alternating_power_coefficient, zeta_in_place, Split};
pub use tutte::{eval_tutte, tutte_polynomial, PottsValue, TutteOutcome};
