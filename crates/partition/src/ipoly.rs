//! Exact integer polynomial interpolation.
//!
//! The chromatic and Tutte drivers reconstruct integer-coefficient
//! polynomials from their (CRT-recovered) values at consecutive integer
//! points. Divided differences at unit spacing stay integral for
//! integer-valued polynomials (they are binomial-basis coefficients), so
//! the whole pipeline is fraction-free `IBig` arithmetic.

use camelot_ff::IBig;

/// Interpolates the unique degree-`< L` polynomial through
/// `(start + i, values[i])`, returning little-endian monomial
/// coefficients (trailing zeros trimmed).
///
/// # Panics
///
/// Panics if `values` is empty or a divided difference fails to be
/// integral (the inputs were not the values of an integer polynomial).
#[must_use]
pub fn interpolate_integer(values: &[IBig], start: i64) -> Vec<IBig> {
    assert!(!values.is_empty(), "need at least one value");
    let l = values.len();
    // Divided differences at unit spacing: level ℓ divides by ℓ.
    let mut dd: Vec<IBig> = values.to_vec();
    for level in 1..l {
        for i in (level..l).rev() {
            let diff = dd[i].sub(&dd[i - 1]);
            dd[i] = diff.div_exact_u64(level as u64);
        }
    }
    // Newton form -> monomials: p(x) = Σ dd[k] Π_{j<k} (x - (start+j)).
    let mut coeffs: Vec<IBig> = vec![IBig::zero(); l];
    for k in (0..l).rev() {
        // coeffs = coeffs * (x - (start + k)) + dd[k] … but Horner over
        // the Newton nodes: multiply by (x - node_k) then add dd[k].
        let node = IBig::from_i64(start + k as i64);
        let mut next = vec![IBig::zero(); l];
        for (i, c) in coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if i + 1 < l {
                next[i + 1] = next[i + 1].add(c);
            }
            next[i] = next[i].sub(&c.mul(&node));
        }
        next[0] = next[0].add(&dd[k]);
        coeffs = next;
    }
    while coeffs.len() > 1 && coeffs.last().is_some_and(IBig::is_zero) {
        coeffs.pop();
    }
    coeffs
}

/// Evaluates integer coefficients at an integer point.
#[must_use]
pub fn eval_integer(coeffs: &[IBig], x: i64) -> IBig {
    let xb = IBig::from_i64(x);
    let mut acc = IBig::zero();
    for c in coeffs.iter().rev() {
        acc = acc.mul(&xb).add(c);
    }
    acc
}

/// Interpolates a bivariate integer polynomial from a value grid:
/// `grid[i][j]` is the value at `(x_start + i, y_start + j)`. Returns
/// `coeffs[a][b]` of `x^a y^b`.
///
/// # Panics
///
/// Panics on a ragged or empty grid, or non-integral differences.
#[must_use]
pub fn interpolate_integer_2d(grid: &[Vec<IBig>], x_start: i64, y_start: i64) -> Vec<Vec<IBig>> {
    assert!(!grid.is_empty() && !grid[0].is_empty(), "empty grid");
    let cols = grid[0].len();
    assert!(grid.iter().all(|r| r.len() == cols), "ragged grid");
    // Interpolate each row in y.
    let row_polys: Vec<Vec<IBig>> =
        grid.iter().map(|row| interpolate_integer(row, y_start)).collect();
    let y_deg = row_polys.iter().map(Vec::len).max().expect("nonempty");
    // For each y-coefficient, interpolate down the x direction.
    let mut out: Vec<Vec<IBig>> = Vec::new();
    for b in 0..y_deg {
        let column: Vec<IBig> =
            row_polys.iter().map(|r| r.get(b).cloned().unwrap_or_else(IBig::zero)).collect();
        let xs = interpolate_integer(&column, x_start);
        for (a, c) in xs.into_iter().enumerate() {
            while out.len() <= a {
                out.push(Vec::new());
            }
            while out[a].len() <= b {
                out[a].push(IBig::zero());
            }
            out[a][b] = c;
        }
    }
    out
}

/// Evaluates a bivariate coefficient table at integer `(x, y)`.
#[must_use]
pub fn eval_integer_2d(coeffs: &[Vec<IBig>], x: i64, y: i64) -> IBig {
    let mut acc = IBig::zero();
    let xb = IBig::from_i64(x);
    for row in coeffs.iter().rev() {
        let row_val = eval_integer(row, y);
        acc = acc.mul(&xb).add(&row_val);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ib(v: i64) -> IBig {
        IBig::from_i64(v)
    }

    #[test]
    fn interpolates_known_polynomial() {
        // p(x) = x^3 - 2x + 5
        let p = |x: i64| x * x * x - 2 * x + 5;
        let values: Vec<IBig> = (1..=5).map(|x| ib(p(x))).collect();
        let coeffs = interpolate_integer(&values, 1);
        assert_eq!(
            coeffs.iter().map(|c| c.to_i64().unwrap()).collect::<Vec<_>>(),
            vec![5, -2, 0, 1]
        );
        for x in -3..10 {
            assert_eq!(eval_integer(&coeffs, x).to_i64(), Some(p(x)));
        }
    }

    #[test]
    fn constant_and_linear() {
        assert_eq!(interpolate_integer(&[ib(42)], 7), vec![ib(42)]);
        let coeffs = interpolate_integer(&[ib(3), ib(5)], 0);
        assert_eq!(coeffs, vec![ib(3), ib(2)]);
    }

    #[test]
    fn negative_start_points() {
        let p = |x: i64| 2 * x * x - x;
        let values: Vec<IBig> = (-2..=2).map(|x| ib(p(x))).collect();
        let coeffs = interpolate_integer(&values, -2);
        for x in -5..5 {
            assert_eq!(eval_integer(&coeffs, x).to_i64(), Some(p(x)));
        }
    }

    #[test]
    fn bivariate_roundtrip() {
        // q(x, y) = 3x²y - xy² + 4y + 1
        let q = |x: i64, y: i64| 3 * x * x * y - x * y * y + 4 * y + 1;
        let grid: Vec<Vec<IBig>> =
            (1..=4).map(|x| (1..=4).map(|y| ib(q(x, y))).collect()).collect();
        let coeffs = interpolate_integer_2d(&grid, 1, 1);
        assert_eq!(coeffs[2][1].to_i64(), Some(3));
        assert_eq!(coeffs[1][2].to_i64(), Some(-1));
        assert_eq!(coeffs[0][1].to_i64(), Some(4));
        assert_eq!(coeffs[0][0].to_i64(), Some(1));
        for x in -2..6 {
            for y in -2..6 {
                assert_eq!(eval_integer_2d(&coeffs, x, y).to_i64(), Some(q(x, y)), "({x},{y})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-exact")]
    fn non_polynomial_values_rejected() {
        // Values of 2^x are not a degree-2 integer polynomial; divided
        // differences stay integral here by luck or panic — force a case
        // that fails: f = [0, 0, 1] has Δ² = 1, /2 fails.
        let _ = interpolate_integer(&[ib(0), ib(0), ib(1)], 0);
    }
}
