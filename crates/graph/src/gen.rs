//! Deterministic graph generators for workloads and tests.
//!
//! The paper's theorems are quantified over all graphs; the experiment
//! harness exercises them on classic families (complete graphs for dense
//! extremes, `G(n, m)` for sparsity sweeps in Theorems 3–5, structured
//! graphs as sanity anchors). Generators are seeded and deterministic so
//! every Camelot node — and every rerun of an experiment — sees the same
//! common input.

use crate::graph::Graph;
use camelot_ff::{RngLike, SplitMix64};

/// Complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// Cycle `C_n` (empty for `n < 3`).
#[must_use]
pub fn cycle(n: usize) -> Graph {
    let mut g = Graph::new(n);
    if n >= 3 {
        for u in 0..n {
            g.add_edge(u, (u + 1) % n);
        }
    }
    g
}

/// Path `P_n`.
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 1..n {
        g.add_edge(u - 1, u);
    }
    g
}

/// Star `K_{1,n-1}` centred at vertex 0.
#[must_use]
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 1..n {
        g.add_edge(0, u);
    }
    g
}

/// Complete bipartite graph `K_{a,b}`.
#[must_use]
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = Graph::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge(u, a + v);
        }
    }
    g
}

/// The Petersen graph — a classic 10-vertex sanity anchor with known
/// invariants (triangle-free, 3-regular, exactly 120 proper 3-colorings).
#[must_use]
pub fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for u in 0..5 {
        g.add_edge(u, (u + 1) % 5); // outer cycle
        g.add_edge(5 + u, 5 + (u + 2) % 5); // inner pentagram
        g.add_edge(u, 5 + u); // spokes
    }
    g
}

/// Erdős–Rényi `G(n, p)` with `p` in parts per 2^32, deterministic in the
/// seed.
#[must_use]
pub fn gnp(n: usize, p_num: u32, seed: u64) -> Graph {
    let mut rng = SplitMix64::new(seed);
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in u + 1..n {
            if (rng.next_u64() >> 32) as u32 <= p_num {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Uniform random graph with exactly `m` edges (`G(n, m)`).
///
/// # Panics
///
/// Panics if `m` exceeds `n(n-1)/2`.
#[must_use]
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "requested {m} edges but K_{n} has only {max}");
    let mut rng = SplitMix64::new(seed);
    let mut g = Graph::new(n);
    let mut added = 0;
    while added < m {
        let u = (rng.next_u64() % n as u64) as usize;
        let v = (rng.next_u64() % n as u64) as usize;
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v);
            added += 1;
        }
    }
    g
}

/// `G(n, m)` with a planted clique on the first `k` vertices (useful for
/// k-clique counting workloads where random graphs would be barren).
///
/// # Panics
///
/// Panics if the total edge budget exceeds the complete graph.
#[must_use]
pub fn planted_clique(n: usize, m_extra: usize, k: usize, seed: u64) -> Graph {
    let mut g = complete(k).pad_vertices(n);
    let mut rng = SplitMix64::new(seed);
    let mut added = 0;
    let max = n * n.saturating_sub(1) / 2;
    assert!(k * (k - 1) / 2 + m_extra <= max, "edge budget exceeds K_n");
    while added < m_extra {
        let u = (rng.next_u64() % n as u64) as usize;
        let v = (rng.next_u64() % n as u64) as usize;
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v);
            added += 1;
        }
    }
    g
}

impl Graph {
    /// Re-embeds the graph into a larger vertex set (extra vertices are
    /// isolated).
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than the current vertex count.
    #[must_use]
    pub fn pad_vertices(&self, n: usize) -> Graph {
        assert!(n >= self.vertex_count(), "cannot shrink a graph");
        Graph::from_edges(n, self.edges().iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.is_clique(g.full_mask()));
    }

    #[test]
    fn cycle_and_path_degrees() {
        let c = cycle(5);
        assert!(c.is_connected());
        assert!((0..5).all(|u| c.degree(u) == 2));
        let p = path(5);
        assert_eq!(p.degree(0), 1);
        assert_eq!(p.degree(2), 2);
        assert_eq!(p.edge_count(), 4);
        assert!(cycle(2).edge_count() == 0, "degenerate cycles are empty");
    }

    #[test]
    fn star_is_a_tree() {
        let s = star(7);
        assert_eq!(s.edge_count(), 6);
        assert!(s.is_connected());
        assert_eq!(s.degree(0), 6);
    }

    #[test]
    fn bipartite_has_no_triangles() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.edge_count(), 12);
        for u in 0..7 {
            for v in u + 1..7 {
                for w in v + 1..7 {
                    assert!(!(g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w)));
                }
            }
        }
    }

    #[test]
    fn petersen_shape() {
        let g = petersen();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert!((0..10).all(|u| g.degree(u) == 3));
        assert!(g.is_connected());
    }

    #[test]
    fn gnm_exact_edge_count_and_determinism() {
        let a = gnm(20, 50, 42);
        let b = gnm(20, 50, 42);
        let c = gnm(20, 50, 43);
        assert_eq!(a.edge_count(), 50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0, 1).edge_count(), 0);
        assert_eq!(gnp(10, u32::MAX, 1).edge_count(), 45);
    }

    #[test]
    fn planted_clique_contains_clique() {
        let g = planted_clique(16, 20, 6, 7);
        assert!(g.is_clique(0b111111));
        assert_eq!(g.edge_count(), 15 + 20);
    }

    #[test]
    fn pad_keeps_edges() {
        let g = cycle(4).pad_vertices(9);
        assert_eq!(g.vertex_count(), 9);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(8), 0);
    }
}
