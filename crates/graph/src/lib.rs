//! # camelot-graph — graph substrate and sequential baselines
//!
//! Graphs are the common input of most Camelot problems in the paper
//! (cliques §5, triangles §6, chromatic polynomial §9, Tutte polynomial
//! §10). This crate provides the input types ([`Graph`], [`MultiGraph`]),
//! deterministic workload generators ([`gen`]), and — crucially — the
//! *sequential reference algorithms* every Camelot algorithm is measured
//! against and tested for agreement with: brute-force clique/triangle
//! counts, the `O*(2^n)` inclusion–exclusion chromatic baseline, Potts /
//! deletion–contraction Tutte oracles, and Hamiltonian-cycle counting.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod chromatic;
mod count;
pub mod gen;
mod graph;
pub mod tutte;

pub use count::{
    count_hamiltonian_cycles, count_hamiltonian_cycles_brute, count_k_cliques, count_triangles,
    independent_set_table,
};
pub use graph::{Dsu, Graph, MultiGraph};
