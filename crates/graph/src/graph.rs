//! Simple graphs on at most 64 vertices, multigraphs, and a union–find.
//!
//! Every graph problem in the paper (cliques §5, triangles §6, chromatic
//! §9, Tutte §10) takes an `n`-vertex graph as the common input. A 64-bit
//! adjacency-mask representation keeps all the reference algorithms (and
//! the subset convolutions of the partitioning template) branch-light.

use std::fmt;

/// A simple undirected graph on `n <= 64` vertices with bitmask adjacency.
///
/// # Examples
///
/// ```
/// use camelot_graph::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert!(g.has_edge(0, 1));
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<u64>,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Empty graph on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n <= 64, "Graph supports at most 64 vertices");
        Graph { n, adj: vec![0; n], edges: Vec::new() }
    }

    /// Builds from an edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, loops, or duplicate edges.
    #[must_use]
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints, a loop (`u == v`), or a duplicate
    /// edge.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert_ne!(u, v, "simple graphs have no loops");
        assert!(!self.has_edge(u, v), "duplicate edge {{{u}, {v}}}");
        self.adj[u] |= 1 << v;
        self.adj[v] |= 1 << u;
        self.edges.push((u.min(v), u.max(v)));
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edge list (each edge once, endpoints ordered).
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// True if `{u, v}` is an edge.
    #[must_use]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && v < self.n && self.adj[u] >> v & 1 == 1
    }

    /// Neighborhood of `u` as a bitmask.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn neighbors(&self, u: usize) -> u64 {
        assert!(u < self.n, "vertex out of range");
        self.adj[u]
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn degree(&self, u: usize) -> usize {
        self.neighbors(u).count_ones() as usize
    }

    /// Bitmask of all vertices.
    #[must_use]
    pub fn full_mask(&self) -> u64 {
        if self.n == 64 {
            u64::MAX
        } else {
            (1u64 << self.n) - 1
        }
    }

    /// True if the vertex set `mask` induces a clique.
    #[must_use]
    pub fn is_clique(&self, mask: u64) -> bool {
        let mut rest = mask;
        while rest != 0 {
            let u = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if rest & !self.adj[u] != 0 {
                return false;
            }
        }
        true
    }

    /// True if the vertex set `mask` is independent.
    #[must_use]
    pub fn is_independent(&self, mask: u64) -> bool {
        let mut rest = mask;
        while rest != 0 {
            let u = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            if mask & self.adj[u] != 0 {
                return false;
            }
        }
        true
    }

    /// Union of neighborhoods of the vertices in `mask`.
    #[must_use]
    pub fn neighborhood_of_set(&self, mask: u64) -> u64 {
        let mut out = 0u64;
        let mut rest = mask;
        while rest != 0 {
            let u = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            out |= self.adj[u];
        }
        out
    }

    /// Number of edges inside the vertex set `mask`.
    #[must_use]
    pub fn edges_within(&self, mask: u64) -> usize {
        let mut count = 0;
        let mut rest = mask;
        while rest != 0 {
            let u = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            count += (self.adj[u] & rest).count_ones() as usize;
        }
        count
    }

    /// Number of edges between the disjoint vertex sets `a` and `b`.
    #[must_use]
    pub fn edges_between(&self, a: u64, b: u64) -> usize {
        debug_assert_eq!(a & b, 0, "sets must be disjoint");
        let mut count = 0;
        let mut rest = a;
        while rest != 0 {
            let u = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            count += (self.adj[u] & b).count_ones() as usize;
        }
        count
    }

    /// True if the graph is connected (the empty graph is connected).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = 1u64;
        let mut frontier = 1u64;
        while frontier != 0 {
            let mut next = 0u64;
            let mut rest = frontier;
            while rest != 0 {
                let u = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                next |= self.adj[u] & !seen;
            }
            seen |= next;
            frontier = next;
        }
        seen == self.full_mask()
    }

    /// The adjacency matrix as row-major 0/1 values.
    #[must_use]
    pub fn adjacency_matrix(&self) -> Vec<u64> {
        let mut m = vec![0u64; self.n * self.n];
        for &(u, v) in &self.edges {
            m[u * self.n + v] = 1;
            m[v * self.n + u] = 1;
        }
        m
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.edges.len())
    }
}

/// An undirected multigraph: loops and parallel edges allowed (the Tutte
/// polynomial in §10 of the paper is defined for these).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MultiGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl MultiGraph {
    /// Empty multigraph on `n` vertices.
    #[must_use]
    pub fn new(n: usize) -> Self {
        MultiGraph { n, edges: Vec::new() }
    }

    /// Builds from an edge list (duplicates and loops welcome).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints.
    #[must_use]
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = MultiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds an edge (possibly a loop or a parallel copy).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        self.edges.push((u.min(v), u.max(v)));
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges (with multiplicity).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Number of connected components (isolated vertices count).
    #[must_use]
    pub fn component_count(&self) -> usize {
        let mut dsu = Dsu::new(self.n);
        for &(u, v) in &self.edges {
            dsu.union(u, v);
        }
        dsu.component_count()
    }

    /// Widens a [`Graph`] into a multigraph.
    #[must_use]
    pub fn from_graph(g: &Graph) -> Self {
        MultiGraph { n: g.vertex_count(), edges: g.edges().to_vec() }
    }
}

/// Disjoint-set union with path halving and union by size.
#[derive(Clone, Debug)]
pub struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl Dsu {
    /// `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Dsu { parent: (0..n).collect(), size: vec![1; n], components: n }
    }

    /// Representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_adjacency() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3)]);
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        let _ = Graph::from_edges(3, [(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "no loops")]
    fn loops_rejected_in_simple_graphs() {
        let _ = Graph::from_edges(3, [(1, 1)]);
    }

    #[test]
    fn clique_and_independent_checks() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2)]);
        assert!(g.is_clique(0b0111));
        assert!(!g.is_clique(0b1011));
        assert!(g.is_clique(0b0001));
        assert!(g.is_clique(0));
        assert!(g.is_independent(0b1000));
        assert!(!g.is_independent(0b0011));
        assert!(g.is_independent(0));
    }

    #[test]
    fn edges_within_and_between() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (0, 3)]);
        assert_eq!(g.edges_within(0b000111), 3);
        assert_eq!(g.edges_within(0b011000), 1);
        assert_eq!(g.edges_between(0b000111, 0b011000), 1);
        assert_eq!(g.edges_within(g.full_mask()), 5);
    }

    #[test]
    fn connectivity() {
        assert!(Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).is_connected());
        assert!(!Graph::from_edges(4, [(0, 1), (2, 3)]).is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(!Graph::new(2).is_connected());
    }

    #[test]
    fn neighborhood_of_set() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        assert_eq!(g.neighborhood_of_set(0b00001), 0b00010);
        assert_eq!(g.neighborhood_of_set(0b00011), 0b00101 | 0b00010);
    }

    #[test]
    fn multigraph_allows_loops_and_parallels() {
        let mg = MultiGraph::from_edges(3, [(0, 0), (0, 1), (0, 1), (1, 2)]);
        assert_eq!(mg.edge_count(), 4);
        assert_eq!(mg.component_count(), 1);
        let mg2 = MultiGraph::from_edges(4, [(0, 1)]);
        assert_eq!(mg2.component_count(), 3);
    }

    #[test]
    fn dsu_tracks_components() {
        let mut d = Dsu::new(5);
        assert_eq!(d.component_count(), 5);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        d.union(2, 3);
        d.union(0, 3);
        assert_eq!(d.component_count(), 2);
        assert_eq!(d.find(2), d.find(1));
        assert_ne!(d.find(4), d.find(0));
    }

    #[test]
    fn adjacency_matrix_is_symmetric() {
        let g = Graph::from_edges(3, [(0, 2), (1, 2)]);
        let m = g.adjacency_matrix();
        assert_eq!(m, vec![0, 0, 1, 0, 0, 1, 1, 1, 0]);
    }
}
