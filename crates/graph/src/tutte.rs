//! Sequential Tutte-polynomial baselines.
//!
//! §10 of the paper computes the Tutte polynomial through the partition
//! function of the Potts model (Fortuin–Kasteleyn):
//!
//! ```text
//! Z_G(t, r) = Σ_{F ⊆ E} t^{c(F)} Π_{e ∈ F} r_e ,
//! T_G(x, y) = (x-1)^{-c(E)} (y-1)^{-|V|} Z_G(t, r),  t = (x-1)(y-1), r = y-1.
//! ```
//!
//! This module provides the two ground-truth oracles: direct edge-subset
//! summation of `Z_G` (exponential in `m`) and the classical
//! deletion–contraction recursion for the Tutte coefficients.

use crate::graph::{Dsu, MultiGraph};
use camelot_ff::PrimeField;

/// `Z_G(t, r) mod q` by brute-force summation over all `2^m` edge subsets.
///
/// # Panics
///
/// Panics if the multigraph has more than 24 edges.
#[must_use]
pub fn potts_value_mod(g: &MultiGraph, t: u64, r: u64, field: &PrimeField) -> u64 {
    let m = g.edge_count();
    assert!(m <= 24, "brute-force Potts limited to m <= 24 edges");
    let n = g.vertex_count();
    let (t, r) = (field.reduce(t), field.reduce(r));
    let mut acc = 0u64;
    for subset in 0u32..1 << m {
        let mut dsu = Dsu::new(n);
        for (i, &(u, v)) in g.edges().iter().enumerate() {
            if subset >> i & 1 == 1 {
                dsu.union(u, v);
            }
        }
        let term = field.mul(
            field.pow(t, dsu.component_count() as u64),
            field.pow(r, u64::from(subset.count_ones())),
        );
        acc = field.add(acc, term);
    }
    acc
}

/// Tutte polynomial coefficients `T_G(x, y) = Σ t_{ij} x^i y^j` as a dense
/// `(i, j)`-indexed table, by deletion–contraction.
///
/// Coefficients of the Tutte polynomial are non-negative and bounded by
/// `2^m`, so `u128` is ample for the graphs this oracle serves.
///
/// # Panics
///
/// Panics if the multigraph has more than 24 edges (recursion blows up).
#[must_use]
pub fn tutte_coefficients(g: &MultiGraph) -> Vec<Vec<u128>> {
    assert!(g.edge_count() <= 24, "deletion-contraction limited to m <= 24");
    let poly = del_con(g.vertex_count(), g.edges().to_vec());
    poly.table
}

/// Evaluates a coefficient table at `(x, y)` modulo `q`.
#[must_use]
pub fn eval_tutte_mod(coeffs: &[Vec<u128>], x: u64, y: u64, field: &PrimeField) -> u64 {
    let mut acc = 0u64;
    for (i, row) in coeffs.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            let term = field.mul(
                field.reduce_u128(c),
                field.mul(
                    field.pow(field.reduce(x), i as u64),
                    field.pow(field.reduce(y), j as u64),
                ),
            );
            acc = field.add(acc, term);
        }
    }
    acc
}

/// Dense bivariate polynomial with `u128` coefficients, `table[i][j]` the
/// coefficient of `x^i y^j`.
struct BiPoly {
    table: Vec<Vec<u128>>,
}

impl BiPoly {
    fn constant(c: u128) -> Self {
        BiPoly { table: vec![vec![c]] }
    }

    fn add(mut self, other: BiPoly) -> BiPoly {
        let rows = self.table.len().max(other.table.len());
        let cols = self.table.iter().chain(&other.table).map(Vec::len).max().unwrap_or(0);
        self.table.resize(rows, Vec::new());
        for row in &mut self.table {
            row.resize(cols, 0);
        }
        for (i, row) in other.table.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                self.table[i][j] += c;
            }
        }
        self
    }

    fn mul_x(mut self) -> BiPoly {
        self.table.insert(0, vec![0; self.table.first().map_or(0, Vec::len)]);
        BiPoly { table: self.table }
    }

    fn mul_y(mut self) -> BiPoly {
        for row in &mut self.table {
            row.insert(0, 0);
        }
        BiPoly { table: self.table }
    }
}

/// Deletion–contraction on an explicit edge list.
fn del_con(n: usize, edges: Vec<(usize, usize)>) -> BiPoly {
    // Find the first non-loop edge; loops contribute a factor y each.
    match edges.iter().position(|&(u, v)| u != v) {
        None => {
            // Only loops remain: T = y^{#loops}.
            let mut p = BiPoly::constant(1);
            for _ in 0..edges.len() {
                p = p.mul_y();
            }
            p
        }
        Some(idx) => {
            let (u, v) = edges[idx];
            let mut rest: Vec<(usize, usize)> = edges;
            rest.remove(idx);
            if is_bridge(n, &rest, u, v) {
                // Bridge: T = x * T(G / e).
                contract(n, &rest, u, v).mul_x()
            } else {
                // T = T(G - e) + T(G / e).
                let deleted = del_con(n, rest.clone());
                let contracted = contract(n, &rest, u, v);
                deleted.add(contracted)
            }
        }
    }
}

/// True if `{u, v}` would be a bridge given the remaining edges (i.e. no
/// alternative path connects `u` and `v`).
fn is_bridge(n: usize, rest: &[(usize, usize)], u: usize, v: usize) -> bool {
    let mut dsu = Dsu::new(n);
    for &(a, b) in rest {
        dsu.union(a, b);
    }
    dsu.find(u) != dsu.find(v)
}

/// Contracts `{u, v}` (merging `v` into `u`) and recurses.
fn contract(n: usize, rest: &[(usize, usize)], u: usize, v: usize) -> BiPoly {
    let relabel = |w: usize| if w == v { u } else { w };
    let edges: Vec<(usize, usize)> = rest
        .iter()
        .map(|&(a, b)| {
            let (a, b) = (relabel(a), relabel(b));
            (a.min(b), a.max(b))
        })
        .collect();
    del_con(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::MultiGraph;

    fn f() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    fn coeff(t: &[Vec<u128>], i: usize, j: usize) -> u128 {
        t.get(i).and_then(|r| r.get(j)).copied().unwrap_or(0)
    }

    #[test]
    fn triangle_tutte() {
        // T_{K3} = x^2 + x + y
        let t = tutte_coefficients(&MultiGraph::from_graph(&gen::complete(3)));
        assert_eq!(coeff(&t, 2, 0), 1);
        assert_eq!(coeff(&t, 1, 0), 1);
        assert_eq!(coeff(&t, 0, 1), 1);
        assert_eq!(t.iter().flatten().sum::<u128>(), 3);
    }

    #[test]
    fn k4_tutte() {
        // T_{K4} = x^3 + 3x^2 + 2x + 4xy + 2y + 3y^2 + y^3
        let t = tutte_coefficients(&MultiGraph::from_graph(&gen::complete(4)));
        assert_eq!(coeff(&t, 3, 0), 1);
        assert_eq!(coeff(&t, 2, 0), 3);
        assert_eq!(coeff(&t, 1, 0), 2);
        assert_eq!(coeff(&t, 1, 1), 4);
        assert_eq!(coeff(&t, 0, 1), 2);
        assert_eq!(coeff(&t, 0, 2), 3);
        assert_eq!(coeff(&t, 0, 3), 1);
    }

    #[test]
    fn loops_and_bridges() {
        // Single loop: T = y. Single bridge: T = x. Loop + bridge: xy.
        let loop_g = MultiGraph::from_edges(1, [(0, 0)]);
        assert_eq!(coeff(&tutte_coefficients(&loop_g), 0, 1), 1);
        let bridge = MultiGraph::from_edges(2, [(0, 1)]);
        assert_eq!(coeff(&tutte_coefficients(&bridge), 1, 0), 1);
        let both = MultiGraph::from_edges(2, [(0, 1), (1, 1)]);
        assert_eq!(coeff(&tutte_coefficients(&both), 1, 1), 1);
        // Two parallel edges (a digon): T = x + y.
        let digon = MultiGraph::from_edges(2, [(0, 1), (0, 1)]);
        let t = tutte_coefficients(&digon);
        assert_eq!(coeff(&t, 1, 0), 1);
        assert_eq!(coeff(&t, 0, 1), 1);
    }

    #[test]
    fn specializations_count_subgraphs() {
        let field = f();
        for g in [gen::cycle(5), gen::complete(4), gen::gnm(6, 9, 1)] {
            let mg = MultiGraph::from_graph(&g);
            let t = tutte_coefficients(&mg);
            // T(2,2) = 2^m for connected G.
            assert_eq!(eval_tutte_mod(&t, 2, 2, &field), field.pow(2, mg.edge_count() as u64));
            // T(1,1) = number of spanning trees (via Potts cross-check below).
            // T(2,1) = number of spanning forests.
            let forests = eval_tutte_mod(&t, 2, 1, &field);
            let mut brute = 0u64;
            for subset in 0u32..1 << mg.edge_count() {
                let mut dsu = Dsu::new(mg.vertex_count());
                let mut acyclic = true;
                for (i, &(u, v)) in mg.edges().iter().enumerate() {
                    if subset >> i & 1 == 1 && !dsu.union(u, v) {
                        acyclic = false;
                        break;
                    }
                }
                brute += u64::from(acyclic);
            }
            assert_eq!(forests, brute, "spanning forests of {g}");
        }
    }

    #[test]
    fn fortuin_kasteleyn_consistency() {
        // Z_G(t, r) = (x-1)^{c(E)} (y-1)^{|V|} T(x, y) with
        // t = (x-1)(y-1), r = y-1 — check at several integer (x, y).
        let field = f();
        for g in [gen::cycle(4), gen::complete(4), gen::gnm(5, 7, 2)] {
            let mg = MultiGraph::from_graph(&g);
            let coeffs = tutte_coefficients(&mg);
            let c_e = mg.component_count() as u64;
            for (x, y) in [(2u64, 2u64), (3, 2), (2, 3), (4, 5), (3, 3)] {
                let t = (x - 1) * (y - 1);
                let r = y - 1;
                let lhs = potts_value_mod(&mg, t, r, &field);
                let rhs = field.mul(
                    field.mul(field.pow(x - 1, c_e), field.pow(y - 1, mg.vertex_count() as u64)),
                    eval_tutte_mod(&coeffs, x, y, &field),
                );
                assert_eq!(lhs, rhs, "graph {g}, (x,y)=({x},{y})");
            }
        }
    }

    #[test]
    fn chromatic_from_tutte() {
        // χ_G(t) = (-1)^{n - c} t^c T(1 - t, 0) — check against the
        // chromatic oracle at small integer t via mod-q arithmetic.
        let field = f();
        for g in [gen::cycle(5), gen::petersen()] {
            let mg = MultiGraph::from_graph(&g);
            let coeffs = tutte_coefficients(&mg);
            let n = g.vertex_count() as u64;
            let c = mg.component_count() as u64;
            for t in 2..=4u64 {
                let x = field.from_i64(1 - t as i64);
                let t_val = eval_tutte_mod(&coeffs, x, 0, &field);
                let mut rhs = field.mul(field.pow(t, c), t_val);
                if (n - c) % 2 == 1 {
                    rhs = field.neg(rhs);
                }
                assert_eq!(
                    crate::chromatic::chromatic_value_mod(&g, t, &field),
                    rhs,
                    "graph {g}, t={t}"
                );
            }
        }
    }

    #[test]
    fn potts_on_empty_and_edgeless() {
        let field = f();
        let empty = MultiGraph::new(3);
        // Z = t^3 (single empty subset, 3 components).
        assert_eq!(potts_value_mod(&empty, 5, 7, &field), 125);
    }
}
