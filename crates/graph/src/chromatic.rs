//! Sequential chromatic-polynomial baselines.
//!
//! The paper's Theorem 6 gives a Camelot algorithm with proof size and time
//! `O*(2^{n/2})`; the best sequential algorithm it halves runs in `O*(2^n)`
//! via the inclusion–exclusion identity of Björklund–Husfeldt–Koivisto:
//!
//! ```text
//! χ_G(t) = Σ_{S ⊆ V} (-1)^{n - |S|} i(S)^t ,
//! ```
//!
//! where `i_S(z) = Σ_{X ⊆ S independent} z^{|X|}` is the size-tracking
//! independent-set polynomial and the coefficient extraction `[z^n]`
//! forces the `t` covering sets to be disjoint (the same weight-tracking
//! idea the paper's template of §7 uses with the `w_E, w_B`
//! indeterminates). That baseline lives here (mod-`q` flavor for oracle
//! duty), next to a brute force coloring counter for tiny instances.

use crate::graph::Graph;
use camelot_ff::PrimeField;

/// `χ_G(t) mod q` by the `O*(2^n)` inclusion–exclusion baseline with size
/// tracking.
///
/// # Panics
///
/// Panics if `n > 22` (the `2^n × (n+1)` table would not fit in memory).
#[must_use]
pub fn chromatic_value_mod(g: &Graph, t: u64, field: &PrimeField) -> u64 {
    let n = g.vertex_count();
    assert!(n <= 22, "sequential chromatic baseline limited to n <= 22");
    let table = independent_size_table(g, field);
    let width = n + 1;
    let mut acc = 0u64;
    let mut scratch = vec![0u64; width];
    for s in 0..1usize << n {
        let poly = &table[s * width..(s + 1) * width];
        // [z^n] poly(z)^t by square-and-multiply on truncated polynomials.
        let top = pow_coeff_top(field, poly, t, n, &mut scratch);
        if (n - (s as u64).count_ones() as usize).is_multiple_of(2) {
            acc = field.add(acc, top);
        } else {
            acc = field.sub(acc, top);
        }
    }
    acc
}

/// Flat `2^n × (n+1)` table of the independent-set size polynomials
/// `i_S(z)` via the DP `i_S = i_{S∖v} + z · i_{S∖(N(v)∪v)}`.
fn independent_size_table(g: &Graph, field: &PrimeField) -> Vec<u64> {
    let n = g.vertex_count();
    let width = n + 1;
    let mut table = vec![0u64; (1usize << n) * width];
    table[0] = 1; // i_∅ = 1
    for s in 1usize..1 << n {
        let v = s.trailing_zeros() as usize;
        let without = s & !(1 << v);
        let shrunk = without & !(g.neighbors(v) as usize);
        for j in 0..width {
            let mut val = table[without * width + j];
            if j > 0 {
                val = field.add(val, table[shrunk * width + j - 1]);
            }
            table[s * width + j] = val;
        }
    }
    table
}

/// `[z^top] p(z)^t` for a dense polynomial `p` truncated at degree `top`.
fn pow_coeff_top(
    field: &PrimeField,
    p: &[u64],
    mut t: u64,
    top: usize,
    scratch: &mut [u64],
) -> u64 {
    let width = top + 1;
    // acc = 1, base = p; truncated square-and-multiply.
    let mut acc = vec![0u64; width];
    acc[0] = 1;
    let mut base = p.to_vec();
    while t > 0 {
        if t & 1 == 1 {
            mul_trunc(field, &acc, &base, scratch);
            acc.copy_from_slice(scratch);
        }
        t >>= 1;
        if t > 0 {
            mul_trunc(field, &base.clone(), &base, scratch);
            base.copy_from_slice(scratch);
        }
    }
    acc[top]
}

/// `out = a * b` truncated to the length of `out`.
fn mul_trunc(field: &PrimeField, a: &[u64], b: &[u64], out: &mut [u64]) {
    out.fill(0);
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            if i + j >= out.len() {
                break;
            }
            out[i + j] = field.mul_add(out[i + j], ai, bj);
        }
    }
}

/// Exact `χ_G(t)` for tiny graphs by enumerating all `t^n` colorings.
///
/// # Panics
///
/// Panics if `t^n` exceeds `2^40` (keep it tiny).
#[must_use]
pub fn chromatic_value_brute(g: &Graph, t: u64) -> u64 {
    let n = g.vertex_count() as u32;
    let total = (t as u128).pow(n);
    assert!(total <= 1 << 40, "brute-force coloring space too large");
    if t == 0 {
        return u64::from(n == 0);
    }
    let mut count = 0u64;
    let mut coloring = vec![0u64; n as usize];
    'outer: loop {
        let proper = g.edges().iter().all(|&(u, v)| coloring[u] != coloring[v]);
        if proper {
            count += 1;
        }
        // odometer increment
        for slot in coloring.iter_mut() {
            *slot += 1;
            if *slot < t {
                continue 'outer;
            }
            *slot = 0;
        }
        break;
    }
    count
}

/// All values `χ_G(1), ..., χ_G(n+1) mod q` — enough to reconstruct the
/// degree-`n` chromatic polynomial by interpolation.
#[must_use]
pub fn chromatic_values_mod(g: &Graph, field: &PrimeField) -> Vec<u64> {
    (1..=g.vertex_count() as u64 + 1).map(|t| chromatic_value_mod(g, t, field)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn f() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    #[test]
    fn complete_graph_falling_factorial() {
        // χ_{K_n}(t) = t (t-1) ... (t-n+1)
        let field = f();
        let g = gen::complete(5);
        for t in 1..=8u64 {
            let expect: u64 = (0..5).map(|i| t.saturating_sub(i)).product();
            assert_eq!(chromatic_value_mod(&g, t, &field), expect % field.modulus());
        }
    }

    #[test]
    fn cycle_closed_form() {
        // χ_{C_n}(t) = (t-1)^n + (-1)^n (t-1)
        let field = f();
        for n in [3usize, 4, 5, 6] {
            let g = gen::cycle(n);
            for t in 1..=5u64 {
                let base = (t as i128 - 1).pow(n as u32)
                    + if n % 2 == 0 { t as i128 - 1 } else { -(t as i128 - 1) };
                let expect = base.rem_euclid(i128::from(field.modulus())) as u64;
                assert_eq!(chromatic_value_mod(&g, t, &field), expect, "n={n} t={t}");
            }
        }
    }

    #[test]
    fn tree_closed_form() {
        // Any tree on n vertices: t (t-1)^{n-1}
        let field = f();
        for g in [gen::path(6), gen::star(6)] {
            for t in 1..=5u64 {
                let expect = (t as u128 * (t as u128 - 1).pow(5)) % u128::from(field.modulus());
                assert_eq!(chromatic_value_mod(&g, t, &field), expect as u64);
            }
        }
    }

    #[test]
    fn petersen_three_colorings() {
        let field = f();
        assert_eq!(chromatic_value_mod(&gen::petersen(), 3, &field), 120);
        assert_eq!(chromatic_value_mod(&gen::petersen(), 2, &field), 0);
        assert_eq!(chromatic_value_mod(&gen::petersen(), 1, &field), 0);
    }

    #[test]
    fn inclusion_exclusion_matches_brute_force() {
        let field = f();
        for seed in 0..4 {
            let g = gen::gnm(7, 10, seed);
            for t in 0..=4u64 {
                assert_eq!(
                    chromatic_value_mod(&g, t, &field),
                    chromatic_value_brute(&g, t) % field.modulus(),
                    "seed {seed} t {t}"
                );
            }
        }
    }

    #[test]
    fn empty_graph_is_t_to_the_n() {
        let field = f();
        let g = Graph::new(4);
        for t in 1..=5u64 {
            assert_eq!(chromatic_value_mod(&g, t, &field), t.pow(4) % field.modulus());
        }
    }

    #[test]
    fn values_vector_has_length_n_plus_one() {
        let field = f();
        let vals = chromatic_values_mod(&gen::cycle(5), &field);
        assert_eq!(vals.len(), 6);
        assert_eq!(vals[0], 0); // χ(1) = 0 for any graph with an edge
    }
}
