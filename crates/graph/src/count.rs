//! Sequential reference counting algorithms.
//!
//! These are the *ground truth* oracles the Camelot algorithms are tested
//! against, and several double as the paper's sequential baselines:
//! brute-force clique enumeration, bitset triangle counting, the
//! independent-set subset DP used by the Björklund–Husfeldt–Koivisto
//! machinery, and inclusion–exclusion Hamiltonian cycle counting.

use crate::graph::Graph;

/// Counts `k`-cliques by pruned enumeration (exponential; ground truth for
/// tests and for Theorem 1/2 validation).
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn count_k_cliques(g: &Graph, k: usize) -> u64 {
    assert!(k > 0, "k must be positive");
    let n = g.vertex_count();
    if k > n {
        return 0;
    }
    fn rec(g: &Graph, k_left: usize, candidates: u64, min_vertex: usize) -> u64 {
        if k_left == 0 {
            return 1;
        }
        if min_vertex >= 64 {
            return 0;
        }
        let mut count = 0;
        let mut rest = candidates >> min_vertex << min_vertex;
        while rest != 0 {
            let v = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            count += rec(g, k_left - 1, candidates & g.neighbors(v), v + 1);
        }
        count
    }
    rec(g, k, g.full_mask(), 0)
}

/// Counts triangles with bitset intersections — `O(n m / 64)`; ground
/// truth for §6.
#[must_use]
pub fn count_triangles(g: &Graph) -> u64 {
    let mut count = 0u64;
    for &(u, v) in g.edges() {
        // Common neighbors above v keep each triangle counted once
        // (edges store u < v).
        let above = if v >= 63 { 0 } else { !((1u64 << (v + 1)) - 1) };
        let common = g.neighbors(u) & g.neighbors(v) & above;
        count += u64::from(common.count_ones());
    }
    count
}

/// `i(S)`: number of independent sets contained in each vertex subset `S`,
/// for all `2^n` subsets, via the standard DP
/// `i(S) = i(S \ v) + i(S \ (N(v) ∪ v))`.
///
/// The empty set counts, so `i(∅) = 1`. This is the engine of the
/// `O*(2^n)` sequential chromatic-polynomial baseline [BHK, SIAM J.
/// Comput. 39 (2009)] the paper's Theorem 6 halves the exponent of.
///
/// # Panics
///
/// Panics if `n > 26` (the table would not fit in memory).
#[must_use]
pub fn independent_set_table(g: &Graph) -> Vec<u64> {
    let n = g.vertex_count();
    assert!(n <= 26, "independent-set table limited to n <= 26");
    let mut table = vec![0u64; 1 << n];
    table[0] = 1;
    for s in 1usize..1 << n {
        let v = s.trailing_zeros() as usize;
        let without = s & !(1 << v);
        let shrunk = without & !(g.neighbors(v) as usize);
        table[s] = table[without] + table[shrunk];
    }
    table
}

/// Counts Hamiltonian cycles of an undirected graph by Karp-style
/// inclusion–exclusion over vertex subsets in `O(2^n n^2)` — each cycle
/// counted once (not per orientation or rotation).
///
/// Returns 0 for `n < 3`.
#[must_use]
pub fn count_hamiltonian_cycles(g: &Graph) -> u64 {
    let n = g.vertex_count();
    if n < 3 {
        return 0;
    }
    assert!(n <= 24, "inclusion-exclusion Hamiltonicity limited to n <= 24");
    // Count closed walks of length n from vertex 0 that stay inside
    // S ∪ {0}, for every S ⊆ {1..n-1}; inclusion-exclusion leaves exactly
    // the walks visiting every vertex, i.e. directed Hamiltonian cycles
    // based at 0. Each undirected cycle is counted twice (two directions).
    let mut total: i128 = 0;
    let full = (1usize << (n - 1)) - 1; // subsets of {1..n-1}
    for s in 0..=full {
        let mask = (s << 1) | 1; // include vertex 0

        // walks[v] = number of walks 0 -> v of current length inside mask
        let mut walks = vec![0i128; n];
        walks[0] = 1;
        for _ in 0..n - 1 {
            let mut next = vec![0i128; n];
            for (v, &count) in walks.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let mut nb = g.neighbors(v) & mask as u64;
                while nb != 0 {
                    let w = nb.trailing_zeros() as usize;
                    nb &= nb - 1;
                    next[w] += count;
                }
            }
            walks = next;
        }
        // close the walk back to 0
        let mut closed = 0i128;
        let mut nb = g.neighbors(0) & mask as u64;
        while nb != 0 {
            let w = nb.trailing_zeros() as usize;
            nb &= nb - 1;
            closed += walks[w];
        }
        let sign =
            if (n - 1 - (s as u32).count_ones() as usize).is_multiple_of(2) { 1 } else { -1 };
        total += sign * closed;
    }
    debug_assert!(total >= 0 && total % 2 == 0, "directed count must be even, got {total}");
    (total / 2) as u64
}

/// Brute-force Hamiltonian cycle count by permutation enumeration
/// (factorial; only for cross-validating the inclusion–exclusion oracle).
#[must_use]
pub fn count_hamiltonian_cycles_brute(g: &Graph) -> u64 {
    let n = g.vertex_count();
    if n < 3 {
        return 0;
    }
    assert!(n <= 10, "brute-force Hamiltonicity limited to n <= 10");
    let mut perm: Vec<usize> = (1..n).collect();
    let mut count = 0u64;
    permute(&mut perm, 0, &mut |p| {
        // cycle 0 -> p[0] -> ... -> p[n-2] -> 0; dedupe direction by
        // requiring p[0] < p[n-2]
        if p[0] > p[p.len() - 1] {
            return;
        }
        if !g.has_edge(0, p[0]) || !g.has_edge(p[p.len() - 1], 0) {
            return;
        }
        if p.windows(2).all(|w| g.has_edge(w[0], w[1])) {
            count += 1;
        }
    });
    count
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn clique_counts_on_complete_graphs() {
        // C(n, k) cliques of size k in K_n.
        let g = gen::complete(8);
        assert_eq!(count_k_cliques(&g, 1), 8);
        assert_eq!(count_k_cliques(&g, 2), 28);
        assert_eq!(count_k_cliques(&g, 3), 56);
        assert_eq!(count_k_cliques(&g, 6), 28);
        assert_eq!(count_k_cliques(&g, 8), 1);
        assert_eq!(count_k_cliques(&g, 9), 0);
    }

    #[test]
    fn clique_counts_structured() {
        assert_eq!(count_k_cliques(&gen::cycle(6), 3), 0);
        assert_eq!(count_k_cliques(&gen::cycle(3), 3), 1);
        assert_eq!(count_k_cliques(&gen::complete_bipartite(4, 4), 3), 0);
        assert_eq!(count_k_cliques(&gen::petersen(), 2), 15);
    }

    #[test]
    fn triangle_counts() {
        assert_eq!(count_triangles(&gen::complete(4)), 4);
        assert_eq!(count_triangles(&gen::complete(10)), 120);
        assert_eq!(count_triangles(&gen::petersen()), 0);
        assert_eq!(count_triangles(&gen::cycle(3)), 1);
        assert_eq!(count_triangles(&gen::cycle(5)), 0);
        assert_eq!(count_triangles(&gen::star(9)), 0);
    }

    #[test]
    fn triangles_match_cliques_random() {
        for seed in 0..5 {
            let g = gen::gnm(14, 40, seed);
            assert_eq!(count_triangles(&g), count_k_cliques(&g, 3), "seed {seed}");
        }
    }

    #[test]
    fn independent_set_table_small() {
        // Path 0-1-2: independent sets: {}, {0}, {1}, {2}, {0,2} -> 5.
        let g = gen::path(3);
        let table = independent_set_table(&g);
        assert_eq!(table[0b111], 5);
        assert_eq!(table[0b011], 3); // {}, {0}, {1}
        assert_eq!(table[0b101], 4); // {}, {0}, {2}, {0,2}

        // Triangle: 4 independent subsets of the full set.
        let t = independent_set_table(&gen::complete(3));
        assert_eq!(t[0b111], 4);
    }

    #[test]
    fn independent_set_table_matches_enumeration() {
        let g = gen::gnm(10, 20, 3);
        let table = independent_set_table(&g);
        for s in [0usize, 0b1, 0b1010101010, 0b1111111111] {
            let mut expect = 0u64;
            for sub in 0..=s {
                if sub & s == sub && g.is_independent(sub as u64) {
                    expect += 1;
                }
            }
            assert_eq!(table[s], expect, "subset {s:b}");
        }
    }

    #[test]
    fn hamiltonian_cycles_known_values() {
        assert_eq!(count_hamiltonian_cycles(&gen::cycle(5)), 1);
        assert_eq!(count_hamiltonian_cycles(&gen::complete(4)), 3);
        assert_eq!(count_hamiltonian_cycles(&gen::complete(5)), 12);
        // (n-1)!/2 for K_n
        assert_eq!(count_hamiltonian_cycles(&gen::complete(6)), 60);
        assert_eq!(count_hamiltonian_cycles(&gen::petersen()), 0);
        assert_eq!(count_hamiltonian_cycles(&gen::path(5)), 0);
        assert_eq!(count_hamiltonian_cycles(&gen::star(4)), 0);
    }

    #[test]
    fn hamiltonian_ie_matches_brute() {
        for seed in 0..6 {
            let g = gen::gnm(8, 16, seed);
            assert_eq!(
                count_hamiltonian_cycles(&g),
                count_hamiltonian_cycles_brute(&g),
                "seed {seed}"
            );
        }
    }
}
