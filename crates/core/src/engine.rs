//! The Camelot engine: distributed proof preparation, error correction,
//! and checking (§1.3 of the paper, steps 1–3).
//!
//! One [`Engine::run`] call executes the whole pipeline for a problem:
//!
//! 1. derive the proof parameters and the prime moduli from the spec
//!    (every node could do this independently from the common input);
//! 2. for each prime, have the simulated cluster evaluate
//!    `P(0), …, P(e-1) (mod q)` with faults injected per the plan;
//! 3. have every honest node Gao-decode its received word, recovering the
//!    proof *and the identities of the failed nodes*;
//! 4. spot-check the decoded proof against fresh evaluations of `P` at
//!    random points (identity (2) of the paper);
//! 5. reconstruct the integer answer by the Chinese Remainder Theorem.

use crate::error::CamelotError;
use crate::problem::{CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_cluster::{
    Backend, Broadcast, ChaosPlan, ClusterConfig, Demotion, EvalProgram, FaultPlan, RoundEval,
    RoundSpec, Transport, TransportTuning,
};
use camelot_ff::{ntt_prime, primes_above, worker_count, PrimeField, SplitMix64};
use camelot_rscode::RsCode;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the engine derives its deterministic prime moduli from a proof
/// spec. Every node derives the same schedule from the common input
/// (§1.3 of the paper), whichever variant is configured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PrimeSchedule {
    /// The smallest admissible primes above the spec floor
    /// ([`choose_primes`]) — the paper's schedule.
    #[default]
    Smallest,
    /// Primes `q ≡ 1 (mod 2^k)` with `2^k` at least twice the code
    /// length ([`choose_primes_ntt`]), so every codeword-sized
    /// polynomial product in Reed–Solomon encoding and Gao decoding can
    /// run through the number-theoretic transform.
    NttFriendly,
}

/// How the engine recovers when a run fails: transient transport
/// failures are retried wholesale, and decode-radius overruns are
/// *escalated* — the run is repeated with a larger fault budget `f`
/// (hence a longer code and fresh primes), trading redundancy for
/// success. The default is all-zero: no recovery, the historical
/// fail-fast behaviour.
///
/// Escalation converges whenever the faulty fraction is below 1/2:
/// each step adds `2 * escalation_step` codeword symbols but only
/// `escalation_step` of them can be newly faulty. Note that *simulated*
/// chaos ([`ChaosPlan`]) is deterministic, so a bare retry replays the
/// identical failure — retries serve genuinely transient faults (a
/// crashed worker process, a dropped connection); escalation is the
/// lever that makes chaos runs succeed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Whole-run retries granted for [`CamelotError::TransportFailed`].
    pub max_retries: u32,
    /// Redundancy escalations granted for decode/verification failures.
    pub max_escalations: u32,
    /// How much the fault budget `f` grows per escalation.
    pub escalation_step: usize,
}

impl RecoveryPolicy {
    /// No recovery: fail fast (the historical behaviour).
    #[must_use]
    pub fn none() -> Self {
        RecoveryPolicy::default()
    }

    /// A balanced default: one transport retry, up to `escalations`
    /// redundancy escalations of one fault-budget step each.
    #[must_use]
    pub fn escalating(escalations: u32) -> Self {
        RecoveryPolicy { max_retries: 1, max_escalations: escalations, escalation_step: 1 }
    }
}

/// Engine configuration for one run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// The simulated cluster (node count, threading).
    pub cluster: ClusterConfig,
    /// Prime-modulus schedule (default: smallest admissible primes).
    pub prime_schedule: PrimeSchedule,
    /// Fault budget `f`: the code length is `e = d + 1 + 2f`, so up to
    /// `f` corrupted symbols (or any mix of errors and twice as many
    /// erasures) are tolerated.
    pub fault_tolerance: usize,
    /// Behaviour assignment; `None` means all honest.
    pub plan: Option<FaultPlan>,
    /// Decode at every honest node and require agreement (the collective
    /// conclusion of footnote 7); otherwise only the lowest-indexed
    /// honest node decodes.
    pub decode_at_all_nodes: bool,
    /// Number of random spot checks per prime proof.
    pub verification_trials: usize,
    /// Seed for verification randomness.
    pub seed: u64,
    /// Retry/escalation behaviour when a run fails (default: none).
    pub recovery: RecoveryPolicy,
}

impl EngineConfig {
    /// A quiet sequential cluster of `nodes` nodes with fault budget `f`.
    #[must_use]
    pub fn sequential(nodes: usize, fault_tolerance: usize) -> Self {
        EngineConfig {
            cluster: ClusterConfig::sequential(nodes),
            prime_schedule: PrimeSchedule::default(),
            fault_tolerance,
            plan: None,
            decode_at_all_nodes: false,
            verification_trials: 2,
            seed: 0x00CA_110C_A11E,
            recovery: RecoveryPolicy::none(),
        }
    }

    /// A threaded cluster of `nodes` nodes with fault budget `f`. The
    /// simulation is deterministic either way; this runs node slices on
    /// OS threads for wall-clock speed.
    #[must_use]
    pub fn parallel(nodes: usize, fault_tolerance: usize) -> Self {
        EngineConfig {
            cluster: ClusterConfig::parallel(nodes),
            ..Self::sequential(nodes, fault_tolerance)
        }
    }

    /// Threaded cluster in release builds, sequential in debug builds
    /// (where the per-node timing numbers in test assertions must be
    /// exactly reproducible). The default for the experiment binaries.
    #[must_use]
    pub fn auto(nodes: usize, fault_tolerance: usize) -> Self {
        if cfg!(debug_assertions) {
            Self::sequential(nodes, fault_tolerance)
        } else {
            Self::parallel(nodes, fault_tolerance)
        }
    }

    /// Installs a fault plan.
    #[must_use]
    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Requires decoding (and agreement) at every honest node.
    #[must_use]
    pub fn with_full_decoding(mut self) -> Self {
        self.decode_at_all_nodes = true;
        self
    }

    /// Switches the prime schedule to NTT-friendly moduli
    /// ([`PrimeSchedule::NttFriendly`]), accelerating the codeword
    /// pipeline for large code lengths.
    #[must_use]
    pub fn with_ntt_primes(mut self) -> Self {
        self.prime_schedule = PrimeSchedule::NttFriendly;
        self
    }

    /// Switches the broadcast backend rounds run on (the in-process
    /// simulated bus by default; [`Backend::Channel`] for per-node OS
    /// threads exchanging mpsc frames; [`Backend::Socket`] for loopback
    /// TCP workers — the latter needs wire-expressible problems, see
    /// [`Evaluate::program`]).
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.cluster.backend = backend;
        self
    }

    /// Installs a transport-level chaos plan, injected identically by
    /// every backend (orthogonal to the algebraic [`FaultPlan`]).
    #[must_use]
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.cluster = self.cluster.with_chaos(Some(chaos));
        self
    }

    /// Overrides the transport tuning (I/O deadlines, retry/backoff,
    /// dead-node demotion).
    #[must_use]
    pub fn with_tuning(mut self, tuning: TransportTuning) -> Self {
        self.cluster = self.cluster.with_tuning(tuning);
        self
    }

    /// Installs a recovery policy (whole-run retries for transport
    /// failures, redundancy escalation for decode-radius overruns).
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// The prime moduli this configuration derives for a spec and code
    /// length.
    #[must_use]
    pub fn primes_for(&self, spec: &ProofSpec, code_len: usize) -> Vec<u64> {
        match self.prime_schedule {
            PrimeSchedule::Smallest => choose_primes(spec, code_len),
            PrimeSchedule::NttFriendly => choose_primes_ntt(spec, code_len),
        }
    }
}

/// The static, independently verifiable artefact of a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Certificate {
    /// One decoded proof per prime modulus.
    pub proofs: Vec<PrimeProof>,
    /// Code length `e` used for each prime round.
    pub code_length: usize,
    /// Degree bound `d` the proofs were decoded against.
    pub degree_bound: usize,
    /// Nodes whose broadcast symbols disagreed with the decoded codeword
    /// (byzantine corruption, identified via the error locations).
    pub identified_faulty_nodes: Vec<usize>,
    /// Nodes that contributed nothing (crashes; identified via erasures).
    pub crashed_nodes: Vec<usize>,
}

impl Certificate {
    /// Proof size: total number of field-element coefficients across all
    /// prime proofs (the paper's `K`-comparable quantity).
    #[must_use]
    pub fn proof_size(&self) -> usize {
        self.proofs.iter().map(|p| p.coefficients.len()).sum()
    }
}

/// Work accounting for a run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Number of compute nodes.
    pub nodes: usize,
    /// Prime moduli used.
    pub primes: Vec<u64>,
    /// Code length per prime.
    pub code_length: usize,
    /// Total `P`-evaluations across nodes and primes.
    pub total_evaluations: usize,
    /// Maximum per-node evaluation count (per prime, summed over primes)
    /// — the wall-clock-critical path, the paper's `E`.
    pub max_node_evaluations: usize,
    /// Spot-check evaluations spent on verification.
    pub verification_evaluations: usize,
    /// Wall-clock time of the busiest node, summed over primes.
    pub critical_path: Duration,
    /// Broadcast rounds this run took part in — exactly one per prime.
    /// A batched run shares each round across all its problems: every
    /// outcome of the batch records the *same* shared round counters
    /// (`rounds`, `symbols_broadcast`, `bytes_on_wire`), which is how
    /// the one-broadcast-per-prime-per-batch property is observable.
    pub rounds: usize,
    /// Symbols put on the broadcast medium across all rounds (a batched
    /// round carries one symbol per problem per point; equivocators pay
    /// one unicast copy per receiver, crashed senders contribute
    /// nothing) — the per-node-bandwidth quantity of the broadcast
    /// congested clique literature.
    pub symbols_broadcast: usize,
    /// Bytes the rounds' *payload* frame lines occupy in the v1 frame
    /// encoding — a deterministic traffic model computed identically on
    /// every backend (protocol headers, per-node bookkeeping lines, and
    /// crash/diagnostic frames are excluded, so a socket transport's
    /// raw byte count is somewhat higher).
    pub bytes_on_wire: u64,
    /// Wall-clock time spent inside `RsCode::decode` across all deciding
    /// nodes and primes — attributes round time to decode vs transport.
    pub decode_time: Duration,
    /// Portion of `decode_time` spent in the partial-xgcd phase of the
    /// Gao decoder (the half-GCD-accelerated step).
    pub xgcd_time: Duration,
    /// Runs served from a prepared certificate instead of fresh rounds:
    /// 1 for an [`Engine::redeem`] outcome (a `camelot-store` cache
    /// hit — `rounds == 0`), 0 for a freshly prepared one.
    pub cache_hits: usize,
    /// How many requests shared this run's broadcast rounds: the batch
    /// size for [`Engine::run_batch`] (every member records the same
    /// count), 1 for a solo [`Engine::run`], 0 when no round ran at all
    /// (a cache hit).
    pub coalesced_requests: usize,
    /// Erasure positions the first decider saw, summed over primes —
    /// crashed *and* transport-demoted nodes show up here.
    pub erasures_seen: usize,
    /// Error positions the Gao decoder corrected at the first decider,
    /// summed over primes (byzantine symbols and garbled frames).
    pub errors_corrected: usize,
    /// Whole-run transport retries the recovery policy spent.
    pub retries: u32,
    /// Redundancy escalations the recovery policy spent; nonzero means
    /// the run *degraded* — it succeeded only at a larger-than-requested
    /// fault budget (and therefore code length).
    pub degraded: u32,
    /// Nodes the transport demoted to erasures this run, with their
    /// structured causes (deduplicated by node, first cause wins).
    pub demotions: Vec<Demotion>,
}

impl RunReport {
    /// Column headers matching [`RunReport::traffic_cells`] — the shared
    /// rounds/coalescing/traffic reporting path used by every experiment
    /// table.
    #[must_use]
    pub fn traffic_headers() -> [&'static str; 9] {
        [
            "rounds",
            "coalesced",
            "cache hits",
            "symbols",
            "bytes on wire",
            "erasures",
            "errors",
            "retries",
            "degraded",
        ]
    }

    /// The round/coalescing/cache/traffic/recovery counters of this
    /// report, formatted for one table row (same order as
    /// [`RunReport::traffic_headers`]).
    #[must_use]
    pub fn traffic_cells(&self) -> [String; 9] {
        [
            self.rounds.to_string(),
            self.coalesced_requests.to_string(),
            self.cache_hits.to_string(),
            self.symbols_broadcast.to_string(),
            self.bytes_on_wire.to_string(),
            self.erasures_seen.to_string(),
            self.errors_corrected.to_string(),
            self.retries.to_string(),
            self.degraded.to_string(),
        ]
    }
}

/// Result of a successful run.
#[derive(Clone, Debug)]
pub struct CamelotOutcome<T> {
    /// The recovered answer.
    pub output: T,
    /// The static proof and fault findings.
    pub certificate: Certificate,
    /// Work accounting.
    pub report: RunReport,
}

/// Derives the code length `e = d + 1 + 2f`.
#[must_use]
pub fn code_length(spec: &ProofSpec, fault_tolerance: usize) -> usize {
    spec.degree_bound + 1 + 2 * fault_tolerance
}

/// Shared admissibility/coverage rules of both prime schedules: walk
/// `next` upward from `max(min_modulus, e + 1, 2^20)` until the product
/// of the selected primes exceeds `2^(value_bits + 1)` (one guard bit
/// for symmetric signed lifts).
fn accumulate_primes(
    spec: &ProofSpec,
    code_len: usize,
    mut next: impl FnMut(u64) -> u64,
) -> Vec<u64> {
    let floor = spec.min_modulus.max(code_len as u64 + 1).max(1 << 20);
    let mut primes = Vec::new();
    let mut bits_covered = 0u64;
    let mut cursor = floor;
    while bits_covered <= spec.value_bits + 1 {
        let p = next(cursor);
        bits_covered += 63 - u64::from(p.leading_zeros());
        cursor = p + 1;
        primes.push(p);
    }
    primes
}

/// Deterministically selects prime moduli for a spec: all primes are at
/// least `max(min_modulus, e + 1)` and their product exceeds
/// `2^(value_bits + 1)` (one guard bit for symmetric signed lifts).
#[must_use]
pub fn choose_primes(spec: &ProofSpec, code_len: usize) -> Vec<u64> {
    accumulate_primes(spec, code_len, |cursor| primes_above(cursor, 1)[0])
}

/// Transform-length exponent for an NTT-friendly schedule: `2^k` at
/// least twice the code length, covering products of two
/// codeword-degree polynomials in the Gao decoder.
#[must_use]
pub fn ntt_log_len(code_len: usize) -> u32 {
    (2 * code_len.max(1)).next_power_of_two().trailing_zeros()
}

/// Deterministically selects NTT-friendly prime moduli for a spec: the
/// same floor and coverage rules as [`choose_primes`], but every prime
/// satisfies `q ≡ 1 (mod 2^k)` for `k = `[`ntt_log_len`]`(code_len)`, so
/// the codeword pipeline multiplies polynomials through the NTT.
#[must_use]
pub fn choose_primes_ntt(spec: &ProofSpec, code_len: usize) -> Vec<u64> {
    let k = ntt_log_len(code_len);
    accumulate_primes(spec, code_len, |cursor| ntt_prime(cursor, k).0)
}

/// The Camelot engine.
#[derive(Clone)]
pub struct Engine {
    config: EngineConfig,
    /// A shared transport overriding `config.cluster.transport()` —
    /// how a long-lived service reuses one persistent worker pool
    /// across runs. `None` builds a fresh backend per run (the
    /// historical behaviour).
    transport: Option<Arc<dyn Transport + Send + Sync>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.config)
            .field("transport", &self.transport.as_ref().map(|t| t.name()))
            .finish()
    }
}

impl Engine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: EngineConfig) -> Self {
        Engine { config, transport: None }
    }

    /// Creates an engine whose rounds run on `transport` instead of a
    /// backend built fresh from the cluster config — the hook that lets
    /// `camelot-serve` share one persistent worker pool across all
    /// requests (and clones of this engine).
    #[must_use]
    pub fn with_transport(
        config: EngineConfig,
        transport: Arc<dyn Transport + Send + Sync>,
    ) -> Self {
        Engine { config, transport: Some(transport) }
    }

    /// Convenience: sequential engine with `nodes` nodes and fault budget
    /// `f`.
    #[must_use]
    pub fn sequential(nodes: usize, fault_tolerance: usize) -> Self {
        Engine::new(EngineConfig::sequential(nodes, fault_tolerance))
    }

    /// Convenience: threaded engine with `nodes` nodes and fault budget
    /// `f`.
    #[must_use]
    pub fn parallel(nodes: usize, fault_tolerance: usize) -> Self {
        Engine::new(EngineConfig::parallel(nodes, fault_tolerance))
    }

    /// Convenience: [`EngineConfig::auto`] engine — threaded in release
    /// builds, sequential in debug builds.
    #[must_use]
    pub fn auto(nodes: usize, fault_tolerance: usize) -> Self {
        Engine::new(EngineConfig::auto(nodes, fault_tolerance))
    }

    /// Runs the full prepare → correct → check → recover pipeline.
    ///
    /// # Errors
    ///
    /// * [`CamelotError::BadConfiguration`] for impossible parameters;
    /// * [`CamelotError::DecodeFailed`] / [`CamelotError::DecodeDisagreement`]
    ///   when the fault plan exceeds the decoding radius;
    /// * [`CamelotError::VerificationFailed`] if a spot check rejects;
    /// * recovery errors from the problem itself.
    pub fn run<P: CamelotProblem>(
        &self,
        problem: &P,
    ) -> Result<CamelotOutcome<P::Output>, CamelotError> {
        let spec = problem.spec();
        let mut outcomes = self.prepare(&[problem], &[spec], &spec)?;
        Ok(outcomes.pop().expect("one problem yields one outcome"))
    }

    /// Runs a batch of problems through the pipeline, amortizing the
    /// shared setup — prime selection and code-length derivation happen
    /// once for the whole batch, against the *joint* proof spec (maximum
    /// degree bound, value bits, and modulus floor across the batch) —
    /// and sharing the cluster rounds: for each prime, **one**
    /// multi-polynomial broadcast round evaluates every problem of the
    /// batch at every point (one symbol per problem per point per
    /// frame), so a batch of `n` problems costs exactly one broadcast
    /// round per prime, not `n`.
    ///
    /// Every problem is decoded (against its own degree bound, from its
    /// own lane of the shared round), spot-checked, and recovered
    /// exactly as in [`Engine::run`]; the recovered outputs are
    /// identical to per-problem runs. The certificates may use larger
    /// moduli / code length than a solo run would, since the parameters
    /// cover the whole batch. Each outcome's [`RunReport`] records the
    /// shared round counters (see [`RunReport::rounds`]).
    ///
    /// # Errors
    ///
    /// The same failure modes as [`Engine::run`]; the first failure
    /// aborts the batch.
    pub fn run_batch<P: CamelotProblem>(
        &self,
        problems: &[P],
    ) -> Result<Vec<CamelotOutcome<P::Output>>, CamelotError> {
        if problems.is_empty() {
            return Ok(Vec::new());
        }
        let specs: Vec<ProofSpec> = problems.iter().map(CamelotProblem::spec).collect();
        let joint = ProofSpec::new(
            specs.iter().map(|s| s.degree_bound).max().expect("nonempty batch"),
            specs.iter().map(|s| s.min_modulus).max().expect("nonempty batch"),
            specs.iter().map(|s| s.value_bits).max().expect("nonempty batch"),
        );
        let refs: Vec<&P> = problems.iter().collect();
        self.prepare(&refs, &specs, &joint)
    }

    /// The recovery wrapper around [`Engine::run_rounds`]: derives the
    /// code length and primes from the joint spec and the *current*
    /// fault budget, then applies the configured [`RecoveryPolicy`] —
    /// transport failures are retried wholesale, decode-radius overruns
    /// escalate the fault budget (fresh code length and primes) up to
    /// the policy bound. Each successful outcome's report records the
    /// retries and escalations it took.
    fn prepare<P: CamelotProblem>(
        &self,
        problems: &[&P],
        specs: &[ProofSpec],
        joint: &ProofSpec,
    ) -> Result<Vec<CamelotOutcome<P::Output>>, CamelotError> {
        let policy = self.config.recovery;
        let mut retries = 0u32;
        let mut escalations = 0u32;
        loop {
            let f = self.config.fault_tolerance + escalations as usize * policy.escalation_step;
            let e = code_length(joint, f);
            let primes = self.config.primes_for(joint, e);
            match self.run_rounds(problems, specs, &primes, e) {
                Ok(mut outcomes) => {
                    for outcome in &mut outcomes {
                        outcome.report.retries = retries;
                        outcome.report.degraded = escalations;
                    }
                    return Ok(outcomes);
                }
                Err(CamelotError::TransportFailed { .. }) if retries < policy.max_retries => {
                    retries += 1;
                }
                Err(
                    CamelotError::DecodeFailed { .. }
                    | CamelotError::DecodeDisagreement { .. }
                    | CamelotError::VerificationFailed { .. },
                ) if escalations < policy.max_escalations && policy.escalation_step > 0 => {
                    escalations += 1;
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Redeems a previously prepared certificate for `problem` without
    /// running any broadcast round — the cache-hit path of
    /// `camelot-store`. The certificate is *not* trusted: every prime
    /// proof is structurally validated and spot-checked against fresh
    /// evaluations of `P` (the configured `verification_trials` per
    /// prime, exactly as after a live decode), and only then is the
    /// answer recovered by CRT. The outcome's report records
    /// `rounds == 0` and `cache_hits == 1`.
    ///
    /// # Errors
    ///
    /// * [`CamelotError::MalformedProof`] when the certificate does not
    ///   structurally fit the problem's spec (wrong degree bound, no or
    ///   duplicate moduli, insufficient CRT coverage);
    /// * [`CamelotError::VerificationFailed`] if a spot check rejects;
    /// * recovery errors from the problem itself.
    pub fn redeem<P: CamelotProblem>(
        &self,
        problem: &P,
        certificate: &Certificate,
    ) -> Result<CamelotOutcome<P::Output>, CamelotError> {
        let spec = problem.spec();
        if certificate.degree_bound != spec.degree_bound {
            return Err(CamelotError::MalformedProof {
                reason: format!(
                    "certificate decoded against degree bound {}, problem requires {}",
                    certificate.degree_bound, spec.degree_bound
                ),
            });
        }
        if certificate.proofs.is_empty() {
            return Err(CamelotError::MalformedProof {
                reason: "certificate carries no prime proofs".into(),
            });
        }
        let mut moduli: Vec<u64> = certificate.proofs.iter().map(|p| p.modulus).collect();
        moduli.sort_unstable();
        moduli.dedup();
        if moduli.len() != certificate.proofs.len() {
            return Err(CamelotError::MalformedProof {
                reason: "certificate repeats a prime modulus".into(),
            });
        }
        let bits: u64 =
            certificate.proofs.iter().map(|p| 63 - u64::from(p.modulus.leading_zeros())).sum();
        if bits <= spec.value_bits + 1 {
            return Err(CamelotError::MalformedProof {
                reason: format!(
                    "certificate moduli cover {bits} bits, spec needs more than {}",
                    spec.value_bits + 1
                ),
            });
        }

        let mut report = RunReport {
            nodes: self.config.cluster.nodes,
            primes: certificate.proofs.iter().map(|p| p.modulus).collect(),
            code_length: certificate.code_length,
            cache_hits: 1,
            ..RunReport::default()
        };
        for proof in &certificate.proofs {
            let verdict = crate::verify::spot_check(
                problem,
                proof,
                self.config.verification_trials,
                self.config.seed,
            )?;
            report.verification_evaluations += verdict.trials_run;
            if !verdict.accepted {
                return Err(CamelotError::VerificationFailed { modulus: proof.modulus });
            }
        }
        let output = problem.recover(&certificate.proofs)?;
        Ok(CamelotOutcome { output, certificate: certificate.clone(), report })
    }

    /// The prepare → correct → check → recover pipeline, with the prime
    /// moduli and code length already derived: one broadcast round per
    /// prime carries all problems' evaluations through the configured
    /// transport, then every problem decodes, spot-checks, and recovers
    /// from its own lane of the shared rounds.
    fn run_rounds<P: CamelotProblem>(
        &self,
        problems: &[&P],
        specs: &[ProofSpec],
        primes: &[u64],
        e: usize,
    ) -> Result<Vec<CamelotOutcome<P::Output>>, CamelotError> {
        let plan = self
            .config
            .plan
            .clone()
            .unwrap_or_else(|| FaultPlan::all_honest(self.config.cluster.nodes));
        if plan.nodes() != self.config.cluster.nodes {
            return Err(CamelotError::BadConfiguration {
                reason: format!(
                    "fault plan covers {} nodes, cluster has {}",
                    plan.nodes(),
                    self.config.cluster.nodes
                ),
            });
        }
        if primes.iter().any(|&q| (e as u64) > q) {
            return Err(CamelotError::BadConfiguration {
                reason: format!("code length {e} exceeds a modulus"),
            });
        }

        let honest: Vec<usize> = (0..plan.nodes()).filter(|&n| !plan.kind(n).is_faulty()).collect();
        if honest.is_empty() {
            return Err(CamelotError::BadConfiguration {
                reason: "no honest node left to decode".into(),
            });
        }

        // The engine-level shared transport (a service's persistent
        // worker pool) wins over a backend built fresh for this run.
        let fallback;
        let transport: &dyn Transport = match &self.transport {
            Some(shared) => &**shared,
            None => {
                fallback = self.config.cluster.transport();
                &*fallback
            }
        };
        let mut accs: Vec<ProblemAcc> = specs
            .iter()
            .map(|_| ProblemAcc {
                proofs: Vec::with_capacity(primes.len()),
                faulty: BTreeSet::new(),
                crashed: BTreeSet::new(),
                report: RunReport {
                    nodes: self.config.cluster.nodes,
                    primes: primes.to_vec(),
                    code_length: e,
                    coalesced_requests: specs.len(),
                    ..RunReport::default()
                },
            })
            .collect();

        for &q in primes {
            let field = PrimeField::new_unchecked(q);
            // Evaluation schedule: consecutive points by default; the
            // first `e` powers of a root of unity under the NTT-friendly
            // schedule, making encode/decode transform-backed. Every
            // node derives the same points from the common input.
            let code = match self.config.prime_schedule {
                PrimeSchedule::Smallest => RsCode::consecutive(&field, e),
                PrimeSchedule::NttFriendly => RsCode::roots_of_unity(&field, e)
                    .unwrap_or_else(|| RsCode::consecutive(&field, e)),
            };
            let points = code.points().to_vec();
            let evaluators: Vec<Box<dyn Evaluate + '_>> =
                problems.iter().map(|p| p.evaluator(&field)).collect();
            let round_eval = ProblemRound { evaluators: &evaluators };
            let spec = RoundSpec { field: &field, points: &points, plan: &plan };
            // One broadcast round per prime for the whole batch.
            let round =
                transport.run(&spec, &round_eval).map_err(|err| CamelotError::TransportFailed {
                    reason: format!("{} backend: {err}", transport.name()),
                })?;
            debug_assert_eq!(round.broadcasts.len(), problems.len());
            // Transport-demoted nodes contributed only synthesized
            // erasure frames — they cannot decide (they may not even be
            // alive). Their symbols are recovered as erasures exactly
            // like algebraic crashes.
            let deciding: Vec<usize> = honest
                .iter()
                .copied()
                .filter(|&n| !round.demotions.iter().any(|d| d.node == n))
                .collect();
            if deciding.is_empty() {
                return Err(CamelotError::TransportFailed {
                    reason: format!(
                        "{} backend: every honest node was demoted ({})",
                        transport.name(),
                        round
                            .demotions
                            .iter()
                            .map(Demotion::to_string)
                            .collect::<Vec<_>>()
                            .join("; ")
                    ),
                });
            }
            for (i, broadcast) in round.broadcasts.iter().enumerate() {
                let acc = &mut accs[i];
                acc.report.total_evaluations += broadcast.total_evaluations();
                acc.report.max_node_evaluations += broadcast.max_node_evaluations();
                acc.report.critical_path +=
                    broadcast.stats.iter().map(|s| s.elapsed).max().unwrap_or_default();
                acc.report.rounds += 1;
                acc.report.symbols_broadcast += round.traffic.symbols_broadcast;
                acc.report.bytes_on_wire += round.traffic.bytes_on_wire;
                for demotion in &round.demotions {
                    if !acc.report.demotions.iter().any(|d| d.node == demotion.node) {
                        acc.report.demotions.push(*demotion);
                    }
                }
            }
            // Per-problem lane decodes are independent (each touches only
            // its own accumulator); split the batch into contiguous
            // groups across scoped threads, capped by the unified
            // `CAMELOT_THREADS` budget. Results are consumed in batch
            // order, so the surfaced error (if any) is the one the
            // sequential loop would have hit first.
            let workers = worker_count(round.broadcasts.len());
            let lane = |i: usize, broadcast, acc: &mut ProblemAcc| {
                self.decode_and_check(
                    &code,
                    &field,
                    broadcast,
                    specs[i].degree_bound,
                    &deciding,
                    evaluators[i].as_ref(),
                    acc,
                )
            };
            let proofs: Vec<Result<PrimeProof, CamelotError>> = if workers >= 2 {
                let group = round.broadcasts.len().div_ceil(workers);
                std::thread::scope(|s| {
                    let handles: Vec<_> = round
                        .broadcasts
                        .chunks(group)
                        .zip(accs.chunks_mut(group))
                        .enumerate()
                        .map(|(g, (lanes, lane_accs))| {
                            let lane = &lane;
                            s.spawn(move || {
                                lanes
                                    .iter()
                                    .zip(lane_accs.iter_mut())
                                    .enumerate()
                                    .map(|(off, (b, acc))| lane(g * group + off, b, acc))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| match h.join() {
                            Ok(group_proofs) => group_proofs,
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect()
                })
            } else {
                round
                    .broadcasts
                    .iter()
                    .zip(accs.iter_mut())
                    .enumerate()
                    .map(|(i, (b, acc))| lane(i, b, acc))
                    .collect()
            };
            for (acc, proof) in accs.iter_mut().zip(proofs) {
                acc.proofs.push(proof?);
            }
        }

        problems
            .iter()
            .zip(specs)
            .zip(accs)
            .map(|((problem, spec), acc)| {
                let certificate = Certificate {
                    proofs: acc.proofs.clone(),
                    code_length: e,
                    degree_bound: spec.degree_bound,
                    identified_faulty_nodes: acc.faulty.into_iter().collect(),
                    crashed_nodes: acc.crashed.into_iter().collect(),
                };
                let output = problem.recover(&acc.proofs)?;
                Ok(CamelotOutcome { output, certificate, report: acc.report })
            })
            .collect()
    }

    /// Decode (at every deciding node), agree, and spot-check one
    /// problem's lane of one prime's broadcast (§1.3 steps 2–3).
    #[allow(clippy::too_many_arguments)]
    fn decode_and_check(
        &self,
        code: &RsCode,
        field: &PrimeField,
        broadcast: &Broadcast,
        degree_bound: usize,
        deciding: &[usize],
        evaluator: &dyn Evaluate,
        acc: &mut ProblemAcc,
    ) -> Result<PrimeProof, CamelotError> {
        let q = field.modulus();
        // Every deciding node (honest minus transport-demoted) runs the
        // Gao decoder on its own view.
        let deciders: &[usize] =
            if self.config.decode_at_all_nodes { deciding } else { &deciding[..1] };
        let mut agreed: Option<PrimeProof> = None;
        for &node in deciders {
            let view = broadcast.view_for(node);
            let decode_started = Instant::now();
            let (decoded, profile) = code
                .decode_profiled(field, &view, degree_bound)
                .map_err(|source| CamelotError::DecodeFailed { modulus: q, node, source })?;
            acc.report.decode_time += decode_started.elapsed();
            acc.report.xgcd_time += profile.xgcd;
            // Recovery counters attribute to the first decider only —
            // with full decoding every honest node sees (roughly) the
            // same noise and the counters would multiply by `K`.
            if agreed.is_none() {
                acc.report.erasures_seen += decoded.erasure_positions.len();
                acc.report.errors_corrected += decoded.error_positions.len();
            }
            for &pos in &decoded.error_positions {
                acc.faulty.insert(broadcast.assignment[pos]);
            }
            for &pos in &decoded.erasure_positions {
                acc.crashed.insert(broadcast.assignment[pos]);
            }
            let proof = PrimeProof { modulus: q, coefficients: decoded.poly.into_coeffs() };
            match &agreed {
                None => agreed = Some(proof),
                Some(prev) if *prev != proof => {
                    return Err(CamelotError::DecodeDisagreement { modulus: q })
                }
                Some(_) => {}
            }
        }
        let proof = agreed.expect("at least one decider ran");

        // Spot-check verification (§1.3 step 3): random x0, compare
        // a fresh evaluation of P against Horner on the coefficients.
        let mut rng = SplitMix64::new(self.config.seed ^ q);
        for _ in 0..self.config.verification_trials {
            let x0 = field.sample(&mut rng);
            acc.report.verification_evaluations += 1;
            if evaluator.eval(x0) != proof.eval(x0) {
                return Err(CamelotError::VerificationFailed { modulus: q });
            }
        }
        Ok(proof)
    }
}

/// Per-problem accumulator across the shared rounds.
struct ProblemAcc {
    proofs: Vec<PrimeProof>,
    faulty: BTreeSet<usize>,
    crashed: BTreeSet<usize>,
    report: RunReport,
}

/// One prime's round for a slate of problems: polynomial `i` of the
/// round is problem `i`'s proof polynomial mod `q`.
struct ProblemRound<'a> {
    evaluators: &'a [Box<dyn Evaluate + 'a>],
}

impl RoundEval for ProblemRound<'_> {
    fn width(&self) -> usize {
        self.evaluators.len()
    }

    fn eval(&self, poly: usize, x: u64) -> u64 {
        self.evaluators[poly].eval(x)
    }

    fn programs(&self) -> Option<Vec<EvalProgram>> {
        self.evaluators.iter().map(|e| e.program()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Evaluate;
    use camelot_cluster::FaultKind;
    use camelot_ff::{crt_u, Residue};

    /// Toy problem: P(x) = (c + x)^3 mod q for a hidden constant c; the
    /// "answer" is P(0) = c^3 recovered over the integers.
    struct Cube {
        c: u64,
    }

    impl CamelotProblem for Cube {
        type Output = u128;

        fn spec(&self) -> ProofSpec {
            ProofSpec::new(3, 1 << 20, 96)
        }

        fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
            let f = *field;
            let c = f.reduce(self.c);
            Box::new(move |x: u64| {
                let s = f.add(c, f.reduce(x));
                f.mul(f.mul(s, s), s)
            })
        }

        fn recover(&self, proofs: &[PrimeProof]) -> Result<u128, CamelotError> {
            let residues: Vec<Residue> =
                proofs.iter().map(|p| Residue { modulus: p.modulus, value: p.eval(0) }).collect();
            crt_u(&residues).to_u128().ok_or_else(|| CamelotError::RecoveryFailed {
                reason: "value exceeded u128".into(),
            })
        }
    }

    #[test]
    fn clean_run_recovers_answer() {
        let problem = Cube { c: 1 << 30 };
        let outcome = Engine::sequential(4, 3).run(&problem).unwrap();
        assert_eq!(outcome.output, 1u128 << 90);
        assert!(outcome.certificate.identified_faulty_nodes.is_empty());
        assert!(outcome.certificate.crashed_nodes.is_empty());
        assert_eq!(outcome.certificate.code_length, 3 + 1 + 6);
        // 96-bit value needs multiple ~20+-bit primes; at least 2.
        assert!(outcome.report.primes.len() >= 2);
    }

    #[test]
    fn byzantine_nodes_are_identified_and_tolerated() {
        let problem = Cube { c: 12345 };
        let plan = FaultPlan::with_faults(
            10,
            &[(2, FaultKind::Corrupt { seed: 1 }), (7, FaultKind::Crash)],
        );
        let config = EngineConfig::sequential(10, 4).with_plan(plan).with_full_decoding();
        let outcome = Engine::new(config).run(&problem).unwrap();
        assert_eq!(outcome.output, 12345u128.pow(3));
        assert_eq!(outcome.certificate.identified_faulty_nodes, vec![2]);
        assert_eq!(outcome.certificate.crashed_nodes, vec![7]);
    }

    #[test]
    fn too_many_faults_fail_decoding() {
        let problem = Cube { c: 5 };
        // e = 4 + 2: radius (6-4)/2 = 1 error; corrupt 5 of 6 nodes'
        // slices (each node owns one point).
        let plan = FaultPlan::random_corrupt(6, 5, 3);
        let config = EngineConfig::sequential(6, 1).with_plan(plan);
        let err = Engine::new(config).run(&problem).unwrap_err();
        match err {
            CamelotError::DecodeFailed { .. } | CamelotError::VerificationFailed { .. } => {}
            other => panic!("expected decode/verification failure, got {other}"),
        }
    }

    #[test]
    fn escalation_recovers_beyond_the_requested_radius() {
        let problem = Cube { c: 31 };
        // f = 1: e = 3 + 1 + 2 = 6, slices (2,2,1,1) — two crashed
        // nodes own 4 erasures, over the erasure radius e - d - 1 = 2.
        let plan = FaultPlan::with_faults(4, &[(0, FaultKind::Crash), (1, FaultKind::Crash)]);
        let strict = EngineConfig::sequential(4, 1).with_plan(plan.clone());
        assert!(matches!(
            Engine::new(strict.clone()).run(&problem),
            Err(CamelotError::DecodeFailed { .. })
        ));
        // One escalation step: f = 2, e = 8, slices (2,2,2,2) — the
        // same 4 erasures now fit the radius e - d - 1 = 4.
        let outcome =
            Engine::new(strict.with_recovery(RecoveryPolicy::escalating(2))).run(&problem).unwrap();
        assert_eq!(outcome.output, 31u128.pow(3));
        assert_eq!(outcome.report.degraded, 1, "one escalation spent");
        assert_eq!(outcome.report.retries, 0);
        assert_eq!(outcome.certificate.code_length, 3 + 1 + 4);
        assert_eq!(outcome.certificate.crashed_nodes, vec![0, 1]);
        assert_eq!(outcome.report.erasures_seen, 4 * outcome.report.primes.len());
    }

    #[test]
    fn recovery_counters_flow_into_traffic_cells() {
        let problem = Cube { c: 3 };
        let outcome = Engine::sequential(4, 1).run(&problem).unwrap();
        let cells = outcome.report.traffic_cells();
        assert_eq!(RunReport::traffic_headers().len(), cells.len());
        assert_eq!(&cells[5..], ["0", "0", "0", "0"], "clean run: all recovery counters zero");
    }

    #[test]
    fn equivocating_node_cannot_split_honest_consensus() {
        let problem = Cube { c: 999 };
        let plan = FaultPlan::with_faults(8, &[(3, FaultKind::Equivocate { seed: 9 })]);
        let config = EngineConfig::sequential(8, 2).with_plan(plan).with_full_decoding();
        let outcome = Engine::new(config).run(&problem).unwrap();
        assert_eq!(outcome.output, 999u128.pow(3));
        // Every honest node sees node 3's (different) lies as errors.
        assert_eq!(outcome.certificate.identified_faulty_nodes, vec![3]);
    }

    #[test]
    fn plan_size_mismatch_is_rejected() {
        let problem = Cube { c: 1 };
        let config = EngineConfig::sequential(4, 1).with_plan(FaultPlan::all_honest(5));
        assert!(matches!(
            Engine::new(config).run(&problem),
            Err(CamelotError::BadConfiguration { .. })
        ));
    }

    #[test]
    fn report_accounts_for_all_work() {
        let problem = Cube { c: 2 };
        let outcome = Engine::sequential(5, 2).run(&problem).unwrap();
        let e = outcome.report.code_length;
        let primes = outcome.report.primes.len();
        assert_eq!(outcome.report.total_evaluations, e * primes);
        assert_eq!(outcome.report.verification_evaluations, 2 * primes);
        assert!(outcome.report.max_node_evaluations >= e.div_ceil(5) * primes);
    }

    #[test]
    fn redeem_serves_certificate_with_zero_rounds() {
        let problem = Cube { c: 4321 };
        let engine = Engine::sequential(4, 2);
        let prepared = engine.run(&problem).unwrap();
        assert_eq!(prepared.report.cache_hits, 0);
        assert_eq!(prepared.report.coalesced_requests, 1);
        assert!(prepared.report.rounds > 0);

        let redeemed = engine.redeem(&problem, &prepared.certificate).unwrap();
        assert_eq!(redeemed.output, prepared.output);
        assert_eq!(redeemed.certificate, prepared.certificate);
        assert_eq!(redeemed.report.rounds, 0);
        assert_eq!(redeemed.report.cache_hits, 1);
        assert_eq!(redeemed.report.coalesced_requests, 0);
        assert_eq!(redeemed.report.verification_evaluations, 2 * prepared.certificate.proofs.len());
    }

    #[test]
    fn redeem_rejects_tampered_and_misfit_certificates() {
        let problem = Cube { c: 99 };
        let engine = Engine::sequential(4, 2);
        let prepared = engine.run(&problem).unwrap();

        // A flipped coefficient must fail the spot check.
        let mut tampered = prepared.certificate.clone();
        tampered.proofs[0].coefficients[0] ^= 1;
        assert!(matches!(
            engine.redeem(&problem, &tampered),
            Err(CamelotError::VerificationFailed { .. })
        ));

        // A certificate for a different degree bound is structurally
        // rejected before any randomness is spent.
        let mut misfit = prepared.certificate.clone();
        misfit.degree_bound += 1;
        assert!(matches!(
            engine.redeem(&problem, &misfit),
            Err(CamelotError::MalformedProof { .. })
        ));

        // Dropping proofs breaks CRT coverage.
        let mut thin = prepared.certificate.clone();
        thin.proofs.truncate(1);
        assert!(matches!(engine.redeem(&problem, &thin), Err(CamelotError::MalformedProof { .. })));
    }

    #[test]
    fn batch_reports_coalesced_requests() {
        let problems = vec![Cube { c: 11 }, Cube { c: 22 }, Cube { c: 33 }];
        let outcomes = Engine::sequential(4, 2).run_batch(&problems).unwrap();
        for outcome in &outcomes {
            assert_eq!(outcome.report.coalesced_requests, 3);
            assert_eq!(outcome.report.cache_hits, 0);
        }
    }

    #[test]
    fn ntt_schedule_recovers_answer_with_friendly_primes() {
        let problem = Cube { c: 777 };
        let config = EngineConfig::sequential(4, 3).with_ntt_primes();
        let outcome = Engine::new(config).run(&problem).unwrap();
        assert_eq!(outcome.output, 777u128.pow(3));
        let k = ntt_log_len(outcome.report.code_length);
        for &q in &outcome.report.primes {
            assert_eq!((q - 1) % (1u64 << k), 0, "prime {q} is not 1 mod 2^{k}");
        }
        // Enough CRT coverage, exactly like the default schedule.
        let bits: u64 =
            outcome.report.primes.iter().map(|q| 63 - u64::from(q.leading_zeros())).sum();
        assert!(bits > 97);
    }

    #[test]
    fn choose_primes_ntt_is_deterministic_and_admissible() {
        let spec = ProofSpec::new(10, 1 << 22, 150);
        let primes = choose_primes_ntt(&spec, 300);
        assert_eq!(primes, choose_primes_ntt(&spec, 300));
        let k = ntt_log_len(300); // 2^k = 1024
        assert_eq!(1u64 << k, 1024);
        for &q in &primes {
            assert!(q > 1 << 22);
            assert!(camelot_ff::is_prime_u64(q));
            assert_eq!((q - 1) % (1 << k), 0);
        }
        let mut sorted = primes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), primes.len(), "moduli must be distinct");
    }

    #[test]
    fn choose_primes_respects_floor_and_bits() {
        let spec = ProofSpec::new(10, 1 << 30, 200);
        let primes = choose_primes(&spec, 100);
        assert!(primes.iter().all(|&q| q > 1 << 30));
        let bits: u64 = primes.iter().map(|q| 63 - u64::from(q.leading_zeros())).sum();
        assert!(bits > 201);
        // Deterministic.
        assert_eq!(primes, choose_primes(&spec, 100));
    }
}
