//! A portable wire format for certificates.
//!
//! The paper's proof is a *static* object: “a static, independently
//! veriﬁable proof that the computation succeeded” (§1.2). This module
//! serializes a [`Certificate`] to a plain-text format any party can
//! archive, ship, and re-verify later with [`crate::spot_check`] —
//! without trusting the cluster that produced it.
//!
//! Format (line-oriented, ASCII):
//!
//! ```text
//! camelot-certificate v1
//! code-length <e>
//! degree-bound <d>
//! faulty <node> <node> ...
//! crashed <node> ...
//! proof <q> <p0> <p1> ... <pd>
//! proof <q'> ...
//! end
//! ```

use crate::engine::Certificate;
use crate::error::CamelotError;
use crate::problem::PrimeProof;

/// Magic header line.
const HEADER: &str = "camelot-certificate v1";

impl Certificate {
    /// Serializes to the v1 text wire format.
    #[must_use]
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("code-length {}\n", self.code_length));
        out.push_str(&format!("degree-bound {}\n", self.degree_bound));
        out.push_str("faulty");
        for node in &self.identified_faulty_nodes {
            out.push_str(&format!(" {node}"));
        }
        out.push('\n');
        out.push_str("crashed");
        for node in &self.crashed_nodes {
            out.push_str(&format!(" {node}"));
        }
        out.push('\n');
        for proof in &self.proofs {
            out.push_str(&format!("proof {}", proof.modulus));
            for &c in &proof.coefficients {
                out.push_str(&format!(" {c}"));
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Parses the v1 text wire format.
    ///
    /// # Errors
    ///
    /// Returns [`CamelotError::MalformedProof`] for any structural
    /// violation: wrong header, missing sections, non-numeric fields,
    /// out-of-range coefficients, or degrees above the recorded bound.
    pub fn from_wire(text: &str) -> Result<Certificate, CamelotError> {
        let malformed = |reason: &str| CamelotError::MalformedProof { reason: reason.to_string() };
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(malformed("missing certificate header"));
        }
        let mut code_length: Option<usize> = None;
        let mut degree_bound: Option<usize> = None;
        let mut faulty: Option<Vec<usize>> = None;
        let mut crashed: Option<Vec<usize>> = None;
        let mut proofs: Vec<PrimeProof> = Vec::new();
        let mut ended = false;
        for line in lines {
            let mut parts = line.split_ascii_whitespace();
            match parts.next() {
                Some("code-length") => {
                    code_length = Some(parse_usize(parts.next(), "code-length")?);
                }
                Some("degree-bound") => {
                    degree_bound = Some(parse_usize(parts.next(), "degree-bound")?);
                }
                Some("faulty") => {
                    faulty = Some(parse_usize_list(parts)?);
                }
                Some("crashed") => {
                    crashed = Some(parse_usize_list(parts)?);
                }
                Some("proof") => {
                    let modulus = parts
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or_else(|| malformed("proof line missing modulus"))?;
                    let mut coefficients = Vec::new();
                    for tok in parts {
                        let c =
                            tok.parse::<u64>().map_err(|_| malformed("non-numeric coefficient"))?;
                        if c >= modulus {
                            return Err(malformed("coefficient out of field range"));
                        }
                        coefficients.push(c);
                    }
                    proofs.push(PrimeProof { modulus, coefficients });
                }
                Some("end") => {
                    ended = true;
                    break;
                }
                Some(other) => {
                    return Err(CamelotError::MalformedProof {
                        reason: format!("unknown section {other:?}"),
                    });
                }
                None => {} // blank line tolerated
            }
        }
        if !ended {
            return Err(malformed("missing end marker"));
        }
        let code_length = code_length.ok_or_else(|| malformed("missing code-length"))?;
        let degree_bound = degree_bound.ok_or_else(|| malformed("missing degree-bound"))?;
        if proofs.is_empty() {
            return Err(malformed("certificate carries no proofs"));
        }
        for proof in &proofs {
            if proof.coefficients.len() > degree_bound + 1 {
                return Err(malformed("proof degree exceeds the recorded bound"));
            }
        }
        Ok(Certificate {
            proofs,
            code_length,
            degree_bound,
            identified_faulty_nodes: faulty.ok_or_else(|| malformed("missing faulty section"))?,
            crashed_nodes: crashed.ok_or_else(|| malformed("missing crashed section"))?,
        })
    }
}

fn parse_usize(tok: Option<&str>, what: &str) -> Result<usize, CamelotError> {
    tok.and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| CamelotError::MalformedProof { reason: format!("bad {what} field") })
}

fn parse_usize_list<'a>(parts: impl Iterator<Item = &'a str>) -> Result<Vec<usize>, CamelotError> {
    parts
        .map(|tok| {
            tok.parse::<usize>().map_err(|_| CamelotError::MalformedProof {
                reason: "non-numeric node id".to_string(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        Certificate {
            proofs: vec![
                PrimeProof { modulus: 101, coefficients: vec![1, 2, 3] },
                PrimeProof { modulus: 103, coefficients: vec![9, 0, 55] },
            ],
            code_length: 9,
            degree_bound: 2,
            identified_faulty_nodes: vec![3, 7],
            crashed_nodes: vec![],
        }
    }

    #[test]
    fn roundtrip() {
        let cert = sample();
        let wire = cert.to_wire();
        assert_eq!(Certificate::from_wire(&wire).unwrap(), cert);
    }

    #[test]
    fn roundtrip_empty_sections_and_zero_coeffs() {
        let cert = Certificate {
            proofs: vec![PrimeProof { modulus: 2, coefficients: vec![] }],
            code_length: 1,
            degree_bound: 0,
            identified_faulty_nodes: vec![],
            crashed_nodes: vec![0, 1, 2],
        };
        assert_eq!(Certificate::from_wire(&cert.to_wire()).unwrap(), cert);
    }

    #[test]
    fn header_required() {
        assert!(matches!(
            Certificate::from_wire("nope\nend\n"),
            Err(CamelotError::MalformedProof { .. })
        ));
    }

    #[test]
    fn truncated_certificate_rejected() {
        let wire = sample().to_wire();
        let truncated = &wire[..wire.len() - 4]; // drop "end\n"
        assert!(matches!(
            Certificate::from_wire(truncated),
            Err(CamelotError::MalformedProof { .. })
        ));
    }

    #[test]
    fn out_of_range_coefficient_rejected() {
        let wire = sample().to_wire().replace("proof 101 1 2 3", "proof 101 1 2 200");
        assert!(matches!(Certificate::from_wire(&wire), Err(CamelotError::MalformedProof { .. })));
    }

    #[test]
    fn degree_violation_rejected() {
        let wire = sample().to_wire().replace("proof 101 1 2 3", "proof 101 1 2 3 4 5");
        assert!(matches!(Certificate::from_wire(&wire), Err(CamelotError::MalformedProof { .. })));
    }

    #[test]
    fn garbage_section_rejected() {
        let wire = sample().to_wire().replace("crashed", "cursed");
        assert!(matches!(Certificate::from_wire(&wire), Err(CamelotError::MalformedProof { .. })));
    }
}
