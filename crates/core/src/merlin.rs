//! The Merlin–Arthur reading of a Camelot algorithm (§1.5).
//!
//! *“Each Camelot algorithm defines, as is, a Merlin–Arthur protocol”*:
//! should Merlin materialize, he supplies the proof coefficients
//! directly — here by evaluating `P` at `d + 1` points and interpolating,
//! i.e. what a single all-powerful prover would broadcast — and Arthur
//! verifies with the same randomized spot check each Knight would run,
//! at the cost of one evaluation of `P` per trial.

use crate::engine::{choose_primes, code_length};
use crate::error::CamelotError;
use crate::problem::{CamelotProblem, PrimeProof};
use crate::verify::spot_check;
use camelot_ff::PrimeField;
use camelot_poly::interpolate_consecutive;

/// Merlin's side: produces the per-prime proofs a correct prover would
/// send (sequentially, no cluster, no redundancy — Merlin does not fail).
///
/// # Errors
///
/// Returns [`CamelotError::BadConfiguration`] if the spec demands more
/// interpolation points than a modulus admits.
pub fn merlin_prove<P: CamelotProblem>(problem: &P) -> Result<Vec<PrimeProof>, CamelotError> {
    let spec = problem.spec();
    let primes = choose_primes(&spec, code_length(&spec, 0));
    let mut proofs = Vec::with_capacity(primes.len());
    for &q in &primes {
        if spec.degree_bound as u64 + 1 > q {
            return Err(CamelotError::BadConfiguration {
                reason: format!(
                    "degree bound {} needs more points than Z_{q} has",
                    spec.degree_bound
                ),
            });
        }
        let field = PrimeField::new_unchecked(q);
        let evaluator = problem.evaluator(&field);
        let values: Vec<u64> = (0..=spec.degree_bound as u64).map(|x| evaluator.eval(x)).collect();
        let poly = interpolate_consecutive(&field, &values);
        proofs.push(PrimeProof { modulus: q, coefficients: poly.into_coeffs() });
    }
    Ok(proofs)
}

/// Arthur's side: structural checks plus `trials` random spot checks per
/// prime proof.
///
/// # Errors
///
/// * [`CamelotError::MalformedProof`] if the proof set does not match the
///   spec's deterministic prime schedule;
/// * [`CamelotError::VerificationFailed`] if any spot check rejects.
pub fn arthur_verify<P: CamelotProblem>(
    problem: &P,
    proofs: &[PrimeProof],
    trials: usize,
    seed: u64,
) -> Result<(), CamelotError> {
    let spec = problem.spec();
    let expected_primes = choose_primes(&spec, code_length(&spec, 0));
    let got: Vec<u64> = proofs.iter().map(|p| p.modulus).collect();
    if got != expected_primes {
        return Err(CamelotError::MalformedProof {
            reason: format!("prime schedule mismatch: expected {expected_primes:?}, got {got:?}"),
        });
    }
    for proof in proofs {
        let report = spot_check(problem, proof, trials, seed)?;
        if !report.accepted {
            return Err(CamelotError::VerificationFailed { modulus: proof.modulus });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Evaluate, ProofSpec};
    use camelot_ff::{crt_u, Residue};

    /// P(x) = Σ_{i<4} (c_i + x)^2: degree 2, answer Σ c_i^2 at x = 0.
    struct SumSquares {
        cs: Vec<u64>,
    }

    impl CamelotProblem for SumSquares {
        type Output = u128;

        fn spec(&self) -> ProofSpec {
            ProofSpec::new(2, 1 << 20, 80)
        }

        fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
            let f = *field;
            let cs: Vec<u64> = self.cs.iter().map(|&c| f.reduce(c)).collect();
            Box::new(move |x: u64| {
                let x = f.reduce(x);
                cs.iter().fold(0u64, |acc, &c| {
                    let s = f.add(c, x);
                    f.add(acc, f.mul(s, s))
                })
            })
        }

        fn recover(&self, proofs: &[PrimeProof]) -> Result<u128, CamelotError> {
            let residues: Vec<Residue> =
                proofs.iter().map(|p| Residue { modulus: p.modulus, value: p.eval(0) }).collect();
            crt_u(&residues)
                .to_u128()
                .ok_or_else(|| CamelotError::RecoveryFailed { reason: "overflow".into() })
        }
    }

    #[test]
    fn merlin_supplies_a_proof_arthur_accepts() {
        let problem = SumSquares { cs: vec![1 << 20, 3, 5, 1 << 19] };
        let proofs = merlin_prove(&problem).unwrap();
        arthur_verify(&problem, &proofs, 8, 42).unwrap();
        let expect: u128 = problem.cs.iter().map(|&c| (c as u128) * (c as u128)).sum();
        assert_eq!(problem.recover(&proofs).unwrap(), expect);
    }

    #[test]
    fn arthur_rejects_a_lying_merlin() {
        let problem = SumSquares { cs: vec![10, 20] };
        let mut proofs = merlin_prove(&problem).unwrap();
        // Merlin fudges one coefficient of one prime proof.
        let f = PrimeField::new_unchecked(proofs[0].modulus);
        proofs[0].coefficients[0] = f.add(proofs[0].coefficients[0], 1);
        assert!(matches!(
            arthur_verify(&problem, &proofs, 8, 42),
            Err(CamelotError::VerificationFailed { .. })
        ));
    }

    #[test]
    fn arthur_rejects_wrong_prime_schedule() {
        let problem = SumSquares { cs: vec![1] };
        let mut proofs = merlin_prove(&problem).unwrap();
        proofs.pop();
        assert!(matches!(
            arthur_verify(&problem, &proofs, 1, 0),
            Err(CamelotError::MalformedProof { .. })
        ));
    }
}
