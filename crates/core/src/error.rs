//! Framework error type.

use camelot_rscode::DecodeError;

/// Errors surfaced by the Camelot engine and verifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CamelotError {
    /// Reed–Solomon decoding failed at some node (too many byzantine
    /// symbols for the configured redundancy).
    DecodeFailed {
        /// The prime modulus whose round failed.
        modulus: u64,
        /// The node that could not decode.
        node: usize,
        /// The underlying decoder error.
        source: DecodeError,
    },
    /// Honest nodes decoded different proofs — only possible beyond the
    /// unique-decoding radius.
    DecodeDisagreement {
        /// The prime modulus whose round disagreed.
        modulus: u64,
    },
    /// The spot-check verifier rejected a proof.
    VerificationFailed {
        /// The prime modulus whose proof was rejected.
        modulus: u64,
    },
    /// A proof had an impossible shape (degree above the bound, missing
    /// modulus, …).
    MalformedProof {
        /// Human-readable description.
        reason: String,
    },
    /// Problem-specific recovery failed (e.g. a count did not fit the
    /// promised bound).
    RecoveryFailed {
        /// Human-readable description.
        reason: String,
    },
    /// The requested configuration is outside the framework's envelope
    /// (`e > q`, zero nodes, fault budget beyond the decoding radius, …).
    BadConfiguration {
        /// Human-readable description.
        reason: String,
    },
    /// The broadcast transport failed to complete a round (a
    /// process-spanning backend asked to ship closures, a worker died,
    /// an I/O or protocol failure).
    TransportFailed {
        /// Human-readable description.
        reason: String,
    },
}

impl std::fmt::Display for CamelotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CamelotError::DecodeFailed { modulus, node, source } => {
                write!(f, "node {node} failed to decode the proof mod {modulus}: {source}")
            }
            CamelotError::DecodeDisagreement { modulus } => {
                write!(f, "honest nodes decoded different proofs mod {modulus}")
            }
            CamelotError::VerificationFailed { modulus } => {
                write!(f, "spot-check verification rejected the proof mod {modulus}")
            }
            CamelotError::MalformedProof { reason } => write!(f, "malformed proof: {reason}"),
            CamelotError::RecoveryFailed { reason } => write!(f, "recovery failed: {reason}"),
            CamelotError::BadConfiguration { reason } => write!(f, "bad configuration: {reason}"),
            CamelotError::TransportFailed { reason } => write!(f, "transport failed: {reason}"),
        }
    }
}

impl std::error::Error for CamelotError {}
