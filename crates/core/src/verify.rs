//! Independent randomized proof verification (§1.3, step 3).
//!
//! Any entity with the common input and a putative proof
//! `p̃_0, …, p̃_d` can check it: draw `x0` uniformly from `Z_q`, evaluate
//! `P(x0)` with the same algorithm the nodes used, and compare against
//! Horner on the coefficients. A wrong proof survives one trial with
//! probability at most `d/q` (fundamental theorem of algebra), and the
//! verifier drives this down by independent repetition.

use crate::error::CamelotError;
use crate::problem::{CamelotProblem, PrimeProof};
use camelot_ff::{PrimeField, SplitMix64};

/// Outcome of a spot-check session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Trials performed (may stop early on rejection).
    pub trials_run: usize,
    /// Whether every trial accepted.
    pub accepted: bool,
}

/// Spot-checks one prime proof with `trials` random evaluations.
///
/// # Errors
///
/// Returns [`CamelotError::MalformedProof`] if the proof's degree exceeds
/// the spec bound or its modulus is below the spec minimum — those are
/// structural failures no amount of randomness should excuse.
pub fn spot_check<P: CamelotProblem>(
    problem: &P,
    proof: &PrimeProof,
    trials: usize,
    seed: u64,
) -> Result<VerifyReport, CamelotError> {
    let spec = problem.spec();
    if proof.coefficients.len() > spec.degree_bound + 1 {
        return Err(CamelotError::MalformedProof {
            reason: format!(
                "degree {} exceeds bound {}",
                proof.coefficients.len() - 1,
                spec.degree_bound
            ),
        });
    }
    if proof.modulus < spec.min_modulus {
        return Err(CamelotError::MalformedProof {
            reason: format!("modulus {} below spec minimum {}", proof.modulus, spec.min_modulus),
        });
    }
    let field = PrimeField::new_unchecked(proof.modulus);
    let evaluator = problem.evaluator(&field);
    let mut rng = SplitMix64::new(seed ^ proof.modulus);
    for trial in 0..trials {
        let x0 = field.sample(&mut rng);
        if evaluator.eval(x0) != proof.eval(x0) {
            return Ok(VerifyReport { trials_run: trial + 1, accepted: false });
        }
    }
    Ok(VerifyReport { trials_run: trials, accepted: true })
}

/// Upper bound on the probability that a *wrong* proof survives `trials`
/// independent spot checks: `(d/q)^trials`.
#[must_use]
pub fn soundness_error(degree_bound: usize, modulus: u64, trials: usize) -> f64 {
    let per_trial = degree_bound as f64 / modulus as f64;
    per_trial.min(1.0).powi(i32::try_from(trials).unwrap_or(i32::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Evaluate, ProofSpec};

    /// P(x) = 7 + 5x over any modulus; answer = 7.
    struct Affine;

    impl CamelotProblem for Affine {
        type Output = u64;

        fn spec(&self) -> ProofSpec {
            ProofSpec::new(1, 1 << 20, 20)
        }

        fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
            let f = *field;
            Box::new(move |x: u64| f.add(7, f.mul(5, f.reduce(x))))
        }

        fn recover(&self, proofs: &[PrimeProof]) -> Result<u64, CamelotError> {
            Ok(proofs[0].eval(0))
        }
    }

    #[test]
    fn correct_proof_always_accepts() {
        let proof = PrimeProof { modulus: 1_048_583, coefficients: vec![7, 5] };
        let report = spot_check(&Affine, &proof, 16, 1).unwrap();
        assert!(report.accepted);
        assert_eq!(report.trials_run, 16);
    }

    #[test]
    fn wrong_proof_rejects_quickly() {
        let proof = PrimeProof { modulus: 1_048_583, coefficients: vec![7, 6] };
        let report = spot_check(&Affine, &proof, 16, 1).unwrap();
        assert!(!report.accepted);
        // d/q is tiny here, so the very first trial should already reject.
        assert_eq!(report.trials_run, 1);
    }

    #[test]
    fn structural_violations_are_malformed() {
        let too_long = PrimeProof { modulus: 1_048_583, coefficients: vec![1, 2, 3] };
        assert!(matches!(
            spot_check(&Affine, &too_long, 1, 0),
            Err(CamelotError::MalformedProof { .. })
        ));
        let small_modulus = PrimeProof { modulus: 101, coefficients: vec![7, 5] };
        assert!(matches!(
            spot_check(&Affine, &small_modulus, 1, 0),
            Err(CamelotError::MalformedProof { .. })
        ));
    }

    #[test]
    fn soundness_error_shrinks_with_trials() {
        let one = soundness_error(1000, 1 << 40, 1);
        let three = soundness_error(1000, 1 << 40, 3);
        assert!(one < 1e-9);
        assert!(three < one * one);
        assert_eq!(soundness_error(10, 5, 2), 1.0); // degenerate d >= q caps at 1
    }
}
