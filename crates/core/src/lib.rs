//! # camelot-core — the Camelot framework
//!
//! The primary contribution of *“How Proofs are Prepared at Camelot”*
//! (Björklund–Kaski, PODC 2016), as a reusable engine:
//!
//! * a problem is a proof polynomial `P(x) mod q` plus a fast evaluation
//!   algorithm ([`CamelotProblem`] / [`Evaluate`]);
//! * proof preparation is distributed Reed–Solomon encoding: `K` nodes
//!   jointly evaluate `P(0..e-1)` ([`Engine::run`], over the simulated
//!   byzantine cluster of `camelot-cluster`);
//! * robustness is intrinsic: each node Gao-decodes its received word,
//!   recovering the proof and *identifying* the failed nodes
//!   ([`Certificate`]);
//! * verification is a randomized spot check costing one evaluation of
//!   `P` per trial ([`spot_check`], soundness error `<= d/q` per trial);
//! * every Camelot algorithm is, as is, a Merlin–Arthur protocol
//!   ([`merlin_prove`] / [`arthur_verify`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod engine;
mod error;
mod merlin;
mod problem;
mod verify;
mod wire;

pub use engine::{
    choose_primes, choose_primes_ntt, code_length, ntt_log_len, CamelotOutcome, Certificate,
    Engine, EngineConfig, PrimeSchedule, RecoveryPolicy, RunReport,
};
pub use error::CamelotError;
pub use merlin::{arthur_verify, merlin_prove};
pub use problem::{CamelotProblem, Evaluate, PrimeProof, ProofSpec};
pub use verify::{soundness_error, spot_check, VerifyReport};

// Transport-facing vocabulary, re-exported so problem implementers can
// offer wire-expressible evaluators ([`Evaluate::program`]) and engine
// users can pick a broadcast backend — or hand [`Engine::with_transport`]
// a shared persistent one — without naming `camelot-cluster`.
pub use camelot_cluster::{
    Backend, ChaosEffect, ChaosPlan, Deadline, Demotion, EvalProgram, FailureCause, RetryPolicy,
    SocketTransport, Transport, TransportTuning, WorkerMode,
};

// The unified thread-count helper (one process-wide budget honoring
// `CAMELOT_THREADS`): every layer that splits work across OS threads —
// the parallel in-process transport, the engine's batched lane decodes,
// the threaded NTT/tree passes in `camelot-poly` — derives its worker
// count from this single source, re-exported here as the engine-facing
// configuration surface.
pub use camelot_ff::{set_thread_budget, thread_budget, worker_count};
