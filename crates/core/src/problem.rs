//! The problem contract: what it takes to be a Camelot algorithm.
//!
//! §1.6 of the paper: *“To design a Camelot algorithm, all it takes is to
//! come up with the proof polynomial `P` and a fast evaluation algorithm
//! for `P`.”* A [`CamelotProblem`] supplies exactly those two things plus
//! the bookkeeping the engine needs (degree bound, modulus constraints,
//! value bound for CRT) and the problem-specific *recovery* map from
//! decoded proof coefficients back to the combinatorial answer.

use crate::error::CamelotError;
use camelot_ff::PrimeField;

/// Static parameters of a proof polynomial, derivable by every node from
/// the common input (§1.3 of the paper assumes `d` and `q` are easy to
/// compute from the input).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProofSpec {
    /// Upper bound `d` on the degree of `P(x)`.
    pub degree_bound: usize,
    /// Lower bound on usable prime moduli (e.g. `q > 3R` for the clique
    /// polynomial, `q > n(t+1)` for Hamming, …).
    pub min_modulus: u64,
    /// The recovered integer quantities are bounded in magnitude by
    /// `2^value_bits`; the engine provisions enough distinct primes for
    /// Chinese Remainder reconstruction (footnote 5 of the paper).
    pub value_bits: u64,
}

impl ProofSpec {
    /// Convenience constructor.
    #[must_use]
    pub fn new(degree_bound: usize, min_modulus: u64, value_bits: u64) -> Self {
        ProofSpec { degree_bound, min_modulus, value_bits }
    }
}

/// A per-prime evaluation oracle for the proof polynomial: the node-side
/// workhorse.
///
/// One `Evaluate` value is built per prime modulus (any `mod q`
/// precomputation — interpolated input polynomials, reduced matrices,
/// Lagrange scaffolding — happens in [`CamelotProblem::evaluator`]), and
/// then `eval` is called once per assigned evaluation point. The verifier
/// calls the *same* oracle for its spot checks, which is the paper's
/// guarantee that verification costs what one node contributes.
pub trait Evaluate: Sync {
    /// Computes `P(x0) mod q`.
    fn eval(&self, x0: u64) -> u64;

    /// A wire-expressible description of this oracle, when one exists
    /// ([`camelot_cluster::EvalProgram`]): what a process-spanning
    /// broadcast backend ships to its `camelot-node` workers so each
    /// reconstructs the evaluation from the task message alone. The
    /// default `None` restricts rounds to in-process backends — most
    /// proof polynomials are exactly what the cluster is computing, so
    /// no coordinator could serialize them upfront.
    fn program(&self) -> Option<camelot_cluster::EvalProgram> {
        None
    }
}

impl<F: Fn(u64) -> u64 + Sync> Evaluate for F {
    fn eval(&self, x0: u64) -> u64 {
        self(x0)
    }
}

/// A decoded proof for one prime modulus: the message the Reed–Solomon
/// codeword carried.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrimeProof {
    /// The prime modulus `q`.
    pub modulus: u64,
    /// Little-endian coefficients `p_0, …, p_d` of `P(x) mod q` (trailing
    /// zeros may be trimmed).
    pub coefficients: Vec<u64>,
}

impl PrimeProof {
    /// Evaluates the proof polynomial at `x` by Horner's rule — the
    /// right-hand side of the verification identity (2) in the paper.
    #[must_use]
    pub fn eval(&self, x: u64) -> u64 {
        let field = PrimeField::new_unchecked(self.modulus);
        let x = field.reduce(x);
        let mut acc = 0u64;
        for &c in self.coefficients.iter().rev() {
            acc = field.mul_add(c, acc, x);
        }
        acc
    }

    /// `Σ_{x=start}^{start+count-1} P(x) (mod q)` — the recovery map used
    /// by every "sum the evaluations" design (Theorems 1, 3, 8, 9, 12:
    /// the answer is `Σ_{x ∈ [R]} P(x)` or `Σ_{x < 2^{n/2}} P(x)`).
    #[must_use]
    pub fn sum_eval_consecutive(&self, start: u64, count: u64) -> u64 {
        let field = PrimeField::new_unchecked(self.modulus);
        let mut acc = 0u64;
        for i in 0..count {
            acc = field.add(acc, self.eval(start.wrapping_add(i)));
        }
        acc
    }

    /// The residue `Σ_{x=start}^{start+count-1} P(x) mod q` packaged for
    /// Chinese Remainder reconstruction.
    #[must_use]
    pub fn sum_residue(&self, start: u64, count: u64) -> camelot_ff::Residue {
        camelot_ff::Residue {
            modulus: self.modulus,
            value: self.sum_eval_consecutive(start, count),
        }
    }

    /// The residue of a single coefficient `p_k` (zero beyond the stored
    /// degree) — the recovery map for designs whose answer *is* one proof
    /// coefficient (Theorems 6, 7, 10).
    #[must_use]
    pub fn coefficient_residue(&self, k: usize) -> camelot_ff::Residue {
        camelot_ff::Residue {
            modulus: self.modulus,
            value: self.coefficients.get(k).copied().unwrap_or(0),
        }
    }
}

/// A problem expressed in the Camelot framework.
pub trait CamelotProblem {
    /// The recovered combinatorial answer (a count, a coefficient vector,
    /// a distribution…).
    type Output;

    /// Proof-polynomial parameters.
    fn spec(&self) -> ProofSpec;

    /// Builds the per-prime evaluation oracle (performing any `mod q`
    /// precomputation once).
    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a>;

    /// Maps decoded per-prime proofs back to the answer (Chinese
    /// Remainder reconstruction plus any problem-specific
    /// postprocessing).
    ///
    /// # Errors
    ///
    /// Returns [`CamelotError::MalformedProof`] or
    /// [`CamelotError::RecoveryFailed`] when the proofs cannot encode any
    /// valid answer.
    fn recover(&self, proofs: &[PrimeProof]) -> Result<Self::Output, CamelotError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_proof_horner_matches_manual() {
        let p = PrimeProof { modulus: 97, coefficients: vec![3, 0, 1] }; // 3 + x^2
        assert_eq!(p.eval(0), 3);
        assert_eq!(p.eval(5), 28);
        assert_eq!(p.eval(96), (3 + 96u64 * 96) % 97);
        assert_eq!(p.eval(97), 3); // reduced input
    }

    #[test]
    fn empty_proof_is_zero() {
        let p = PrimeProof { modulus: 101, coefficients: vec![] };
        assert_eq!(p.eval(55), 0);
    }

    #[test]
    fn closures_are_evaluators() {
        let field = PrimeField::new(13).unwrap();
        let ev: Box<dyn Evaluate> = Box::new(move |x: u64| field.mul(x, x));
        assert_eq!(ev.eval(5), 12);
    }
}
