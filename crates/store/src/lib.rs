//! # camelot-store — a content-addressed certificate cache
//!
//! The paper's economics (§1) hinge on preparing a proof *once* and
//! serving it to arbitrarily many verifiers: verification costs a few
//! evaluations of `P`, preparation costs the distributed encoding
//! rounds. This crate is the piece that makes repeat queries free of
//! rounds: a cache keyed by the *content* of the request — problem
//! family, canonical input, and prime schedule — holding the prepared
//! [`Certificate`]s.
//!
//! Keys are produced by [`cert_key`] (a deterministic 128-bit FNV-1a
//! over length-prefixed byte sections, so concatenation ambiguities
//! cannot alias two requests). Storage is an in-memory LRU of bounded
//! capacity, optionally mirrored to a directory of `<key>.cert` files
//! in the existing `camelot-certificate v1` wire format, so a restarted
//! daemon can serve yesterday's certificates with zero rounds too.
//! Cached certificates are *not* trusted on the way out: the service
//! re-verifies them through `Engine::redeem` (spot checks), so a
//! corrupted cache entry can cause a miss or a rejection, never a wrong
//! answer.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use camelot_core::Certificate;
use std::collections::HashMap;
use std::path::PathBuf;

/// A 128-bit content address for one prepared certificate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CertKey(pub u128);

impl CertKey {
    /// The key as 32 lowercase hex digits — the on-disk file stem.
    #[must_use]
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// 128-bit FNV prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Hashes length-prefixed byte sections into a [`CertKey`]: the content
/// address of a request. Callers pass one section per identity
/// component — problem family tag, canonical input encoding, prime
/// schedule, engine parameters that change the certificate — and the
/// length prefixes guarantee `["ab", "c"]` and `["a", "bc"]` differ.
#[must_use]
pub fn cert_key(parts: &[&[u8]]) -> CertKey {
    let mut hash = FNV_OFFSET;
    let mut absorb = |byte: u8| {
        hash ^= u128::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    };
    for part in parts {
        for byte in (part.len() as u64).to_le_bytes() {
            absorb(byte);
        }
        for &byte in *part {
            absorb(byte);
        }
    }
    CertKey(hash)
}

/// Failures of the persistent layer (the in-memory cache cannot fail).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem trouble creating the directory or writing an entry.
    Io {
        /// What failed, including the underlying error.
        reason: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { reason } => write!(f, "certificate store I/O: {reason}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Cache effectiveness counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served (from memory or disk).
    pub hits: usize,
    /// Lookups that found nothing.
    pub misses: usize,
    /// Certificates inserted via [`CertStore::put`].
    pub insertions: usize,
    /// In-memory entries displaced by the LRU bound.
    pub evictions: usize,
}

/// A bounded content-addressed certificate cache: in-memory LRU, with
/// optional directory-backed persistence ([`CertStore::with_dir`]).
#[derive(Debug)]
pub struct CertStore {
    capacity: usize,
    dir: Option<PathBuf>,
    /// Key → (last-use tick, certificate). The tick orders evictions.
    entries: HashMap<u128, (u64, Certificate)>,
    tick: u64,
    stats: StoreStats,
}

impl CertStore {
    /// A purely in-memory store holding at most `capacity` certificates
    /// (at least one entry is always kept).
    #[must_use]
    pub fn in_memory(capacity: usize) -> Self {
        CertStore {
            capacity: capacity.max(1),
            dir: None,
            entries: HashMap::new(),
            tick: 0,
            stats: StoreStats::default(),
        }
    }

    /// A store that additionally mirrors every certificate to
    /// `dir/<key>.cert` (v1 wire format) and falls back to that
    /// directory on in-memory misses — certificates survive both LRU
    /// eviction and daemon restarts.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn with_dir(capacity: usize, dir: PathBuf) -> Result<Self, StoreError> {
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Io { reason: format!("creating {}: {e}", dir.display()) })?;
        let mut store = CertStore::in_memory(capacity);
        store.dir = Some(dir);
        Ok(store)
    }

    /// Looks the key up: the in-memory tier first (refreshing its LRU
    /// position), then the directory tier. A directory hit is promoted
    /// back into memory. An unreadable or corrupt on-disk entry counts
    /// as a miss — the service then simply re-prepares.
    pub fn get(&mut self, key: &CertKey) -> Option<Certificate> {
        self.tick += 1;
        if let Some((last_use, certificate)) = self.entries.get_mut(&key.0) {
            *last_use = self.tick;
            self.stats.hits += 1;
            return Some(certificate.clone());
        }
        let from_disk = self
            .dir
            .as_ref()
            .and_then(|dir| std::fs::read_to_string(dir.join(format!("{}.cert", key.hex()))).ok())
            .and_then(|text| Certificate::from_wire(&text).ok());
        match from_disk {
            Some(certificate) => {
                self.stats.hits += 1;
                self.insert_in_memory(key, certificate.clone());
                Some(certificate)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a prepared certificate under its content address, in
    /// memory (evicting the least recently used entry when full) and,
    /// when configured, on disk.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the on-disk mirror cannot be written;
    /// the in-memory entry is kept regardless.
    pub fn put(&mut self, key: &CertKey, certificate: &Certificate) -> Result<(), StoreError> {
        self.tick += 1;
        self.stats.insertions += 1;
        self.insert_in_memory(key, certificate.clone());
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{}.cert", key.hex()));
            std::fs::write(&path, certificate.to_wire()).map_err(|e| StoreError::Io {
                reason: format!("writing {}: {e}", path.display()),
            })?;
        }
        Ok(())
    }

    /// Inserts into the in-memory tier, evicting the least recently
    /// used entry if the bound would be exceeded.
    fn insert_in_memory(&mut self, key: &CertKey, certificate: Certificate) {
        if !self.entries.contains_key(&key.0) && self.entries.len() >= self.capacity {
            let oldest =
                self.entries.iter().min_by_key(|(_, (last_use, _))| *last_use).map(|(k, _)| *k);
            if let Some(oldest) = oldest {
                self.entries.remove(&oldest);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(key.0, (self.tick, certificate));
    }

    /// Number of certificates currently held in memory.
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Cache effectiveness counters so far.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::PrimeProof;

    fn cert(tag: u64) -> Certificate {
        Certificate {
            proofs: vec![PrimeProof { modulus: 1_048_583, coefficients: vec![tag, 5] }],
            code_length: 8,
            degree_bound: 1,
            identified_faulty_nodes: vec![],
            crashed_nodes: vec![2],
        }
    }

    #[test]
    fn key_is_deterministic_and_prefix_safe() {
        let a = cert_key(&[b"triangles", b"abc", b"smallest"]);
        let b = cert_key(&[b"triangles", b"abc", b"smallest"]);
        assert_eq!(a, b);
        assert_eq!(a.hex().len(), 32);
        // Length prefixes: moving a byte across a section boundary must
        // change the key.
        assert_ne!(cert_key(&[b"ab", b"c"]), cert_key(&[b"a", b"bc"]));
        assert_ne!(cert_key(&[b"abc"]), cert_key(&[b"abc", b""]));
    }

    #[test]
    fn memory_hits_and_misses_are_counted() {
        let mut store = CertStore::in_memory(4);
        let key = cert_key(&[b"k1"]);
        assert!(store.get(&key).is_none());
        store.put(&key, &cert(7)).unwrap();
        assert_eq!(store.get(&key).unwrap(), cert(7));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(store.entries(), 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut store = CertStore::in_memory(2);
        let (k1, k2, k3) = (cert_key(&[b"1"]), cert_key(&[b"2"]), cert_key(&[b"3"]));
        store.put(&k1, &cert(1)).unwrap();
        store.put(&k2, &cert(2)).unwrap();
        // Touch k1 so k2 becomes the eviction victim.
        assert!(store.get(&k1).is_some());
        store.put(&k3, &cert(3)).unwrap();
        assert_eq!(store.entries(), 2);
        assert_eq!(store.stats().evictions, 1);
        assert!(store.get(&k1).is_some());
        assert!(store.get(&k3).is_some());
        assert!(store.get(&k2).is_none(), "k2 was least recently used");
    }

    #[test]
    fn directory_tier_survives_eviction_and_restart() {
        let dir = std::env::temp_dir().join(format!("camelot-store-test-{}", std::process::id()));
        let _cleanup = std::fs::remove_dir_all(&dir);
        let (k1, k2) = (cert_key(&[b"x"]), cert_key(&[b"y"]));
        {
            let mut store = CertStore::with_dir(1, dir.clone()).unwrap();
            store.put(&k1, &cert(1)).unwrap();
            store.put(&k2, &cert(2)).unwrap(); // evicts k1 from memory
            assert_eq!(store.entries(), 1);
            // …but k1 is still served, from disk, bit-identically.
            assert_eq!(store.get(&k1).unwrap().to_wire(), cert(1).to_wire());
        }
        // A fresh store over the same directory serves both.
        let mut reopened = CertStore::with_dir(4, dir.clone()).unwrap();
        assert_eq!(reopened.get(&k1).unwrap(), cert(1));
        assert_eq!(reopened.get(&k2).unwrap(), cert(2));
        let stats = reopened.stats();
        assert_eq!((stats.hits, stats.misses), (2, 0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_disk_entry_is_a_miss_not_a_panic() {
        let dir = std::env::temp_dir().join(format!("camelot-store-bad-{}", std::process::id()));
        let _cleanup = std::fs::remove_dir_all(&dir);
        let mut store = CertStore::with_dir(2, dir.clone()).unwrap();
        let key = cert_key(&[b"corrupt"]);
        std::fs::write(dir.join(format!("{}.cert", key.hex())), "not a certificate").unwrap();
        assert!(store.get(&key).is_none());
        assert_eq!(store.stats().misses, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
