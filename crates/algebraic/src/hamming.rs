//! The Hamming distance distribution (Theorem 11(2), §A.3).
//!
//! For `n × t` Boolean matrices `A`, `B`, compute for every row `i` of
//! `A` and every distance `h ∈ {0..t}` the count `c_ih` of rows of `B` at
//! Hamming distance exactly `h`. The trick (the “technical gist” of
//! §A.3): supply the *roots* of a degree-`t` factor polynomial through
//! separate interpolated indeterminates `w_1..w_t`, so that at the point
//! `x = i(t+1) + h` the product `Π_ℓ (dist_i(z) - w_ℓ)` vanishes unless
//! the distance equals `h`, leaving `(Π_{ℓ≠h}(h-ℓ)) · c_ih`.

use crate::ov::BoolMatrix;
use camelot_core::{CamelotError, CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::PrimeField;
use camelot_poly::lagrange_basis_at;

/// The Hamming-distribution Camelot problem.
#[derive(Clone, Debug)]
pub struct HammingDistribution {
    a: BoolMatrix,
    b: BoolMatrix,
}

impl HammingDistribution {
    /// Creates the problem.
    ///
    /// # Panics
    ///
    /// Panics if the matrices differ in shape or are empty.
    #[must_use]
    pub fn new(a: BoolMatrix, b: BoolMatrix) -> Self {
        assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "matrices must share a shape");
        assert!(a.rows() > 0 && a.cols() > 0, "matrices must be nonempty");
        HammingDistribution { a, b }
    }

    /// Ground truth by brute force: `counts[i][h]`.
    #[must_use]
    pub fn reference_distribution(&self) -> Vec<Vec<u64>> {
        let (n, t) = (self.a.rows(), self.a.cols());
        (0..n)
            .map(|i| {
                let mut row = vec![0u64; t + 1];
                for k in 0..n {
                    let h = (0..t).filter(|&j| self.a.get(i, j) != self.b.get(k, j)).count();
                    row[h] += 1;
                }
                row
            })
            .collect()
    }

    /// Number of interpolation nodes `n(t+1)`; nodes are the consecutive
    /// integers `t+1 ..= n(t+1)+t`, with node `i(t+1)+h` carrying row `i`
    /// and distance slot `h`.
    fn node_count(&self) -> usize {
        self.a.rows() * (self.a.cols() + 1)
    }

    /// The prescribed value of `H_ℓ` at distance slot `h`: the ℓ-th
    /// smallest element of `{0..t} \ {h}` (1-based ℓ).
    fn h_value(ell: usize, h: usize) -> u64 {
        if ell - 1 < h {
            (ell - 1) as u64
        } else {
            ell as u64
        }
    }
}

impl CamelotProblem for HammingDistribution {
    type Output = Vec<Vec<u64>>;

    fn spec(&self) -> ProofSpec {
        let (n, t) = (self.a.rows() as u64, self.a.cols() as u64);
        let nodes = n * (t + 1);
        let degree = (t * (nodes - 1)) as usize;
        ProofSpec {
            degree_bound: degree,
            min_modulus: (degree as u64 + 2).max(nodes + t + 2),
            value_bits: 64 - n.leading_zeros() as u64 + 8,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let (n, t) = (self.a.rows(), self.a.cols());
        let nodes = self.node_count();
        let a = self.a.clone();
        let b = self.b.clone();
        Box::new(move |x0: u64| {
            // Nodes are t+1 ..= nodes+t; shift into 1..=nodes for the
            // consecutive-point Lagrange basis.
            let shifted = f.sub(f.reduce(x0), f.reduce(t as u64));
            let basis = lagrange_basis_at(&f, nodes, shifted);
            // z_j = A_j(x0), w_ℓ = H_ℓ(x0).
            let mut z = vec![0u64; t];
            let mut w = vec![0u64; t];
            for (r, &weight) in basis.iter().enumerate() {
                if weight == 0 {
                    continue;
                }
                let point = r + 1 + t; // actual node value
                let i = point / (t + 1) - 1; // row index, 0-based
                let h = point % (t + 1);
                debug_assert!(i < n);
                for (j, zj) in z.iter_mut().enumerate().take(t) {
                    if a.get(i, j) {
                        *zj = f.add(*zj, weight);
                    }
                }
                for ell in 1..=t {
                    let hv = Self::h_value(ell, h);
                    if hv != 0 {
                        w[ell - 1] = f.mul_add(w[ell - 1], f.reduce(hv), weight);
                    }
                }
            }
            // P(x0) = Σ_i Π_ℓ (dist_i(z) - w_ℓ).
            let mut acc = 0u64;
            for i in 0..n {
                let mut dist = 0u64;
                for (j, &zj) in z.iter().enumerate() {
                    let term = if b.get(i, j) { f.sub(1, zj) } else { zj };
                    dist = f.add(dist, term);
                }
                let mut prod = 1u64;
                for &wl in &w {
                    prod = f.mul(prod, f.sub(dist, wl));
                    if prod == 0 {
                        break;
                    }
                }
                acc = f.add(acc, prod);
            }
            acc
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<Vec<Vec<u64>>, CamelotError> {
        let proof = proofs
            .first()
            .ok_or_else(|| CamelotError::MalformedProof { reason: "no prime proofs".into() })?;
        let field = PrimeField::new_unchecked(proof.modulus);
        let (n, t) = (self.a.rows(), self.a.cols());
        let mut out = Vec::with_capacity(n);
        for i in 1..=n {
            let mut row = Vec::with_capacity(t + 1);
            for h in 0..=t {
                let x = (i * (t + 1) + h) as u64;
                let value = proof.eval(x);
                // value = c_ih * Π_{ℓ ∈ {0..t}\{h}} (h - ℓ)
                //       = c_ih * h! * (t-h)! * (-1)^{t-h}.
                let mut factor = 1u64;
                for ell in 0..=t {
                    if ell != h {
                        factor = f_mul_signed(&field, factor, h as i64 - ell as i64);
                    }
                }
                let c = field.mul(value, field.inv(factor));
                if c > n as u64 {
                    return Err(CamelotError::RecoveryFailed {
                        reason: format!("count c[{i}][{h}] = {c} exceeds n"),
                    });
                }
                row.push(c);
            }
            if row.iter().sum::<u64>() != n as u64 {
                return Err(CamelotError::RecoveryFailed {
                    reason: format!("row {i} distribution does not sum to n"),
                });
            }
            out.push(row);
        }
        Ok(out)
    }
}

fn f_mul_signed(field: &PrimeField, acc: u64, v: i64) -> u64 {
    field.mul(acc, field.from_i64(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::{arthur_verify, merlin_prove, Engine};

    #[test]
    fn matches_reference_on_random_instances() {
        for seed in 0..3 {
            let a = BoolMatrix::random(6, 4, 50, seed);
            let b = BoolMatrix::random(6, 4, 50, seed + 50);
            let problem = HammingDistribution::new(a, b);
            let outcome = Engine::sequential(4, 2).run(&problem).unwrap();
            assert_eq!(outcome.output, problem.reference_distribution(), "seed {seed}");
        }
    }

    #[test]
    fn identical_matrices_concentrate_at_zero() {
        let a = BoolMatrix::random(5, 3, 60, 1);
        let problem = HammingDistribution::new(a.clone(), a);
        let dist = Engine::sequential(3, 1).run(&problem).unwrap().output;
        for (i, row) in dist.iter().enumerate() {
            assert!(row[0] >= 1, "row {i} must be at distance 0 from itself");
            assert_eq!(row.iter().sum::<u64>(), 5);
        }
    }

    #[test]
    fn complementary_matrices_concentrate_at_t() {
        let a = BoolMatrix::new(4, 3, vec![false; 12]);
        let b = BoolMatrix::new(4, 3, vec![true; 12]);
        let problem = HammingDistribution::new(a, b);
        let dist = Engine::sequential(2, 1).run(&problem).unwrap().output;
        for row in &dist {
            assert_eq!(row[3], 4);
            assert_eq!(row[0] + row[1] + row[2], 0);
        }
    }

    #[test]
    fn distribution_is_consistent_with_ov() {
        // c_i0 with B complemented equals t-distance counts... simpler:
        // row sums are n and the h-moments match brute force.
        let a = BoolMatrix::random(7, 5, 30, 9);
        let b = BoolMatrix::random(7, 5, 70, 10);
        let problem = HammingDistribution::new(a, b);
        let expect = problem.reference_distribution();
        let got = Engine::sequential(3, 2).run(&problem).unwrap().output;
        assert_eq!(got, expect);
    }

    #[test]
    fn merlin_arthur_roundtrip() {
        let a = BoolMatrix::random(4, 3, 50, 2);
        let b = BoolMatrix::random(4, 3, 50, 3);
        let problem = HammingDistribution::new(a, b);
        let proofs = merlin_prove(&problem).unwrap();
        arthur_verify(&problem, &proofs, 4, 8).unwrap();
        assert_eq!(problem.recover(&proofs).unwrap(), problem.reference_distribution());
    }
}
