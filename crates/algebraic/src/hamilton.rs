//! Counting Hamiltonian cycles (Theorem 8(3), §A.5 remark).
//!
//! Karp-style inclusion–exclusion: for `S ⊆ V∖{0}`, let `W(S)` count the
//! closed walks of length `n` from vertex 0 that stay inside `S ∪ {0}`;
//! then `Σ_S (-1)^{n-1-|S|} W(S)` counts directed Hamiltonian cycles
//! based at 0 (each undirected cycle twice). As with the permanent, the
//! indicator variables of the first half of `V∖{0}` are carried by the
//! point-enumerating polynomials `D(x)` and the second half is summed
//! explicitly, giving proof size and per-node time `O*(2^{n/2})`.

use camelot_core::{CamelotError, CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::{crt_i, PrimeField, Residue, UBig};
use camelot_graph::Graph;
use camelot_poly::lagrange_basis_at;

/// The Hamiltonian-cycle-counting Camelot problem.
#[derive(Clone, Debug)]
pub struct HamiltonianCycles {
    graph: Graph,
}

impl HamiltonianCycles {
    /// Creates the problem.
    ///
    /// # Panics
    ///
    /// Panics for graphs with fewer than 3 vertices (no cycles exist;
    /// counting them needs no proof).
    #[must_use]
    pub fn new(graph: Graph) -> Self {
        assert!(graph.vertex_count() >= 3, "Hamiltonian cycles need at least 3 vertices");
        HamiltonianCycles { graph }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// First-half variable count `⌈(n-1)/2⌉`.
    fn h1(&self) -> usize {
        (self.graph.vertex_count() - 1).div_ceil(2)
    }

    /// Walk polynomial `W(z)`: closed walks of length `n` from 0, each
    /// intermediate visit to vertex `u != 0` weighted by `z[u-1]`.
    fn walk_sum(&self, f: &PrimeField, z: &[u64]) -> u64 {
        let n = self.graph.vertex_count();
        let mut w = vec![0u64; n];
        w[0] = 1;
        for _ in 1..n {
            let mut next = vec![0u64; n];
            for (u, slot) in next.iter_mut().enumerate() {
                let mut nb = self.graph.neighbors(u);
                let mut sum = 0u64;
                while nb != 0 {
                    let v = nb.trailing_zeros() as usize;
                    nb &= nb - 1;
                    sum = f.add(sum, w[v]);
                }
                *slot = if u == 0 { sum } else { f.mul(sum, z[u - 1]) };
            }
            w = next;
        }
        let mut nb = self.graph.neighbors(0);
        let mut closed = 0u64;
        while nb != 0 {
            let v = nb.trailing_zeros() as usize;
            nb &= nb - 1;
            closed = f.add(closed, w[v]);
        }
        closed
    }
}

impl CamelotProblem for HamiltonianCycles {
    type Output = UBig;

    fn spec(&self) -> ProofSpec {
        let n = self.graph.vertex_count() as u64;
        let h1 = self.h1() as u64;
        let points = 1u64 << h1;
        let degree = ((points - 1) * (h1 + n - 1)) as usize;
        // Directed count <= (n-1)!.
        let mut bits = 3.0f64;
        for i in 1..n {
            bits += (i as f64).log2();
        }
        ProofSpec {
            degree_bound: degree,
            min_modulus: (degree as u64 + 2).max(points + 1),
            value_bits: bits.ceil() as u64,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let n = self.graph.vertex_count();
        let h1 = self.h1();
        let h2 = n - 1 - h1;
        let points = 1usize << h1;
        Box::new(move |x0: u64| {
            let basis = lagrange_basis_at(&f, points, x0);
            // First-half indicators (vertices 1..h1).
            let mut z = vec![0u64; n - 1];
            for (i, &w) in basis.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                for (j, zj) in z.iter_mut().enumerate().take(h1) {
                    if i >> j & 1 == 1 {
                        *zj = f.add(*zj, w);
                    }
                }
            }
            let mut sign_first = 1u64;
            for zj in z.iter().take(h1) {
                sign_first = f.mul(sign_first, f.sub(1, f.add(*zj, *zj)));
            }
            let mut acc = 0u64;
            for mask in 0u64..1 << h2 {
                for j in 0..h2 {
                    z[h1 + j] = mask >> j & 1;
                }
                let walks = self.walk_sum(&f, &z);
                let mut term = f.mul(sign_first, walks);
                // (-1)^{|mask|} for the explicit half, (-1)^{n-1} overall.
                let flips = mask.count_ones() as usize + (n - 1) % 2;
                if flips % 2 == 1 {
                    term = f.neg(term);
                }
                acc = f.add(acc, term);
            }
            acc
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<UBig, CamelotError> {
        let points = 1u64 << self.h1();
        let residues: Vec<Residue> = proofs.iter().map(|p| p.sum_residue(1, points)).collect();
        let directed = crt_i(&residues);
        if directed.is_negative() {
            return Err(CamelotError::RecoveryFailed {
                reason: "negative directed cycle count".into(),
            });
        }
        let (half, rem) = directed.magnitude().div_rem_u64(2);
        if rem != 0 {
            return Err(CamelotError::RecoveryFailed {
                reason: "directed cycle count was odd".into(),
            });
        }
        Ok(half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::{arthur_verify, merlin_prove, Engine};
    use camelot_graph::{count_hamiltonian_cycles, gen};

    fn check(graph: Graph) {
        let expect = count_hamiltonian_cycles(&graph);
        let problem = HamiltonianCycles::new(graph);
        let outcome = Engine::sequential(4, 2).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(expect));
    }

    #[test]
    fn known_graphs() {
        check(gen::cycle(5));
        check(gen::cycle(6));
        check(gen::complete(5)); // 12
        check(gen::complete(6)); // 60
        check(gen::path(5)); // 0
        check(gen::complete_bipartite(3, 3)); // 6
    }

    #[test]
    fn random_graphs_match_reference() {
        for seed in 0..4 {
            check(gen::gnm(7, 13, seed));
        }
    }

    #[test]
    fn petersen_has_no_hamiltonian_cycle() {
        // The classic non-Hamiltonian vertex-transitive graph. n = 10 is
        // the largest test here (2^5 interpolation points per half).
        check(gen::petersen());
    }

    #[test]
    fn merlin_arthur_roundtrip() {
        let problem = HamiltonianCycles::new(gen::complete(5));
        let proofs = merlin_prove(&problem).unwrap();
        arthur_verify(&problem, &proofs, 3, 5).unwrap();
        assert_eq!(problem.recover(&proofs).unwrap().to_u64(), Some(12));
    }
}
