//! Counting Convolution3SUM solutions (Theorem 11(3), §A.4).
//!
//! Given an array `A[1..n]` of `t`-bit integers, count the pairs
//! `i1, i2 ∈ [n/2]` with `A[i1] + A[i2] = A[i1 + i2]`. The design point
//! of §A.4: a simple Boolean circuit — a `t`-bit ripple-carry adder —
//! is extended into a polynomial over `Z_q` (the sum/majority gadgets
//! `S`, `M` and the carry recurrence), then composed with polynomials
//! interpolating the input bits, giving proof size `Õ(n t²)`.

use camelot_core::{CamelotError, CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::PrimeField;
use camelot_poly::lagrange_basis_at;

/// The Convolution3SUM Camelot problem.
#[derive(Clone, Debug)]
pub struct Convolution3Sum {
    values: Vec<u64>,
    bit_width: usize,
}

impl Convolution3Sum {
    /// Creates the problem for the 1-indexed array `values` of
    /// `bit_width`-bit integers. The array length must be even.
    ///
    /// # Panics
    ///
    /// Panics if a value exceeds the bit width, the length is odd or
    /// zero, or `bit_width` is 0 or above 62.
    #[must_use]
    pub fn new(values: Vec<u64>, bit_width: usize) -> Self {
        assert!(!values.is_empty() && values.len().is_multiple_of(2), "array length must be even");
        assert!(bit_width > 0 && bit_width <= 62, "bit width must be 1..=62");
        let cap = if bit_width == 62 { u64::MAX >> 2 } else { (1 << bit_width) - 1 };
        assert!(values.iter().all(|&v| v <= cap), "value exceeds bit width");
        Convolution3Sum { values, bit_width }
    }

    /// Deterministic random instance.
    #[must_use]
    pub fn random(n: usize, bit_width: usize, seed: u64) -> Self {
        use camelot_ff::{RngLike, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        let cap = 1u64 << bit_width;
        Convolution3Sum::new((0..n).map(|_| rng.next_u64() % cap).collect(), bit_width)
    }

    /// Ground truth: the per-index counts
    /// `c_i = |{ℓ ∈ [n/2] : A[i] + A[ℓ] = A[i+ℓ]}|` for `i ∈ [n/2]`,
    /// where sums are exact (overflow beyond `t` bits never matches a
    /// `t`-bit array entry).
    #[must_use]
    pub fn reference_counts(&self) -> Vec<u64> {
        let half = self.values.len() / 2;
        (1..=half)
            .map(|i| {
                (1..=half).filter(|&l| self.value(i) + self.value(l) == self.value(i + l)).count()
                    as u64
            })
            .collect()
    }

    /// Total solution count `Σ_i c_i`.
    #[must_use]
    pub fn reference_total(&self) -> u64 {
        self.reference_counts().iter().sum()
    }

    fn value(&self, i: usize) -> u64 {
        self.values[i - 1]
    }

    fn n(&self) -> usize {
        self.values.len()
    }
}

/// Ripple-carry adder comparison `[y + z = w]` over field values of the
/// bit vectors (equation (42) of the paper); exact on 0/1 inputs and a
/// polynomial of degree `O(t²)` in general.
fn adder_indicator(f: &PrimeField, y: &[u64], z: &[u64], w: &[u64]) -> u64 {
    let t = y.len();
    debug_assert_eq!(z.len(), t);
    debug_assert_eq!(w.len(), t);
    let mut carry = 0u64;
    let mut prod = 1u64;
    for j in 0..t {
        let s = sum_gadget(f, y[j], z[j], carry);
        let m = majority_gadget(f, y[j], z[j], carry);
        // (1 - w_j)(1 - s) + w_j s
        let match_j = f.add(f.mul(f.sub(1, w[j]), f.sub(1, s)), f.mul(w[j], s));
        prod = f.mul(prod, match_j);
        carry = m;
    }
    f.mul(prod, f.sub(1, carry))
}

/// 3-variate sum polynomial `S(b1,b2,b3)`: parity on 0/1 inputs.
fn sum_gadget(f: &PrimeField, b1: u64, b2: u64, b3: u64) -> u64 {
    let n1 = f.sub(1, b1);
    let n2 = f.sub(1, b2);
    let n3 = f.sub(1, b3);
    let mut acc = f.mul(f.mul(n1, n2), b3);
    acc = f.add(acc, f.mul(f.mul(n1, b2), n3));
    acc = f.add(acc, f.mul(f.mul(b1, n2), n3));
    f.add(acc, f.mul(f.mul(b1, b2), b3))
}

/// 3-variate majority polynomial `M(b1,b2,b3)`.
fn majority_gadget(f: &PrimeField, b1: u64, b2: u64, b3: u64) -> u64 {
    let n1 = f.sub(1, b1);
    let n2 = f.sub(1, b2);
    let n3 = f.sub(1, b3);
    let mut acc = f.mul(f.mul(n1, b2), b3);
    acc = f.add(acc, f.mul(f.mul(b1, n2), b3));
    acc = f.add(acc, f.mul(f.mul(b1, b2), n3));
    f.add(acc, f.mul(f.mul(b1, b2), b3))
}

impl CamelotProblem for Convolution3Sum {
    type Output = Vec<u64>;

    fn spec(&self) -> ProofSpec {
        let n = self.n() as u64;
        let t = self.bit_width as u64;
        // Degree bookkeeping (see module docs): carries grow by the
        // y-degree (n-1) per stage (z is constant), each bit factor costs
        // deg w + deg S, and the final (1 - c_t) adds one carry degree.
        let dy = n - 1;
        let mut dc = 0u64; // carry degree
        let mut total = 0u64;
        for _ in 0..t {
            let ds = dy + dc; // S(y_j, z_j, c_{j-1}), z constant
            total += dy + ds; // factor: w_j degree + S degree
            dc += dy; // M has the same degree profile as S
        }
        total += dc; // (1 - c_t)
        let degree = total as usize;
        ProofSpec {
            degree_bound: degree,
            min_modulus: (degree as u64 + 2).max(n + 2),
            value_bits: 2 * (64 - n.leading_zeros() as u64) + 2,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let n = self.n();
        let t = self.bit_width;
        let half = n / 2;
        // Bits of each array entry, fixed (exact) — used for A(ℓ) and for
        // the barycentric combination.
        let bits: Vec<Vec<u64>> =
            self.values.iter().map(|&v| (0..t).map(|j| v >> j & 1).collect()).collect();
        Box::new(move |x0: u64| {
            // A(x0) by barycentric evaluation over nodes 1..n.
            let eval_at = |x: u64| -> Vec<u64> {
                let x = f.reduce(x);
                if (1..=n as u64).contains(&x) {
                    return bits[(x - 1) as usize].clone();
                }
                let basis = lagrange_basis_at(&f, n, x);
                let mut out = vec![0u64; t];
                for (i, &wgt) in basis.iter().enumerate() {
                    if wgt == 0 {
                        continue;
                    }
                    for (j, slot) in out.iter_mut().enumerate() {
                        if bits[i][j] == 1 {
                            *slot = f.add(*slot, wgt);
                        }
                    }
                }
                out
            };
            let y = eval_at(x0);
            let mut acc = 0u64;
            for l in 1..=half as u64 {
                let z = &bits[(l - 1) as usize];
                let w = eval_at(f.add(f.reduce(x0), f.reduce(l)));
                acc = f.add(acc, adder_indicator(&f, &y, z, &w));
            }
            acc
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<Vec<u64>, CamelotError> {
        let proof = proofs
            .first()
            .ok_or_else(|| CamelotError::MalformedProof { reason: "no prime proofs".into() })?;
        let half = self.n() as u64 / 2;
        let counts: Vec<u64> = (1..=half).map(|i| proof.eval(i)).collect();
        if counts.iter().any(|&c| c > half) {
            return Err(CamelotError::RecoveryFailed { reason: "a count exceeded n/2".into() });
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::{arthur_verify, merlin_prove, Engine};

    #[test]
    fn adder_indicator_is_exact_on_bits() {
        let f = PrimeField::new(1_000_003).unwrap();
        let t = 4;
        let to_bits = |v: u64| -> Vec<u64> { (0..t).map(|j| v >> j & 1).collect() };
        for y in 0..16u64 {
            for z in 0..16u64 {
                for w in 0..16u64 {
                    let expect = u64::from(y + z == w);
                    assert_eq!(
                        adder_indicator(&f, &to_bits(y), &to_bits(z), &to_bits(w)),
                        expect,
                        "{y} + {z} =? {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn gadgets_match_truth_tables() {
        let f = PrimeField::new(97).unwrap();
        for b in 0..8u64 {
            let (b1, b2, b3) = (b & 1, b >> 1 & 1, b >> 2 & 1);
            assert_eq!(sum_gadget(&f, b1, b2, b3), (b1 + b2 + b3) % 2);
            assert_eq!(majority_gadget(&f, b1, b2, b3), u64::from(b1 + b2 + b3 >= 2));
        }
    }

    #[test]
    fn matches_reference_on_random_instances() {
        for seed in 0..3 {
            let problem = Convolution3Sum::random(8, 3, seed);
            let outcome = Engine::sequential(4, 2).run(&problem).unwrap();
            assert_eq!(outcome.output, problem.reference_counts(), "seed {seed}");
        }
    }

    #[test]
    fn crafted_instance_with_known_solutions() {
        // A[i] = i: A[i1] + A[i2] = i1 + i2 = A[i1+i2] always — every pair
        // counts, c_i = n/2.
        let n = 8;
        let problem = Convolution3Sum::new((1..=n as u64).collect(), 5);
        assert_eq!(problem.reference_counts(), vec![4, 4, 4, 4]);
        let outcome = Engine::sequential(3, 1).run(&problem).unwrap();
        assert_eq!(outcome.output, vec![4, 4, 4, 4]);
    }

    #[test]
    fn no_solutions_when_values_constant_nonzero() {
        // A[i] = 5: 5 + 5 = 10 != 5.
        let problem = Convolution3Sum::new(vec![5; 6], 4);
        assert_eq!(problem.reference_total(), 0);
        let outcome = Engine::sequential(2, 1).run(&problem).unwrap();
        assert_eq!(outcome.output, vec![0, 0, 0]);
    }

    #[test]
    fn overflow_does_not_fake_matches() {
        // A[i1] + A[i2] overflows t bits; truncation must NOT count as a
        // match (the (1 - c_t) factor).
        let problem = Convolution3Sum::new(vec![7, 7, 6, 7], 3);
        // 7+7 = 14 = 0b1110 truncated to 0b110 = 6 = A[2]... but with the
        // carry-out factor it must not count.
        assert_eq!(problem.reference_total(), 0);
        let outcome = Engine::sequential(2, 1).run(&problem).unwrap();
        assert_eq!(outcome.output, vec![0, 0]);
    }

    #[test]
    fn merlin_arthur_roundtrip() {
        let problem = Convolution3Sum::random(6, 3, 11);
        let proofs = merlin_prove(&problem).unwrap();
        arthur_verify(&problem, &proofs, 4, 2).unwrap();
        assert_eq!(problem.recover(&proofs).unwrap(), problem.reference_counts());
    }
}
