//! # camelot-algebraic — the Appendix A proof polynomials
//!
//! The “inventory of earlier polynomials” of *“How Proofs are Prepared at
//! Camelot”* (Appendix A), each cast as a [`camelot_core::CamelotProblem`]
//! with a sequential reference oracle:
//!
//! | Problem | Theorem | Proof size / per-node time |
//! |---|---|---|
//! | [`OrthogonalVectors`] | 11(1) | `Õ(nt)` |
//! | [`HammingDistribution`] | 11(2) | `Õ(nt²)` |
//! | [`Convolution3Sum`] | 11(3) | `Õ(nt²)` |
//! | [`CountCnfSat`] | 8(1) | `O*(2^{v/2})` |
//! | [`Permanent`] | 8(2) | `O*(2^{n/2})` |
//! | [`HamiltonianCycles`] | 8(3) | `O*(2^{n/2})` |
//! | [`SetCovers`] | 9 | `O*(2^{n/2})` |

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod cnf;
mod conv3sum;
mod hamilton;
mod hamming;
mod ov;
mod permanent;
mod setcover;

pub use cnf::{CnfFormula, CountCnfSat};
pub use conv3sum::Convolution3Sum;
pub use hamilton::HamiltonianCycles;
pub use hamming::HammingDistribution;
pub use ov::{BoolMatrix, OrthogonalVectors};
pub use permanent::Permanent;
pub use setcover::SetCovers;
