//! Counting Boolean orthogonal vectors (Theorem 11(1), §A.1).
//!
//! Given `n × t` Boolean matrices `A`, `B`, count for each row `i` of `A`
//! the number of rows of `B` orthogonal to it. The proof polynomial is
//!
//! ```text
//! P(x) = B(A_1(x), …, A_t(x)),    B(z) = Σ_i Π_j (1 - b_ij z_j),
//! ```
//!
//! where `A_j` interpolates column `j` of `A` over the points `1..n`.
//! Then `P(i) = c_i`, `deg P <= (n-1) t`, and one evaluation costs
//! `Õ(nt)` — proof size and per-node time `Õ(nt)` as the theorem states.

use camelot_core::{CamelotError, CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::PrimeField;
use camelot_poly::lagrange_basis_at;

/// A Boolean matrix given as rows of bits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoolMatrix {
    rows: usize,
    cols: usize,
    bits: Vec<bool>,
}

impl BoolMatrix {
    /// Creates from a row-major bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != rows * cols`.
    #[must_use]
    pub fn new(rows: usize, cols: usize, bits: Vec<bool>) -> Self {
        assert_eq!(bits.len(), rows * cols, "bit count must match shape");
        BoolMatrix { rows, cols, bits }
    }

    /// Deterministic pseudo-random instance.
    #[must_use]
    pub fn random(rows: usize, cols: usize, density_percent: u64, seed: u64) -> Self {
        use camelot_ff::{RngLike, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        let bits = (0..rows * cols).map(|_| rng.next_u64() % 100 < density_percent).collect();
        BoolMatrix { rows, cols, bits }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.rows && j < self.cols);
        self.bits[i * self.cols + j]
    }
}

/// The orthogonal-vectors Camelot problem.
///
/// # Examples
///
/// ```
/// use camelot_algebraic::{BoolMatrix, OrthogonalVectors};
/// use camelot_core::Engine;
///
/// let a = BoolMatrix::random(8, 5, 40, 1);
/// let b = BoolMatrix::random(8, 5, 40, 2);
/// let problem = OrthogonalVectors::new(a, b);
/// let outcome = Engine::sequential(4, 2).run(&problem).unwrap();
/// assert_eq!(outcome.output, problem.reference_counts());
/// ```
#[derive(Clone, Debug)]
pub struct OrthogonalVectors {
    a: BoolMatrix,
    b: BoolMatrix,
}

impl OrthogonalVectors {
    /// Creates the problem.
    ///
    /// # Panics
    ///
    /// Panics if the matrices have different shapes or are empty.
    #[must_use]
    pub fn new(a: BoolMatrix, b: BoolMatrix) -> Self {
        assert_eq!((a.rows, a.cols), (b.rows, b.cols), "matrices must share a shape");
        assert!(a.rows > 0 && a.cols > 0, "matrices must be nonempty");
        OrthogonalVectors { a, b }
    }

    /// Ground truth by brute force (`O(n² t)`).
    #[must_use]
    pub fn reference_counts(&self) -> Vec<u64> {
        let (n, t) = (self.a.rows, self.a.cols);
        (0..n)
            .map(|i| {
                (0..n).filter(|&k| (0..t).all(|j| !(self.a.get(i, j) && self.b.get(k, j)))).count()
                    as u64
            })
            .collect()
    }
}

impl CamelotProblem for OrthogonalVectors {
    type Output = Vec<u64>;

    fn spec(&self) -> ProofSpec {
        let (n, t) = (self.a.rows as u64, self.a.cols as u64);
        ProofSpec {
            degree_bound: ((n - 1) * t) as usize,
            // q must exceed both the proof degree and the recovery points
            // 1..n, and the counts (<= n) must embed faithfully.
            min_modulus: ((n - 1) * t + 2).max(n + 1),
            value_bits: 64 - n.leading_zeros() as u64,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let (n, t) = (self.a.rows, self.a.cols);
        let a = self.a.clone();
        let b = self.b.clone();
        Box::new(move |x0: u64| {
            // Barycentric evaluation of the interpolants A_j at x0:
            // A_j(x0) = Σ_i a_ij Λ_i(x0) over the nodes 1..n, in O(nt)
            // total — no coefficient-form interpolation, so the per-node
            // cost stays linear in the input (§A.1/§A.2 of the paper).
            let basis = lagrange_basis_at(&f, n, x0);
            let mut z = vec![0u64; t];
            for (i, &w) in basis.iter().enumerate().take(n) {
                if w == 0 {
                    continue;
                }
                for (j, zj) in z.iter_mut().enumerate() {
                    if a.get(i, j) {
                        *zj = f.add(*zj, w);
                    }
                }
            }
            let mut acc = 0u64;
            for i in 0..n {
                let mut prod = 1u64;
                for (j, &zj) in z.iter().enumerate() {
                    if b.get(i, j) {
                        prod = f.mul(prod, f.sub(1, zj));
                        if prod == 0 {
                            break;
                        }
                    }
                }
                acc = f.add(acc, prod);
            }
            acc
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<Vec<u64>, CamelotError> {
        let proof = proofs
            .first()
            .ok_or_else(|| CamelotError::MalformedProof { reason: "no prime proofs".into() })?;
        let n = self.a.rows as u64;
        let counts: Vec<u64> = (1..=n).map(|i| proof.eval(i)).collect();
        if counts.iter().any(|&c| c > n) {
            return Err(CamelotError::RecoveryFailed {
                reason: "a count exceeded the number of rows".into(),
            });
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::{arthur_verify, merlin_prove, spot_check, Engine};

    #[test]
    fn matches_reference_on_random_instances() {
        for seed in 0..4 {
            let a = BoolMatrix::random(10, 6, 35, seed);
            let b = BoolMatrix::random(10, 6, 35, seed + 100);
            let problem = OrthogonalVectors::new(a, b);
            let outcome = Engine::sequential(5, 2).run(&problem).unwrap();
            assert_eq!(outcome.output, problem.reference_counts(), "seed {seed}");
        }
    }

    #[test]
    fn all_zero_b_is_orthogonal_to_everything() {
        let a = BoolMatrix::random(6, 4, 50, 9);
        let b = BoolMatrix::new(6, 4, vec![false; 24]);
        let problem = OrthogonalVectors::new(a, b);
        let outcome = Engine::sequential(3, 1).run(&problem).unwrap();
        assert_eq!(outcome.output, vec![6; 6]);
    }

    #[test]
    fn dense_matrices_have_no_orthogonal_pairs() {
        let a = BoolMatrix::new(5, 3, vec![true; 15]);
        let b = BoolMatrix::new(5, 3, vec![true; 15]);
        let problem = OrthogonalVectors::new(a, b);
        let outcome = Engine::sequential(2, 1).run(&problem).unwrap();
        assert_eq!(outcome.output, vec![0; 5]);
    }

    #[test]
    fn merlin_arthur_roundtrip() {
        let a = BoolMatrix::random(7, 5, 40, 3);
        let b = BoolMatrix::random(7, 5, 40, 4);
        let problem = OrthogonalVectors::new(a, b);
        let proofs = merlin_prove(&problem).unwrap();
        arthur_verify(&problem, &proofs, 4, 11).unwrap();
        assert_eq!(problem.recover(&proofs).unwrap(), problem.reference_counts());
    }

    #[test]
    fn tampered_proof_is_caught() {
        let a = BoolMatrix::random(6, 4, 50, 5);
        let b = BoolMatrix::random(6, 4, 50, 6);
        let problem = OrthogonalVectors::new(a, b);
        let mut proofs = merlin_prove(&problem).unwrap();
        let f = PrimeField::new_unchecked(proofs[0].modulus);
        proofs[0].coefficients[1] = f.add(proofs[0].coefficients[1], 1);
        let report = spot_check(&problem, &proofs[0], 6, 77).unwrap();
        assert!(!report.accepted);
    }

    #[test]
    fn proof_size_matches_theorem_11_bound() {
        // Proof size (degree) is Õ(nt) with c = 1.
        let (n, t) = (16usize, 8usize);
        let problem = OrthogonalVectors::new(
            BoolMatrix::random(n, t, 50, 1),
            BoolMatrix::random(n, t, 50, 2),
        );
        let spec = problem.spec();
        assert!(spec.degree_bound <= n * t);
        assert!(spec.degree_bound >= (n - 1) * t);
    }
}
