//! The permanent of an integer matrix (Theorem 8(2), §A.5).
//!
//! Starting from Ryser's formula
//! `per A = Σ_{S ⊆ [n]} (-1)^{n-|S|} Π_i Σ_{j ∈ S} a_ij`,
//! the subsets are split into two halves: the first `n/2` indicator
//! variables are interpolated through the point sequence `D(x)` (so that
//! `D(1), …, D(2^{n/2})` ranges over all of `{0,1}^{n/2}`), and the second
//! half is summed explicitly inside each evaluation. The proof polynomial
//!
//! ```text
//! P(x) = Q(D(x)),
//! Q(z) = Σ_{z_{h+1..n} ∈ {0,1}} (-1)^n Π_j (1 - 2 z_j) Π_i Σ_j a_ij z_j
//! ```
//!
//! has degree `O*(2^{n/2})`, each evaluation costs `O*(2^{n/2})`, and
//! `per A = Σ_{x=1}^{2^{n/2}} P(x)`, reconstructed over the integers from
//! `O(1)` primes by the CRT.

use camelot_core::{CamelotError, CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::{crt_i, IBig, PrimeField, Residue};
use camelot_poly::lagrange_basis_at;

/// The permanent Camelot problem for an `n × n` integer matrix.
#[derive(Clone, Debug)]
pub struct Permanent {
    /// Row-major entries, padded to an even dimension.
    entries: Vec<i64>,
    /// Padded dimension (even).
    n: usize,
    /// Original dimension.
    n_orig: usize,
}

impl Permanent {
    /// Creates the problem from a row-major `n × n` integer matrix.
    ///
    /// Odd `n` is padded with an extra row/column that is zero except for
    /// a 1 on the diagonal, which leaves the permanent unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `entries.len() != n * n` or `n == 0`.
    #[must_use]
    pub fn new(n: usize, entries: Vec<i64>) -> Self {
        assert!(n > 0, "matrix must be nonempty");
        assert_eq!(entries.len(), n * n, "entry count must match n^2");
        let n_orig = n;
        let (n, entries) = if n.is_multiple_of(2) {
            (n, entries)
        } else {
            let np = n + 1;
            let mut padded = vec![0i64; np * np];
            for i in 0..n {
                padded[i * np..i * np + n].copy_from_slice(&entries[i * n..(i + 1) * n]);
            }
            padded[np * np - 1] = 1;
            (np, padded)
        };
        Permanent { entries, n, n_orig }
    }

    /// Deterministic random matrix with entries in `[-spread, spread]`.
    #[must_use]
    pub fn random(n: usize, spread: u64, seed: u64) -> Self {
        use camelot_ff::{RngLike, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        let width = 2 * spread + 1;
        let entries = (0..n * n).map(|_| (rng.next_u64() % width) as i64 - spread as i64).collect();
        Permanent::new(n, entries)
    }

    /// Original matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n_orig
    }

    fn half(&self) -> usize {
        self.n / 2
    }

    fn max_abs(&self) -> u64 {
        self.entries.iter().map(|&v| v.unsigned_abs()).max().unwrap_or(0)
    }

    /// Ground truth by Ryser's `O(2^n n)` formula with Gray-code updates.
    ///
    /// # Panics
    ///
    /// Panics if `n > 20` or intermediate values overflow `i128`.
    #[must_use]
    pub fn reference_permanent(&self) -> IBig {
        let n = self.n;
        assert!(n <= 20, "Ryser reference limited to n <= 20");
        let mut rows = vec![0i128; n];
        let mut total = IBig::zero();
        let mut prev_gray = 0u64;
        for s in 1u64..1 << n {
            let gray = s ^ (s >> 1);
            let flipped = (gray ^ prev_gray).trailing_zeros() as usize;
            if gray & (1 << flipped) != 0 {
                for (i, row) in rows.iter_mut().enumerate() {
                    *row += i128::from(self.entries[i * n + flipped]);
                }
            } else {
                for (i, row) in rows.iter_mut().enumerate() {
                    *row -= i128::from(self.entries[i * n + flipped]);
                }
            }
            prev_gray = gray;
            let mut prod = IBig::from_i64(1);
            for &row in &rows {
                prod = prod.mul(&IBig::from_i128(row));
                if prod.is_zero() {
                    break;
                }
            }
            let popcount = gray.count_ones() as usize;
            if (n - popcount) % 2 == 1 {
                prod = prod.neg();
            }
            total = total.add(&prod);
        }
        total
    }
}

impl CamelotProblem for Permanent {
    type Output = IBig;

    fn spec(&self) -> ProofSpec {
        let h = self.half();
        let points = 1u64 << h;
        let degree = (points - 1) as usize * (self.n + h);
        // |per A| <= n! * max^n.
        let mut bits = 2.0f64;
        for i in 1..=self.n as u64 {
            bits += (i as f64).log2();
        }
        bits += self.n as f64 * ((self.max_abs() + 1) as f64).log2();
        ProofSpec {
            degree_bound: degree,
            min_modulus: (degree as u64 + 2).max(points + 1),
            value_bits: bits.ceil() as u64 + 1,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let n = self.n;
        let h = self.half();
        let points = 1usize << h;
        let a: Vec<u64> = self.entries.iter().map(|&v| f.from_i64(v)).collect();
        Box::new(move |x0: u64| {
            // z = D(x0): bit polynomials evaluated barycentrically.
            let basis = lagrange_basis_at(&f, points, x0);
            let mut z = vec![0u64; h];
            for (i, &w) in basis.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                for (j, zj) in z.iter_mut().enumerate() {
                    if i >> j & 1 == 1 {
                        *zj = f.add(*zj, w);
                    }
                }
            }
            // First-half contributions.
            let mut sign_first = 1u64;
            for &zj in &z {
                sign_first = f.mul(sign_first, f.sub(1, f.add(zj, zj)));
            }
            let mut row_first = vec![0u64; n];
            for (i, row) in row_first.iter_mut().enumerate() {
                for (j, &zj) in z.iter().enumerate() {
                    *row = f.mul_add(*row, a[i * n + j], zj);
                }
            }
            // Second half: Gray-code sweep over 2^h subsets.
            let mut rows = row_first;
            let mut acc = 0u64;
            let mut prev_gray = 0u64;
            for s in 0u64..1 << h {
                let gray = s ^ (s >> 1);
                if s > 0 {
                    let flipped = (gray ^ prev_gray).trailing_zeros() as usize;
                    let col = h + flipped;
                    if gray & (1 << flipped) != 0 {
                        for (i, row) in rows.iter_mut().enumerate() {
                            *row = f.add(*row, a[i * n + col]);
                        }
                    } else {
                        for (i, row) in rows.iter_mut().enumerate() {
                            *row = f.sub(*row, a[i * n + col]);
                        }
                    }
                }
                prev_gray = gray;
                let mut prod = sign_first;
                for &row in &rows {
                    if prod == 0 {
                        break;
                    }
                    prod = f.mul(prod, row);
                }
                // (-1)^n (1-2z)-product over the second half = (-1)^{|s|}
                // (and (-1)^n = 1 since n is even after padding).
                if gray.count_ones() % 2 == 1 {
                    acc = f.sub(acc, prod);
                } else {
                    acc = f.add(acc, prod);
                }
            }
            acc
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<IBig, CamelotError> {
        let points = 1u64 << self.half();
        let residues: Vec<Residue> = proofs.iter().map(|p| p.sum_residue(1, points)).collect();
        Ok(crt_i(&residues))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::{arthur_verify, merlin_prove, Engine};

    fn brute_permanent(n: usize, a: &[i64]) -> i128 {
        // Direct permutation expansion for tiny n.
        fn rec(n: usize, a: &[i64], row: usize, used: &mut Vec<bool>) -> i128 {
            if row == n {
                return 1;
            }
            let mut acc = 0i128;
            for col in 0..n {
                if !used[col] && a[row * n + col] != 0 {
                    used[col] = true;
                    acc += i128::from(a[row * n + col]) * rec(n, a, row + 1, used);
                    used[col] = false;
                }
            }
            acc
        }
        rec(n, a, 0, &mut vec![false; n])
    }

    #[test]
    fn ryser_matches_brute_force() {
        for seed in 0..5 {
            let p = Permanent::random(5, 3, seed);
            let brute = brute_permanent(p.n, &p.entries);
            assert_eq!(p.reference_permanent().to_i128(), Some(brute), "seed {seed}");
        }
    }

    #[test]
    fn identity_and_all_ones() {
        let id = Permanent::new(4, vec![1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1]);
        assert_eq!(id.reference_permanent().to_i64(), Some(1));
        let ones = Permanent::new(4, vec![1; 16]);
        assert_eq!(ones.reference_permanent().to_i64(), Some(24)); // 4!
    }

    #[test]
    fn camelot_matches_ryser_zero_one() {
        for seed in 0..3 {
            let p = Permanent::random(6, 0, seed); // entries in {0}: permanent 0
            let outcome = Engine::sequential(4, 2).run(&p).unwrap();
            assert_eq!(outcome.output, p.reference_permanent(), "seed {seed}");
        }
        // 0/1 matrices via density trick: use random with spread 1 then map.
        for seed in 10..13 {
            use camelot_ff::{RngLike, SplitMix64};
            let mut rng = SplitMix64::new(seed);
            let n = 6;
            let entries: Vec<i64> = (0..n * n).map(|_| (rng.next_u64() % 2) as i64).collect();
            let p = Permanent::new(n, entries);
            let outcome = Engine::sequential(4, 2).run(&p).unwrap();
            assert_eq!(outcome.output, p.reference_permanent(), "seed {seed}");
        }
    }

    #[test]
    fn camelot_matches_ryser_signed_entries() {
        for seed in 0..3 {
            let p = Permanent::random(6, 4, seed);
            let outcome = Engine::sequential(5, 2).run(&p).unwrap();
            assert_eq!(outcome.output, p.reference_permanent(), "seed {seed}");
            assert!(
                outcome.certificate.identified_faulty_nodes.is_empty(),
                "clean run must identify nobody"
            );
        }
    }

    #[test]
    fn odd_dimension_is_padded_transparently() {
        for seed in 0..3 {
            let p = Permanent::random(5, 3, seed);
            // Recover the original 5x5 block from the padded matrix.
            let mut orig = vec![0i64; 25];
            for i in 0..5 {
                for j in 0..5 {
                    orig[i * 5 + j] = p.entries[i * p.n + j];
                }
            }
            let brute = brute_permanent(5, &orig);
            let outcome = Engine::sequential(3, 1).run(&p).unwrap();
            assert_eq!(outcome.output.to_i128(), Some(brute), "seed {seed}");
        }
    }

    #[test]
    fn merlin_arthur_roundtrip() {
        let p = Permanent::random(4, 2, 7);
        let proofs = merlin_prove(&p).unwrap();
        arthur_verify(&p, &proofs, 3, 1).unwrap();
        assert_eq!(p.recover(&proofs).unwrap(), p.reference_permanent());
    }

    #[test]
    fn spec_scales_as_2_to_half_n() {
        let p = Permanent::random(8, 1, 1);
        let spec = p.spec();
        // 2^4 - 1 = 15 points, degree (n + h) * 15 = 12 * 15.
        assert_eq!(spec.degree_bound, 15 * 12);
    }
}
