//! Counting `t`-element set covers (Theorem 9, §A.6).
//!
//! Given a family `F` of subsets of `[n]` and `t`, count the ordered
//! `t`-tuples `(X_1, …, X_t) ∈ F^t` with `X_1 ∪ … ∪ X_t = [n]`, via the
//! inclusion–exclusion formula of Björklund–Husfeldt–Koivisto:
//! `c_t(F) = Σ_{Y ⊆ [n]} (-1)^{n-|Y|} |{X ∈ F : X ⊆ Y}|^t`.
//!
//! The first `⌈n/2⌉` membership indicators ride the point-enumerating
//! polynomials `D(x)`; the rest are summed explicitly per evaluation.
//! Proof size and per-node time are `O*(2^{n/2})` for polynomial-size
//! families.

use camelot_core::{CamelotError, CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::{crt_i, PrimeField, Residue, UBig};
use camelot_poly::lagrange_basis_at;

/// The set-cover-counting Camelot problem.
#[derive(Clone, Debug)]
pub struct SetCovers {
    universe: usize,
    family: Vec<u64>,
    tuple_len: u64,
}

impl SetCovers {
    /// Creates the problem for subsets of `[universe]` given as bitmasks.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is 0 or exceeds 32, if a set spills outside
    /// the universe, or if `tuple_len` is 0.
    #[must_use]
    pub fn new(universe: usize, family: Vec<u64>, tuple_len: u64) -> Self {
        assert!(universe > 0 && universe <= 32, "universe must have 1..=32 elements");
        assert!(tuple_len > 0, "tuple length must be positive");
        let full = (1u64 << universe) - 1;
        assert!(family.iter().all(|&x| x & !full == 0), "set outside the universe");
        SetCovers { universe, family, tuple_len }
    }

    /// Ground truth by direct inclusion–exclusion with `u128` arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `|F|^t` overflows `u128`.
    #[must_use]
    pub fn reference_count(&self) -> u128 {
        let n = self.universe;
        let mut total: i128 = 0;
        for y in 0u64..1 << n {
            let inside = self.family.iter().filter(|&&x| x & !y == 0).count() as u128;
            let mut power: u128 = 1;
            for _ in 0..self.tuple_len {
                power = power.checked_mul(inside).expect("reference overflow");
            }
            let sign = if (n - y.count_ones() as usize).is_multiple_of(2) { 1 } else { -1 };
            total += sign * i128::try_from(power).expect("reference overflow");
        }
        u128::try_from(total).expect("cover count must be nonnegative")
    }

    fn h1(&self) -> usize {
        self.universe.div_ceil(2)
    }
}

impl CamelotProblem for SetCovers {
    type Output = UBig;

    fn spec(&self) -> ProofSpec {
        let h1 = self.h1() as u64;
        let points = 1u64 << h1;
        let degree = ((points - 1) * h1 * (self.tuple_len + 1)) as usize;
        let bits = (self.tuple_len as f64) * ((self.family.len().max(2)) as f64).log2() + 2.0;
        ProofSpec {
            degree_bound: degree,
            min_modulus: (degree as u64 + 2).max(points + 1),
            value_bits: bits.ceil() as u64 + self.universe as u64,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let n = self.universe;
        let h1 = self.h1();
        let h2 = n - h1;
        let points = 1usize << h1;
        let first_mask = (1u64 << h1) - 1;
        Box::new(move |x0: u64| {
            let basis = lagrange_basis_at(&f, points, x0);
            let mut y = vec![0u64; h1];
            for (i, &w) in basis.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                for (j, yj) in y.iter_mut().enumerate() {
                    if i >> j & 1 == 1 {
                        *yj = f.add(*yj, w);
                    }
                }
            }
            let mut sign_first = 1u64;
            for &yj in &y {
                sign_first = f.mul(sign_first, f.sub(1, f.add(yj, yj)));
            }
            // Per set X: Π_{j ∈ X ∩ first} y_j (field value) and the
            // second-half membership mask.
            let mut first_prod = Vec::with_capacity(self.family.len());
            let mut second_need = Vec::with_capacity(self.family.len());
            for &x in &self.family {
                let mut prod = 1u64;
                let mut bits = x & first_mask;
                while bits != 0 {
                    let j = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    prod = f.mul(prod, y[j]);
                }
                first_prod.push(prod);
                second_need.push(x >> h1);
            }
            let mut acc = 0u64;
            for mask in 0u64..1 << h2 {
                let mut inner = 0u64;
                for (p, need) in first_prod.iter().zip(&second_need) {
                    if need & !mask == 0 {
                        inner = f.add(inner, *p);
                    }
                }
                let mut term = f.mul(sign_first, f.pow(inner, self.tuple_len));
                let flips = mask.count_ones() as usize + n % 2;
                if flips % 2 == 1 {
                    term = f.neg(term);
                }
                acc = f.add(acc, term);
            }
            acc
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<UBig, CamelotError> {
        let points = 1u64 << self.h1();
        let residues: Vec<Residue> = proofs.iter().map(|p| p.sum_residue(1, points)).collect();
        let value = crt_i(&residues);
        if value.is_negative() {
            return Err(CamelotError::RecoveryFailed { reason: "negative cover count".into() });
        }
        Ok(value.magnitude().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::{arthur_verify, merlin_prove, Engine};

    #[test]
    fn hand_checked_tiny_instance() {
        // Universe {0,1}, F = {{0},{1},{0,1}}, t = 2: ordered pairs whose
        // union is {0,1}: ({0},{1}),({1},{0}), ({0,1},*): 3 ways, (*,{0,1}):
        // 3 ways, minus double-counted ({0,1},{0,1}) = 2 + 3 + 3 - 1 = 7? —
        // enumerate: pairs (X,Y) with X∪Y = {0,1}: (01,01),(01,0),(01,1),
        // (0,01),(1,01),(0,1),(1,0) = 7.
        let problem = SetCovers::new(2, vec![0b01, 0b10, 0b11], 2);
        assert_eq!(problem.reference_count(), 7);
        let outcome = Engine::sequential(3, 1).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(7));
    }

    #[test]
    fn random_families_match_reference() {
        use camelot_ff::{RngLike, SplitMix64};
        for seed in 0..4 {
            let mut rng = SplitMix64::new(seed);
            let n = 7;
            let family: Vec<u64> = (0..6).map(|_| rng.next_u64() & ((1 << n) - 1)).collect();
            for t in [1u64, 2, 3] {
                let problem = SetCovers::new(n, family.clone(), t);
                let expect = problem.reference_count();
                let outcome = Engine::sequential(4, 2).run(&problem).unwrap();
                assert_eq!(outcome.output.to_u128(), Some(expect), "seed {seed} t {t}");
            }
        }
    }

    #[test]
    fn uncoverable_universe_counts_zero() {
        // No set contains element 4.
        let problem = SetCovers::new(5, vec![0b0011, 0b0101, 0b1100], 3);
        assert_eq!(problem.reference_count(), 0);
        let outcome = Engine::sequential(2, 1).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(0));
    }

    #[test]
    fn single_full_set_covers_once_per_tuple() {
        let problem = SetCovers::new(4, vec![0b1111, 0b0001], 2);
        // tuples: (full,full),(full,{0}),({0},full) = 3.
        assert_eq!(problem.reference_count(), 3);
        let outcome = Engine::sequential(2, 1).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(3));
    }

    #[test]
    fn merlin_arthur_roundtrip() {
        let problem = SetCovers::new(5, vec![0b00111, 0b11000, 0b10101, 0b01010], 2);
        let proofs = merlin_prove(&problem).unwrap();
        arthur_verify(&problem, &proofs, 4, 3).unwrap();
        assert_eq!(problem.recover(&proofs).unwrap().to_u128(), Some(problem.reference_count()));
    }
}
