//! Counting CNF-SAT solutions (Theorem 8(1), §A.2).
//!
//! Split the `v` variables into two halves. For each half-assignment `i`
//! and clause `j`, set `a_ij = 1` (resp. `b_ij = 1`) iff the assignment
//! satisfies *no* literal of the clause within its half. A full
//! assignment `(i1, i2)` satisfies the formula iff rows `i1` of `A` and
//! `i2` of `B` are orthogonal — so #CNFSAT reduces to counting orthogonal
//! pairs over `n = 2^{v/2}` rows and `t = m` columns, giving a Camelot
//! algorithm with proof size and per-node time `O*(2^{v/2})`.

use camelot_core::{CamelotError, CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::{crt_u, PrimeField, Residue, UBig};
use camelot_poly::lagrange_basis_at;

/// A CNF formula. Literals are nonzero integers: `+k` is variable `k`,
/// `-k` its negation (variables are 1-based, DIMACS style).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CnfFormula {
    vars: usize,
    clauses: Vec<Vec<i32>>,
}

impl CnfFormula {
    /// Creates a formula.
    ///
    /// # Panics
    ///
    /// Panics on a zero literal or a variable index out of range.
    #[must_use]
    pub fn new(vars: usize, clauses: Vec<Vec<i32>>) -> Self {
        for clause in &clauses {
            for &lit in clause {
                assert!(lit != 0, "literal 0 is invalid");
                assert!(lit.unsigned_abs() as usize <= vars, "literal {lit} out of range");
            }
        }
        CnfFormula { vars, clauses }
    }

    /// Deterministic random k-CNF.
    #[must_use]
    pub fn random_ksat(vars: usize, clauses: usize, k: usize, seed: u64) -> Self {
        use camelot_ff::{RngLike, SplitMix64};
        let mut rng = SplitMix64::new(seed);
        let mut out = Vec::with_capacity(clauses);
        for _ in 0..clauses {
            let mut clause = Vec::with_capacity(k);
            while clause.len() < k {
                let var = (rng.next_u64() % vars as u64) as i32 + 1;
                if clause.iter().any(|&l: &i32| l.abs() == var) {
                    continue;
                }
                let lit = if rng.next_u64().is_multiple_of(2) { var } else { -var };
                clause.push(lit);
            }
            out.push(clause);
        }
        CnfFormula::new(vars, out)
    }

    /// Number of variables.
    #[must_use]
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Number of clauses.
    #[must_use]
    pub fn clauses(&self) -> &[Vec<i32>] {
        &self.clauses
    }

    /// True if the assignment (bit `k-1` of `assignment` = variable `k`)
    /// satisfies every clause.
    #[must_use]
    pub fn satisfied_by(&self, assignment: u64) -> bool {
        self.clauses.iter().all(|clause| {
            clause.iter().any(|&lit| {
                let var = lit.unsigned_abs() as usize;
                let value = assignment >> (var - 1) & 1 == 1;
                (lit > 0) == value
            })
        })
    }

    /// Ground truth by brute force over all `2^v` assignments.
    ///
    /// # Panics
    ///
    /// Panics if `v > 24`.
    #[must_use]
    pub fn count_solutions_brute(&self) -> u64 {
        assert!(self.vars <= 24, "brute force limited to 24 variables");
        (0u64..1 << self.vars).filter(|&a| self.satisfied_by(a)).count() as u64
    }
}

/// The #CNFSAT Camelot problem.
#[derive(Clone, Debug)]
pub struct CountCnfSat {
    formula: CnfFormula,
    /// Variables after padding the split to an even count.
    padded_vars: usize,
}

impl CountCnfSat {
    /// Creates the problem. An odd variable count is padded with one
    /// unconstrained variable (the doubled count is halved on recovery).
    #[must_use]
    pub fn new(formula: CnfFormula) -> Self {
        let padded_vars = formula.vars + formula.vars % 2;
        CountCnfSat { formula, padded_vars }
    }

    fn half(&self) -> usize {
        self.padded_vars / 2
    }

    /// `true` iff half-assignment `i` satisfies no literal of `clause`
    /// within `[lo, hi)` (1-based variables).
    fn blind_in_half(&self, clause: &[i32], i: u64, lo: usize, hi: usize) -> bool {
        !clause.iter().any(|&lit| {
            let var = lit.unsigned_abs() as usize;
            if var <= lo || var > hi {
                return false;
            }
            let value = i >> (var - 1 - lo) & 1 == 1;
            (lit > 0) == value
        })
    }
}

impl CamelotProblem for CountCnfSat {
    type Output = UBig;

    fn spec(&self) -> ProofSpec {
        let n = 1u64 << self.half();
        let m = self.formula.clauses.len().max(1) as u64;
        ProofSpec {
            degree_bound: ((n - 1) * m) as usize,
            min_modulus: ((n - 1) * m + 2).max(n + 1),
            value_bits: self.padded_vars as u64 + 1,
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        let half = self.half();
        let n = 1usize << half;
        let m = self.formula.clauses.len();
        Box::new(move |x0: u64| {
            // z_j = A_j(x0) by barycentric evaluation over nodes 1..n,
            // with A_j(i) = [assignment i-1 satisfies no first-half
            // literal of clause j].
            let basis = lagrange_basis_at(&f, n, x0);
            let mut z = vec![0u64; m];
            for (i, &w) in basis.iter().enumerate().take(n) {
                if w == 0 {
                    continue;
                }
                for (j, clause) in self.formula.clauses.iter().enumerate() {
                    if self.blind_in_half(clause, i as u64, 0, half) {
                        z[j] = f.add(z[j], w);
                    }
                }
            }
            // P(x0) = Σ_{i2} Π_j (1 - b_{i2,j} z_j).
            let mut acc = 0u64;
            for i2 in 0..n as u64 {
                let mut prod = 1u64;
                for (j, clause) in self.formula.clauses.iter().enumerate() {
                    if self.blind_in_half(clause, i2, half, 2 * half) {
                        prod = f.mul(prod, f.sub(1, z[j]));
                        if prod == 0 {
                            break;
                        }
                    }
                }
                acc = f.add(acc, prod);
            }
            acc
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<UBig, CamelotError> {
        let n = 1u64 << self.half();
        let residues: Vec<Residue> = proofs.iter().map(|p| p.sum_residue(1, n)).collect();
        let mut total = crt_u(&residues);
        if self.padded_vars != self.formula.vars {
            // The padding variable doubled every solution.
            let (halved, rem) = total.div_rem_u64(2);
            if rem != 0 {
                return Err(CamelotError::RecoveryFailed {
                    reason: "padded solution count was odd".into(),
                });
            }
            total = halved;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_core::{arthur_verify, merlin_prove, Engine};

    #[test]
    fn counts_match_brute_force_random_3sat() {
        for seed in 0..4 {
            let formula = CnfFormula::random_ksat(8, 12, 3, seed);
            let expect = formula.count_solutions_brute();
            let problem = CountCnfSat::new(formula);
            let outcome = Engine::sequential(4, 2).run(&problem).unwrap();
            assert_eq!(outcome.output.to_u64(), Some(expect), "seed {seed}");
        }
    }

    #[test]
    fn odd_variable_count_is_padded() {
        for seed in 0..3 {
            let formula = CnfFormula::random_ksat(7, 10, 3, seed);
            let expect = formula.count_solutions_brute();
            let problem = CountCnfSat::new(formula);
            let outcome = Engine::sequential(3, 1).run(&problem).unwrap();
            assert_eq!(outcome.output.to_u64(), Some(expect), "seed {seed}");
        }
    }

    #[test]
    fn tautology_and_contradiction() {
        // (x1 ∨ ¬x1) is always satisfied: 2^4 solutions.
        let taut = CnfFormula::new(4, vec![vec![1, -1]]);
        let problem = CountCnfSat::new(taut);
        let outcome = Engine::sequential(2, 1).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(16));
        // (x1)(¬x1) is unsatisfiable.
        let contra = CnfFormula::new(4, vec![vec![1], vec![-1]]);
        let problem = CountCnfSat::new(contra);
        let outcome = Engine::sequential(2, 1).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(0));
    }

    #[test]
    fn empty_clause_set_counts_everything() {
        let formula = CnfFormula::new(6, vec![]);
        let expect = formula.count_solutions_brute();
        assert_eq!(expect, 64);
        let problem = CountCnfSat::new(formula);
        let outcome = Engine::sequential(2, 1).run(&problem).unwrap();
        assert_eq!(outcome.output.to_u64(), Some(64));
    }

    #[test]
    fn merlin_arthur_roundtrip() {
        let formula = CnfFormula::random_ksat(6, 9, 3, 5);
        let expect = formula.count_solutions_brute();
        let problem = CountCnfSat::new(formula);
        let proofs = merlin_prove(&problem).unwrap();
        arthur_verify(&problem, &proofs, 4, 9).unwrap();
        assert_eq!(problem.recover(&proofs).unwrap().to_u64(), Some(expect));
    }

    #[test]
    fn proof_size_is_2_to_half_v_scale() {
        let problem = CountCnfSat::new(CnfFormula::random_ksat(10, 20, 3, 1));
        let spec = problem.spec();
        // n = 2^5 = 32 rows, m = 20: degree (n-1)m = 620 — Õ(2^{v/2}).
        assert_eq!(spec.degree_bound, 31 * 20);
    }
}
