//! Deterministic transport-level fault injection ("chaos").
//!
//! The algebraic [`FaultPlan`](crate::FaultPlan) models *what* a
//! byzantine node says (§1.1, footnote 7 of the paper: crash, corrupt,
//! adversarial, equivocate). A [`ChaosPlan`] is the orthogonal,
//! transport-level repertoire a real congested-clique deployment hits:
//! slow workers, dropped or truncated frames, garbled bytes, duplicate
//! delivery, connection resets, and hangs. Both plans are seeded and
//! deterministic, and both are injected identically by every backend —
//! the socket backends sabotage real TCP replies worker-side, the
//! in-process backends simulate the observable outcome — so a chaos run
//! is bit-reproducible cross-backend.
//!
//! Determinism hinges on two rules:
//!
//! 1. **Numbers, not clocks.** Whether a delayed reply is delivered or
//!    its sender demoted is decided by comparing the *configured* delay
//!    against the *configured* I/O deadline
//!    ([`TransportTuning::deadline_ms`](crate::TransportTuning::deadline_ms)),
//!    never by racing wall clock.
//! 2. **Surgery on payload lines only.** Byte surgery
//!    ([`garble_reply`]) touches the `frame …` payload lines of the v1
//!    reply encoding exclusively — never the wall-clock-dependent
//!    `nanos` line — so the garbled symbols are a pure function of the
//!    truthful symbols and the seed.
//!
//! Every effect resolves to one of four observable outcomes, shared by
//! every backend: delivered unchanged, delivered with deterministically
//! wrong symbols (which Reed–Solomon decoding corrects and attributes,
//! exactly like an algebraic corruption), or the sender is *demoted* to
//! a crash with a structured [`FailureCause`] and the round completes
//! via erasure decoding.

use crate::transport::TransportError;
use camelot_ff::{RngLike, SplitMix64};
use std::fmt;

/// Mixing constant separating per-node chaos streams in
/// [`ChaosPlan::random`] (SplitMix64 golden-ratio increment).
const NODE_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Mixing constant separating the garble stream from the seed itself.
const GARBLE_MIX: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// How long past the configured deadline a hung (or over-deadline
/// delayed) worker sleeps before exiting silently — bounds teardown
/// joins without ever racing the coordinator's timeout.
pub(crate) const HANG_GRACE_MS: u64 = 200;

/// One transport-level fault, applied to a node's reply for the round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosEffect {
    /// A slow worker: the reply is delivered `millis` late. At or below
    /// the configured I/O deadline it still arrives (socket workers
    /// genuinely sleep); beyond it the sender is demoted with
    /// [`FailureCause::Timeout`].
    Delay {
        /// Configured delay in milliseconds.
        millis: u64,
    },
    /// The reply frame is never sent; the connection closes cleanly at
    /// the message boundary ([`FailureCause::Reset`]).
    DropFrame,
    /// The reply is cut mid-message at a seeded byte offset
    /// ([`FailureCause::Protocol`]).
    Truncate {
        /// Seed choosing the cut point.
        seed: u64,
    },
    /// Payload symbols are deterministically rewritten (seeded, reduced
    /// mod `q`, always still parseable): transport garbling that
    /// manifests as wrong symbols, which the decoder corrects and
    /// attributes to the node.
    Garble {
        /// Seed for the garble stream.
        seed: u64,
    },
    /// The reply is delivered twice; the first copy wins and the
    /// duplicate is discarded (and not counted as traffic).
    Duplicate,
    /// The connection is closed immediately without a reply
    /// ([`FailureCause::Reset`]).
    Reset,
    /// The worker never replies within any deadline
    /// ([`FailureCause::Timeout`]). Worker-side the hang is bounded to
    /// deadline-plus-grace so teardown joins cannot block forever.
    Hang,
}

/// Why a node was demoted to [`FaultKind::Crash`](crate::FaultKind::Crash).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureCause {
    /// No reply within the configured I/O deadline.
    Timeout,
    /// The connection closed before a reply frame started.
    Reset,
    /// The reply was malformed or cut mid-message.
    Protocol,
    /// A pool lane died and its respawn budget was exhausted.
    RespawnExhausted,
}

impl FailureCause {
    /// Stable short token for reports and wire surfaces.
    #[must_use]
    pub fn token(&self) -> &'static str {
        match self {
            FailureCause::Timeout => "timeout",
            FailureCause::Reset => "reset",
            FailureCause::Protocol => "protocol",
            FailureCause::RespawnExhausted => "respawn-exhausted",
        }
    }

    /// Structured classification of a per-node transport failure, used
    /// by the socket backends when demoting a dead remote.
    #[must_use]
    pub fn from_transport(err: &TransportError) -> FailureCause {
        match err {
            TransportError::TimedOut { .. } => FailureCause::Timeout,
            TransportError::Protocol { .. } | TransportError::NotWireExpressible => {
                FailureCause::Protocol
            }
            TransportError::Io { .. } | TransportError::WorkerFailed { .. } => FailureCause::Reset,
        }
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// A node demoted to crash this round, with its structured cause — the
/// ROADMAP's "a slow or dead remote is just `Crash` with a cause".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Demotion {
    /// The demoted node.
    pub node: usize,
    /// Why it was demoted.
    pub cause: FailureCause,
}

impl fmt::Display for Demotion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node {} demoted: {}", self.node, self.cause)
    }
}

/// Per-node transport-level fault assignment for a round — the chaos
/// counterpart of [`FaultPlan`](crate::FaultPlan), orthogonal to it and
/// equally deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    effects: Vec<Option<ChaosEffect>>,
}

impl ChaosPlan {
    /// No chaos anywhere.
    #[must_use]
    pub fn quiet(nodes: usize) -> Self {
        ChaosPlan { effects: vec![None; nodes] }
    }

    /// Assigns specific effects to specific nodes.
    ///
    /// # Errors
    ///
    /// A node index out of range.
    pub fn with_effects(
        nodes: usize,
        effects: &[(usize, ChaosEffect)],
    ) -> Result<Self, TransportError> {
        let mut plan = Self::quiet(nodes);
        for &(node, effect) in effects {
            let Some(slot) = plan.effects.get_mut(node) else {
                return Err(TransportError::Protocol {
                    reason: format!("chaos effect assigned to nonexistent node {node}"),
                });
            };
            *slot = Some(effect);
        }
        Ok(plan)
    }

    /// A seeded random plan: each node independently draws an effect
    /// with probability `rate_percent`/100 from the default mix (delay,
    /// drop, truncate, garble, duplicate, reset, hang — uniformly).
    #[must_use]
    pub fn random(nodes: usize, rate_percent: u8, seed: u64) -> Self {
        const DEFAULT_MIX: &[ChaosEffect] = &[
            ChaosEffect::Delay { millis: 5 },
            ChaosEffect::DropFrame,
            ChaosEffect::Truncate { seed: 0 },
            ChaosEffect::Garble { seed: 0 },
            ChaosEffect::Duplicate,
            ChaosEffect::Reset,
            ChaosEffect::Hang,
        ];
        Self::random_with_mix(nodes, rate_percent, seed, DEFAULT_MIX)
    }

    /// Like [`ChaosPlan::random`] with an explicit effect mix to draw
    /// from (an empty mix yields a quiet plan). `Truncate`/`Garble`
    /// entries get fresh per-node seeds drawn from the plan seed.
    #[must_use]
    pub fn random_with_mix(nodes: usize, rate_percent: u8, seed: u64, mix: &[ChaosEffect]) -> Self {
        let rate = u64::from(rate_percent.min(100));
        let mut effects = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let mut rng = SplitMix64::new(seed ^ (node as u64).wrapping_mul(NODE_MIX));
            let drawn = !mix.is_empty() && rng.next_u64() % 100 < rate;
            let effect = if drawn {
                mix.get((rng.next_u64() % mix.len() as u64) as usize).copied().map(|e| match e {
                    ChaosEffect::Truncate { .. } => ChaosEffect::Truncate { seed: rng.next_u64() },
                    ChaosEffect::Garble { .. } => ChaosEffect::Garble { seed: rng.next_u64() },
                    other => other,
                })
            } else {
                None
            };
            effects.push(effect);
        }
        ChaosPlan { effects }
    }

    /// Number of nodes the plan covers.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.effects.len()
    }

    /// The effect assigned to `node` (`None` when out of range or
    /// unafflicted).
    #[must_use]
    pub fn effect(&self, node: usize) -> Option<ChaosEffect> {
        self.effects.get(node).copied().flatten()
    }

    /// True when no node has an effect.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.effects.iter().all(Option::is_none)
    }

    /// Indices of all afflicted nodes.
    #[must_use]
    pub fn affected_nodes(&self) -> Vec<usize> {
        self.effects.iter().enumerate().filter_map(|(i, e)| e.map(|_| i)).collect()
    }
}

/// What a chaos-afflicted worker actually does with its encoded reply —
/// the *sender-side* resolution of a [`ChaosEffect`], shared verbatim
/// by the socket workers (which perform it over real TCP) and the
/// in-process simulation (which maps it to the observable outcome).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerAction {
    /// Sleep `delay_ms`, then send `copies` copies of `text`.
    Deliver {
        /// The reply bytes to put on the wire.
        text: String,
        /// How many copies to send (2 for [`ChaosEffect::Duplicate`]).
        copies: usize,
        /// Milliseconds to sleep first (a within-deadline delay).
        delay_ms: u64,
    },
    /// Sleep `sleep_ms` (bounded: at most deadline + grace), then close
    /// without replying — a hang, as observed by the coordinator's real
    /// read timeout.
    Mute {
        /// Milliseconds to sleep before exiting silently.
        sleep_ms: u64,
    },
    /// Close the connection immediately without replying.
    Close,
    /// Send a strict prefix of the reply, then close (mid-message cut).
    Partial {
        /// The truncated bytes to send.
        text: String,
    },
}

/// Resolves an effect into the action the worker performs, given the
/// configured deadline (milliseconds) and the round's modulus. The
/// delivery-versus-demotion decision compares `millis` against
/// `deadline_ms` — configured numbers, so every backend agrees.
#[must_use]
pub fn worker_action(
    effect: Option<ChaosEffect>,
    deadline_ms: u64,
    modulus: u64,
    reply: String,
) -> WorkerAction {
    match effect {
        None => WorkerAction::Deliver { text: reply, copies: 1, delay_ms: 0 },
        Some(ChaosEffect::Delay { millis }) => {
            if millis <= deadline_ms {
                WorkerAction::Deliver { text: reply, copies: 1, delay_ms: millis }
            } else {
                WorkerAction::Mute {
                    sleep_ms: millis.min(deadline_ms.saturating_add(HANG_GRACE_MS)),
                }
            }
        }
        Some(ChaosEffect::Hang) => {
            WorkerAction::Mute { sleep_ms: deadline_ms.saturating_add(HANG_GRACE_MS) }
        }
        Some(ChaosEffect::DropFrame | ChaosEffect::Reset) => WorkerAction::Close,
        Some(ChaosEffect::Truncate { seed }) => {
            WorkerAction::Partial { text: truncate_reply(&reply, seed) }
        }
        Some(ChaosEffect::Garble { seed }) => WorkerAction::Deliver {
            text: garble_reply(&reply, seed, modulus),
            copies: 1,
            delay_ms: 0,
        },
        Some(ChaosEffect::Duplicate) => {
            WorkerAction::Deliver { text: reply, copies: 2, delay_ms: 0 }
        }
    }
}

/// The outcome a coordinator observes for an action that never delivers
/// a parseable reply (`None` for delivering actions) — the in-process
/// simulation's demotion rule, matching what the socket coordinator's
/// real timeout/EOF/parse machinery reports for the same action.
#[must_use]
pub fn simulated_failure(action: &WorkerAction) -> Option<FailureCause> {
    match action {
        WorkerAction::Deliver { .. } => None,
        WorkerAction::Mute { .. } => Some(FailureCause::Timeout),
        WorkerAction::Close => Some(FailureCause::Reset),
        WorkerAction::Partial { .. } => Some(FailureCause::Protocol),
    }
}

/// A strict prefix of `wire` cut at a seeded offset, guaranteed to end
/// strictly before the final `end` line: the receiver always observes a
/// nonempty message cut mid-frame (a protocol violation), never a clean
/// boundary EOF and never a complete message.
#[must_use]
pub fn truncate_reply(wire: &str, seed: u64) -> String {
    // Keep at least 1 byte (an empty send would look like a clean
    // boundary close, i.e. a Reset) and drop at least the trailing
    // "end\n" (4 bytes) so the message can never be complete.
    let span = wire.len().saturating_sub(4);
    let cut = if span == 0 {
        wire.len().min(1)
    } else {
        let mut rng = SplitMix64::new(seed);
        1 + (rng.next_u64() % span as u64) as usize
    };
    // The v1 encoding is pure ASCII, so any byte offset is a char
    // boundary; the fallback is unreachable.
    wire.get(..cut).unwrap_or("").to_string()
}

/// Deterministically garbles the payload of a v1 reply: every numeric
/// symbol token on a `frame …` line is shifted by a seeded nonzero
/// offset mod `modulus`. Erasure markers (`-`), bookkeeping lines
/// (`node`, `evals`, and crucially the wall-clock `nanos` line), and
/// the message structure are untouched, so the result always parses —
/// garbling surfaces as wrong symbols for the decoder to correct, and
/// the output is a pure function of the truthful symbols and the seed.
#[must_use]
pub fn garble_reply(wire: &str, seed: u64, modulus: u64) -> String {
    let group = u128::from(modulus.saturating_sub(1).max(1));
    let mut rng = SplitMix64::new(seed ^ GARBLE_MIX);
    let mut out = String::with_capacity(wire.len());
    for line in wire.lines() {
        if line.starts_with("frame ") {
            for (i, token) in line.split_ascii_whitespace().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                match (i >= 2, token.parse::<u64>()) {
                    (true, Ok(v)) => {
                        let offset = 1 + u128::from(rng.next_u64()) % group;
                        let garbled = (u128::from(v) + offset) % u128::from(modulus.max(2));
                        out.push_str(&garbled.to_string());
                    }
                    _ => out.push_str(token),
                }
            }
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_and_rate_bounded() {
        let a = ChaosPlan::random(64, 30, 7);
        let b = ChaosPlan::random(64, 30, 7);
        let c = ChaosPlan::random(64, 30, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(ChaosPlan::random(64, 0, 7).is_quiet());
        assert_eq!(ChaosPlan::random(64, 100, 7).affected_nodes().len(), 64);
        // 30% of 64 nodes: loosely bounded, exactly reproducible.
        let hit = a.affected_nodes().len();
        assert!(hit > 4 && hit < 40, "{hit} afflicted of 64 at 30%");
    }

    #[test]
    fn with_effects_rejects_out_of_range_nodes() {
        assert!(ChaosPlan::with_effects(3, &[(3, ChaosEffect::Hang)]).is_err());
        let plan = ChaosPlan::with_effects(3, &[(1, ChaosEffect::Hang)]).unwrap();
        assert_eq!(plan.effect(1), Some(ChaosEffect::Hang));
        assert_eq!(plan.effect(0), None);
        assert_eq!(plan.effect(99), None);
        assert_eq!(plan.affected_nodes(), vec![1]);
        assert!(!plan.is_quiet());
    }

    #[test]
    fn delay_resolution_compares_numbers_not_clocks() {
        let reply = "camelot-reply v1\nnode 0\nevals 1\nnanos 7\nframe all 5\nend\n".to_string();
        let under = worker_action(Some(ChaosEffect::Delay { millis: 10 }), 300, 97, reply.clone());
        assert_eq!(under, WorkerAction::Deliver { text: reply.clone(), copies: 1, delay_ms: 10 });
        let over = worker_action(Some(ChaosEffect::Delay { millis: 500 }), 300, 97, reply.clone());
        assert_eq!(over, WorkerAction::Mute { sleep_ms: 500 });
        let hang = worker_action(Some(ChaosEffect::Hang), 300, 97, reply);
        assert_eq!(hang, WorkerAction::Mute { sleep_ms: 300 + HANG_GRACE_MS });
        assert_eq!(simulated_failure(&under), None);
        assert_eq!(simulated_failure(&over), Some(FailureCause::Timeout));
        assert_eq!(simulated_failure(&hang), Some(FailureCause::Timeout));
    }

    #[test]
    fn truncation_is_nonempty_and_never_complete() {
        let wire = "camelot-reply v1\nnode 0\nevals 2\nnanos 123\nframe all 10 20\nend\n";
        for seed in 0..200 {
            let cut = truncate_reply(wire, seed);
            assert!(!cut.is_empty(), "empty cut would read as a clean close");
            assert!(wire.starts_with(&cut));
            assert!(
                !cut.lines().any(|l| l.trim_end() == "end"),
                "seed {seed}: cut still carries the end marker: {cut:?}"
            );
        }
        assert_eq!(truncate_reply(wire, 42), truncate_reply(wire, 42));
    }

    #[test]
    fn garbling_preserves_structure_and_changes_symbols() {
        let wire = "camelot-reply v1\nnode 1\nevals 4\nnanos 999\nframe all 10 - 20 96\n\
                    frame 0 1 2 - 3\nend\n";
        let garbled = garble_reply(wire, 5, 97);
        assert_eq!(garbled, garble_reply(wire, 5, 97));
        assert_ne!(garbled, garble_reply(wire, 6, 97));
        let lines: Vec<&str> = garbled.lines().collect();
        assert_eq!(lines[0], "camelot-reply v1");
        assert_eq!(lines[1], "node 1");
        assert_eq!(lines[2], "evals 4");
        assert_eq!(lines[3], "nanos 999", "the wall-clock line must never be touched");
        assert_eq!(lines[5].split_ascii_whitespace().nth(4), Some("-"), "erasures survive");
        assert_eq!(lines[6], "end");
        let all: Vec<&str> = lines[4].split_ascii_whitespace().collect();
        assert_eq!(all[0], "frame");
        assert_eq!(all[1], "all");
        for (orig, new) in [("10", all[2]), ("20", all[4]), ("96", all[5])] {
            assert_ne!(orig, new, "every symbol must change");
            assert!(new.parse::<u64>().unwrap() < 97, "garbled symbols stay reduced");
        }
    }

    #[test]
    fn garbling_ignores_the_nanos_line_content() {
        // Two replies identical except for wall clock garble to the
        // same symbols — the cross-backend determinism requirement.
        let a = "camelot-reply v1\nnode 0\nevals 1\nnanos 1\nframe all 42\nend\n";
        let b = "camelot-reply v1\nnode 0\nevals 1\nnanos 999999999\nframe all 42\nend\n";
        let ga = garble_reply(a, 9, 1_000_003);
        let gb = garble_reply(b, 9, 1_000_003);
        let symbol = |g: &str| {
            g.lines()
                .find(|l| l.starts_with("frame"))
                .and_then(|l| l.split_ascii_whitespace().nth(2).map(str::to_string))
        };
        assert_eq!(symbol(&ga), symbol(&gb));
        assert_ne!(symbol(&ga).as_deref(), Some("42"));
    }

    #[test]
    fn causes_have_stable_tokens() {
        assert_eq!(FailureCause::Timeout.to_string(), "timeout");
        assert_eq!(FailureCause::RespawnExhausted.token(), "respawn-exhausted");
        let d = Demotion { node: 3, cause: FailureCause::Reset };
        assert_eq!(d.to_string(), "node 3 demoted: reset");
    }
}
