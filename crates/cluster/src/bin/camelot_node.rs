//! `camelot-node` — an out-of-process compute node.
//!
//! One worker serves one round task: it connects to the coordinator,
//! reads a `camelot-task v1` message, reconstructs the round from it
//! alone (field, fault behaviour, evaluation programs, assigned
//! points — the paper's "common input"), evaluates its slice, applies
//! its fault sender-side, and replies with its `camelot-reply v1`
//! frames. Spawned by `SocketTransport` in process mode:
//!
//! ```text
//! camelot-node --connect 127.0.0.1:PORT
//! ```
//!
//! With `--persist` the node keeps the connection and serves tasks
//! until the coordinator sends a `camelot-shutdown v1` frame (or closes
//! the connection at a message boundary) — the persistent-worker-pool
//! mode used by `camelot-serve`.

use camelot_cluster::{serve_worker, serve_worker_loop};
use std::net::TcpStream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut addr = None;
    let mut persist = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => addr = args.next(),
            "--persist" => persist = true,
            "--help" | "-h" => {
                println!("usage: camelot-node --connect HOST:PORT [--persist]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("camelot-node: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("camelot-node: missing --connect HOST:PORT");
        return ExitCode::FAILURE;
    };
    let stream = match TcpStream::connect(&addr) {
        Ok(stream) => stream,
        Err(err) => {
            eprintln!("camelot-node: connecting to {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let served = if persist { serve_worker_loop(stream) } else { serve_worker(stream) };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("camelot-node: {err}");
            ExitCode::FAILURE
        }
    }
}
