//! `camelot-node` — an out-of-process compute node.
//!
//! One worker serves one round task: it connects to the coordinator,
//! reads a `camelot-task v1` message, reconstructs the round from it
//! alone (field, fault behaviour, evaluation programs, assigned
//! points — the paper's "common input"), evaluates its slice, applies
//! its fault sender-side, and replies with its `camelot-reply v1`
//! frames. Spawned by `SocketTransport` in process mode:
//!
//! ```text
//! camelot-node --connect 127.0.0.1:PORT
//! ```

use camelot_cluster::serve_worker;
use std::net::TcpStream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut addr = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => addr = args.next(),
            "--help" | "-h" => {
                println!("usage: camelot-node --connect HOST:PORT");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("camelot-node: unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("camelot-node: missing --connect HOST:PORT");
        return ExitCode::FAILURE;
    };
    let stream = match TcpStream::connect(&addr) {
        Ok(stream) => stream,
        Err(err) => {
            eprintln!("camelot-node: connecting to {addr}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match serve_worker(stream) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("camelot-node: {err}");
            ExitCode::FAILURE
        }
    }
}
