//! The transport-independent round model.
//!
//! One proof-preparation round (§1.3 step 1 of the paper): `K` nodes
//! each evaluate their contiguous slice of the evaluation points for
//! every polynomial in the round, transform the truthful symbols through
//! their [`FaultKind`](crate::FaultKind) sender-side, and broadcast the
//! resulting *frames*. A [`Transport`](crate::Transport) backend only
//! moves frames; the logic that computes them ([`compute_node_frames`])
//! and reassembles the per-receiver views ([`assemble_round`]) lives
//! here, shared by every backend — including the out-of-process
//! `camelot-node` worker.

use crate::chaos::Demotion;
use crate::fault::{
    adversarial_symbol, corrupt_symbol, equivocated_symbol, fault_lane, FaultKind, FaultPlan,
};
use crate::transport::{frame_wire_cost, EvalProgram};
use camelot_ff::PrimeField;
use std::time::{Duration, Instant};

/// The node-side computation of one round: `width` polynomials, each
/// evaluable at any point of `Z_q`. A batched engine round carries one
/// polynomial per problem; a plain round has `width() == 1`.
pub trait RoundEval: Sync {
    /// Number of polynomials evaluated in the round.
    fn width(&self) -> usize;

    /// `P_poly(x) mod q`.
    fn eval(&self, poly: usize, x: u64) -> u64;

    /// Wire-expressible programs for process-spanning transports, when
    /// the polynomials can be described on the wire (one per polynomial,
    /// in round order). `None` — the default — restricts the round to
    /// in-process backends.
    fn programs(&self) -> Option<Vec<EvalProgram>> {
        None
    }
}

/// A single closure as a width-1 round.
pub struct SingleEval<F>(pub F);

impl<F: Fn(u64) -> u64 + Sync> RoundEval for SingleEval<F> {
    fn width(&self) -> usize {
        1
    }

    fn eval(&self, _poly: usize, x: u64) -> u64 {
        (self.0)(x)
    }
}

/// Wire-expressible programs as a round (usable on every backend,
/// including process-spanning ones).
pub struct ProgramEval {
    field: PrimeField,
    programs: Vec<EvalProgram>,
}

impl ProgramEval {
    /// A round evaluating the given programs over `field`.
    ///
    /// # Panics
    ///
    /// Panics if `programs` is empty.
    #[must_use]
    pub fn new(field: &PrimeField, programs: Vec<EvalProgram>) -> Self {
        assert!(!programs.is_empty(), "a round needs at least one polynomial");
        ProgramEval { field: *field, programs }
    }
}

impl RoundEval for ProgramEval {
    fn width(&self) -> usize {
        self.programs.len()
    }

    fn eval(&self, poly: usize, x: u64) -> u64 {
        self.programs[poly].eval(&self.field, x)
    }

    fn programs(&self) -> Option<Vec<EvalProgram>> {
        Some(self.programs.clone())
    }
}

/// Everything a round shares besides the polynomials: the field, the
/// evaluation points (common to all polynomials), and the fault plan.
#[derive(Clone, Copy, Debug)]
pub struct RoundSpec<'a> {
    /// The prime field of the round.
    pub field: &'a PrimeField,
    /// The evaluation points, identical at every node (derived from the
    /// common input).
    pub points: &'a [u64],
    /// Behaviour assignment for the `K` nodes.
    pub plan: &'a FaultPlan,
}

/// Work accounting for one node.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Number of polynomial evaluations this node performed.
    pub evaluations: usize,
    /// Wall-clock time the node spent evaluating.
    pub elapsed: Duration,
}

/// The symbols a node puts on the transport, covering its own point
/// slice across all `width` polynomials, point-major
/// (`body[(j - lo) * width + poly]`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameBody {
    /// The same frame reaches every receiver (honest, crashed, corrupt,
    /// and adversarial senders). `None` entries are erasures — the
    /// explicit marker the simulation uses for a crashed sender.
    Uniform(Vec<Option<u64>>),
    /// An equivocating sender: the truthful symbols it computed (`base`,
    /// diagnostic — no receiver ever sees it) plus one distinct frame
    /// per receiver.
    PerReceiver {
        /// The symbols the node actually computed before lying.
        base: Vec<Option<u64>>,
        /// `per_receiver[r]` is the frame unicast to receiver `r`.
        per_receiver: Vec<Vec<Option<u64>>>,
    },
}

/// One node's complete contribution to a round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeFrames {
    /// The sending node.
    pub node: usize,
    /// Evaluations the node performed (its slice length × round width).
    pub evaluations: usize,
    /// Wall-clock evaluation time at the node.
    pub elapsed: Duration,
    /// The broadcast payload.
    pub body: FrameBody,
}

/// Balanced contiguous slice of node `node`: `[lo, hi)` over
/// `num_points` points and `nodes` nodes (sizes differ by at most one —
/// the intrinsic workload balance of §1.4 of the paper).
#[must_use]
pub fn node_slice(num_points: usize, nodes: usize, node: usize) -> (usize, usize) {
    (node * num_points / nodes, (node + 1) * num_points / nodes)
}

/// Balanced contiguous workload assignment: node `i` owns points
/// `[i·e/K, (i+1)·e/K)`.
#[must_use]
pub fn assign_points(num_points: usize, nodes: usize) -> Vec<usize> {
    let mut owners = Vec::with_capacity(num_points);
    for node in 0..nodes {
        let (lo, hi) = node_slice(num_points, nodes, node);
        owners.extend(std::iter::repeat_n(node, hi - lo));
    }
    owners
}

/// What one node does in a round: evaluate its slice (`points[lo..hi]`
/// of the global point list, `lo` being the global index of the first),
/// then transform the truthful symbols through its fault behaviour into
/// the frames it broadcasts. Pure given its inputs — every backend and
/// the out-of-process worker produce identical frames.
#[must_use]
pub fn compute_node_frames(
    field: &PrimeField,
    kind: FaultKind,
    nodes: usize,
    node: usize,
    lo: usize,
    points: &[u64],
    eval: &dyn RoundEval,
) -> NodeFrames {
    let width = eval.width();
    let start = Instant::now();
    let mut truth = Vec::with_capacity(points.len() * width);
    for &x in points {
        for poly in 0..width {
            truth.push(eval.eval(poly, x));
        }
    }
    let elapsed = start.elapsed();
    let evaluations = truth.len();

    let body = match kind {
        FaultKind::Honest => FrameBody::Uniform(truth.into_iter().map(Some).collect()),
        FaultKind::Crash => FrameBody::Uniform(vec![None; evaluations]),
        FaultKind::Corrupt { seed } => FrameBody::Uniform(
            truth
                .iter()
                .enumerate()
                .map(|(k, &t)| {
                    let lane = fault_lane(lo + k / width, k % width);
                    Some(corrupt_symbol(field, seed, lane, t))
                })
                .collect(),
        ),
        FaultKind::Adversarial { offset } => FrameBody::Uniform(
            truth.iter().map(|&t| Some(adversarial_symbol(field, offset, t))).collect(),
        ),
        FaultKind::Equivocate { seed } => {
            let per_receiver = (0..nodes)
                .map(|receiver| {
                    truth
                        .iter()
                        .enumerate()
                        .map(|(k, &t)| {
                            let lane = fault_lane(lo + k / width, k % width);
                            Some(equivocated_symbol(field, seed, receiver, lane, t))
                        })
                        .collect()
                })
                .collect();
            FrameBody::PerReceiver { base: truth.into_iter().map(Some).collect(), per_receiver }
        }
    };
    NodeFrames { node, evaluations, elapsed, body }
}

/// The frames the round assembly books for a node that was *demoted*
/// to crash (transport failure or injected chaos): indistinguishable
/// from an algebraic [`FaultKind::Crash`] — full erasure over the
/// node's slice, with the evaluation count the slice would have had
/// (the shared work accounting stays identical across backends) and
/// zero wall clock (nothing arrived to measure).
#[must_use]
pub(crate) fn crash_frames(
    num_points: usize,
    nodes: usize,
    node: usize,
    width: usize,
) -> NodeFrames {
    let (lo, hi) = node_slice(num_points, nodes, node);
    let evaluations = (hi - lo) * width;
    NodeFrames {
        node,
        evaluations,
        elapsed: Duration::ZERO,
        body: FrameBody::Uniform(vec![None; evaluations]),
    }
}

/// Communication accounting for one round, identical across backends:
/// computed from the frames' content in the v1 frame encoding (the
/// socket backend literally ships that encoding).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundTraffic {
    /// Symbol messages put on the medium: a uniform sender broadcasts
    /// each of its symbols once, an equivocator unicasts every symbol to
    /// each of the `K` receivers, and a crashed sender contributes
    /// nothing (its explicit erasure frame is simulation bookkeeping).
    pub symbols_broadcast: usize,
    /// Bytes those payload frame lines occupy in the line-oriented v1
    /// frame encoding (a traffic model, identical on every backend;
    /// protocol headers and bookkeeping lines are excluded).
    pub bytes_on_wire: u64,
}

/// The outcome of one proof-preparation round as seen by polynomial
/// `poly` of the round: the consensus word, plus sparse per-receiver
/// patches for equivocated indices.
#[derive(Clone, Debug)]
pub struct Broadcast {
    /// Symbol per evaluation point; `None` where the owning node
    /// crashed. Indices owned by an equivocator hold the sender-computed
    /// (truthful) symbol — diagnostic only; receivers see their patched
    /// [`Broadcast::view_for`] instead.
    pub symbols: Vec<Option<u64>>,
    /// Owning node of each evaluation point.
    pub assignment: Vec<usize>,
    /// Per-node statistics (this polynomial's share of the round).
    pub stats: Vec<NodeStats>,
    plan: FaultPlan,
    /// Sparse per-receiver patches: `(global index, value per receiver)`
    /// for every index owned by an equivocating node.
    patches: Vec<(usize, Vec<Option<u64>>)>,
}

impl Broadcast {
    /// The word as received by a particular node: the consensus word
    /// with only the equivocated indices patched (each equivocated index
    /// carries one stored value per receiver — `O(e + #equivocated)` per
    /// view, not a per-index fault-plan walk).
    ///
    /// # Panics
    ///
    /// Panics if `receiver` is not a node of the round.
    #[must_use]
    pub fn view_for(&self, receiver: usize) -> Vec<Option<u64>> {
        assert!(receiver < self.plan.nodes(), "receiver {receiver} is not in the cluster");
        let mut word = self.symbols.clone();
        for &(idx, ref values) in &self.patches {
            word[idx] = values[receiver];
        }
        word
    }

    /// Points owned by a given node.
    #[must_use]
    pub fn points_of(&self, node: usize) -> Vec<usize> {
        self.assignment.iter().enumerate().filter_map(|(i, &o)| (o == node).then_some(i)).collect()
    }

    /// The fault plan used for the round.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total evaluations across all nodes (this polynomial's share).
    #[must_use]
    pub fn total_evaluations(&self) -> usize {
        self.stats.iter().map(|s| s.evaluations).sum()
    }

    /// Maximum per-node evaluation count (the wall-clock-critical node).
    #[must_use]
    pub fn max_node_evaluations(&self) -> usize {
        self.stats.iter().map(|s| s.evaluations).max().unwrap_or(0)
    }

    /// True when `other` is observationally identical: same consensus
    /// word, assignment, and per-receiver views (stats — wall-clock —
    /// excluded). The cross-backend bit-identity criterion.
    #[must_use]
    pub fn same_word(&self, other: &Broadcast) -> bool {
        self.symbols == other.symbols
            && self.assignment == other.assignment
            && self.plan == other.plan
            && self.patches == other.patches
    }
}

/// One round's assembled result: one [`Broadcast`] per polynomial plus
/// the communication accounting.
#[derive(Clone, Debug)]
pub struct RoundOutcome {
    /// Per-polynomial broadcasts, in round order.
    pub broadcasts: Vec<Broadcast>,
    /// Communication accounting for the whole round.
    pub traffic: RoundTraffic,
    /// Nodes demoted to crash by the transport this round (dead or
    /// chaos-afflicted remotes), with their structured causes — sorted
    /// by node, at most one entry per node, identical across backends.
    pub demotions: Vec<Demotion>,
}

/// Reassembles the per-node frames of one round into per-polynomial
/// broadcasts — the receiver side every backend shares. `frames` may
/// arrive in any order; there must be exactly one per node. `demotions`
/// lists nodes the transport demoted to crash: their (synthesized)
/// frames are booked at a crashed sender's wire cost — nothing usable
/// reached the medium.
///
/// # Panics
///
/// Panics if a node's frames are missing, duplicated, or mis-sized.
#[must_use]
pub fn assemble_round(
    spec: &RoundSpec<'_>,
    width: usize,
    frames: Vec<NodeFrames>,
    mut demotions: Vec<Demotion>,
) -> RoundOutcome {
    demotions.sort();
    demotions.dedup_by_key(|d| d.node);
    let nodes = spec.plan.nodes();
    let e = spec.points.len();
    let mut by_node: Vec<Option<NodeFrames>> = (0..nodes).map(|_| None).collect();
    for frame in frames {
        assert!(frame.node < nodes, "frame from nonexistent node {}", frame.node);
        assert!(by_node[frame.node].is_none(), "duplicate frames from node {}", frame.node);
        let node = frame.node;
        by_node[node] = Some(frame);
    }

    let assignment = assign_points(e, nodes);
    let mut traffic = RoundTraffic::default();
    let mut broadcasts: Vec<Broadcast> = (0..width)
        .map(|_| Broadcast {
            symbols: vec![None; e],
            assignment: assignment.clone(),
            stats: vec![NodeStats::default(); nodes],
            plan: spec.plan.clone(),
            patches: Vec::new(),
        })
        .collect();

    for (node, slot) in by_node.iter_mut().enumerate() {
        let frame = slot.take().unwrap_or_else(|| panic!("no frames from node {node}"));
        let (lo, hi) = node_slice(e, nodes, node);
        let slice_len = hi - lo;
        assert_eq!(frame.evaluations, slice_len * width, "mis-sized frames from node {node}");
        let kind = if demotions.iter().any(|d| d.node == node) {
            FaultKind::Crash
        } else {
            spec.plan.kind(node)
        };
        let (symbols, bytes) = frame_wire_cost(kind, &frame.body);
        traffic.symbols_broadcast += symbols;
        traffic.bytes_on_wire += bytes;

        let (base, per_receiver) = match &frame.body {
            FrameBody::Uniform(symbols) => (symbols, None),
            FrameBody::PerReceiver { base, per_receiver } => (base, Some(per_receiver)),
        };
        assert_eq!(base.len(), slice_len * width, "mis-sized frame body from node {node}");
        for (p, broadcast) in broadcasts.iter_mut().enumerate() {
            // Each polynomial gets its exact share of the node's work;
            // wall-clock is attributed evenly across the round's
            // polynomials.
            broadcast.stats[node].evaluations = slice_len;
            broadcast.stats[node].elapsed = frame.elapsed / width as u32;
            for j in 0..slice_len {
                broadcast.symbols[lo + j] = base[j * width + p];
            }
            if let Some(receivers) = per_receiver {
                for j in 0..slice_len {
                    let values = receivers.iter().map(|frame| frame[j * width + p]).collect();
                    broadcast.patches.push((lo + j, values));
                }
            }
        }
    }
    RoundOutcome { broadcasts, traffic, demotions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_round;
    use crate::transport::ClusterConfig;

    fn field() -> PrimeField {
        PrimeField::new(1_000_003).unwrap()
    }

    #[test]
    fn assignment_is_balanced_and_complete() {
        for (e, k) in [(10usize, 3usize), (7, 7), (100, 9), (5, 8)] {
            let owners = assign_points(e, k);
            assert_eq!(owners.len(), e);
            let mut counts = vec![0usize; k];
            for &o in &owners {
                counts[o] += 1;
            }
            let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(hi - lo <= 1, "e={e} k={k}: counts {counts:?}");
            // Contiguity: owners must be non-decreasing.
            assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn honest_round_reproduces_evaluations() {
        let f = field();
        let points: Vec<u64> = (0..20).collect();
        let plan = FaultPlan::all_honest(4);
        let b = run_round(&ClusterConfig::sequential(4), &f, &points, &plan, |x| f.mul(x, x));
        for (i, s) in b.symbols.iter().enumerate() {
            assert_eq!(*s, Some(f.mul(i as u64, i as u64)));
        }
        assert_eq!(b.total_evaluations(), 20);
        assert_eq!(b.max_node_evaluations(), 5);
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = field();
        let points: Vec<u64> = (0..33).collect();
        let plan = FaultPlan::all_honest(5);
        let seq = run_round(&ClusterConfig::sequential(5), &f, &points, &plan, |x| f.pow(x, 3));
        let par = run_round(&ClusterConfig::parallel(5), &f, &points, &plan, |x| f.pow(x, 3));
        assert_eq!(seq.symbols, par.symbols);
        assert_eq!(seq.assignment, par.assignment);
    }

    #[test]
    fn crash_erases_exactly_the_owned_slice() {
        let f = field();
        let points: Vec<u64> = (0..12).collect();
        let plan = FaultPlan::with_faults(3, &[(1, FaultKind::Crash)]);
        let b = run_round(&ClusterConfig::sequential(3), &f, &points, &plan, |x| x);
        for (i, s) in b.symbols.iter().enumerate() {
            if b.assignment[i] == 1 {
                assert_eq!(*s, None);
            } else {
                assert_eq!(*s, Some(i as u64));
            }
        }
        assert_eq!(b.points_of(1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn corrupt_changes_every_owned_symbol() {
        let f = field();
        let points: Vec<u64> = (0..9).collect();
        let plan = FaultPlan::with_faults(3, &[(2, FaultKind::Corrupt { seed: 7 })]);
        let b = run_round(&ClusterConfig::sequential(3), &f, &points, &plan, |x| x);
        for idx in b.points_of(2) {
            assert_ne!(b.symbols[idx], Some(idx as u64), "symbol {idx} must be wrong");
            assert!(b.symbols[idx].is_some());
        }
        for idx in b.points_of(0).into_iter().chain(b.points_of(1)) {
            assert_eq!(b.symbols[idx], Some(idx as u64));
        }
    }

    #[test]
    fn adversarial_offset_never_zero() {
        let f = field();
        let points: Vec<u64> = (0..6).collect();
        for offset in [0u64, 1, 999_999, u64::MAX] {
            let plan = FaultPlan::with_faults(2, &[(0, FaultKind::Adversarial { offset })]);
            let b = run_round(&ClusterConfig::sequential(2), &f, &points, &plan, |x| x);
            for idx in b.points_of(0) {
                assert_ne!(b.symbols[idx], Some(idx as u64), "offset {offset}");
            }
        }
    }

    #[test]
    fn equivocation_gives_receivers_different_words() {
        let f = field();
        let points: Vec<u64> = (0..10).collect();
        let plan = FaultPlan::with_faults(5, &[(2, FaultKind::Equivocate { seed: 3 })]);
        let b = run_round(&ClusterConfig::sequential(5), &f, &points, &plan, |x| x);
        let v0 = b.view_for(0);
        let v1 = b.view_for(1);
        let owned = b.points_of(2);
        assert!(owned.iter().any(|&i| v0[i] != v1[i]), "receivers must disagree");
        // Non-equivocated symbols agree everywhere.
        for i in 0..10 {
            if !owned.contains(&i) {
                assert_eq!(v0[i], v1[i]);
                assert_eq!(v0[i], Some(i as u64));
            } else {
                assert_ne!(v0[i], Some(i as u64), "equivocated symbol is wrong in every view");
            }
        }
    }

    #[test]
    fn stats_track_work() {
        let f = field();
        let points: Vec<u64> = (0..10).collect();
        let plan = FaultPlan::all_honest(3);
        let b = run_round(&ClusterConfig::sequential(3), &f, &points, &plan, |x| x);
        let evals: Vec<usize> = b.stats.iter().map(|s| s.evaluations).collect();
        assert_eq!(evals, vec![3, 3, 4]);
    }

    /// A width-2 round splits into two broadcasts that each equal the
    /// corresponding width-1 round, fault streams included (polynomial 0
    /// reproduces the historical single-polynomial stream exactly).
    #[test]
    fn multi_polynomial_round_splits_into_identical_broadcasts() {
        let f = field();
        let points: Vec<u64> = (0..24).collect();
        let plan = FaultPlan::with_faults(
            6,
            &[
                (0, FaultKind::Crash),
                (2, FaultKind::Corrupt { seed: 5 }),
                (4, FaultKind::Equivocate { seed: 9 }),
            ],
        );
        let spec = RoundSpec { field: &f, points: &points, plan: &plan };
        struct Two(PrimeField);
        impl RoundEval for Two {
            fn width(&self) -> usize {
                2
            }
            fn eval(&self, poly: usize, x: u64) -> u64 {
                if poly == 0 {
                    self.0.mul(x, x)
                } else {
                    self.0.add(x, 17)
                }
            }
        }
        let transport = ClusterConfig::sequential(6).transport();
        let round = transport.run(&spec, &Two(f)).unwrap();
        assert_eq!(round.broadcasts.len(), 2);

        let solo0 = run_round(&ClusterConfig::sequential(6), &f, &points, &plan, |x| f.mul(x, x));
        let b0 = &round.broadcasts[0];
        assert!(b0.same_word(&solo0), "polynomial 0 must reproduce the width-1 round");
        for r in 0..6 {
            assert_eq!(b0.view_for(r), solo0.view_for(r));
        }
        // Polynomial 1 carries its own (different) fault stream but the
        // same erasure pattern and truthful symbols where honest.
        let b1 = &round.broadcasts[1];
        for (i, (&point, &symbol)) in points.iter().zip(&b1.symbols).enumerate() {
            match plan.kind(b1.assignment[i]) {
                FaultKind::Crash => assert_eq!(symbol, None),
                FaultKind::Honest | FaultKind::Equivocate { .. } => {
                    assert_eq!(symbol, Some(f.add(point, 17)));
                }
                _ => assert_ne!(symbol, Some(f.add(point, 17))),
            }
        }
        // Per-problem work attribution: each polynomial counts e evals.
        assert_eq!(b0.total_evaluations(), 24);
        assert_eq!(b1.total_evaluations(), 24);
    }

    #[test]
    fn traffic_counts_broadcast_and_unicast_symbols() {
        let f = field();
        let points: Vec<u64> = (0..12).collect();
        // 4 nodes × 3 points: one honest, one crash, one corrupt, one
        // equivocator (K = 4 unicast copies).
        let plan = FaultPlan::with_faults(
            4,
            &[
                (1, FaultKind::Crash),
                (2, FaultKind::Corrupt { seed: 1 }),
                (3, FaultKind::Equivocate { seed: 2 }),
            ],
        );
        let spec = RoundSpec { field: &f, points: &points, plan: &plan };
        let transport = ClusterConfig::sequential(4).transport();
        let round = transport.run(&spec, &SingleEval(|x| x)).unwrap();
        // honest 3 + crash 0 + corrupt 3 + equivocate 3·4 = 18.
        assert_eq!(round.traffic.symbols_broadcast, 18);
        assert!(round.traffic.bytes_on_wire > 0);
    }
}
