//! Fault behaviours and their sender-side symbol transforms.
//!
//! The paper's byzantine repertoire (§1.1, footnote 7): nodes crash,
//! corrupt pseudo-randomly, lie adversarially, or *equivocate* — send a
//! different value to every receiver. Since PR 5 the faults are applied
//! on the **sender side**: a node computes its truthful symbols and then
//! transforms them into the frames it actually puts on the transport, so
//! equivocation is a genuine per-receiver message rather than a post-hoc
//! patch at the bus. Every backend (and the `camelot-node` worker
//! process) derives the transformed values from the same pure functions
//! below, which is what makes the backends bit-identical.

use camelot_ff::{PrimeField, RngLike, SplitMix64};

/// Mixing constant for the receiver index in the equivocation stream
/// (the SplitMix64 golden-ratio increment).
const RECEIVER_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Mixing constant separating the fault streams of the polynomials in a
/// multi-polynomial (batched) round. Lane 0 reduces to the historical
/// single-polynomial stream.
const POLY_MIX: u64 = 0xD1B5_4A32_D192_ED03;

/// How a node (mis)behaves during proof preparation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Computes and broadcasts its symbols faithfully.
    Honest,
    /// Produces nothing (erasures at every receiver).
    Crash,
    /// Adds a seeded pseudo-random nonzero offset to every symbol it
    /// broadcasts (the same wrong value to every receiver).
    Corrupt {
        /// Seed for the corruption stream.
        seed: u64,
    },
    /// Adds a fixed nonzero offset to every symbol (a colluding,
    /// worst-case liar — offsets are reduced nonzero mod `q`).
    Adversarial {
        /// The offset added to each symbol.
        offset: u64,
    },
    /// Sends a *different* corrupted value to every receiver
    /// (equivocation; receivers see inconsistent broadcast words but each
    /// still decodes, cf. footnote 7 of the paper).
    Equivocate {
        /// Seed for the per-receiver corruption stream.
        seed: u64,
    },
}

impl FaultKind {
    /// True for any non-honest behaviour.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        !matches!(self, FaultKind::Honest)
    }
}

/// Assignment of behaviours to the `K` nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// Everyone behaves.
    #[must_use]
    pub fn all_honest(nodes: usize) -> Self {
        FaultPlan { kinds: vec![FaultKind::Honest; nodes] }
    }

    /// Marks specific nodes faulty.
    ///
    /// # Panics
    ///
    /// Panics if a node index is out of range.
    #[must_use]
    pub fn with_faults(nodes: usize, faults: &[(usize, FaultKind)]) -> Self {
        match Self::try_with_faults(nodes, faults) {
            Ok(plan) => plan,
            Err(reason) => panic!("{reason}"),
        }
    }

    /// Marks specific nodes faulty, rejecting out-of-range node indices
    /// instead of panicking (the library-caller counterpart of
    /// [`FaultPlan::with_faults`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range node index.
    pub fn try_with_faults(nodes: usize, faults: &[(usize, FaultKind)]) -> Result<Self, String> {
        let mut plan = Self::all_honest(nodes);
        for &(node, kind) in faults {
            match plan.kinds.get_mut(node) {
                Some(slot) => *slot = kind,
                None => return Err(format!("fault assigned to nonexistent node {node}")),
            }
        }
        Ok(plan)
    }

    /// Seeds `count` pseudo-randomly chosen distinct nodes with
    /// [`FaultKind::Corrupt`] behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `count > nodes`.
    #[must_use]
    pub fn random_corrupt(nodes: usize, count: usize, seed: u64) -> Self {
        assert!(count <= nodes, "cannot corrupt more nodes than exist");
        let mut rng = SplitMix64::new(seed);
        let mut plan = Self::all_honest(nodes);
        let mut placed = 0;
        while placed < count {
            let node = (rng.next_u64() % nodes as u64) as usize;
            if !plan.kinds[node].is_faulty() {
                plan.kinds[node] = FaultKind::Corrupt { seed: rng.next_u64() };
                placed += 1;
            }
        }
        plan
    }

    /// Number of nodes in the plan.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Behaviour of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn kind(&self, node: usize) -> FaultKind {
        match self.try_kind(node) {
            Some(kind) => kind,
            None => panic!("fault kind requested for nonexistent node {node}"),
        }
    }

    /// Behaviour of a node, or `None` when `node` is out of range (the
    /// library-caller counterpart of [`FaultPlan::kind`]).
    #[must_use]
    pub fn try_kind(&self, node: usize) -> Option<FaultKind> {
        self.kinds.get(node).copied()
    }

    /// Indices of all non-honest nodes.
    #[must_use]
    pub fn faulty_nodes(&self) -> Vec<usize> {
        self.kinds.iter().enumerate().filter_map(|(i, k)| k.is_faulty().then_some(i)).collect()
    }
}

/// The fault-stream lane of symbol `(idx, poly)`: global point index
/// `idx` of polynomial `poly` in a multi-polynomial round. Polynomial 0
/// uses the raw index, so single-polynomial rounds reproduce the
/// historical streams bit for bit.
#[must_use]
pub fn fault_lane(idx: usize, poly: usize) -> u64 {
    (idx as u64) ^ (poly as u64).wrapping_mul(POLY_MIX)
}

/// The uniformly corrupted symbol a [`FaultKind::Corrupt`] sender
/// broadcasts for lane `lane` with truthful value `truth`: truth plus a
/// seeded nonzero offset.
#[must_use]
pub fn corrupt_symbol(field: &PrimeField, seed: u64, lane: u64, truth: u64) -> u64 {
    let mut rng = SplitMix64::new(seed ^ lane);
    let offset = 1 + rng.next_u64() % (field.modulus() - 1);
    field.add(truth, offset)
}

/// The symbol a [`FaultKind::Adversarial`] sender broadcasts: truth plus
/// the configured offset, clamped to a nonzero residue.
#[must_use]
pub fn adversarial_symbol(field: &PrimeField, offset: u64, truth: u64) -> u64 {
    let offset = 1 + (offset.max(1) - 1) % (field.modulus() - 1);
    field.add(truth, offset)
}

/// The symbol a [`FaultKind::Equivocate`] sender unicasts to `receiver`
/// for lane `lane`: truth plus a per-receiver nonzero offset.
#[must_use]
pub fn equivocated_symbol(
    field: &PrimeField,
    seed: u64,
    receiver: usize,
    lane: u64,
    truth: u64,
) -> u64 {
    let mut rng = SplitMix64::new(seed ^ (receiver as u64).wrapping_mul(RECEIVER_MIX) ^ lane);
    let offset = 1 + rng.next_u64() % (field.modulus() - 1);
    field.add(truth, offset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> PrimeField {
        PrimeField::new(1_000_003).unwrap()
    }

    #[test]
    fn random_corrupt_plans_are_deterministic_and_sized() {
        let p1 = FaultPlan::random_corrupt(10, 4, 99);
        let p2 = FaultPlan::random_corrupt(10, 4, 99);
        let p3 = FaultPlan::random_corrupt(10, 4, 100);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_eq!(p1.faulty_nodes().len(), 4);
    }

    #[test]
    fn try_variants_reject_out_of_range_nodes_without_panicking() {
        let err = FaultPlan::try_with_faults(3, &[(3, FaultKind::Crash)]);
        assert!(err.is_err());
        let plan = FaultPlan::try_with_faults(3, &[(1, FaultKind::Crash)]).unwrap();
        assert_eq!(plan, FaultPlan::with_faults(3, &[(1, FaultKind::Crash)]));
        assert_eq!(plan.try_kind(1), Some(FaultKind::Crash));
        assert_eq!(plan.try_kind(3), None);
    }

    #[test]
    fn fault_lane_zero_is_identity() {
        for idx in [0usize, 1, 77, 4096] {
            assert_eq!(fault_lane(idx, 0), idx as u64);
        }
        assert_ne!(fault_lane(5, 1), 5);
        assert_ne!(fault_lane(5, 1), fault_lane(5, 2));
    }

    #[test]
    fn corrupted_symbols_are_nonzero_offsets() {
        let f = field();
        for lane in 0..50u64 {
            let truth = lane * 37 % f.modulus();
            assert_ne!(corrupt_symbol(&f, 7, lane, truth), truth);
            assert_ne!(adversarial_symbol(&f, 0, truth), truth);
            assert_ne!(adversarial_symbol(&f, u64::MAX, truth), truth);
            assert_ne!(equivocated_symbol(&f, 3, 2, lane, truth), truth);
        }
    }

    #[test]
    fn equivocation_differs_across_receivers() {
        let f = field();
        let a = equivocated_symbol(&f, 9, 0, 5, 100);
        let b = equivocated_symbol(&f, 9, 1, 5, 100);
        assert_ne!(a, b);
        // ... but is deterministic per receiver.
        assert_eq!(a, equivocated_symbol(&f, 9, 0, 5, 100));
    }
}
