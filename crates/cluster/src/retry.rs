//! Deadlines, retry budgets, and transport tuning.
//!
//! The paper's fault model (§1.1, footnote 7) is about *what* a node
//! sends; this module is about *when*. A real congested-clique round
//! has to bound every socket operation (a hung worker must not stall
//! the round), budget its retries (a flaky spawn deserves another
//! attempt, with backoff), and make both knobs configurable instead of
//! hardcoding the historical 60 s `SOCKET_TIMEOUT`. Everything here is
//! deterministic: backoff jitter is seeded ([`SplitMix64`]), and the
//! chaos layer ([`crate::ChaosPlan`]) decides delivery-versus-demotion
//! by comparing *configured* numbers (delay vs. deadline), never wall
//! clock — which is what keeps chaos runs bit-reproducible across
//! backends.

use camelot_ff::{RngLike, SplitMix64};
use std::time::{Duration, Instant};

/// Environment variable overriding the default socket/pool I/O deadline
/// (milliseconds). Builder overrides ([`TransportTuning::with_io_deadline`])
/// take precedence.
pub const SOCKET_TIMEOUT_ENV: &str = "CAMELOT_SOCKET_TIMEOUT_MS";

/// The historical default I/O deadline (loopback rounds complete in
/// milliseconds; this only bounds pathological hangs).
const DEFAULT_IO_DEADLINE: Duration = Duration::from_secs(60);

/// Default seed for backoff jitter (arbitrary fixed constant so default
/// policies are reproducible).
const DEFAULT_JITTER_SEED: u64 = 0x00BA_C0FF_5EED;

/// A retry budget with exponential backoff and seeded jitter.
///
/// `attempts` counts *total* tries: `1` means "no retries". The sleep
/// before retry `r` (0-indexed) is `min(max, base · 2^r)` plus a seeded
/// jitter of at most half of `base` — deterministic for a given
/// `jitter_seed`, so two runs of the same configuration back off
/// identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempt budget (minimum 1; 1 = no retries).
    pub attempts: u32,
    /// First backoff step.
    pub base: Duration,
    /// Backoff ceiling.
    pub max: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: a single attempt.
    #[must_use]
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base: Duration::from_millis(10),
            max: Duration::from_secs(1),
            jitter_seed: DEFAULT_JITTER_SEED,
        }
    }

    /// A budget of `attempts` total tries with the default backoff
    /// shape (10 ms base, 1 s ceiling).
    #[must_use]
    pub fn with_attempts(attempts: u32) -> Self {
        RetryPolicy { attempts: attempts.max(1), ..RetryPolicy::none() }
    }

    /// Overrides the backoff shape.
    #[must_use]
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base = base;
        self.max = max;
        self
    }

    /// Overrides the jitter seed.
    #[must_use]
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// How many retries remain after the first attempt.
    #[must_use]
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// The sleep before retry `retry` (0-indexed): capped exponential
    /// backoff plus deterministic jitter.
    #[must_use]
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry.min(20)).unwrap_or(u32::MAX);
        let stepped = self.base.saturating_mul(factor).min(self.max);
        let half_base_ms = u64::try_from(self.base.as_millis() / 2).unwrap_or(u64::MAX);
        let jitter_ms = if half_base_ms == 0 {
            0
        } else {
            let mut rng = SplitMix64::new(self.jitter_seed ^ u64::from(retry));
            rng.next_u64() % (half_base_ms + 1)
        };
        stepped.saturating_add(Duration::from_millis(jitter_ms))
    }
}

/// A wall-clock deadline: "this operation must finish by `end`".
///
/// Used where real time genuinely governs (client request budgets, the
/// accept loop); round-level chaos decisions never consult it — they
/// compare configured numbers so all backends agree bit for bit.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    /// `None` = unbounded (also the overflow fallback).
    end: Option<Instant>,
}

impl Deadline {
    /// A deadline `budget` from now.
    #[must_use]
    pub fn after(budget: Duration) -> Self {
        Deadline { end: Instant::now().checked_add(budget) }
    }

    /// No deadline.
    #[must_use]
    pub fn unbounded() -> Self {
        Deadline { end: None }
    }

    /// Time left (`None` when unbounded, `Some(ZERO)` when expired).
    #[must_use]
    pub fn remaining(&self) -> Option<Duration> {
        self.end.map(|end| end.saturating_duration_since(Instant::now()))
    }

    /// True once the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.remaining() == Some(Duration::ZERO)
    }
}

/// Timeout/retry/demotion knobs threaded through every socket-flavoured
/// transport (and consulted by the in-process chaos simulation for its
/// delay-versus-deadline decisions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransportTuning {
    /// Per-operation I/O deadline: the longest any single socket
    /// read/accept may block before the peer is declared dead. Defaults
    /// to [`SOCKET_TIMEOUT_ENV`] or 60 s.
    pub io_deadline: Duration,
    /// Retry budget for worker spawn/connect handshakes.
    pub retry: RetryPolicy,
    /// When true, a dead/slow/misbehaving remote is *demoted* to
    /// [`FaultKind::Crash`](crate::FaultKind::Crash) with a structured
    /// [`FailureCause`](crate::FailureCause) — the round completes via
    /// erasure decoding instead of erroring. Off by default (legacy
    /// fail-fast); any configured [`ChaosPlan`](crate::ChaosPlan)
    /// enables demotion implicitly, since injected faults are meant to
    /// be survived.
    pub demote_dead_nodes: bool,
}

impl Default for TransportTuning {
    fn default() -> Self {
        TransportTuning {
            io_deadline: env_io_deadline(),
            retry: RetryPolicy::none(),
            demote_dead_nodes: false,
        }
    }
}

impl TransportTuning {
    /// Overrides the per-operation I/O deadline.
    #[must_use]
    pub fn with_io_deadline(mut self, deadline: Duration) -> Self {
        self.io_deadline = deadline;
        self
    }

    /// Overrides the handshake retry budget.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables or disables crash demotion of dead remotes.
    #[must_use]
    pub fn with_demotion(mut self, demote: bool) -> Self {
        self.demote_dead_nodes = demote;
        self
    }

    /// The I/O deadline in whole milliseconds — the number shipped to
    /// workers in task frames and compared against configured chaos
    /// delays (never against wall clock).
    #[must_use]
    pub fn deadline_ms(&self) -> u64 {
        u64::try_from(self.io_deadline.as_millis()).unwrap_or(u64::MAX)
    }
}

/// The default I/O deadline: [`SOCKET_TIMEOUT_ENV`] (milliseconds) when
/// set and parseable, 60 s otherwise.
#[must_use]
pub fn env_io_deadline() -> Duration {
    parse_io_deadline(std::env::var(SOCKET_TIMEOUT_ENV).ok().as_deref())
}

fn parse_io_deadline(var: Option<&str>) -> Duration {
    var.and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .filter(|d| !d.is_zero())
        .unwrap_or(DEFAULT_IO_DEADLINE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let policy = RetryPolicy::with_attempts(5)
            .with_backoff(Duration::from_millis(10), Duration::from_millis(80));
        assert_eq!(policy.retries(), 4);
        let a: Vec<Duration> = (0..6).map(|r| policy.backoff(r)).collect();
        let b: Vec<Duration> = (0..6).map(|r| policy.backoff(r)).collect();
        assert_eq!(a, b, "jitter must be seeded, not random");
        for (r, d) in a.iter().enumerate() {
            let step = Duration::from_millis(10 << r.min(3));
            assert!(*d >= step.min(Duration::from_millis(80)), "retry {r}: {d:?}");
            assert!(*d <= Duration::from_millis(80 + 5), "retry {r}: {d:?} over cap+jitter");
        }
        let other = policy.clone().with_jitter_seed(99);
        assert!((0..6).any(|r| other.backoff(r) != policy.backoff(r)) || policy.base.is_zero());
    }

    #[test]
    fn huge_retry_indices_do_not_overflow() {
        let policy = RetryPolicy::with_attempts(2)
            .with_backoff(Duration::from_secs(3600), Duration::from_secs(7200));
        let d = policy.backoff(u32::MAX);
        assert!(d >= Duration::from_secs(7200), "cap reached: {d:?}");
        assert!(d <= Duration::from_secs(7200 + 1800), "cap plus half-base jitter: {d:?}");
    }

    #[test]
    fn deadline_expires_and_unbounded_never_does() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        let open = Deadline::unbounded();
        assert!(!open.expired());
        assert_eq!(open.remaining(), None);
    }

    #[test]
    fn io_deadline_parses_env_shapes() {
        assert_eq!(parse_io_deadline(None), Duration::from_secs(60));
        assert_eq!(parse_io_deadline(Some("250")), Duration::from_millis(250));
        assert_eq!(parse_io_deadline(Some(" 250 ")), Duration::from_millis(250));
        assert_eq!(parse_io_deadline(Some("0")), Duration::from_secs(60), "zero is rejected");
        assert_eq!(parse_io_deadline(Some("nonsense")), Duration::from_secs(60));
    }

    #[test]
    fn tuning_builders_compose() {
        let tuning = TransportTuning::default()
            .with_io_deadline(Duration::from_millis(300))
            .with_retry(RetryPolicy::with_attempts(3))
            .with_demotion(true);
        assert_eq!(tuning.deadline_ms(), 300);
        assert_eq!(tuning.retry.attempts, 3);
        assert!(tuning.demote_dead_nodes);
    }
}
