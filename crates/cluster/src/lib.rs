//! # camelot-cluster — a byzantine compute cluster with pluggable transports
//!
//! The paper's setting (§1.1–§1.3): `K` equally capable nodes share a
//! common input, are collectively tasked with the evaluations
//! `P(0), P(1), …, P(e-1) (mod q)`, and broadcast their symbols. Some
//! nodes are enchanted by Morgana — they crash, corrupt their symbols
//! pseudo-randomly, lie adversarially, or *equivocate* (send different
//! values to different receivers, footnote 7 of the paper).
//!
//! Since PR 5 the broadcast medium is a [`Transport`] trait with three
//! backends — the historical zero-overhead in-process bus
//! ([`InProcess`]), per-node OS threads exchanging only mpsc message
//! frames ([`ChannelTransport`]), and loopback TCP workers speaking a
//! line-oriented frame format ([`SocketTransport`], optionally as
//! spawned `camelot-node` processes so a round really spans OS
//! processes). Fault injection happens **sender-side**
//! ([`compute_node_frames`]): an equivocator genuinely unicasts a
//! different frame to every receiver. All backends are bit-identical:
//! same consensus word, same per-receiver views, same traffic
//! accounting ([`RoundTraffic`]).
//!
//! The framework claims being exercised are about per-node *work*, code
//! distance, and decoding — all transport-independent, which is why the
//! in-process simulation preserves the paper's behaviour exactly and
//! the other backends must (and do) reproduce it bit for bit.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod chaos;
mod fault;
mod retry;
mod round;
mod transport;

pub use chaos::{
    garble_reply, simulated_failure, truncate_reply, worker_action, ChaosEffect, ChaosPlan,
    Demotion, FailureCause, WorkerAction,
};
pub use fault::{
    adversarial_symbol, corrupt_symbol, equivocated_symbol, fault_lane, FaultKind, FaultPlan,
};
pub use retry::{env_io_deadline, Deadline, RetryPolicy, TransportTuning, SOCKET_TIMEOUT_ENV};
pub use round::{
    assemble_round, assign_points, compute_node_frames, node_slice, Broadcast, FrameBody,
    NodeFrames, NodeStats, ProgramEval, RoundEval, RoundOutcome, RoundSpec, RoundTraffic,
    SingleEval,
};
pub use transport::{
    control_frame, encode_reply, execute_task, frame_wire_cost, parse_reply, serve_worker,
    serve_worker_loop, sibling_binary, sibling_worker_binary, Backend, ChannelTransport,
    ClusterConfig, EvalProgram, InProcess, SocketTransport, Task, Transport, TransportError,
    WorkerMode, WorkerPool, PING_HEADER, PONG_HEADER, REPLY_HEADER, SHUTDOWN_HEADER, TASK_HEADER,
};

use camelot_ff::PrimeField;

/// Runs one proof-preparation round on the configured backend: every
/// node evaluates its slice of `points` with `eval`, transforms the
/// symbols through its fault behaviour sender-side, and the broadcast
/// word is assembled from the frames.
///
/// `eval` receives the evaluation point (an element of `Z_q`) and must
/// return `P(x) mod q` — the same function is reused by the verifier for
/// spot checks, exactly as in §1.3(3) of the paper.
///
/// # Panics
///
/// Panics if `plan.nodes() != config.nodes`, or if the configured
/// backend cannot run closures (the socket backend needs
/// wire-expressible programs — use [`Transport::run`] with a
/// [`ProgramEval`] for those rounds).
pub fn run_round<F>(
    config: &ClusterConfig,
    field: &PrimeField,
    points: &[u64],
    plan: &FaultPlan,
    eval: F,
) -> Broadcast
where
    F: Fn(u64) -> u64 + Sync,
{
    assert_eq!(plan.nodes(), config.nodes, "fault plan sized for a different cluster");
    let spec = RoundSpec { field, points, plan };
    let outcome = config
        .transport()
        .run(&spec, &SingleEval(eval))
        .expect("closure round failed on the configured backend");
    outcome.broadcasts.into_iter().next().expect("width-1 round yields one broadcast")
}
