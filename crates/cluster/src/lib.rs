//! # camelot-cluster — a simulated byzantine compute cluster
//!
//! The paper's setting (§1.1–§1.3): `K` equally capable nodes share a
//! common input, are collectively tasked with the evaluations
//! `P(0), P(1), …, P(e-1) (mod q)`, and broadcast their symbols. Some
//! nodes are enchanted by Morgana — they crash, corrupt their symbols
//! pseudo-randomly, lie adversarially, or *equivocate* (send different
//! values to different receivers, footnote 7 of the paper).
//!
//! This crate simulates that world deterministically: workload
//! assignment in balanced contiguous slices, a broadcast bus, seeded fault
//! injection, per-node work statistics, and optional OS-thread execution.
//! The framework claims being exercised are about per-node *work*, code
//! distance, and decoding — all transport-independent, which is why a
//! simulation preserves the paper's behaviour exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use camelot_ff::{PrimeField, RngLike, SplitMix64};
use std::time::{Duration, Instant};

/// How a node (mis)behaves during proof preparation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Computes and broadcasts its symbols faithfully.
    Honest,
    /// Produces nothing (erasures at every receiver).
    Crash,
    /// Adds a seeded pseudo-random nonzero offset to every symbol it
    /// broadcasts (the same wrong value to every receiver).
    Corrupt {
        /// Seed for the corruption stream.
        seed: u64,
    },
    /// Adds a fixed nonzero offset to every symbol (a colluding,
    /// worst-case liar — offsets are reduced nonzero mod `q`).
    Adversarial {
        /// The offset added to each symbol.
        offset: u64,
    },
    /// Sends a *different* corrupted value to every receiver
    /// (equivocation; receivers see inconsistent broadcast words but each
    /// still decodes, cf. footnote 7 of the paper).
    Equivocate {
        /// Seed for the per-receiver corruption stream.
        seed: u64,
    },
}

impl FaultKind {
    /// True for any non-honest behaviour.
    #[must_use]
    pub fn is_faulty(&self) -> bool {
        !matches!(self, FaultKind::Honest)
    }
}

/// Assignment of behaviours to the `K` nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// Everyone behaves.
    #[must_use]
    pub fn all_honest(nodes: usize) -> Self {
        FaultPlan { kinds: vec![FaultKind::Honest; nodes] }
    }

    /// Marks specific nodes faulty.
    ///
    /// # Panics
    ///
    /// Panics if a node index is out of range.
    #[must_use]
    pub fn with_faults(nodes: usize, faults: &[(usize, FaultKind)]) -> Self {
        let mut plan = Self::all_honest(nodes);
        for &(node, kind) in faults {
            assert!(node < nodes, "fault assigned to nonexistent node {node}");
            plan.kinds[node] = kind;
        }
        plan
    }

    /// Seeds `count` pseudo-randomly chosen distinct nodes with
    /// [`FaultKind::Corrupt`] behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `count > nodes`.
    #[must_use]
    pub fn random_corrupt(nodes: usize, count: usize, seed: u64) -> Self {
        assert!(count <= nodes, "cannot corrupt more nodes than exist");
        let mut rng = SplitMix64::new(seed);
        let mut plan = Self::all_honest(nodes);
        let mut placed = 0;
        while placed < count {
            let node = (rng.next_u64() % nodes as u64) as usize;
            if !plan.kinds[node].is_faulty() {
                plan.kinds[node] = FaultKind::Corrupt { seed: rng.next_u64() };
                placed += 1;
            }
        }
        plan
    }

    /// Number of nodes in the plan.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Behaviour of a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn kind(&self, node: usize) -> FaultKind {
        self.kinds[node]
    }

    /// Indices of all non-honest nodes.
    #[must_use]
    pub fn faulty_nodes(&self) -> Vec<usize> {
        self.kinds.iter().enumerate().filter_map(|(i, k)| k.is_faulty().then_some(i)).collect()
    }
}

/// Execution configuration for a proof-preparation round.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of compute nodes `K`.
    pub nodes: usize,
    /// Run node slices on OS threads (the simulation is deterministic
    /// either way; sequential is the default and is exactly reproducible
    /// in timing-sensitive tests).
    pub parallel: bool,
}

impl ClusterConfig {
    /// Sequential simulation with `K` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn sequential(nodes: usize) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        ClusterConfig { nodes, parallel: false }
    }

    /// Threaded simulation with `K` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn parallel(nodes: usize) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        ClusterConfig { nodes, parallel: true }
    }
}

/// The outcome of one proof-preparation round: the broadcast word as seen
/// on the (shared) bus, plus per-node accounting.
#[derive(Clone, Debug)]
pub struct Broadcast {
    /// Symbol per evaluation point; `None` where the owning node crashed.
    pub symbols: Vec<Option<u64>>,
    /// Owning node of each evaluation point.
    pub assignment: Vec<usize>,
    /// Per-node statistics.
    pub stats: Vec<NodeStats>,
    plan: FaultPlan,
    field: PrimeField,
    truth: Vec<u64>,
}

/// Work accounting for one node.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    /// Number of polynomial evaluations this node performed.
    pub evaluations: usize,
    /// Wall-clock time the node spent evaluating.
    pub elapsed: Duration,
}

impl Broadcast {
    /// The word as received by a particular node. Honest, crashed,
    /// corrupt, and adversarial senders look identical to every receiver;
    /// equivocating senders re-randomize per receiver.
    #[must_use]
    pub fn view_for(&self, receiver: usize) -> Vec<Option<u64>> {
        let mut word = self.symbols.clone();
        for (idx, &owner) in self.assignment.iter().enumerate() {
            if let FaultKind::Equivocate { seed } = self.plan.kind(owner) {
                let mut rng = SplitMix64::new(
                    seed ^ (receiver as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ idx as u64,
                );
                let offset = 1 + rng.next_u64() % (self.field.modulus() - 1);
                word[idx] = Some(self.field.add(self.truth[idx], offset));
            }
        }
        word
    }

    /// Points owned by a given node.
    #[must_use]
    pub fn points_of(&self, node: usize) -> Vec<usize> {
        self.assignment.iter().enumerate().filter_map(|(i, &o)| (o == node).then_some(i)).collect()
    }

    /// The fault plan used for the round.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total evaluations across all nodes.
    #[must_use]
    pub fn total_evaluations(&self) -> usize {
        self.stats.iter().map(|s| s.evaluations).sum()
    }

    /// Maximum per-node evaluation count (the wall-clock-critical node).
    #[must_use]
    pub fn max_node_evaluations(&self) -> usize {
        self.stats.iter().map(|s| s.evaluations).max().unwrap_or(0)
    }
}

/// Balanced contiguous workload assignment: node `i` owns points
/// `[i·e/K, (i+1)·e/K)` — slice sizes differ by at most one, the
/// intrinsic workload balance of §1.4 of the paper.
#[must_use]
pub fn assign_points(num_points: usize, nodes: usize) -> Vec<usize> {
    let mut owners = Vec::with_capacity(num_points);
    for node in 0..nodes {
        let lo = node * num_points / nodes;
        let hi = (node + 1) * num_points / nodes;
        owners.extend(std::iter::repeat_n(node, hi - lo));
    }
    owners
}

/// Runs one proof-preparation round: every node evaluates its slice of
/// `points` with `eval`, faults are injected per `plan`, and the broadcast
/// word is assembled.
///
/// `eval` receives the evaluation point (an element of `Z_q`) and must
/// return `P(x) mod q` — the same function is reused by the verifier for
/// spot checks, exactly as in §1.3(3) of the paper.
///
/// # Panics
///
/// Panics if `plan.nodes() != config.nodes`.
pub fn run_round<F>(
    config: &ClusterConfig,
    field: &PrimeField,
    points: &[u64],
    plan: &FaultPlan,
    eval: F,
) -> Broadcast
where
    F: Fn(u64) -> u64 + Sync,
{
    assert_eq!(plan.nodes(), config.nodes, "fault plan sized for a different cluster");
    let assignment = assign_points(points.len(), config.nodes);
    let mut truth = vec![0u64; points.len()];
    let mut stats = vec![NodeStats::default(); config.nodes];

    if config.parallel {
        let mut slices: Vec<(usize, usize, usize)> = Vec::new(); // (node, lo, hi)
        for node in 0..config.nodes {
            let lo = node * points.len() / config.nodes;
            let hi = (node + 1) * points.len() / config.nodes;
            slices.push((node, lo, hi));
        }
        let results: Vec<(usize, Vec<u64>, Duration)> = std::thread::scope(|scope| {
            let handles: Vec<_> = slices
                .iter()
                .map(|&(node, lo, hi)| {
                    let eval = &eval;
                    scope.spawn(move || {
                        let start = Instant::now();
                        let vals: Vec<u64> = points[lo..hi].iter().map(|&x| eval(x)).collect();
                        (node, vals, start.elapsed())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("node thread panicked")).collect()
        });
        for (node, vals, elapsed) in results {
            let lo = node * points.len() / config.nodes;
            stats[node].evaluations = vals.len();
            stats[node].elapsed = elapsed;
            truth[lo..lo + vals.len()].copy_from_slice(&vals);
        }
    } else {
        for (node, stat) in stats.iter_mut().enumerate() {
            let lo = node * points.len() / config.nodes;
            let hi = (node + 1) * points.len() / config.nodes;
            let start = Instant::now();
            for idx in lo..hi {
                truth[idx] = eval(points[idx]);
            }
            stat.evaluations = hi - lo;
            stat.elapsed = start.elapsed();
        }
    }

    // Fault injection on the broadcast bus.
    let mut symbols: Vec<Option<u64>> = truth.iter().copied().map(Some).collect();
    for (idx, &owner) in assignment.iter().enumerate() {
        match plan.kind(owner) {
            FaultKind::Honest | FaultKind::Equivocate { .. } => {}
            FaultKind::Crash => symbols[idx] = None,
            FaultKind::Corrupt { seed } => {
                let mut rng = SplitMix64::new(seed ^ idx as u64);
                let offset = 1 + rng.next_u64() % (field.modulus() - 1);
                symbols[idx] = Some(field.add(truth[idx], offset));
            }
            FaultKind::Adversarial { offset } => {
                let offset = 1 + (offset.max(1) - 1) % (field.modulus() - 1);
                symbols[idx] = Some(field.add(truth[idx], offset));
            }
        }
    }

    Broadcast { symbols, assignment, stats, plan: plan.clone(), field: *field, truth }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> PrimeField {
        PrimeField::new(1_000_003).unwrap()
    }

    #[test]
    fn assignment_is_balanced_and_complete() {
        for (e, k) in [(10usize, 3usize), (7, 7), (100, 9), (5, 8)] {
            let owners = assign_points(e, k);
            assert_eq!(owners.len(), e);
            let mut counts = vec![0usize; k];
            for &o in &owners {
                counts[o] += 1;
            }
            let (lo, hi) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(hi - lo <= 1, "e={e} k={k}: counts {counts:?}");
            // Contiguity: owners must be non-decreasing.
            assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn honest_round_reproduces_evaluations() {
        let f = field();
        let points: Vec<u64> = (0..20).collect();
        let plan = FaultPlan::all_honest(4);
        let b = run_round(&ClusterConfig::sequential(4), &f, &points, &plan, |x| f.mul(x, x));
        for (i, s) in b.symbols.iter().enumerate() {
            assert_eq!(*s, Some(f.mul(i as u64, i as u64)));
        }
        assert_eq!(b.total_evaluations(), 20);
        assert_eq!(b.max_node_evaluations(), 5);
    }

    #[test]
    fn parallel_matches_sequential() {
        let f = field();
        let points: Vec<u64> = (0..33).collect();
        let plan = FaultPlan::all_honest(5);
        let seq = run_round(&ClusterConfig::sequential(5), &f, &points, &plan, |x| f.pow(x, 3));
        let par = run_round(&ClusterConfig::parallel(5), &f, &points, &plan, |x| f.pow(x, 3));
        assert_eq!(seq.symbols, par.symbols);
        assert_eq!(seq.assignment, par.assignment);
    }

    #[test]
    fn crash_erases_exactly_the_owned_slice() {
        let f = field();
        let points: Vec<u64> = (0..12).collect();
        let plan = FaultPlan::with_faults(3, &[(1, FaultKind::Crash)]);
        let b = run_round(&ClusterConfig::sequential(3), &f, &points, &plan, |x| x);
        for (i, s) in b.symbols.iter().enumerate() {
            if b.assignment[i] == 1 {
                assert_eq!(*s, None);
            } else {
                assert_eq!(*s, Some(i as u64));
            }
        }
        assert_eq!(b.points_of(1), vec![4, 5, 6, 7]);
    }

    #[test]
    fn corrupt_changes_every_owned_symbol() {
        let f = field();
        let points: Vec<u64> = (0..9).collect();
        let plan = FaultPlan::with_faults(3, &[(2, FaultKind::Corrupt { seed: 7 })]);
        let b = run_round(&ClusterConfig::sequential(3), &f, &points, &plan, |x| x);
        for idx in b.points_of(2) {
            assert_ne!(b.symbols[idx], Some(idx as u64), "symbol {idx} must be wrong");
            assert!(b.symbols[idx].is_some());
        }
        for idx in b.points_of(0).into_iter().chain(b.points_of(1)) {
            assert_eq!(b.symbols[idx], Some(idx as u64));
        }
    }

    #[test]
    fn adversarial_offset_never_zero() {
        let f = field();
        let points: Vec<u64> = (0..6).collect();
        for offset in [0u64, 1, 999_999, u64::MAX] {
            let plan = FaultPlan::with_faults(2, &[(0, FaultKind::Adversarial { offset })]);
            let b = run_round(&ClusterConfig::sequential(2), &f, &points, &plan, |x| x);
            for idx in b.points_of(0) {
                assert_ne!(b.symbols[idx], Some(idx as u64), "offset {offset}");
            }
        }
    }

    #[test]
    fn equivocation_gives_receivers_different_words() {
        let f = field();
        let points: Vec<u64> = (0..10).collect();
        let plan = FaultPlan::with_faults(5, &[(2, FaultKind::Equivocate { seed: 3 })]);
        let b = run_round(&ClusterConfig::sequential(5), &f, &points, &plan, |x| x);
        let v0 = b.view_for(0);
        let v1 = b.view_for(1);
        let owned = b.points_of(2);
        assert!(owned.iter().any(|&i| v0[i] != v1[i]), "receivers must disagree");
        // Non-equivocated symbols agree everywhere.
        for i in 0..10 {
            if !owned.contains(&i) {
                assert_eq!(v0[i], v1[i]);
                assert_eq!(v0[i], Some(i as u64));
            } else {
                assert_ne!(v0[i], Some(i as u64), "equivocated symbol is wrong in every view");
            }
        }
    }

    #[test]
    fn random_corrupt_plans_are_deterministic_and_sized() {
        let p1 = FaultPlan::random_corrupt(10, 4, 99);
        let p2 = FaultPlan::random_corrupt(10, 4, 99);
        let p3 = FaultPlan::random_corrupt(10, 4, 100);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_eq!(p1.faulty_nodes().len(), 4);
    }

    #[test]
    fn stats_track_work() {
        let f = field();
        let points: Vec<u64> = (0..10).collect();
        let plan = FaultPlan::all_honest(3);
        let b = run_round(&ClusterConfig::sequential(3), &f, &points, &plan, |x| x);
        let evals: Vec<usize> = b.stats.iter().map(|s| s.evaluations).collect();
        assert_eq!(evals, vec![3, 3, 4]);
    }
}
