//! The channel backend: one OS thread per node, message frames only.
//!
//! Each node runs on its own thread and owns its slice of the
//! evaluation points outright; the only communication with the
//! coordinator is two `std::sync::mpsc` messages — the task in, the
//! [`NodeFrames`] out. There is no shared truth vector: the coordinator
//! reassembles the broadcast exclusively from the frames, exactly as a
//! distributed deployment would.

use crate::chaos::ChaosPlan;
use crate::retry::TransportTuning;
use crate::round::{
    assemble_round, compute_node_frames, node_slice, NodeFrames, RoundEval, RoundOutcome, RoundSpec,
};
use crate::transport::{apply_simulated_chaos, check_chaos, Transport, TransportError};
use camelot_ff::PrimeField;
use std::sync::mpsc;

/// The per-node work order message (owned — nothing borrowed from the
/// coordinator's round state crosses the channel).
struct ChannelTask {
    field: PrimeField,
    kind: crate::FaultKind,
    nodes: usize,
    node: usize,
    lo: usize,
    points: Vec<u64>,
}

/// The mpsc-channel backend.
#[derive(Clone, Debug, Default)]
pub struct ChannelTransport {
    tuning: TransportTuning,
    chaos: Option<ChaosPlan>,
}

impl ChannelTransport {
    /// A channel transport (one thread per node per round).
    #[must_use]
    pub fn new() -> Self {
        ChannelTransport::default()
    }

    /// Overrides the transport tuning (the simulation consults the I/O
    /// deadline for chaos delay-versus-demotion decisions).
    #[must_use]
    pub fn with_tuning(mut self, tuning: TransportTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a chaos plan to simulate.
    #[must_use]
    pub fn with_chaos(mut self, chaos: Option<ChaosPlan>) -> Self {
        self.chaos = chaos;
        self
    }
}

impl Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn run(
        &self,
        spec: &RoundSpec<'_>,
        eval: &dyn RoundEval,
    ) -> Result<RoundOutcome, TransportError> {
        let nodes = spec.plan.nodes();
        let e = spec.points.len();
        check_chaos(self.chaos.as_ref(), nodes)?;
        let (reply_tx, reply_rx) = mpsc::channel::<NodeFrames>();

        let frames: Vec<NodeFrames> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nodes);
            for node in 0..nodes {
                let (task_tx, task_rx) = mpsc::channel::<ChannelTask>();
                let reply_tx = reply_tx.clone();
                handles.push(scope.spawn(move || {
                    // The node blocks for its work order, computes its
                    // frames from the owned task alone, and replies. A
                    // hung-up coordinator means the round was abandoned;
                    // exiting quietly is the only sane response.
                    let Ok(task) = task_rx.recv() else { return };
                    let frames = compute_node_frames(
                        &task.field,
                        task.kind,
                        task.nodes,
                        task.node,
                        task.lo,
                        &task.points,
                        eval,
                    );
                    // Likewise: nobody left to tell if the send fails.
                    reply_tx.send(frames).ok();
                }));
                let (lo, hi) = node_slice(e, nodes, node);
                let task = ChannelTask {
                    field: *spec.field,
                    kind: spec.plan.kind(node),
                    nodes,
                    node,
                    lo,
                    points: spec.points[lo..hi].to_vec(),
                };
                // A dead node thread cannot receive; the missing-frame
                // check below turns that into a reported worker failure.
                task_tx.send(task).ok();
            }
            drop(reply_tx);
            // Drain every reply first (the iterator ends once all node
            // threads have dropped their senders), then join the threads
            // so a panicked node surfaces as a transport error rather
            // than aborting the coordinator.
            let frames: Vec<NodeFrames> = reply_rx.iter().collect();
            for (node, handle) in handles.into_iter().enumerate() {
                if handle.join().is_err() {
                    return Err(TransportError::WorkerFailed {
                        node,
                        reason: "node thread panicked".to_string(),
                    });
                }
            }
            Ok(frames)
        })?;
        if let Some(node) = (0..nodes).find(|&n| !frames.iter().any(|f| f.node == n)) {
            return Err(TransportError::WorkerFailed {
                node,
                reason: "node thread exited without replying".to_string(),
            });
        }
        let (frames, demotions) = match &self.chaos {
            Some(chaos) => {
                apply_simulated_chaos(spec, eval.width(), self.tuning.deadline_ms(), chaos, frames)
            }
            None => (frames, Vec::new()),
        };
        Ok(assemble_round(spec, eval.width(), frames, demotions))
    }
}
