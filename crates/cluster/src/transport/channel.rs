//! The channel backend: one OS thread per node, message frames only.
//!
//! Each node runs on its own thread and owns its slice of the
//! evaluation points outright; the only communication with the
//! coordinator is two `std::sync::mpsc` messages — the task in, the
//! [`NodeFrames`] out. There is no shared truth vector: the coordinator
//! reassembles the broadcast exclusively from the frames, exactly as a
//! distributed deployment would.

use crate::round::{
    assemble_round, compute_node_frames, node_slice, NodeFrames, RoundEval, RoundOutcome, RoundSpec,
};
use crate::transport::{Transport, TransportError};
use camelot_ff::PrimeField;
use std::sync::mpsc;

/// The per-node work order message (owned — nothing borrowed from the
/// coordinator's round state crosses the channel).
struct ChannelTask {
    field: PrimeField,
    kind: crate::FaultKind,
    nodes: usize,
    node: usize,
    lo: usize,
    points: Vec<u64>,
}

/// The mpsc-channel backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChannelTransport;

impl ChannelTransport {
    /// A channel transport (one thread per node per round).
    #[must_use]
    pub fn new() -> Self {
        ChannelTransport
    }
}

impl Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn run(
        &self,
        spec: &RoundSpec<'_>,
        eval: &dyn RoundEval,
    ) -> Result<RoundOutcome, TransportError> {
        let nodes = spec.plan.nodes();
        let e = spec.points.len();
        let (reply_tx, reply_rx) = mpsc::channel::<NodeFrames>();

        let frames: Vec<NodeFrames> = std::thread::scope(|scope| {
            for node in 0..nodes {
                let (task_tx, task_rx) = mpsc::channel::<ChannelTask>();
                let reply_tx = reply_tx.clone();
                scope.spawn(move || {
                    // The node blocks for its work order, computes its
                    // frames from the owned task alone, and replies.
                    let task = task_rx.recv().expect("coordinator hung up");
                    let frames = compute_node_frames(
                        &task.field,
                        task.kind,
                        task.nodes,
                        task.node,
                        task.lo,
                        &task.points,
                        eval,
                    );
                    reply_tx.send(frames).expect("coordinator hung up");
                });
                let (lo, hi) = node_slice(e, nodes, node);
                task_tx
                    .send(ChannelTask {
                        field: *spec.field,
                        kind: spec.plan.kind(node),
                        nodes,
                        node,
                        lo,
                        points: spec.points[lo..hi].to_vec(),
                    })
                    .expect("node thread hung up");
            }
            drop(reply_tx);
            reply_rx.iter().collect()
        });
        Ok(assemble_round(spec, eval.width(), frames))
    }
}
