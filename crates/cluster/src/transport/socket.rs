//! The socket backend: loopback TCP workers speaking the v1 frame
//! format, so a round genuinely crosses process (or just thread)
//! boundaries with nothing shared but the wire.
//!
//! The coordinator binds an ephemeral loopback listener, starts `K`
//! workers, hands each accepted connection one [`Task`], and reads back
//! one reply per worker. Workers are either in-process threads (always
//! available; still full TCP + text frames) or spawned `camelot-node`
//! processes ([`WorkerMode::Process`]), in which case every node runs
//! in its own OS process and reconstructs the round from the task
//! message alone — the paper's "common input" made literal.
//!
//! Socket rounds require wire-expressible polynomials
//! ([`RoundEval::programs`]); closures cannot cross a process boundary.

use crate::round::{assemble_round, node_slice, NodeFrames, RoundEval, RoundOutcome, RoundSpec};
use crate::transport::{encode_reply, execute_task, parse_reply, Task, Transport, TransportError};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// How long the coordinator waits on any single socket operation before
/// declaring a worker dead (loopback rounds complete in milliseconds;
/// this only bounds pathological hangs).
const SOCKET_TIMEOUT: Duration = Duration::from_secs(60);

/// How socket workers are started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerMode {
    /// In-process worker threads serving real loopback TCP connections.
    Threads,
    /// One spawned worker process per node, running the given
    /// `camelot-node` binary.
    Process(PathBuf),
}

/// The loopback-socket backend.
#[derive(Clone, Debug)]
pub struct SocketTransport {
    mode: WorkerMode,
}

impl SocketTransport {
    /// A socket transport with the given worker mode.
    #[must_use]
    pub fn new(mode: WorkerMode) -> Self {
        SocketTransport { mode }
    }

    /// A socket transport backed by in-process worker threads.
    #[must_use]
    pub fn loopback() -> Self {
        SocketTransport::new(WorkerMode::Threads)
    }

    /// A socket transport spawning `camelot-node` worker processes.
    #[must_use]
    pub fn with_worker_binary(path: PathBuf) -> Self {
        SocketTransport::new(WorkerMode::Process(path))
    }
}

fn io_err(what: &str, err: &std::io::Error) -> TransportError {
    TransportError::Io { reason: format!("{what}: {err}") }
}

/// Reads one v1 message (through its `end` line) from a buffered
/// stream.
fn read_message<R: BufRead>(reader: &mut R) -> Result<String, TransportError> {
    let mut text = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| io_err("reading message", &e))?;
        if n == 0 {
            return Err(TransportError::Protocol {
                reason: "connection closed mid-message".to_string(),
            });
        }
        text.push_str(&line);
        if line.trim_end() == "end" {
            return Ok(text);
        }
    }
}

/// Serves one task on an accepted connection: read the task, execute
/// it, reply. The entire worker side of the protocol — the
/// `camelot-node` binary is a thin wrapper around this.
///
/// # Errors
///
/// I/O failures and malformed tasks.
pub fn serve_worker(stream: TcpStream) -> Result<(), TransportError> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT)).map_err(|e| io_err("set timeout", &e))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| io_err("clone stream", &e))?);
    let task = Task::from_wire(&read_message(&mut reader)?)?;
    let frames = execute_task(&task);
    let mut stream = stream;
    stream
        .write_all(encode_reply(&frames).as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| io_err("writing reply", &e))
}

impl Transport for SocketTransport {
    fn name(&self) -> &'static str {
        match self.mode {
            WorkerMode::Threads => "socket",
            WorkerMode::Process(_) => "socket-process",
        }
    }

    fn run(
        &self,
        spec: &RoundSpec<'_>,
        eval: &dyn RoundEval,
    ) -> Result<RoundOutcome, TransportError> {
        let programs = eval.programs().ok_or(TransportError::NotWireExpressible)?;
        let nodes = spec.plan.nodes();
        let e = spec.points.len();
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| io_err("binding listener", &e))?;
        let addr = listener.local_addr().map_err(|e| io_err("local addr", &e))?;

        // Start the workers; each connects back to the coordinator.
        let mut worker_threads = Vec::new();
        let mut worker_processes: Vec<Child> = Vec::new();
        match &self.mode {
            WorkerMode::Threads => {
                for _ in 0..nodes {
                    worker_threads.push(std::thread::spawn(move || {
                        let stream =
                            TcpStream::connect(addr).map_err(|e| io_err("worker connect", &e))?;
                        serve_worker(stream)
                    }));
                }
            }
            WorkerMode::Process(bin) => {
                for node in 0..nodes {
                    let child = Command::new(bin)
                        .arg("--connect")
                        .arg(addr.to_string())
                        .stdin(Stdio::null())
                        .spawn()
                        .map_err(|err| TransportError::WorkerFailed {
                            node,
                            reason: format!("spawning {}: {err}", bin.display()),
                        });
                    match child {
                        Ok(child) => worker_processes.push(child),
                        Err(err) => {
                            for mut child in worker_processes {
                                let _ = child.kill();
                                let _ = child.wait();
                            }
                            return Err(err);
                        }
                    }
                }
            }
        }

        let result = self.drive_round(spec, &programs, nodes, e, &listener, &mut worker_processes);

        for handle in worker_threads {
            let worker = handle.join().map_err(|_| TransportError::Protocol {
                reason: "worker thread panicked".to_string(),
            })?;
            if result.is_ok() {
                // With a complete round a worker cannot have failed
                // (its reply would have been missing); when the round
                // itself failed, that error wins below.
                worker?;
            }
        }
        for (node, mut child) in worker_processes.into_iter().enumerate() {
            if result.is_err() {
                let _ = child.kill();
            }
            let status = child.wait().map_err(|e| io_err("waiting for worker", &e))?;
            if result.is_ok() && !status.success() {
                return Err(TransportError::WorkerFailed {
                    node,
                    reason: format!("exit status {status}"),
                });
            }
        }

        let frames = result?;
        Ok(assemble_round(spec, programs.len(), frames))
    }
}

/// Accepts one worker connection with a deadline — `accept` itself must
/// not hang when a worker dies before connecting (a spawned binary that
/// exits at startup, a thread whose connect failed). Polls in
/// non-blocking mode and fails fast when a worker process has already
/// exited with a failure status.
fn accept_with_deadline(
    listener: &TcpListener,
    children: &mut [Child],
) -> Result<TcpStream, TransportError> {
    listener.set_nonblocking(true).map_err(|e| io_err("set nonblocking", &e))?;
    let deadline = std::time::Instant::now() + SOCKET_TIMEOUT;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(|e| io_err("set blocking", &e))?;
                return Ok(stream);
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                // A worker that exited nonzero before connecting will
                // never connect; report it instead of running out the
                // clock. (A zero exit is fine — a fast worker may have
                // already served an earlier accepted connection.)
                for (node, child) in children.iter_mut().enumerate() {
                    if let Ok(Some(status)) = child.try_wait() {
                        if !status.success() {
                            return Err(TransportError::WorkerFailed {
                                node,
                                reason: format!("exit status {status} before connecting"),
                            });
                        }
                    }
                }
                if std::time::Instant::now() >= deadline {
                    return Err(TransportError::Io {
                        reason: "timed out waiting for a worker to connect".to_string(),
                    });
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(err) => return Err(io_err("accepting worker", &err)),
        }
    }
}

impl SocketTransport {
    /// Accepts the `K` worker connections, hands out tasks, and
    /// collects the replies.
    fn drive_round(
        &self,
        spec: &RoundSpec<'_>,
        programs: &[crate::transport::EvalProgram],
        nodes: usize,
        e: usize,
        listener: &TcpListener,
        children: &mut [Child],
    ) -> Result<Vec<NodeFrames>, TransportError> {
        // Hand out all tasks first (workers compute concurrently), then
        // drain the replies.
        let mut streams = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let mut stream = accept_with_deadline(listener, children)?;
            stream.set_read_timeout(Some(SOCKET_TIMEOUT)).map_err(|e| io_err("set timeout", &e))?;
            let (lo, hi) = node_slice(e, nodes, node);
            let task = Task {
                modulus: spec.field.modulus(),
                nodes,
                node,
                fault: spec.plan.kind(node),
                programs: programs.to_vec(),
                lo,
                points: spec.points[lo..hi].to_vec(),
            };
            stream
                .write_all(task.to_wire().as_bytes())
                .and_then(|()| stream.flush())
                .map_err(|e| io_err("writing task", &e))?;
            streams.push(stream);
        }
        let mut frames = Vec::with_capacity(nodes);
        for (node, stream) in streams.into_iter().enumerate() {
            let mut reader = BufReader::new(stream);
            let reply = parse_reply(&read_message(&mut reader)?)?;
            // Validate the (untrusted) reply before it reaches the
            // shared assembly, which treats frames as well-formed.
            let (lo, hi) = node_slice(e, nodes, node);
            let expected = (hi - lo) * programs.len();
            let (body_len, receivers) = match &reply.body {
                crate::round::FrameBody::Uniform(symbols) => (symbols.len(), nodes),
                crate::round::FrameBody::PerReceiver { base, per_receiver } => {
                    (base.len(), per_receiver.len())
                }
            };
            if reply.node != node || reply.evaluations != expected || body_len != expected {
                return Err(TransportError::Protocol {
                    reason: format!("reply from worker {node} does not match its task"),
                });
            }
            if receivers != nodes {
                return Err(TransportError::Protocol {
                    reason: format!("reply from worker {node} does not cover the cluster"),
                });
            }
            frames.push(reply);
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::ProgramEval;
    use crate::transport::EvalProgram;
    use crate::{ClusterConfig, FaultKind, FaultPlan};
    use camelot_ff::PrimeField;

    /// A socket round over loopback TCP must be bit-identical to the
    /// in-process bus on a mixed fault plan, multi-polynomial included.
    #[test]
    fn socket_round_matches_in_process() {
        let field = PrimeField::new(1_000_003).unwrap();
        let points: Vec<u64> = (0..31).collect();
        let plan = FaultPlan::with_faults(
            7,
            &[
                (1, FaultKind::Crash),
                (2, FaultKind::Corrupt { seed: 11 }),
                (3, FaultKind::Adversarial { offset: 4 }),
                (5, FaultKind::Equivocate { seed: 12 }),
            ],
        );
        let spec = RoundSpec { field: &field, points: &points, plan: &plan };
        let eval = ProgramEval::new(
            &field,
            vec![EvalProgram::Poly(vec![3, 1, 4]), EvalProgram::Poly(vec![9, 0, 0, 2])],
        );
        let reference = ClusterConfig::sequential(7).transport().run(&spec, &eval).unwrap();
        let socket = SocketTransport::loopback().run(&spec, &eval).unwrap();
        assert_eq!(socket.broadcasts.len(), 2);
        for (s, r) in socket.broadcasts.iter().zip(&reference.broadcasts) {
            assert!(s.same_word(r), "socket round diverged from the in-process bus");
            for receiver in 0..7 {
                assert_eq!(s.view_for(receiver), r.view_for(receiver));
            }
        }
        assert_eq!(socket.traffic, reference.traffic);
    }

    /// Closures cannot cross the socket boundary.
    #[test]
    fn socket_rejects_closures() {
        let field = PrimeField::new(97).unwrap();
        let points: Vec<u64> = (0..8).collect();
        let plan = FaultPlan::all_honest(2);
        let spec = RoundSpec { field: &field, points: &points, plan: &plan };
        let err =
            SocketTransport::loopback().run(&spec, &crate::round::SingleEval(|x| x)).unwrap_err();
        assert_eq!(err, TransportError::NotWireExpressible);
    }

    /// A missing worker binary surfaces as a worker failure, not a hang.
    #[test]
    fn missing_worker_binary_fails_fast() {
        let field = PrimeField::new(97).unwrap();
        let points: Vec<u64> = (0..4).collect();
        let plan = FaultPlan::all_honest(2);
        let spec = RoundSpec { field: &field, points: &points, plan: &plan };
        let eval = ProgramEval::new(&field, vec![EvalProgram::Poly(vec![1])]);
        let transport =
            SocketTransport::with_worker_binary(PathBuf::from("/nonexistent/camelot-node"));
        assert!(matches!(transport.run(&spec, &eval), Err(TransportError::WorkerFailed { .. })));
    }

    /// A worker that spawns but exits (nonzero) without ever connecting
    /// must be reported promptly — the accept loop may not run out the
    /// full socket timeout.
    #[test]
    fn worker_dying_before_connecting_fails_fast() {
        let field = PrimeField::new(97).unwrap();
        let points: Vec<u64> = (0..4).collect();
        let plan = FaultPlan::all_honest(2);
        let spec = RoundSpec { field: &field, points: &points, plan: &plan };
        let eval = ProgramEval::new(&field, vec![EvalProgram::Poly(vec![1])]);
        // `false` spawns fine and exits 1 immediately, never connecting.
        let transport = SocketTransport::with_worker_binary(PathBuf::from("/bin/false"));
        let start = std::time::Instant::now();
        let err = transport.run(&spec, &eval).unwrap_err();
        assert!(matches!(err, TransportError::WorkerFailed { .. }), "{err}");
        assert!(start.elapsed() < SOCKET_TIMEOUT / 2, "must fail fast, not run out the clock");
    }
}
