//! The socket backend: loopback TCP workers speaking the v1 frame
//! format, so a round genuinely crosses process (or just thread)
//! boundaries with nothing shared but the wire.
//!
//! The coordinator binds an ephemeral loopback listener, starts `K`
//! workers, hands each accepted connection one [`Task`], and reads back
//! one reply per worker. Workers are either in-process threads (always
//! available; still full TCP + text frames) or spawned `camelot-node`
//! processes ([`WorkerMode::Process`]), in which case every node runs
//! in its own OS process and reconstructs the round from the task
//! message alone — the paper's "common input" made literal.
//!
//! Socket rounds require wire-expressible polynomials
//! ([`RoundEval::programs`]); closures cannot cross a process boundary.

use crate::chaos::{worker_action, ChaosEffect, ChaosPlan, Demotion, FailureCause, WorkerAction};
use crate::retry::{env_io_deadline, TransportTuning};
use crate::round::{
    assemble_round, crash_frames, node_slice, FrameBody, NodeFrames, RoundEval, RoundOutcome,
    RoundSpec,
};
use crate::transport::pool::WorkerPool;
use crate::transport::{
    check_chaos, control_frame, encode_reply, execute_task, parse_reply, EvalProgram, Task,
    Transport, TransportError, PING_HEADER, PONG_HEADER, SHUTDOWN_HEADER,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// The historical hardcoded coordinator timeout, kept as the reference
/// point for fast-failure assertions. Runtime configuration goes
/// through [`TransportTuning`] (or the `CAMELOT_SOCKET_TIMEOUT_MS`
/// environment variable).
#[cfg(test)]
pub(crate) const SOCKET_TIMEOUT: Duration = Duration::from_secs(60);

/// How socket workers are started.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerMode {
    /// In-process worker threads serving real loopback TCP connections.
    Threads,
    /// One spawned worker process per node, running the given
    /// `camelot-node` binary.
    Process(PathBuf),
}

/// The loopback-socket backend.
///
/// Per-round by default: `run` starts `K` fresh workers, drives the
/// round, and tears everything down gracefully. In *persistent* mode
/// ([`SocketTransport::persistent`]) the transport lazily starts a
/// [`WorkerPool`] whose workers outlive rounds ([`serve_worker_loop`]),
/// and every subsequent round reuses the same connections until an
/// explicit [`SocketTransport::shutdown_pool`].
#[derive(Clone, Debug)]
pub struct SocketTransport {
    mode: WorkerMode,
    /// Shared persistent pool state (`None` entries mean "not started
    /// yet"); absent entirely for the classic per-round transport.
    pool: Option<Arc<Mutex<Option<WorkerPool>>>>,
    tuning: TransportTuning,
    chaos: Option<ChaosPlan>,
}

impl SocketTransport {
    /// A per-round socket transport with the given worker mode.
    #[must_use]
    pub fn new(mode: WorkerMode) -> Self {
        SocketTransport { mode, pool: None, tuning: TransportTuning::default(), chaos: None }
    }

    /// Overrides the transport tuning (I/O deadline, retries, demotion).
    #[must_use]
    pub fn with_tuning(mut self, tuning: TransportTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a chaos plan: each afflicted worker sabotages its own
    /// reply sender-side (over real TCP), and the coordinator demotes
    /// senders whose sabotage makes them unreadable.
    #[must_use]
    pub fn with_chaos(mut self, chaos: Option<ChaosPlan>) -> Self {
        self.chaos = chaos;
        self
    }

    /// Whether dead/unreadable remotes are demoted to crash instead of
    /// failing the round: explicit opt-in, or implied by a chaos plan
    /// (injected faults are meant to be survived).
    fn demote(&self) -> bool {
        self.chaos.is_some() || self.tuning.demote_dead_nodes
    }

    /// A per-round socket transport backed by in-process worker threads.
    #[must_use]
    pub fn loopback() -> Self {
        SocketTransport::new(WorkerMode::Threads)
    }

    /// A per-round socket transport spawning `camelot-node` worker
    /// processes.
    #[must_use]
    pub fn with_worker_binary(path: PathBuf) -> Self {
        SocketTransport::new(WorkerMode::Process(path))
    }

    /// A persistent socket transport: the first round starts a
    /// [`WorkerPool`] sized to the round's cluster, and later rounds
    /// reuse its long-lived workers. Clones share the same pool.
    #[must_use]
    pub fn persistent(mode: WorkerMode) -> Self {
        SocketTransport { pool: Some(Arc::new(Mutex::new(None))), ..SocketTransport::new(mode) }
    }

    /// Locks the persistent pool state (`None` for per-round transports).
    fn pool_state(&self) -> Option<std::sync::MutexGuard<'_, Option<WorkerPool>>> {
        self.pool.as_ref().map(|cell| cell.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Gracefully shuts the persistent pool down: every worker receives
    /// an explicit shutdown frame and is joined/reaped — never killed.
    /// A no-op for per-round transports or an unstarted pool.
    ///
    /// # Errors
    ///
    /// The first teardown failure (a worker that exited uncleanly).
    pub fn shutdown_pool(&self) -> Result<(), TransportError> {
        match self.pool_state().as_mut().and_then(|guard| guard.take()) {
            Some(mut pool) => pool.shutdown(),
            None => Ok(()),
        }
    }

    /// Health-checks the persistent pool: pings every lane and respawns
    /// dead workers. Returns how many lanes were respawned (0 when the
    /// pool is healthy or not started).
    ///
    /// # Errors
    ///
    /// A respawn failure (e.g. the worker binary disappeared).
    pub fn repair_pool(&self) -> Result<usize, TransportError> {
        match self.pool_state().as_mut().map(|guard| guard.as_mut().map(WorkerPool::ensure_ready)) {
            Some(Some(result)) => result,
            _ => Ok(0),
        }
    }

    /// Lifetime count of pool worker respawns (0 without a pool).
    #[must_use]
    pub fn pool_respawns(&self) -> usize {
        match self.pool_state().as_ref().map(|guard| guard.as_ref().map(WorkerPool::respawns)) {
            Some(Some(n)) => n,
            _ => 0,
        }
    }

    /// Number of currently live pool workers (0 without a pool).
    #[must_use]
    pub fn pool_live_workers(&self) -> usize {
        match self.pool_state().as_ref().map(|guard| guard.as_ref().map(WorkerPool::live_workers)) {
            Some(Some(n)) => n,
            _ => 0,
        }
    }

    /// Chaos hook: forcibly takes down pool worker `node` (hard-kills a
    /// process worker, disconnects a thread worker), simulating a crash.
    /// The next round reports [`TransportError::WorkerFailed`] for that
    /// node until [`SocketTransport::repair_pool`] respawns it.
    ///
    /// # Errors
    ///
    /// [`TransportError::Protocol`] when no pool is running or the node
    /// is out of range.
    pub fn kill_pool_worker(&self, node: usize) -> Result<(), TransportError> {
        match self.pool_state().as_mut().map(|guard| guard.as_mut()) {
            Some(Some(pool)) => pool.kill_worker(node),
            _ => Err(TransportError::Protocol {
                reason: "no persistent worker pool is running".to_string(),
            }),
        }
    }
}

pub(crate) fn io_err(what: &str, err: &std::io::Error) -> TransportError {
    TransportError::Io { reason: format!("{what}: {err}") }
}

/// Reads one v1 message (through its `end` line) from a buffered
/// stream; `Ok(None)` on a clean EOF at a message boundary.
pub(crate) fn read_message_or_eof<R: BufRead>(
    reader: &mut R,
) -> Result<Option<String>, TransportError> {
    let mut text = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| match e.kind() {
            // A read timeout surfaces as WouldBlock (unix) or TimedOut
            // (windows); classify it structurally so callers never have
            // to sniff message strings.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportError::TimedOut { reason: format!("reading message: {e}") }
            }
            _ => io_err("reading message", &e),
        })?;
        if n == 0 {
            if text.is_empty() {
                return Ok(None);
            }
            return Err(TransportError::Protocol {
                reason: "connection closed mid-message".to_string(),
            });
        }
        text.push_str(&line);
        if line.trim_end() == "end" {
            return Ok(Some(text));
        }
    }
}

/// Reads one v1 message (through its `end` line) from a buffered
/// stream; EOF anywhere is an error.
pub(crate) fn read_message<R: BufRead>(reader: &mut R) -> Result<String, TransportError> {
    match read_message_or_eof(reader)? {
        Some(text) => Ok(text),
        None => Err(TransportError::Protocol {
            reason: "connection closed before the message".to_string(),
        }),
    }
}

/// Performs a resolved [`WorkerAction`] on the worker's stream: the
/// sender-side sabotage over real TCP, shared by the one-shot and
/// persistent worker loops. Returns `false` when the action ends with
/// the connection closed (mute, drop/reset, truncation).
fn perform_action(stream: &mut TcpStream, action: WorkerAction) -> Result<bool, TransportError> {
    match action {
        WorkerAction::Deliver { text, copies, delay_ms } => {
            if delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            for _ in 0..copies {
                stream.write_all(text.as_bytes()).map_err(|e| io_err("writing reply", &e))?;
            }
            stream.flush().map_err(|e| io_err("writing reply", &e))?;
            Ok(true)
        }
        WorkerAction::Mute { sleep_ms } => {
            // Hold the connection open silently until the coordinator's
            // deadline has certainly passed (bounded: deadline + grace),
            // then exit cleanly — the hang, as the coordinator's real
            // read timeout observes it.
            std::thread::sleep(Duration::from_millis(sleep_ms));
            Ok(false)
        }
        WorkerAction::Close => Ok(false),
        WorkerAction::Partial { text } => {
            stream
                .write_all(text.as_bytes())
                .and_then(|()| stream.flush())
                .map_err(|e| io_err("writing partial reply", &e))?;
            Ok(false)
        }
    }
}

/// Serves one task on an accepted connection: read the task, execute
/// it, reply — inflicting the task's chaos effect (if any) on the reply
/// sender-side, exactly like the algebraic faults. The single-round
/// worker side of the protocol — spawned per round by the per-round
/// transport.
///
/// # Errors
///
/// I/O failures and malformed tasks.
pub fn serve_worker(stream: TcpStream) -> Result<(), TransportError> {
    stream.set_read_timeout(Some(env_io_deadline())).map_err(|e| io_err("set timeout", &e))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| io_err("clone stream", &e))?);
    let task = Task::from_wire(&read_message(&mut reader)?)?;
    let frames = execute_task(&task);
    let action = worker_action(task.chaos, task.deadline_ms, task.modulus, encode_reply(&frames));
    let mut stream = stream;
    perform_action(&mut stream, action).map(|_| ())
}

/// Serves tasks on one connection until the coordinator sends an
/// explicit `camelot-shutdown v1` frame or closes the connection at a
/// message boundary (both are clean exits). `camelot-ping v1` frames
/// are answered with `camelot-pong v1` — the pool's health check. The
/// entire persistent worker side of the protocol; `camelot-node
/// --persist` is a thin wrapper around this.
///
/// # Errors
///
/// I/O failures, malformed tasks, and mid-message disconnects.
pub fn serve_worker_loop(stream: TcpStream) -> Result<(), TransportError> {
    // Persistent workers idle between rounds for arbitrarily long; only
    // the coordinator decides when they exit (shutdown frame or EOF).
    stream.set_read_timeout(None).map_err(|e| io_err("set timeout", &e))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| io_err("clone stream", &e))?);
    let mut stream = stream;
    loop {
        let Some(text) = read_message_or_eof(&mut reader)? else {
            return Ok(());
        };
        match text.lines().next() {
            Some(SHUTDOWN_HEADER) => return Ok(()),
            Some(PING_HEADER) => {
                stream
                    .write_all(control_frame(PONG_HEADER).as_bytes())
                    .and_then(|()| stream.flush())
                    .map_err(|e| io_err("writing pong", &e))?;
            }
            _ => {
                let task = Task::from_wire(&text)?;
                let frames = execute_task(&task);
                let action = worker_action(
                    task.chaos,
                    task.deadline_ms,
                    task.modulus,
                    encode_reply(&frames),
                );
                if !perform_action(&mut stream, action)? {
                    // Chaos ended with the connection closed; this lane
                    // dies with it and the coordinator demotes the node.
                    // A clean worker exit, by design.
                    return Ok(());
                }
            }
        }
    }
}

/// Builds node `node`'s work order for one round: its balanced slice of
/// the evaluation points plus the round-wide parameters. Shared by the
/// per-round transport and the persistent [`WorkerPool`].
pub(crate) fn task_for_node(
    spec: &RoundSpec<'_>,
    programs: &[EvalProgram],
    nodes: usize,
    node: usize,
    chaos: Option<ChaosEffect>,
    deadline_ms: u64,
) -> Task {
    let (lo, hi) = node_slice(spec.points.len(), nodes, node);
    Task {
        modulus: spec.field.modulus(),
        nodes,
        node,
        fault: spec.plan.try_kind(node).unwrap_or(crate::FaultKind::Honest),
        programs: programs.to_vec(),
        lo,
        points: spec.points.get(lo..hi).unwrap_or(&[]).to_vec(),
        chaos,
        deadline_ms,
    }
}

/// Validates one worker's (untrusted) reply against its task shape
/// before it reaches the shared assembly, which treats frames as
/// well-formed: right node id, exactly the assigned slice across all
/// polynomials, full receiver coverage.
pub(crate) fn validate_reply(
    reply: &NodeFrames,
    node: usize,
    nodes: usize,
    e: usize,
    width: usize,
) -> Result<(), TransportError> {
    let (lo, hi) = node_slice(e, nodes, node);
    let expected = (hi - lo) * width;
    let (body_len, receivers) = match &reply.body {
        FrameBody::Uniform(symbols) => (symbols.len(), nodes),
        FrameBody::PerReceiver { base, per_receiver } => (base.len(), per_receiver.len()),
    };
    if reply.node != node || reply.evaluations != expected || body_len != expected {
        return Err(TransportError::Protocol {
            reason: format!("reply from worker {node} does not match its task"),
        });
    }
    if receivers != nodes {
        return Err(TransportError::Protocol {
            reason: format!("reply from worker {node} does not cover the cluster"),
        });
    }
    Ok(())
}

impl Transport for SocketTransport {
    fn name(&self) -> &'static str {
        match (&self.mode, &self.pool) {
            (WorkerMode::Threads, None) => "socket",
            (WorkerMode::Process(_), None) => "socket-process",
            (WorkerMode::Threads, Some(_)) => "socket-pool",
            (WorkerMode::Process(_), Some(_)) => "socket-process-pool",
        }
    }

    fn run(
        &self,
        spec: &RoundSpec<'_>,
        eval: &dyn RoundEval,
    ) -> Result<RoundOutcome, TransportError> {
        let programs = eval.programs().ok_or(TransportError::NotWireExpressible)?;
        let nodes = spec.plan.nodes();
        let e = spec.points.len();
        check_chaos(self.chaos.as_ref(), nodes)?;

        // Persistent mode: lazily start (or resize) the shared pool and
        // run the round over its long-lived workers.
        if let Some(mut guard) = self.pool_state() {
            let stale = match guard.as_ref() {
                Some(pool) => pool.nodes() != nodes,
                None => false,
            };
            if stale {
                if let Some(mut old) = guard.take() {
                    old.shutdown()?;
                }
            }
            let pool = match guard.as_mut() {
                Some(pool) => pool,
                None => {
                    guard.insert(WorkerPool::start(self.mode.clone(), nodes, self.tuning.clone())?)
                }
            };
            let (frames, demotions) =
                pool.run_round(spec, &programs, self.chaos.as_ref(), self.demote())?;
            return Ok(assemble_round(spec, programs.len(), frames, demotions));
        }

        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| io_err("binding listener", &e))?;
        let addr = listener.local_addr().map_err(|e| io_err("local addr", &e))?;

        // Start the workers; each connects back to the coordinator. A
        // spawn failure is recorded (not returned early) so the graceful
        // teardown below still runs for the workers already started.
        let mut worker_threads = Vec::new();
        let mut worker_processes: Vec<Child> = Vec::new();
        let mut startup_err: Option<TransportError> = None;
        match &self.mode {
            WorkerMode::Threads => {
                for _ in 0..nodes {
                    worker_threads.push(std::thread::spawn(move || {
                        let stream =
                            TcpStream::connect(addr).map_err(|e| io_err("worker connect", &e))?;
                        serve_worker(stream)
                    }));
                }
            }
            WorkerMode::Process(bin) => {
                for node in 0..nodes {
                    let child = Command::new(bin)
                        .arg("--connect")
                        .arg(addr.to_string())
                        .stdin(Stdio::null())
                        .spawn()
                        .map_err(|err| TransportError::WorkerFailed {
                            node,
                            reason: format!("spawning {}: {err}", bin.display()),
                        });
                    match child {
                        Ok(child) => worker_processes.push(child),
                        Err(err) => {
                            startup_err = Some(err);
                            break;
                        }
                    }
                }
            }
        }

        let result = match startup_err {
            Some(err) => Err(err),
            None => self.drive_round(spec, &programs, nodes, e, &listener, &mut worker_processes),
        };

        // Graceful teardown — no kill: close the listener first so any
        // worker still blocked on an unserved or queued connection sees
        // a reset and exits on its own, then join/reap everything. A
        // round that survived by demoting nodes tolerates the demoted
        // workers' collateral errors and exit statuses (an unread
        // duplicate, a genuinely dead process) — the demotion already
        // booked the failure.
        let clean = matches!(&result, Ok((_, demotions)) if demotions.is_empty());
        drop(listener);
        for handle in worker_threads {
            let worker = handle.join().map_err(|_| TransportError::Protocol {
                reason: "worker thread panicked".to_string(),
            })?;
            if clean {
                // With a complete round a worker cannot have failed
                // (its reply would have been missing); when the round
                // itself failed, that error wins below.
                worker?;
            }
        }
        for (node, mut child) in worker_processes.into_iter().enumerate() {
            // One-shot workers exit on their own once their connection
            // (or the listener) is gone; wait() reaps without killing.
            let status = child.wait().map_err(|e| io_err("waiting for worker", &e))?;
            if clean && !status.success() {
                return Err(TransportError::WorkerFailed {
                    node,
                    reason: format!("exit status {status}"),
                });
            }
        }

        let (frames, demotions) = result?;
        Ok(assemble_round(spec, programs.len(), frames, demotions))
    }
}

/// Accepts one worker connection with a deadline — `accept` itself must
/// not hang when a worker dies before connecting (a spawned binary that
/// exits at startup, a thread whose connect failed). Polls in
/// non-blocking mode and fails fast when a worker process has already
/// exited with a failure status.
pub(crate) fn accept_with_deadline(
    listener: &TcpListener,
    children: &mut [Child],
    io_deadline: Duration,
) -> Result<TcpStream, TransportError> {
    listener.set_nonblocking(true).map_err(|e| io_err("set nonblocking", &e))?;
    let deadline = std::time::Instant::now() + io_deadline;
    // Exponential poll backoff: tight while a worker is expected any
    // microsecond (the common loopback case), relaxed toward a 16 ms
    // cap while genuinely waiting — replaces the old fixed 2 ms sleep.
    let mut poll = Duration::from_micros(500);
    const POLL_CAP: Duration = Duration::from_millis(16);
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(|e| io_err("set blocking", &e))?;
                return Ok(stream);
            }
            Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                // A worker that exited nonzero before connecting will
                // never connect; report it instead of running out the
                // clock. (A zero exit is fine — a fast worker may have
                // already served an earlier accepted connection.)
                for (node, child) in children.iter_mut().enumerate() {
                    if let Ok(Some(status)) = child.try_wait() {
                        if !status.success() {
                            return Err(TransportError::WorkerFailed {
                                node,
                                reason: format!("exit status {status} before connecting"),
                            });
                        }
                    }
                }
                if std::time::Instant::now() >= deadline {
                    return Err(TransportError::TimedOut {
                        reason: "timed out waiting for a worker to connect".to_string(),
                    });
                }
                std::thread::sleep(poll);
                poll = (poll * 2).min(POLL_CAP);
            }
            Err(err) => return Err(io_err("accepting worker", &err)),
        }
    }
}

impl SocketTransport {
    /// Accepts the `K` worker connections, hands out tasks, and
    /// collects the replies. With demotion enabled (explicitly, or
    /// implied by a chaos plan) a per-node read/parse/validate failure
    /// books a [`Demotion`] with its structured [`FailureCause`] and
    /// synthesizes crash frames, so the round completes via erasure
    /// decoding instead of erroring.
    fn drive_round(
        &self,
        spec: &RoundSpec<'_>,
        programs: &[crate::transport::EvalProgram],
        nodes: usize,
        e: usize,
        listener: &TcpListener,
        children: &mut [Child],
    ) -> Result<(Vec<NodeFrames>, Vec<Demotion>), TransportError> {
        let io_deadline = self.tuning.io_deadline;
        let deadline_ms = self.tuning.deadline_ms();
        let demote = self.demote();
        // Hand out all tasks first (workers compute concurrently), then
        // drain the replies.
        let mut streams = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let mut stream = accept_with_deadline(listener, children, io_deadline)?;
            stream.set_read_timeout(Some(io_deadline)).map_err(|e| io_err("set timeout", &e))?;
            let chaos = self.chaos.as_ref().and_then(|plan| plan.effect(node));
            let task = task_for_node(spec, programs, nodes, node, chaos, deadline_ms);
            stream
                .write_all(task.to_wire().as_bytes())
                .and_then(|()| stream.flush())
                .map_err(|e| io_err("writing task", &e))?;
            streams.push(stream);
        }
        let mut frames = Vec::with_capacity(nodes);
        let mut demotions = Vec::new();
        for (node, stream) in streams.into_iter().enumerate() {
            let mut reader = BufReader::new(stream);
            let outcome = match read_message_or_eof(&mut reader) {
                Ok(Some(text)) => parse_reply(&text).and_then(|reply| {
                    validate_reply(&reply, node, nodes, e, programs.len()).map(|()| reply)
                }),
                // Clean close before any reply: the worker dropped its
                // frame or reset the connection.
                Ok(None) => Err(TransportError::Io {
                    reason: format!("worker {node} closed before replying"),
                }),
                Err(err) => Err(err),
            };
            match outcome {
                Ok(reply) => frames.push(reply),
                Err(err) if demote => {
                    demotions.push(Demotion { node, cause: FailureCause::from_transport(&err) });
                    frames.push(crash_frames(e, nodes, node, programs.len()));
                }
                Err(err) => return Err(err),
            }
        }
        Ok((frames, demotions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::round::ProgramEval;
    use crate::transport::EvalProgram;
    use crate::{ClusterConfig, FaultKind, FaultPlan};
    use camelot_ff::PrimeField;

    /// A socket round over loopback TCP must be bit-identical to the
    /// in-process bus on a mixed fault plan, multi-polynomial included.
    #[test]
    fn socket_round_matches_in_process() {
        let field = PrimeField::new(1_000_003).unwrap();
        let points: Vec<u64> = (0..31).collect();
        let plan = FaultPlan::with_faults(
            7,
            &[
                (1, FaultKind::Crash),
                (2, FaultKind::Corrupt { seed: 11 }),
                (3, FaultKind::Adversarial { offset: 4 }),
                (5, FaultKind::Equivocate { seed: 12 }),
            ],
        );
        let spec = RoundSpec { field: &field, points: &points, plan: &plan };
        let eval = ProgramEval::new(
            &field,
            vec![EvalProgram::Poly(vec![3, 1, 4]), EvalProgram::Poly(vec![9, 0, 0, 2])],
        );
        let reference = ClusterConfig::sequential(7).transport().run(&spec, &eval).unwrap();
        let socket = SocketTransport::loopback().run(&spec, &eval).unwrap();
        assert_eq!(socket.broadcasts.len(), 2);
        for (s, r) in socket.broadcasts.iter().zip(&reference.broadcasts) {
            assert!(s.same_word(r), "socket round diverged from the in-process bus");
            for receiver in 0..7 {
                assert_eq!(s.view_for(receiver), r.view_for(receiver));
            }
        }
        assert_eq!(socket.traffic, reference.traffic);
    }

    /// Closures cannot cross the socket boundary.
    #[test]
    fn socket_rejects_closures() {
        let field = PrimeField::new(97).unwrap();
        let points: Vec<u64> = (0..8).collect();
        let plan = FaultPlan::all_honest(2);
        let spec = RoundSpec { field: &field, points: &points, plan: &plan };
        let err =
            SocketTransport::loopback().run(&spec, &crate::round::SingleEval(|x| x)).unwrap_err();
        assert_eq!(err, TransportError::NotWireExpressible);
    }

    /// A missing worker binary surfaces as a worker failure, not a hang.
    #[test]
    fn missing_worker_binary_fails_fast() {
        let field = PrimeField::new(97).unwrap();
        let points: Vec<u64> = (0..4).collect();
        let plan = FaultPlan::all_honest(2);
        let spec = RoundSpec { field: &field, points: &points, plan: &plan };
        let eval = ProgramEval::new(&field, vec![EvalProgram::Poly(vec![1])]);
        let transport =
            SocketTransport::with_worker_binary(PathBuf::from("/nonexistent/camelot-node"));
        assert!(matches!(transport.run(&spec, &eval), Err(TransportError::WorkerFailed { .. })));
    }

    /// A persistent transport starts its worker pool once, reuses it
    /// across rounds bit-identically, and shuts it down gracefully.
    #[test]
    fn persistent_pool_reuses_workers_across_rounds() {
        let field = PrimeField::new(1_000_003).unwrap();
        let points: Vec<u64> = (0..31).collect();
        let plan = FaultPlan::with_faults(
            5,
            &[(1, FaultKind::Crash), (3, FaultKind::Corrupt { seed: 7 })],
        );
        let spec = RoundSpec { field: &field, points: &points, plan: &plan };
        let eval = ProgramEval::new(&field, vec![EvalProgram::Poly(vec![3, 1, 4])]);
        let reference = ClusterConfig::sequential(5).transport().run(&spec, &eval).unwrap();
        let transport = SocketTransport::persistent(WorkerMode::Threads);
        assert_eq!(transport.name(), "socket-pool");
        assert_eq!(transport.pool_live_workers(), 0, "pool starts lazily");
        for _ in 0..3 {
            let outcome = transport.run(&spec, &eval).unwrap();
            assert!(outcome.broadcasts[0].same_word(&reference.broadcasts[0]));
            assert_eq!(outcome.traffic, reference.traffic);
        }
        assert_eq!(transport.pool_live_workers(), 5, "workers outlive rounds");
        assert_eq!(transport.pool_respawns(), 0);
        transport.shutdown_pool().unwrap();
        assert_eq!(transport.pool_live_workers(), 0);
        // Idempotent: a second shutdown is a no-op.
        transport.shutdown_pool().unwrap();
    }

    /// Killing a pool worker surfaces as `WorkerFailed` on the next
    /// round; `repair_pool` respawns it and rounds succeed again.
    #[test]
    fn killed_pool_worker_fails_then_respawns() {
        let field = PrimeField::new(1_000_003).unwrap();
        let points: Vec<u64> = (0..16).collect();
        let plan = FaultPlan::all_honest(3);
        let spec = RoundSpec { field: &field, points: &points, plan: &plan };
        let eval = ProgramEval::new(&field, vec![EvalProgram::Poly(vec![1, 2])]);
        let transport = SocketTransport::persistent(WorkerMode::Threads);
        let first = transport.run(&spec, &eval).unwrap();
        transport.kill_pool_worker(1).unwrap();
        let err = transport.run(&spec, &eval).unwrap_err();
        assert!(
            matches!(err, TransportError::WorkerFailed { node: 1, .. }),
            "expected WorkerFailed for node 1, got {err}"
        );
        let respawned = transport.repair_pool().unwrap();
        assert!(respawned >= 1, "repair must respawn the killed lane");
        assert_eq!(transport.pool_respawns(), respawned);
        let again = transport.run(&spec, &eval).unwrap();
        assert!(again.broadcasts[0].same_word(&first.broadcasts[0]));
        transport.shutdown_pool().unwrap();
    }

    /// A worker that spawns but exits (nonzero) without ever connecting
    /// must be reported promptly — the accept loop may not run out the
    /// full socket timeout.
    #[test]
    fn worker_dying_before_connecting_fails_fast() {
        let field = PrimeField::new(97).unwrap();
        let points: Vec<u64> = (0..4).collect();
        let plan = FaultPlan::all_honest(2);
        let spec = RoundSpec { field: &field, points: &points, plan: &plan };
        let eval = ProgramEval::new(&field, vec![EvalProgram::Poly(vec![1])]);
        // `false` spawns fine and exits 1 immediately, never connecting.
        let transport = SocketTransport::with_worker_binary(PathBuf::from("/bin/false"));
        let start = std::time::Instant::now();
        let err = transport.run(&spec, &eval).unwrap_err();
        assert!(matches!(err, TransportError::WorkerFailed { .. }), "{err}");
        assert!(start.elapsed() < SOCKET_TIMEOUT / 2, "must fail fast, not run out the clock");
    }
}
