//! The in-process simulated bus — the historical default backend.
//!
//! Node slices run inside the coordinator, sequentially or on scoped OS
//! threads; frames are plain in-memory values, so the backend adds zero
//! serialization overhead and is bit-identical to the seed simulation
//! (deterministic either way — threading only changes wall-clock).
//! Configured chaos is *simulated*: the truthful frames are pushed
//! through the same sender-side [`worker_action`](crate::worker_action)
//! resolution the socket workers perform, so outcomes (delivery,
//! garbled symbols, demotions) are bit-identical to the real-TCP
//! backends without sleeping on real clocks.

use crate::chaos::ChaosPlan;
use crate::retry::TransportTuning;
use crate::round::{
    assemble_round, compute_node_frames, node_slice, NodeFrames, RoundEval, RoundOutcome, RoundSpec,
};
use crate::transport::{apply_simulated_chaos, check_chaos, Transport, TransportError};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The in-process backend.
#[derive(Clone, Debug, Default)]
pub struct InProcess {
    parallel: bool,
    tuning: TransportTuning,
    chaos: Option<ChaosPlan>,
}

impl InProcess {
    /// An in-process bus; `parallel` runs node slices on scoped threads.
    #[must_use]
    pub fn new(parallel: bool) -> Self {
        InProcess { parallel, tuning: TransportTuning::default(), chaos: None }
    }

    /// Overrides the transport tuning (the simulation consults the I/O
    /// deadline for chaos delay-versus-demotion decisions).
    #[must_use]
    pub fn with_tuning(mut self, tuning: TransportTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a chaos plan to simulate.
    #[must_use]
    pub fn with_chaos(mut self, chaos: Option<ChaosPlan>) -> Self {
        self.chaos = chaos;
        self
    }
}

impl Transport for InProcess {
    fn name(&self) -> &'static str {
        if self.parallel {
            "inproc-parallel"
        } else {
            "inproc"
        }
    }

    fn run(
        &self,
        spec: &RoundSpec<'_>,
        eval: &dyn RoundEval,
    ) -> Result<RoundOutcome, TransportError> {
        let nodes = spec.plan.nodes();
        let e = spec.points.len();
        check_chaos(self.chaos.as_ref(), nodes)?;
        let frames: Vec<NodeFrames> = if self.parallel {
            // Contiguous node groups, one scoped thread per group, capped
            // by the process-wide budget (`CAMELOT_THREADS`) instead of
            // one thread per node; concatenating group results in order
            // reproduces the sequential frame order exactly.
            let workers = camelot_ff::worker_count(nodes);
            let group = nodes.div_ceil(workers.max(1)).max(1);
            let node_ids: Vec<usize> = (0..nodes).collect();
            // Each group records the node it is currently computing, so a
            // panic still attributes to the exact node that failed.
            let progress: Vec<AtomicUsize> = node_ids
                .chunks(group)
                .map(|g| AtomicUsize::new(g.first().copied().unwrap_or(0)))
                .collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = node_ids
                    .chunks(group)
                    .zip(&progress)
                    .map(|(g, marker)| {
                        scope.spawn(move || {
                            g.iter()
                                .map(|&node| {
                                    marker.store(node, Ordering::Relaxed);
                                    let (lo, hi) = node_slice(e, nodes, node);
                                    compute_node_frames(
                                        spec.field,
                                        spec.plan.kind(node),
                                        nodes,
                                        node,
                                        lo,
                                        &spec.points[lo..hi],
                                        eval,
                                    )
                                })
                                .collect::<Vec<NodeFrames>>()
                        })
                    })
                    .collect();
                // A panicked node surfaces as a transport error instead of
                // aborting the coordinator.
                let mut all = Vec::with_capacity(nodes);
                for (h, marker) in handles.into_iter().zip(&progress) {
                    match h.join() {
                        Ok(group_frames) => all.extend(group_frames),
                        Err(_) => {
                            return Err(TransportError::WorkerFailed {
                                node: marker.load(Ordering::Relaxed),
                                reason: "node thread panicked".to_string(),
                            })
                        }
                    }
                }
                Ok(all)
            })?
        } else {
            (0..nodes)
                .map(|node| {
                    let (lo, hi) = node_slice(e, nodes, node);
                    compute_node_frames(
                        spec.field,
                        spec.plan.kind(node),
                        nodes,
                        node,
                        lo,
                        &spec.points[lo..hi],
                        eval,
                    )
                })
                .collect()
        };
        let (frames, demotions) = match &self.chaos {
            Some(chaos) => {
                apply_simulated_chaos(spec, eval.width(), self.tuning.deadline_ms(), chaos, frames)
            }
            None => (frames, Vec::new()),
        };
        Ok(assemble_round(spec, eval.width(), frames, demotions))
    }
}
