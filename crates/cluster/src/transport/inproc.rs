//! The in-process simulated bus — the historical default backend.
//!
//! Node slices run inside the coordinator, sequentially or on scoped OS
//! threads; frames are plain in-memory values, so the backend adds zero
//! serialization overhead and is bit-identical to the seed simulation
//! (deterministic either way — threading only changes wall-clock).

use crate::round::{
    assemble_round, compute_node_frames, node_slice, NodeFrames, RoundEval, RoundOutcome, RoundSpec,
};
use crate::transport::{Transport, TransportError};

/// The in-process backend.
#[derive(Clone, Copy, Debug, Default)]
pub struct InProcess {
    parallel: bool,
}

impl InProcess {
    /// An in-process bus; `parallel` runs node slices on scoped threads.
    #[must_use]
    pub fn new(parallel: bool) -> Self {
        InProcess { parallel }
    }
}

impl Transport for InProcess {
    fn name(&self) -> &'static str {
        if self.parallel {
            "inproc-parallel"
        } else {
            "inproc"
        }
    }

    fn run(
        &self,
        spec: &RoundSpec<'_>,
        eval: &dyn RoundEval,
    ) -> Result<RoundOutcome, TransportError> {
        let nodes = spec.plan.nodes();
        let e = spec.points.len();
        let frames: Vec<NodeFrames> = if self.parallel {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..nodes)
                    .map(|node| {
                        let (lo, hi) = node_slice(e, nodes, node);
                        scope.spawn(move || {
                            compute_node_frames(
                                spec.field,
                                spec.plan.kind(node),
                                nodes,
                                node,
                                lo,
                                &spec.points[lo..hi],
                                eval,
                            )
                        })
                    })
                    .collect();
                // A panicked node surfaces as a transport error instead of
                // aborting the coordinator.
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(node, h)| {
                        h.join().map_err(|_| TransportError::WorkerFailed {
                            node,
                            reason: "node thread panicked".to_string(),
                        })
                    })
                    .collect::<Result<Vec<NodeFrames>, TransportError>>()
            })?
        } else {
            (0..nodes)
                .map(|node| {
                    let (lo, hi) = node_slice(e, nodes, node);
                    compute_node_frames(
                        spec.field,
                        spec.plan.kind(node),
                        nodes,
                        node,
                        lo,
                        &spec.points[lo..hi],
                        eval,
                    )
                })
                .collect()
        };
        Ok(assemble_round(spec, eval.width(), frames))
    }
}
