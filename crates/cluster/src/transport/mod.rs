//! Pluggable broadcast transports.
//!
//! A [`Transport`] moves one round's frames between the `K` nodes and
//! hands back the assembled [`RoundOutcome`]. Three backends ship:
//!
//! * [`InProcess`](crate::InProcess) — the historical simulated bus:
//!   node slices run in the coordinator (sequentially or on scoped
//!   threads), zero serialization overhead, bit-identical to the seed;
//! * [`ChannelTransport`](crate::ChannelTransport) — one OS thread per
//!   node, communicating **only** via `std::sync::mpsc` message frames
//!   (no shared truth vector);
//! * [`SocketTransport`](crate::SocketTransport) — loopback TCP workers
//!   speaking the line-oriented v1 frame format below, either as
//!   in-process threads or as spawned `camelot-node` worker processes,
//!   so a round really spans OS processes.
//!
//! ## The v1 frame format
//!
//! Plain-text and line-oriented, extending the `camelot-certificate v1`
//! conventions of the certificate wire format (ASCII, one
//! space-separated record per line, explicit `end` marker):
//!
//! ```text
//! camelot-task v1          camelot-reply v1
//! field <q>                node <i>
//! cluster <K>              evals <n>
//! node <i>                 nanos <t>
//! width <w>                frame all <sym|-> ...
//! fault <kind...>          frame <r> <sym|-> ...
//! program <p> poly <c...>  end
//! points <lo> <x> ...
//! end
//! ```
//!
//! `-` marks an erased symbol. A uniform sender replies with a single
//! `frame all` line; an equivocator replies with `frame all` (its
//! truthful base, diagnostic) followed by one `frame <r>` line per
//! receiver.

mod channel;
mod inproc;
mod pool;
mod socket;

pub use channel::ChannelTransport;
pub use inproc::InProcess;
pub use pool::WorkerPool;
pub use socket::{serve_worker, serve_worker_loop, SocketTransport, WorkerMode};

use crate::chaos::{
    simulated_failure, worker_action, ChaosEffect, ChaosPlan, Demotion, WorkerAction,
};
use crate::fault::FaultKind;
use crate::retry::TransportTuning;
use crate::round::{crash_frames, FrameBody, NodeFrames, RoundEval, RoundOutcome, RoundSpec};
use camelot_ff::PrimeField;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// A broadcast backend: runs one round and returns the assembled
/// per-polynomial broadcasts plus traffic accounting.
pub trait Transport {
    /// Backend name for reports and error messages.
    fn name(&self) -> &'static str;

    /// Runs one round.
    ///
    /// # Errors
    ///
    /// [`TransportError::NotWireExpressible`] when a process-spanning
    /// backend is asked to run closures it cannot ship, and I/O or
    /// protocol failures for the socket backend. The in-process backends
    /// are infallible.
    fn run(
        &self,
        spec: &RoundSpec<'_>,
        eval: &dyn RoundEval,
    ) -> Result<RoundOutcome, TransportError>;
}

/// Transport failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The round's polynomials have no wire-expressible program, so a
    /// process-spanning backend cannot ship them.
    NotWireExpressible,
    /// An I/O failure on the socket backend.
    Io {
        /// Human-readable description.
        reason: String,
    },
    /// A malformed task or reply message.
    Protocol {
        /// Human-readable description.
        reason: String,
    },
    /// A worker exited or misbehaved.
    WorkerFailed {
        /// The node whose worker failed.
        node: usize,
        /// Human-readable description.
        reason: String,
    },
    /// An operation exceeded its configured I/O deadline.
    TimedOut {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::NotWireExpressible => {
                write!(f, "round polynomials are not wire-expressible (no EvalProgram)")
            }
            TransportError::Io { reason } => write!(f, "transport I/O failed: {reason}"),
            TransportError::Protocol { reason } => write!(f, "malformed frame: {reason}"),
            TransportError::WorkerFailed { node, reason } => {
                write!(f, "worker for node {node} failed: {reason}")
            }
            TransportError::TimedOut { reason } => {
                write!(f, "transport deadline exceeded: {reason}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// A wire-expressible evaluation program: what a `camelot-node` worker
/// process can execute on its own, reconstructed from the task message
/// alone (the paper's "common input" made literal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalProgram {
    /// Horner evaluation of an explicit coefficient vector
    /// (little-endian, reduced mod `q`).
    Poly(Vec<u64>),
}

impl EvalProgram {
    /// Evaluates the program at `x0` over `field`.
    #[must_use]
    pub fn eval(&self, field: &PrimeField, x0: u64) -> u64 {
        match self {
            EvalProgram::Poly(coeffs) => {
                let x = field.reduce(x0);
                let mut acc = 0u64;
                for &c in coeffs.iter().rev() {
                    acc = field.mul_add(field.reduce(c), acc, x);
                }
                acc
            }
        }
    }
}

/// Which backend a [`ClusterConfig`] builds.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// The in-process simulated bus (default; zero overhead).
    #[default]
    InProcess,
    /// One OS thread per node, mpsc frames only.
    Channel,
    /// Loopback TCP workers speaking the v1 frame format.
    Socket(WorkerMode),
}

/// Execution configuration for a proof-preparation round.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of compute nodes `K`.
    pub nodes: usize,
    /// For the [`Backend::InProcess`] backend: run node slices on OS
    /// threads (the simulation is deterministic either way; sequential
    /// is the default and is exactly reproducible in timing-sensitive
    /// tests). The channel and socket backends are inherently
    /// concurrent.
    pub parallel: bool,
    /// Which broadcast backend rounds run on.
    pub backend: Backend,
    /// Timeout/retry/demotion knobs for the socket-flavoured backends
    /// (the in-process chaos simulation consults `io_deadline` for its
    /// delay-versus-deadline decisions).
    pub tuning: TransportTuning,
    /// Optional transport-level fault injection, applied identically by
    /// every backend.
    pub chaos: Option<ChaosPlan>,
}

impl ClusterConfig {
    /// Sequential in-process simulation with `K` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn sequential(nodes: usize) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        ClusterConfig {
            nodes,
            parallel: false,
            backend: Backend::InProcess,
            tuning: TransportTuning::default(),
            chaos: None,
        }
    }

    /// Threaded in-process simulation with `K` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    #[must_use]
    pub fn parallel(nodes: usize) -> Self {
        ClusterConfig { parallel: true, ..ClusterConfig::sequential(nodes) }
    }

    /// Switches the broadcast backend.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the transport tuning (deadlines, retries, demotion).
    #[must_use]
    pub fn with_tuning(mut self, tuning: TransportTuning) -> Self {
        self.tuning = tuning;
        self
    }

    /// Installs a chaos plan, injected identically by every backend.
    #[must_use]
    pub fn with_chaos(mut self, chaos: Option<ChaosPlan>) -> Self {
        self.chaos = chaos;
        self
    }

    /// Builds the configured transport.
    #[must_use]
    pub fn transport(&self) -> Box<dyn Transport> {
        let tuning = self.tuning.clone();
        let chaos = self.chaos.clone();
        match &self.backend {
            Backend::InProcess => {
                Box::new(InProcess::new(self.parallel).with_tuning(tuning).with_chaos(chaos))
            }
            Backend::Channel => {
                Box::new(ChannelTransport::new().with_tuning(tuning).with_chaos(chaos))
            }
            Backend::Socket(mode) => {
                Box::new(SocketTransport::new(mode.clone()).with_tuning(tuning).with_chaos(chaos))
            }
        }
    }
}

/// Resolves a sibling workspace binary next to the current executable
/// (all workspace binaries land in the same target directory) — e.g.
/// `camelot-node` for process-spanning socket rounds, `camelot-serve`
/// for daemon experiments.
#[must_use]
pub fn sibling_binary(name: &str) -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for dir in [dir, dir.parent()?] {
        let candidate = dir.join(name);
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

/// Resolves the `camelot-node` worker binary next to the current
/// executable, for process-spanning socket rounds.
#[must_use]
pub fn sibling_worker_binary() -> Option<PathBuf> {
    sibling_binary("camelot-node")
}

// ---------------------------------------------------------------------
// The v1 frame format: task, reply, and control messages.
// ---------------------------------------------------------------------

/// Magic header of a task message.
pub const TASK_HEADER: &str = "camelot-task v1";
/// Magic header of a reply message.
pub const REPLY_HEADER: &str = "camelot-reply v1";
/// Control frame: the coordinator tells a persistent worker to exit
/// cleanly (replaces best-effort process kill as the teardown path).
pub const SHUTDOWN_HEADER: &str = "camelot-shutdown v1";
/// Control frame: health-check probe to a persistent worker.
pub const PING_HEADER: &str = "camelot-ping v1";
/// Control frame: a live worker's answer to a ping.
pub const PONG_HEADER: &str = "camelot-pong v1";

/// The one-line body of a control frame (`<header>\nend\n`), shared by
/// the shutdown/ping/pong messages of the persistent worker protocol.
#[must_use]
pub fn control_frame(header: &str) -> String {
    format!("{header}\nend\n")
}

/// One node's work order for a round, as shipped to a worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Task {
    /// The round's prime modulus.
    pub modulus: u64,
    /// Cluster size `K`.
    pub nodes: usize,
    /// The node this task is for.
    pub node: usize,
    /// The node's behaviour this round.
    pub fault: FaultKind,
    /// One program per polynomial in the round.
    pub programs: Vec<EvalProgram>,
    /// Global index of the first assigned point.
    pub lo: usize,
    /// The node's assigned evaluation points.
    pub points: Vec<u64>,
    /// Transport-level chaos the worker must inflict on its own reply
    /// (sender-side injection, like the algebraic faults). Absent from
    /// the wire when `None`, so chaos-free tasks are byte-identical to
    /// the historical format.
    pub chaos: Option<ChaosEffect>,
    /// The coordinator's I/O deadline in milliseconds, shipped with the
    /// task so the worker resolves delay-versus-demotion by comparing
    /// configured numbers (never wall clock). On the wire only when it
    /// differs from the 60 s default.
    pub deadline_ms: u64,
}

/// Deadline shipped in tasks when none is configured (the historical
/// 60 s socket timeout).
pub(crate) const DEFAULT_TASK_DEADLINE_MS: u64 = 60_000;

fn push_fault(out: &mut String, kind: FaultKind) {
    match kind {
        FaultKind::Honest => out.push_str("fault honest\n"),
        FaultKind::Crash => out.push_str("fault crash\n"),
        FaultKind::Corrupt { seed } => {
            out.push_str(&format!("fault corrupt {seed}\n"));
        }
        FaultKind::Adversarial { offset } => {
            out.push_str(&format!("fault adversarial {offset}\n"));
        }
        FaultKind::Equivocate { seed } => {
            out.push_str(&format!("fault equivocate {seed}\n"));
        }
    }
}

fn parse_fault(tokens: &[&str]) -> Result<FaultKind, TransportError> {
    let arg = |what: &str| -> Result<u64, TransportError> {
        tokens
            .get(1)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| protocol(&format!("fault {what} needs a numeric argument")))
    };
    match tokens.first() {
        Some(&"honest") => Ok(FaultKind::Honest),
        Some(&"crash") => Ok(FaultKind::Crash),
        Some(&"corrupt") => Ok(FaultKind::Corrupt { seed: arg("corrupt")? }),
        Some(&"adversarial") => Ok(FaultKind::Adversarial { offset: arg("adversarial")? }),
        Some(&"equivocate") => Ok(FaultKind::Equivocate { seed: arg("equivocate")? }),
        _ => Err(protocol("unknown fault kind")),
    }
}

fn protocol(reason: &str) -> TransportError {
    TransportError::Protocol { reason: reason.to_string() }
}

fn push_chaos(out: &mut String, effect: ChaosEffect) {
    match effect {
        ChaosEffect::Delay { millis } => out.push_str(&format!("chaos delay {millis}\n")),
        ChaosEffect::DropFrame => out.push_str("chaos drop\n"),
        ChaosEffect::Truncate { seed } => out.push_str(&format!("chaos truncate {seed}\n")),
        ChaosEffect::Garble { seed } => out.push_str(&format!("chaos garble {seed}\n")),
        ChaosEffect::Duplicate => out.push_str("chaos duplicate\n"),
        ChaosEffect::Reset => out.push_str("chaos reset\n"),
        ChaosEffect::Hang => out.push_str("chaos hang\n"),
    }
}

fn parse_chaos(tokens: &[&str]) -> Result<ChaosEffect, TransportError> {
    let arg = |what: &str| -> Result<u64, TransportError> {
        tokens
            .get(1)
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| protocol(&format!("chaos {what} needs a numeric argument")))
    };
    match tokens.first() {
        Some(&"delay") => Ok(ChaosEffect::Delay { millis: arg("delay")? }),
        Some(&"drop") => Ok(ChaosEffect::DropFrame),
        Some(&"truncate") => Ok(ChaosEffect::Truncate { seed: arg("truncate")? }),
        Some(&"garble") => Ok(ChaosEffect::Garble { seed: arg("garble")? }),
        Some(&"duplicate") => Ok(ChaosEffect::Duplicate),
        Some(&"reset") => Ok(ChaosEffect::Reset),
        Some(&"hang") => Ok(ChaosEffect::Hang),
        _ => Err(protocol("unknown chaos effect")),
    }
}

impl Task {
    /// Serializes to the v1 task format.
    #[must_use]
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        out.push_str(TASK_HEADER);
        out.push('\n');
        out.push_str(&format!("field {}\n", self.modulus));
        out.push_str(&format!("cluster {}\n", self.nodes));
        out.push_str(&format!("node {}\n", self.node));
        out.push_str(&format!("width {}\n", self.programs.len()));
        push_fault(&mut out, self.fault);
        // Neither line appears on a default quiet task, keeping the
        // historical wire byte-identical; each is emitted independently
        // so every Task value round-trips exactly.
        if self.deadline_ms != DEFAULT_TASK_DEADLINE_MS {
            out.push_str(&format!("deadline {}\n", self.deadline_ms));
        }
        if let Some(effect) = self.chaos {
            push_chaos(&mut out, effect);
        }
        for (p, program) in self.programs.iter().enumerate() {
            match program {
                EvalProgram::Poly(coeffs) => {
                    out.push_str(&format!("program {p} poly"));
                    for &c in coeffs {
                        out.push_str(&format!(" {c}"));
                    }
                    out.push('\n');
                }
            }
        }
        out.push_str(&format!("points {}", self.lo));
        for &x in &self.points {
            out.push_str(&format!(" {x}"));
        }
        out.push_str("\nend\n");
        out
    }

    /// Parses the v1 task format.
    ///
    /// # Errors
    ///
    /// [`TransportError::Protocol`] for any structural violation (never
    /// panics on malformed input).
    pub fn from_wire(text: &str) -> Result<Task, TransportError> {
        let mut lines = text.lines();
        if lines.next() != Some(TASK_HEADER) {
            return Err(protocol("missing task header"));
        }
        let mut modulus = None;
        let mut nodes = None;
        let mut node = None;
        let mut width = None;
        let mut fault = None;
        let mut chaos = None;
        let mut deadline_ms = DEFAULT_TASK_DEADLINE_MS;
        let mut programs: Vec<(usize, EvalProgram)> = Vec::new();
        let mut assigned: Option<(usize, Vec<u64>)> = None;
        let mut ended = false;
        for line in lines {
            let tokens: Vec<&str> = line.split_ascii_whitespace().collect();
            match tokens.first() {
                Some(&"field") => modulus = Some(parse_u64(tokens.get(1), "field")?),
                Some(&"cluster") => nodes = Some(parse_usize(tokens.get(1), "cluster")?),
                Some(&"node") => node = Some(parse_usize(tokens.get(1), "node")?),
                Some(&"width") => width = Some(parse_usize(tokens.get(1), "width")?),
                Some(&"fault") => fault = Some(parse_fault(tokens.get(1..).unwrap_or(&[]))?),
                Some(&"chaos") => chaos = Some(parse_chaos(tokens.get(1..).unwrap_or(&[]))?),
                Some(&"deadline") => deadline_ms = parse_u64(tokens.get(1), "deadline")?,
                Some(&"program") => {
                    let p = parse_usize(tokens.get(1), "program index")?;
                    match tokens.get(2) {
                        Some(&"poly") => {
                            let coeffs = tokens
                                .get(3..)
                                .unwrap_or(&[])
                                .iter()
                                .map(|t| {
                                    t.parse::<u64>()
                                        .map_err(|_| protocol("non-numeric program coefficient"))
                                })
                                .collect::<Result<Vec<u64>, _>>()?;
                            programs.push((p, EvalProgram::Poly(coeffs)));
                        }
                        _ => return Err(protocol("unknown program kind")),
                    }
                }
                Some(&"points") => {
                    let lo = parse_usize(tokens.get(1), "points base index")?;
                    let xs = tokens
                        .get(2..)
                        .unwrap_or(&[])
                        .iter()
                        .map(|t| t.parse::<u64>().map_err(|_| protocol("non-numeric point")))
                        .collect::<Result<Vec<u64>, _>>()?;
                    assigned = Some((lo, xs));
                }
                Some(&"end") => {
                    ended = true;
                    break;
                }
                Some(other) => return Err(protocol(&format!("unknown task section {other:?}"))),
                None => {} // blank line tolerated
            }
        }
        if !ended {
            return Err(protocol("missing task end marker"));
        }
        let width = width.ok_or_else(|| protocol("missing width"))?;
        programs.sort_by_key(|&(p, _)| p);
        if programs.len() != width
            || programs.iter().enumerate().any(|(i, &(p, _))| p != i)
            || width == 0
        {
            return Err(protocol("program lines do not cover the round width"));
        }
        let (lo, points) = assigned.ok_or_else(|| protocol("missing points"))?;
        let modulus = modulus.ok_or_else(|| protocol("missing field"))?;
        if modulus < 2 {
            return Err(protocol("field modulus must be at least 2"));
        }
        let nodes = nodes.ok_or_else(|| protocol("missing cluster size"))?;
        let node = node.ok_or_else(|| protocol("missing node id"))?;
        if nodes == 0 || node >= nodes {
            return Err(protocol("node id outside the cluster"));
        }
        Ok(Task {
            modulus,
            nodes,
            node,
            fault: fault.ok_or_else(|| protocol("missing fault kind"))?,
            programs: programs.into_iter().map(|(_, prog)| prog).collect(),
            lo,
            points,
            chaos,
            deadline_ms,
        })
    }
}

fn parse_u64(tok: Option<&&str>, what: &str) -> Result<u64, TransportError> {
    tok.and_then(|s| s.parse::<u64>().ok()).ok_or_else(|| protocol(&format!("bad {what} field")))
}

fn parse_usize(tok: Option<&&str>, what: &str) -> Result<usize, TransportError> {
    tok.and_then(|s| s.parse::<usize>().ok()).ok_or_else(|| protocol(&format!("bad {what} field")))
}

fn push_symbols(out: &mut String, symbols: &[Option<u64>]) {
    for sym in symbols {
        match sym {
            Some(v) => out.push_str(&format!(" {v}")),
            None => out.push_str(" -"),
        }
    }
    out.push('\n');
}

fn parse_symbols(tokens: &[&str]) -> Result<Vec<Option<u64>>, TransportError> {
    tokens
        .iter()
        .map(|&t| {
            if t == "-" {
                Ok(None)
            } else {
                t.parse::<u64>().map(Some).map_err(|_| protocol("non-numeric symbol"))
            }
        })
        .collect()
}

/// Serializes one node's reply (its [`NodeFrames`]) to the v1 format.
#[must_use]
pub fn encode_reply(frames: &NodeFrames) -> String {
    let mut out = String::new();
    out.push_str(REPLY_HEADER);
    out.push('\n');
    out.push_str(&format!("node {}\n", frames.node));
    out.push_str(&format!("evals {}\n", frames.evaluations));
    out.push_str(&format!("nanos {}\n", frames.elapsed.as_nanos()));
    match &frames.body {
        FrameBody::Uniform(symbols) => {
            out.push_str("frame all");
            push_symbols(&mut out, symbols);
        }
        FrameBody::PerReceiver { base, per_receiver } => {
            out.push_str("frame all");
            push_symbols(&mut out, base);
            for (r, frame) in per_receiver.iter().enumerate() {
                out.push_str(&format!("frame {r}"));
                push_symbols(&mut out, frame);
            }
        }
    }
    out.push_str("end\n");
    out
}

/// Parses one node's reply from the v1 format.
///
/// # Errors
///
/// [`TransportError::Protocol`] for any structural violation (never
/// panics on malformed input).
pub fn parse_reply(text: &str) -> Result<NodeFrames, TransportError> {
    let mut lines = text.lines();
    if lines.next() != Some(REPLY_HEADER) {
        return Err(protocol("missing reply header"));
    }
    let mut node = None;
    let mut evaluations = None;
    let mut nanos: Option<u64> = None;
    let mut base: Option<Vec<Option<u64>>> = None;
    let mut per_receiver: Vec<(usize, Vec<Option<u64>>)> = Vec::new();
    let mut ended = false;
    for line in lines {
        let tokens: Vec<&str> = line.split_ascii_whitespace().collect();
        match tokens.first() {
            Some(&"node") => node = Some(parse_usize(tokens.get(1), "node")?),
            Some(&"evals") => evaluations = Some(parse_usize(tokens.get(1), "evals")?),
            Some(&"nanos") => nanos = Some(parse_u64(tokens.get(1), "nanos")?),
            Some(&"frame") => match tokens.get(1) {
                Some(&"all") => {
                    if base.is_some() {
                        return Err(protocol("duplicate frame all"));
                    }
                    base = Some(parse_symbols(tokens.get(2..).unwrap_or(&[]))?);
                }
                Some(_) => {
                    let r = parse_usize(tokens.get(1), "frame receiver")?;
                    per_receiver.push((r, parse_symbols(tokens.get(2..).unwrap_or(&[]))?));
                }
                None => return Err(protocol("frame line missing receiver")),
            },
            Some(&"end") => {
                ended = true;
                break;
            }
            Some(other) => return Err(protocol(&format!("unknown reply section {other:?}"))),
            None => {}
        }
    }
    if !ended {
        return Err(protocol("missing reply end marker"));
    }
    let base = base.ok_or_else(|| protocol("reply carries no frames"))?;
    let body = if per_receiver.is_empty() {
        FrameBody::Uniform(base)
    } else {
        per_receiver.sort_by_key(|&(r, _)| r);
        if per_receiver.iter().enumerate().any(|(i, &(r, _))| r != i)
            || per_receiver.iter().any(|(_, f)| f.len() != base.len())
        {
            return Err(protocol("per-receiver frames do not cover the cluster"));
        }
        FrameBody::PerReceiver {
            base,
            per_receiver: per_receiver.into_iter().map(|(_, f)| f).collect(),
        }
    };
    Ok(NodeFrames {
        node: node.ok_or_else(|| protocol("missing node id"))?,
        evaluations: evaluations.ok_or_else(|| protocol("missing evals"))?,
        elapsed: Duration::from_nanos(nanos.ok_or_else(|| protocol("missing nanos"))?),
        body,
    })
}

/// Executes a parsed [`Task`]: the worker side of a round, shared by
/// the `camelot-node` process and the in-process socket workers.
#[must_use]
pub fn execute_task(task: &Task) -> NodeFrames {
    let field = PrimeField::new_unchecked(task.modulus);
    let eval = crate::round::ProgramEval::new(&field, task.programs.clone());
    crate::round::compute_node_frames(
        &field,
        task.fault,
        task.nodes,
        task.node,
        task.lo,
        &task.points,
        &eval,
    )
}

/// Rejects a chaos plan sized for a different cluster.
pub(crate) fn check_chaos(chaos: Option<&ChaosPlan>, nodes: usize) -> Result<(), TransportError> {
    match chaos {
        Some(plan) if plan.nodes() != nodes => Err(TransportError::Protocol {
            reason: format!("chaos plan covers {} nodes but the cluster has {nodes}", plan.nodes()),
        }),
        _ => Ok(()),
    }
}

/// The in-process simulation of sender-side chaos, shared by the
/// [`InProcess`] and [`ChannelTransport`] backends: each afflicted
/// node's truthful frames are pushed through the same
/// [`worker_action`] resolution the socket workers perform over real
/// TCP, and the observable outcome is reproduced — delivery (via the
/// real encode/parse/validate path when bytes were touched), or
/// demotion to a synthesized crash frame with the same
/// [`FailureCause`](crate::FailureCause) the socket coordinator's
/// timeout/EOF/parse machinery reports. Within-deadline delays deliver
/// without sleeping (the delay is real wall time only on sockets;
/// round *outcomes* are bit-identical either way).
pub(crate) fn apply_simulated_chaos(
    spec: &RoundSpec<'_>,
    width: usize,
    deadline_ms: u64,
    chaos: &ChaosPlan,
    frames: Vec<NodeFrames>,
) -> (Vec<NodeFrames>, Vec<Demotion>) {
    let nodes = spec.plan.nodes();
    let num_points = spec.points.len();
    let mut out = Vec::with_capacity(frames.len());
    let mut demotions = Vec::new();
    let mut demote = |node: usize, cause, out: &mut Vec<NodeFrames>| {
        demotions.push(Demotion { node, cause });
        out.push(crash_frames(num_points, nodes, node, width));
    };
    for frame in frames {
        let node = frame.node;
        let Some(effect) = chaos.effect(node) else {
            out.push(frame);
            continue;
        };
        match effect {
            // Effects that deliver the truthful bytes unchanged skip
            // the encode/parse round-trip (lossless per the round-trip
            // tests): a within-deadline delay, and a duplicate whose
            // first copy wins.
            ChaosEffect::Delay { millis } if millis <= deadline_ms => out.push(frame),
            ChaosEffect::Duplicate => out.push(frame),
            _ => {
                let action = worker_action(
                    Some(effect),
                    deadline_ms,
                    spec.field.modulus(),
                    encode_reply(&frame),
                );
                match simulated_failure(&action) {
                    Some(cause) => demote(node, cause, &mut out),
                    None => {
                        let delivered = match &action {
                            WorkerAction::Deliver { text, .. } => {
                                parse_reply(text).and_then(|reply| {
                                    socket::validate_reply(&reply, node, nodes, num_points, width)
                                        .map(|()| reply)
                                })
                            }
                            _ => Err(protocol("delivering action expected")),
                        };
                        match delivered {
                            Ok(reply) => out.push(reply),
                            Err(_) => demote(node, crate::chaos::FailureCause::Protocol, &mut out),
                        }
                    }
                }
            }
        }
    }
    (out, demotions)
}

/// The (symbols broadcast, frame bytes) cost of one node's frames in
/// the v1 encoding — the shared traffic model: uniform senders
/// broadcast their `frame all` line once, equivocators pay one
/// `frame <r>` line per receiver, crashed senders put nothing on the
/// medium (their explicit erasure frame is simulation bookkeeping).
#[must_use]
pub fn frame_wire_cost(kind: FaultKind, body: &FrameBody) -> (usize, u64) {
    fn line_bytes(prefix: usize, symbols: &[Option<u64>]) -> u64 {
        let mut bytes = prefix as u64 + 1; // prefix + newline
        for sym in symbols {
            bytes += 1 // separating space
                + match sym {
                    Some(v) => decimal_digits(*v),
                    None => 1,
                };
        }
        bytes
    }
    match (kind, body) {
        (FaultKind::Crash, _) => (0, 0),
        (_, FrameBody::Uniform(symbols)) => (symbols.len(), line_bytes("frame all".len(), symbols)),
        (_, FrameBody::PerReceiver { per_receiver, .. }) => {
            let symbols: usize = per_receiver.iter().map(Vec::len).sum();
            let bytes = per_receiver
                .iter()
                .enumerate()
                .map(|(r, frame)| {
                    line_bytes("frame ".len() + decimal_digits(r as u64) as usize, frame)
                })
                .sum();
            (symbols, bytes)
        }
    }
}

fn decimal_digits(v: u64) -> u64 {
    if v == 0 {
        1
    } else {
        v.ilog10() as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_roundtrips() {
        let task = Task {
            modulus: 1_000_003,
            nodes: 5,
            node: 2,
            fault: FaultKind::Equivocate { seed: 42 },
            programs: vec![EvalProgram::Poly(vec![1, 2, 3]), EvalProgram::Poly(vec![0])],
            lo: 8,
            points: vec![8, 9, 10, 11],
            chaos: None,
            deadline_ms: DEFAULT_TASK_DEADLINE_MS,
        };
        assert_eq!(Task::from_wire(&task.to_wire()).unwrap(), task);
    }

    #[test]
    fn chaos_lines_roundtrip_and_stay_off_the_quiet_wire() {
        let quiet = Task {
            modulus: 97,
            nodes: 2,
            node: 0,
            fault: FaultKind::Honest,
            programs: vec![EvalProgram::Poly(vec![1])],
            lo: 0,
            points: vec![0, 1],
            chaos: None,
            deadline_ms: DEFAULT_TASK_DEADLINE_MS,
        };
        assert!(
            !quiet.to_wire().contains("chaos") && !quiet.to_wire().contains("deadline"),
            "chaos-free tasks must stay byte-identical to the historical format"
        );
        for effect in [
            ChaosEffect::Delay { millis: 7 },
            ChaosEffect::DropFrame,
            ChaosEffect::Truncate { seed: 99 },
            ChaosEffect::Garble { seed: 123 },
            ChaosEffect::Duplicate,
            ChaosEffect::Reset,
            ChaosEffect::Hang,
        ] {
            let task = Task { chaos: Some(effect), deadline_ms: 250, ..quiet.clone() };
            assert_eq!(Task::from_wire(&task.to_wire()).unwrap(), task, "{effect:?}");
        }
        assert!(Task::from_wire(
            "camelot-task v1\nfield 97\ncluster 2\nnode 0\nwidth 1\nfault honest\n\
             chaos nonsense\nprogram 0 poly 1\npoints 0 1\nend\n"
        )
        .is_err());
    }

    #[test]
    fn reply_roundtrips_uniform_and_per_receiver() {
        let uniform = NodeFrames {
            node: 1,
            evaluations: 3,
            elapsed: Duration::from_nanos(123_456),
            body: FrameBody::Uniform(vec![Some(5), None, Some(0)]),
        };
        assert_eq!(parse_reply(&encode_reply(&uniform)).unwrap(), uniform);

        let equivocating = NodeFrames {
            node: 0,
            evaluations: 2,
            elapsed: Duration::ZERO,
            body: FrameBody::PerReceiver {
                base: vec![Some(1), Some(2)],
                per_receiver: vec![vec![Some(3), Some(4)], vec![Some(5), Some(6)]],
            },
        };
        assert_eq!(parse_reply(&encode_reply(&equivocating)).unwrap(), equivocating);
    }

    #[test]
    fn malformed_messages_error_out() {
        for text in [
            "",
            "nonsense",
            "camelot-task v1\nend\n",
            "camelot-task v1\nfield abc\nend\n",
            "camelot-task v1\nfield 97\ncluster 2\nnode 5\nwidth 1\nfault honest\nprogram 0 poly 1\npoints 0 1\nend\n",
            "camelot-task v1\nfield 97\ncluster 2\nnode 0\nwidth 2\nfault honest\nprogram 0 poly 1\npoints 0 1\nend\n",
            "camelot-task v1\nfield 97\ncluster 2\nnode 0\nwidth 1\nfault corrupt\nprogram 0 poly 1\npoints 0 1\nend\n",
            "camelot-reply v1\nend\n",
            "camelot-reply v1\nnode 0\nevals 1\nnanos 5\nframe all 1\nframe 1 2\nend\n",
            "camelot-reply v1\nnode 0\nevals 1\nnanos 5\nframe all 1 2\nframe 0 9\nframe 1 8\nend\n",
        ] {
            assert!(Task::from_wire(text).is_err() || parse_reply(text).is_err(), "{text:?}");
        }
    }

    #[test]
    fn execute_task_applies_the_fault() {
        let task = Task {
            modulus: 1_000_003,
            nodes: 3,
            node: 1,
            fault: FaultKind::Crash,
            programs: vec![EvalProgram::Poly(vec![7, 1])], // 7 + x
            lo: 4,
            points: vec![4, 5, 6, 7],
            chaos: None,
            deadline_ms: DEFAULT_TASK_DEADLINE_MS,
        };
        let frames = execute_task(&task);
        assert_eq!(frames.evaluations, 4);
        assert_eq!(frames.body, FrameBody::Uniform(vec![None; 4]));
        let honest = execute_task(&Task { fault: FaultKind::Honest, ..task });
        assert_eq!(honest.body, FrameBody::Uniform(vec![Some(11), Some(12), Some(13), Some(14)]));
    }

    #[test]
    fn program_eval_matches_horner() {
        let field = PrimeField::new(97).unwrap();
        let program = EvalProgram::Poly(vec![3, 0, 1]); // 3 + x^2
        assert_eq!(program.eval(&field, 0), 3);
        assert_eq!(program.eval(&field, 5), 28);
        assert_eq!(program.eval(&field, 97 + 5), 28);
    }
}
