//! The persistent worker pool behind [`SocketTransport::persistent`]:
//! long-lived loopback workers that outlive individual rounds.
//!
//! Each lane is one worker (thread or spawned `camelot-node --persist`
//! process) holding one TCP connection for its whole life. Rounds write
//! a [`Task`] frame down every lane and read one reply back; between
//! rounds the lanes idle inside [`serve_worker_loop`]. Health checks
//! use `camelot-ping v1`/`camelot-pong v1`, and teardown is always an
//! explicit `camelot-shutdown v1` frame followed by a join/reap — the
//! only hard kill in the module is the [`WorkerPool::kill_worker`]
//! chaos hook, whose entire purpose is simulating a crashed node.
//!
//! [`SocketTransport::persistent`]: crate::transport::SocketTransport::persistent
//! [`Task`]: crate::transport::Task

use crate::chaos::{ChaosEffect, ChaosPlan, Demotion, FailureCause};
use crate::retry::TransportTuning;
use crate::round::{crash_frames, NodeFrames, RoundSpec};
use crate::transport::socket::{
    accept_with_deadline, io_err, read_message, read_message_or_eof, serve_worker_loop,
    task_for_node, validate_reply, WorkerMode,
};
use crate::transport::{
    control_frame, parse_reply, EvalProgram, TransportError, PING_HEADER, PONG_HEADER,
    SHUTDOWN_HEADER,
};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::thread::JoinHandle;

/// One long-lived worker: its task/reply connection plus the handle
/// needed to reap it (a child process or a join handle, per mode).
#[derive(Debug)]
struct PoolLane {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    child: Option<Child>,
    thread: Option<JoinHandle<Result<(), TransportError>>>,
}

impl PoolLane {
    /// Health check: one ping frame down, one pong frame back.
    fn ping(&mut self) -> bool {
        let delivered = self
            .stream
            .write_all(control_frame(PING_HEADER).as_bytes())
            .and_then(|()| self.stream.flush());
        if delivered.is_err() {
            return false;
        }
        match read_message(&mut self.reader) {
            Ok(text) => text.lines().next() == Some(PONG_HEADER),
            Err(_) => false,
        }
    }

    /// Best-effort teardown for a lane being replaced or scrapped.
    /// There is no error channel here by design: a lane is only retired
    /// when it already failed (or the whole round did), and closing the
    /// streams is an equally valid shutdown signal (EOF) when the frame
    /// cannot be delivered.
    fn retire(mut self) {
        let _delivered = self
            .stream
            .write_all(control_frame(SHUTDOWN_HEADER).as_bytes())
            .and_then(|()| self.stream.flush());
        drop(self.reader);
        drop(self.stream);
        if let Some(mut child) = self.child.take() {
            let _reaped = child.wait();
        }
        if let Some(thread) = self.thread.take() {
            let _joined = thread.join();
        }
    }
}

/// A pool of `K` persistent socket workers sharing one coordinator
/// listener. Started lazily by [`SocketTransport::persistent`] on the
/// first round; every later round reuses the same connections until an
/// explicit shutdown.
///
/// [`SocketTransport::persistent`]: crate::transport::SocketTransport::persistent
#[derive(Debug)]
pub struct WorkerPool {
    listener: TcpListener,
    addr: SocketAddr,
    mode: WorkerMode,
    /// One slot per node; `None` marks a lane that is down (killed or
    /// scrapped) and awaiting [`WorkerPool::ensure_ready`].
    lanes: Vec<Option<PoolLane>>,
    respawns: usize,
    tuning: TransportTuning,
}

impl WorkerPool {
    /// Starts a pool of `nodes` persistent workers in the given mode,
    /// with `tuning` governing handshake and per-round I/O deadlines.
    ///
    /// # Errors
    ///
    /// Worker spawn/handshake failures; workers already started are
    /// shut down gracefully before the error returns.
    pub fn start(
        mode: WorkerMode,
        nodes: usize,
        tuning: TransportTuning,
    ) -> Result<WorkerPool, TransportError> {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| io_err("binding listener", &e))?;
        let addr = listener.local_addr().map_err(|e| io_err("local addr", &e))?;
        let mut pool = WorkerPool { listener, addr, mode, lanes: Vec::new(), respawns: 0, tuning };
        for node in 0..nodes {
            // On failure the partial pool is dropped, and Drop shuts
            // the already-started lanes down gracefully.
            let lane = pool.spawn_lane(node)?;
            pool.lanes.push(Some(lane));
        }
        Ok(pool)
    }

    /// The cluster size this pool was started for.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.lanes.len()
    }

    /// Lifetime count of lanes respawned by [`WorkerPool::ensure_ready`].
    #[must_use]
    pub fn respawns(&self) -> usize {
        self.respawns
    }

    /// Number of lanes currently holding a live worker.
    #[must_use]
    pub fn live_workers(&self) -> usize {
        self.lanes.iter().filter(|slot| slot.is_some()).count()
    }

    /// Spawns one worker and completes its handshake (the worker
    /// connects back to the pool listener).
    fn spawn_lane(&self, node: usize) -> Result<PoolLane, TransportError> {
        let addr = self.addr;
        let mut child: Option<Child> = None;
        let mut thread = None;
        match &self.mode {
            WorkerMode::Threads => {
                thread = Some(std::thread::spawn(move || {
                    let stream =
                        TcpStream::connect(addr).map_err(|e| io_err("worker connect", &e))?;
                    serve_worker_loop(stream)
                }));
            }
            WorkerMode::Process(bin) => {
                let spawned = Command::new(bin)
                    .arg("--connect")
                    .arg(addr.to_string())
                    .arg("--persist")
                    .stdin(Stdio::null())
                    .spawn()
                    .map_err(|err| TransportError::WorkerFailed {
                        node,
                        reason: format!("spawning {}: {err}", bin.display()),
                    })?;
                child = Some(spawned);
            }
        }
        let children: &mut [Child] = match child.as_mut() {
            Some(child) => std::slice::from_mut(child),
            None => &mut [],
        };
        let accepted = accept_with_deadline(&self.listener, children, self.tuning.io_deadline)
            .map_err(|err| match err {
                // accept_with_deadline indexes into its slice of one.
                TransportError::WorkerFailed { reason, .. } => {
                    TransportError::WorkerFailed { node, reason }
                }
                other => other,
            });
        let stream = match accepted {
            Ok(stream) => stream,
            Err(err) => {
                if let Some(mut child) = child {
                    // The worker failed its handshake, so there is no
                    // connection to send a shutdown frame down; a hard
                    // kill is the only way to avoid leaking it (best
                    // effort — it is most likely already gone).
                    let _killed = child.kill();
                    let _reaped = child.wait();
                }
                return Err(err);
            }
        };
        stream
            .set_read_timeout(Some(self.tuning.io_deadline))
            .map_err(|e| io_err("set timeout", &e))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| io_err("clone stream", &e))?);
        Ok(PoolLane { stream, reader, child, thread })
    }

    /// Health-checks every lane and respawns the dead ones. Returns how
    /// many lanes were respawned.
    ///
    /// # Errors
    ///
    /// A respawn failure (e.g. the worker binary disappeared); lanes
    /// already respawned stay live.
    pub fn ensure_ready(&mut self) -> Result<usize, TransportError> {
        let mut dead = Vec::new();
        for (node, slot) in self.lanes.iter_mut().enumerate() {
            let alive = match slot.as_mut() {
                Some(lane) => lane.ping(),
                None => false,
            };
            if !alive {
                if let Some(lane) = slot.take() {
                    lane.retire();
                }
                dead.push(node);
            }
        }
        for node in dead.iter().copied() {
            let lane = self.spawn_lane(node)?;
            if let Some(slot) = self.lanes.get_mut(node) {
                *slot = Some(lane);
                self.respawns += 1;
            }
        }
        Ok(dead.len())
    }

    /// Runs one broadcast round over the persistent lanes: writes every
    /// node's task first (workers compute concurrently), then drains
    /// and validates the replies in lane order. Chaos effects ride in
    /// the tasks; the afflicted workers sabotage their own replies.
    ///
    /// # Errors
    ///
    /// Without demotion (`demote == false`, the legacy fail-fast mode),
    /// a down lane or a worker I/O/protocol failure surfaces as
    /// [`TransportError::WorkerFailed`] naming the node, and any
    /// failure scraps *all* lanes — survivors may hold undelivered
    /// tasks or unread replies, so their streams are no longer at a
    /// frame boundary — until the next [`WorkerPool::ensure_ready`]
    /// brings the pool back byte-aligned.
    ///
    /// With demotion enabled, per-node failures retire *only* the
    /// failed lane (every survivor is still at a frame boundary) and
    /// book a [`Demotion`] with the structured cause; down lanes get
    /// one respawn attempt at round start, and a lane that cannot come
    /// back is demoted with [`FailureCause::RespawnExhausted`]. The
    /// round then completes via erasure decoding.
    pub fn run_round(
        &mut self,
        spec: &RoundSpec<'_>,
        programs: &[EvalProgram],
        chaos: Option<&ChaosPlan>,
        demote: bool,
    ) -> Result<(Vec<NodeFrames>, Vec<Demotion>), TransportError> {
        let nodes = self.lanes.len();
        let e = spec.points.len();
        let width = programs.len();
        let deadline_ms = self.tuning.deadline_ms();
        let mut demotions: Vec<Demotion> = Vec::new();
        let mut demoted = vec![false; nodes];

        // With demotion enabled, give every down lane one respawn
        // attempt before the round starts.
        if demote {
            for node in 0..nodes {
                if self.lanes.get(node).is_some_and(Option::is_none) {
                    match self.spawn_lane(node) {
                        Ok(lane) => {
                            if let Some(slot) = self.lanes.get_mut(node) {
                                *slot = Some(lane);
                                self.respawns += 1;
                            }
                        }
                        Err(_) => {
                            if let Some(slot) = demoted.get_mut(node) {
                                *slot = true;
                            }
                            demotions
                                .push(Demotion { node, cause: FailureCause::RespawnExhausted });
                        }
                    }
                }
            }
        }

        for node in 0..nodes {
            if demoted.get(node).copied().unwrap_or(false) {
                continue;
            }
            let effect = chaos.and_then(|plan| plan.effect(node));
            let wire = task_for_node(spec, programs, nodes, node, effect, deadline_ms).to_wire();
            let delivered = match self.lanes.get_mut(node).and_then(Option::as_mut) {
                None => Err(TransportError::WorkerFailed {
                    node,
                    reason: "lane is down (awaiting respawn)".to_string(),
                }),
                Some(lane) => lane
                    .stream
                    .write_all(wire.as_bytes())
                    .and_then(|()| lane.stream.flush())
                    .map_err(|err| TransportError::WorkerFailed {
                        node,
                        reason: format!("writing task: {err}"),
                    }),
            };
            if let Err(err) = delivered {
                if demote {
                    self.retire_lane(node);
                    if let Some(flag) = demoted.get_mut(node) {
                        *flag = true;
                    }
                    demotions.push(Demotion { node, cause: FailureCause::from_transport(&err) });
                } else {
                    return Err(self.fail_round(err));
                }
            }
        }

        let mut frames = Vec::with_capacity(nodes);
        for node in 0..nodes {
            if demoted.get(node).copied().unwrap_or(false) {
                frames.push(crash_frames(e, nodes, node, width));
                continue;
            }
            let effect = chaos.and_then(|plan| plan.effect(node));
            let outcome = match self.lanes.get_mut(node).and_then(Option::as_mut) {
                None => Err(TransportError::WorkerFailed {
                    node,
                    reason: "lane is down (awaiting respawn)".to_string(),
                }),
                Some(lane) => {
                    let read = match read_message_or_eof(&mut lane.reader) {
                        Ok(Some(text)) => parse_reply(&text).and_then(|reply| {
                            validate_reply(&reply, node, nodes, e, width).map(|()| reply)
                        }),
                        // Clean close before any reply: the worker
                        // dropped its frame or reset the connection.
                        Ok(None) => Err(TransportError::Io {
                            reason: format!("worker {node} closed before replying"),
                        }),
                        Err(err) => Err(err),
                    };
                    // A Duplicate-chaos worker sent its reply twice;
                    // drain the copy so the lane stays at a frame
                    // boundary for the next round. (The copy was
                    // written back-to-back with the original, so a
                    // failed drain means the lane is broken anyway and
                    // the retire below handles it.)
                    if read.is_ok()
                        && effect == Some(ChaosEffect::Duplicate)
                        && read_message_or_eof(&mut lane.reader).is_err()
                    {
                        self.retire_lane(node);
                    }
                    read
                }
            };
            match outcome {
                Ok(reply) => frames.push(reply),
                Err(err) if demote => {
                    self.retire_lane(node);
                    demotions.push(Demotion { node, cause: FailureCause::from_transport(&err) });
                    frames.push(crash_frames(e, nodes, node, width));
                }
                Err(err) => {
                    let err = match err {
                        TransportError::WorkerFailed { .. } => err,
                        other => TransportError::WorkerFailed {
                            node,
                            reason: format!("reading reply: {other}"),
                        },
                    };
                    return Err(self.fail_round(err));
                }
            }
        }
        Ok((frames, demotions))
    }

    /// Retires exactly one lane (best-effort graceful), leaving its
    /// slot empty for a later respawn. Survivor lanes are untouched —
    /// they are still at a frame boundary.
    fn retire_lane(&mut self, node: usize) {
        if let Some(lane) = self.lanes.get_mut(node).and_then(Option::take) {
            lane.retire();
        }
    }

    /// A round failed mid-flight: scrap every lane (graceful retire) so
    /// no stale buffered reply can desynchronise a later round, and
    /// pass the failure through.
    fn fail_round(&mut self, err: TransportError) -> TransportError {
        for slot in &mut self.lanes {
            if let Some(lane) = slot.take() {
                lane.retire();
            }
        }
        err
    }

    /// Chaos hook: forcibly takes down worker `node` — a hard kill for
    /// a process worker, a disconnect for a thread worker (which then
    /// exits on EOF). The slot stays empty, so the next round reports
    /// [`TransportError::WorkerFailed`] until
    /// [`WorkerPool::ensure_ready`] respawns the lane.
    ///
    /// # Errors
    ///
    /// [`TransportError::Protocol`] for an out-of-range node, I/O
    /// failures from the kill/reap.
    pub fn kill_worker(&mut self, node: usize) -> Result<(), TransportError> {
        let Some(slot) = self.lanes.get_mut(node) else {
            return Err(TransportError::Protocol { reason: format!("pool has no worker {node}") });
        };
        let Some(mut lane) = slot.take() else {
            return Ok(()); // already down
        };
        if let Some(mut child) = lane.child.take() {
            // The one intentional hard kill: this hook simulates a
            // crashed node, so graceful shutdown is off the table.
            child.kill().map_err(|e| io_err("killing worker", &e))?;
            child.wait().map_err(|e| io_err("reaping worker", &e))?;
        }
        drop(lane.reader);
        drop(lane.stream);
        if let Some(thread) = lane.thread.take() {
            // A thread worker unblocks promptly: its connection is gone.
            let _joined = thread.join();
        }
        Ok(())
    }

    /// Shuts every lane down gracefully: explicit shutdown frame, close
    /// the connection, join/reap the worker. Idempotent.
    ///
    /// # Errors
    ///
    /// The first teardown failure — a worker that exited uncleanly or
    /// could not be reaped; the remaining lanes are still drained.
    pub fn shutdown(&mut self) -> Result<(), TransportError> {
        let mut first_err: Option<TransportError> = None;
        for (node, slot) in self.lanes.iter_mut().enumerate() {
            let Some(mut lane) = slot.take() else { continue };
            // A delivery failure just means the worker is already gone,
            // which the wait/join below will report.
            let _delivered = lane
                .stream
                .write_all(control_frame(SHUTDOWN_HEADER).as_bytes())
                .and_then(|()| lane.stream.flush());
            drop(lane.reader);
            drop(lane.stream);
            if let Some(mut child) = lane.child.take() {
                match child.wait() {
                    Ok(status) if status.success() => {}
                    Ok(status) => keep_first(
                        &mut first_err,
                        TransportError::WorkerFailed {
                            node,
                            reason: format!("exit status {status}"),
                        },
                    ),
                    Err(e) => keep_first(&mut first_err, io_err("waiting for worker", &e)),
                }
            }
            if let Some(thread) = lane.thread.take() {
                match thread.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => keep_first(&mut first_err, e),
                    Err(_) => keep_first(
                        &mut first_err,
                        TransportError::Protocol { reason: "worker thread panicked".to_string() },
                    ),
                }
            }
        }
        match first_err {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Last-resort teardown for pools dropped without an explicit
        // shutdown (e.g. a failed start); errors have nowhere to go.
        let _teardown = self.shutdown();
    }
}

/// Records `err` only if no earlier error was recorded.
fn keep_first(slot: &mut Option<TransportError>, err: TransportError) {
    if slot.is_none() {
        *slot = Some(err);
    }
}
