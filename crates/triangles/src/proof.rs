//! The Camelot triangle-counting proof polynomial (Theorem 3, §6.3).
//!
//! Replace the split/sparse outer loop by the indeterminate `z` (§3.3):
//! the part polynomials `A_{r'}(z), B_{r'}(z), C_{r'}(z)` have degree
//! `< R/m'` each, and
//!
//! ```text
//! P(z) = Σ_{r'=1}^{m'} A_{r'}(z) B_{r'}(z) C_{r'}(z),
//! Σ_{z0 ∈ [R/m']} P(z0) = trace(A³) = 6 · #triangles.
//! ```
//!
//! Proof size `Õ(R/m) = Õ(n^ω/m)`, per-node evaluation `Õ(m + R/m)`.

use crate::trace::{Family, TriangleSplit};
use camelot_core::{CamelotError, CamelotProblem, Evaluate, PrimeProof, ProofSpec};
use camelot_ff::{crt_u, PrimeField, Residue};
use camelot_graph::Graph;
use camelot_linalg::MatMulTensor;

/// The Camelot triangle-counting problem.
#[derive(Clone, Debug)]
pub struct TriangleCount {
    split: TriangleSplit,
    n: usize,
}

impl TriangleCount {
    /// Creates the problem with the Strassen tensor.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    #[must_use]
    pub fn new(graph: &Graph) -> Self {
        Self::with_tensor(graph, &MatMulTensor::strassen())
    }

    /// Creates the problem with a caller-chosen tensor.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    #[must_use]
    pub fn with_tensor(graph: &Graph, tensor: &MatMulTensor) -> Self {
        TriangleCount { split: TriangleSplit::new(graph, tensor), n: graph.vertex_count() }
    }

    /// The underlying split geometry.
    #[must_use]
    pub fn split(&self) -> &TriangleSplit {
        &self.split
    }
}

impl CamelotProblem for TriangleCount {
    type Output = u64;

    fn spec(&self) -> ProofSpec {
        let parts = self.split.part_count() as u64;
        ProofSpec {
            // Each part polynomial has degree <= parts - 1.
            degree_bound: (3 * (parts - 1)) as usize,
            // q must dominate the degree, the part nodes, and trace(A³)
            // <= n³ for faithful single-prime recovery.
            min_modulus: (3 * parts + 2).max((self.n as u64).pow(3) + 1),
            value_bits: 3 * (64 - (self.n as u64).leading_zeros() as u64),
        }
    }

    fn evaluator<'a>(&'a self, field: &PrimeField) -> Box<dyn Evaluate + 'a> {
        let f = *field;
        Box::new(move |z0: u64| {
            let a = self.split.family_part_poly(&f, Family::Alpha, z0);
            let b = self.split.family_part_poly(&f, Family::Beta, z0);
            let c = self.split.family_part_poly(&f, Family::Gamma, z0);
            let mut acc = 0u64;
            for i in 0..a.len() {
                acc = f.add(acc, f.mul(f.mul(a[i], b[i]), c[i]));
            }
            acc
        })
    }

    fn recover(&self, proofs: &[PrimeProof]) -> Result<u64, CamelotError> {
        let parts = self.split.part_count() as u64;
        let residues: Vec<Residue> = proofs.iter().map(|p| p.sum_residue(1, parts)).collect();
        let trace = crt_u(&residues)
            .to_u64()
            .ok_or_else(|| CamelotError::RecoveryFailed { reason: "trace exceeded u64".into() })?;
        if trace % 6 != 0 {
            return Err(CamelotError::RecoveryFailed {
                reason: "trace(A³) not divisible by 6".into(),
            });
        }
        Ok(trace / 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_cluster::{FaultKind, FaultPlan};
    use camelot_core::{arthur_verify, merlin_prove, Engine, EngineConfig};
    use camelot_graph::{count_triangles, gen};

    #[test]
    fn camelot_counts_triangles_on_known_graphs() {
        for g in [gen::complete(5), gen::complete(8), gen::petersen(), gen::cycle(7)] {
            let expect = count_triangles(&g);
            let problem = TriangleCount::new(&g);
            let outcome = Engine::sequential(6, 2).run(&problem).unwrap();
            assert_eq!(outcome.output, expect, "graph {g}");
        }
    }

    #[test]
    fn camelot_counts_triangles_on_random_graphs() {
        for seed in 0..4 {
            let g = gen::gnm(10, 24, seed);
            let expect = count_triangles(&g);
            let problem = TriangleCount::new(&g);
            let outcome = Engine::sequential(4, 2).run(&problem).unwrap();
            assert_eq!(outcome.output, expect, "seed {seed}");
        }
    }

    #[test]
    fn proof_size_shrinks_as_density_grows() {
        // Theorem 3: proof size O(n^ω / m) — denser graph, shorter proof.
        let sparse = TriangleCount::new(&gen::gnm(16, 20, 1));
        let dense = TriangleCount::new(&gen::gnm(16, 100, 1));
        assert!(
            sparse.spec().degree_bound >= dense.spec().degree_bound,
            "sparse {} vs dense {}",
            sparse.spec().degree_bound,
            dense.spec().degree_bound
        );
    }

    #[test]
    fn byzantine_nodes_tolerated_and_identified() {
        let g = gen::gnm(9, 18, 7);
        let expect = count_triangles(&g);
        let problem = TriangleCount::new(&g);
        let plan = FaultPlan::with_faults(
            6,
            &[(1, FaultKind::Corrupt { seed: 5 }), (4, FaultKind::Crash)],
        );
        // Two of six nodes are faulty, so each owns ~e/6 symbols; budget
        // the code for a whole corrupted slice (2 per error) plus a whole
        // erased slice (1 per erasure): f = 90 covers it comfortably.
        let config = EngineConfig::sequential(6, 90).with_plan(plan).with_full_decoding();
        let outcome = Engine::new(config).run(&problem).unwrap();
        assert_eq!(outcome.output, expect);
        assert_eq!(outcome.certificate.identified_faulty_nodes, vec![1]);
        assert_eq!(outcome.certificate.crashed_nodes, vec![4]);
    }

    #[test]
    fn merlin_arthur_roundtrip() {
        let g = gen::petersen();
        let problem = TriangleCount::new(&g);
        let proofs = merlin_prove(&problem).unwrap();
        arthur_verify(&problem, &proofs, 4, 13).unwrap();
        assert_eq!(problem.recover(&proofs).unwrap(), 0);
    }
}
