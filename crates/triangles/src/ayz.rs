//! Meeting the Alon–Yuster–Zwick bound in parallel (Theorem 5, §6.4).
//!
//! Split vertices at degree `Δ = m^{(ω-1)/(ω+1)}`:
//!
//! * triangles on **high**-degree vertices only — at most `2m/Δ` of
//!   them — are counted by the split/sparse trace machinery on the
//!   induced subgraph, per-node time `Õ(m)` on `O((m/Δ)^ω / m)` nodes;
//! * triangles with a **low**-degree vertex are enumerated from their
//!   minimum low-degree vertex, `Δ` parallel label-classes of `Õ(m)`
//!   work each.
//!
//! Total time `O(m^{2ω/(ω+1)})`, per-node time and space `Õ(m)`.

use crate::trace::TriangleSplit;
use camelot_ff::{next_prime, PrimeField};
use camelot_graph::Graph;
use camelot_linalg::MatMulTensor;

/// Work layout and result of an AYZ run.
#[derive(Clone, Debug)]
pub struct AyzRun {
    /// The triangle count.
    pub triangles: u64,
    /// The degree threshold `Δ`.
    pub delta: usize,
    /// Number of high-degree vertices (`<= 2m/Δ`).
    pub high_vertices: usize,
    /// Triangles entirely inside the high-degree subgraph.
    pub high_triangles: u64,
    /// Triangles with at least one low-degree vertex.
    pub low_triangles: u64,
    /// Parallel nodes used by the dense (high-high-high) phase.
    pub dense_nodes: usize,
    /// Parallel nodes used by the low-degree enumeration (`Δ` classes).
    pub low_nodes: usize,
}

/// Counts triangles with the AYZ high/low-degree split.
///
/// # Panics
///
/// Panics on graphs with more than `2^20` edges (field sizing).
#[must_use]
pub fn count_triangles_ayz(g: &Graph, tensor: &MatMulTensor) -> AyzRun {
    let m = g.edge_count();
    let n = g.vertex_count();
    if m == 0 {
        return AyzRun {
            triangles: 0,
            delta: 0,
            high_vertices: 0,
            high_triangles: 0,
            low_triangles: 0,
            dense_nodes: 0,
            low_nodes: 0,
        };
    }
    let omega = tensor.omega();
    let delta = ((m as f64).powf((omega - 1.0) / (omega + 1.0)).ceil() as usize).max(1);
    // Partition.
    let is_high: Vec<bool> = (0..n).map(|v| g.degree(v) > delta).collect();
    let high: Vec<usize> = (0..n).filter(|&v| is_high[v]).collect();

    // Phase 1: high-high-high triangles via the split/sparse trace on the
    // induced subgraph.
    let (high_triangles, dense_nodes) = if high.len() >= 3 {
        let mut relabel = vec![usize::MAX; n];
        for (idx, &v) in high.iter().enumerate() {
            relabel[v] = idx;
        }
        let mut hg = Graph::new(high.len());
        for &(u, v) in g.edges() {
            if is_high[u] && is_high[v] {
                hg.add_edge(relabel[u], relabel[v]);
            }
        }
        if hg.edge_count() == 0 {
            (0, 0)
        } else {
            let split = TriangleSplit::new(&hg, tensor);
            let q = next_prime(((split.padded_size() as u64).pow(3) + 10).max(1 << 20));
            let field = PrimeField::new_unchecked(q);
            (split.count_triangles(&field), split.part_count())
        }
    } else {
        (0, 0)
    };

    // Phase 2: triangles owned by their minimum low-degree vertex; the Δ
    // label classes partition the per-vertex neighbor scans across Δ
    // parallel nodes, each Õ(m).
    let mut low_triangles = 0u64;
    for x in 0..n {
        if is_high[x] {
            continue;
        }
        let nb = g.neighbors(x);
        let mut ys = nb;
        while ys != 0 {
            let y = ys.trailing_zeros() as usize;
            ys &= ys - 1;
            // Common neighbors z of x and y with z > y (dedupe the y-z pair).
            let mut zs = nb & g.neighbors(y);
            zs &= if y >= 63 { 0 } else { !((1u64 << (y + 1)) - 1) };
            while zs != 0 {
                let z = zs.trailing_zeros() as usize;
                zs &= zs - 1;
                // Count (x, y, z) at its minimum low-degree vertex.
                if (!is_high[y] && y < x) || (!is_high[z] && z < x) {
                    continue;
                }
                low_triangles += 1;
            }
        }
    }

    AyzRun {
        triangles: high_triangles + low_triangles,
        delta,
        high_vertices: high.len(),
        high_triangles,
        low_triangles,
        dense_nodes,
        low_nodes: delta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_graph::{count_triangles, gen};

    fn tensor() -> MatMulTensor {
        MatMulTensor::strassen()
    }

    #[test]
    fn matches_reference_on_known_graphs() {
        for g in [
            gen::complete(9),
            gen::petersen(),
            gen::cycle(8),
            gen::star(10),
            gen::complete_bipartite(4, 5),
        ] {
            let run = count_triangles_ayz(&g, &tensor());
            assert_eq!(run.triangles, count_triangles(&g), "graph {g}");
        }
    }

    #[test]
    fn matches_reference_on_random_sweep() {
        for seed in 0..6 {
            for m in [10usize, 30, 60, 100] {
                let g = gen::gnm(16, m, seed);
                let run = count_triangles_ayz(&g, &tensor());
                assert_eq!(run.triangles, count_triangles(&g), "seed {seed} m {m}");
            }
        }
    }

    #[test]
    fn empty_graph_short_circuits() {
        let run = count_triangles_ayz(&Graph::new(5), &tensor());
        assert_eq!(run.triangles, 0);
        assert_eq!(run.low_nodes, 0);
    }

    #[test]
    fn high_degree_partition_is_bounded() {
        let g = gen::gnm(20, 80, 3);
        let run = count_triangles_ayz(&g, &tensor());
        assert!(run.high_vertices <= 2 * 80 / run.delta.max(1));
        assert_eq!(run.low_nodes, run.delta);
    }

    #[test]
    fn star_has_low_center_but_no_triangles() {
        // The star's center has high degree; leaves are low.
        let run = count_triangles_ayz(&gen::star(20), &tensor());
        assert_eq!(run.triangles, 0);
        assert_eq!(run.high_triangles, 0);
        assert_eq!(run.low_triangles, 0);
    }
}
