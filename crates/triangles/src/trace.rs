//! Parallel sparse triangle counting (Theorem 4, §6.1–6.2).
//!
//! Itai–Rodeh: the triangle count is `trace(A³)/6` for the adjacency
//! matrix `A`. Via the trilinear decomposition (19),
//! `trace(ABC) = Σ_{r=1}^R A_r B_r C_r` with
//! `A_r = Σ_{ij} α_{ij}(r) a_ij` — and because the coefficient matrices
//! are Kronecker powers, the `R` values `A_r` can be produced from the
//! `O(m)` nonzero entries by the split/sparse Yates algorithm (§3.2) in
//! `O(R/m)` independent parts of `~m` values each: per-node time and
//! space `Õ(m)` on `O(n^ω/m)` nodes.

use camelot_ff::PrimeField;
use camelot_graph::Graph;
use camelot_linalg::{MatMulTensor, SparseVec, SplitSparseYates};

/// Geometry of a split/sparse triangle-count run.
#[derive(Clone, Debug)]
pub struct TriangleSplit {
    tensor: MatMulTensor,
    t_pow: usize,
    splitter: SplitSparseYates,
    sparse: SparseVec,
    n_padded: usize,
}

impl TriangleSplit {
    /// Prepares the split for a graph: pads `n` to a power of `n0`,
    /// interleaves the adjacency support, and picks `ℓ = ⌈log_t 2m⌉` so
    /// each part holds at least the input size.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges (nothing to split).
    #[must_use]
    pub fn new(g: &Graph, tensor: &MatMulTensor) -> Self {
        assert!(g.edge_count() > 0, "triangle split needs at least one edge");
        let n0 = tensor.n0();
        let mut n_padded = 1usize;
        let mut t_pow = 0usize;
        while n_padded < g.vertex_count() {
            n_padded *= n0;
            t_pow += 1;
        }
        let sparse = adjacency_sparse(g, n0, t_pow);
        // One Yates factor per Kronecker level, transposed: rows = R0,
        // cols = n0² (input is indexed by interleaved (i,j) digits).
        let a0 = tensor.alpha0().transpose();
        let splitter = SplitSparseYates::with_support_size(a0, t_pow, sparse.len());
        TriangleSplit { tensor: tensor.clone(), t_pow, splitter, sparse, n_padded }
    }

    /// Number of independent parts (`= number of parallel nodes`).
    #[must_use]
    pub fn part_count(&self) -> usize {
        self.splitter.part_count()
    }

    /// Values per part (`Θ(m)` by the choice of `ℓ`).
    #[must_use]
    pub fn part_len(&self) -> usize {
        self.splitter.part_len()
    }

    /// Total rank `R = R0^t`.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.tensor.r0().pow(self.t_pow as u32)
    }

    /// Padded matrix dimension.
    #[must_use]
    pub fn padded_size(&self) -> usize {
        self.n_padded
    }

    /// Support size of the sparse adjacency vector (`2m`).
    #[must_use]
    pub fn support(&self) -> usize {
        self.sparse.len()
    }

    /// The Kronecker power `t`.
    #[must_use]
    pub fn t_pow(&self) -> usize {
        self.t_pow
    }

    /// Computes one part of the `A_r` (resp. `B_r`, `C_r`) family; parts
    /// are what individual nodes produce in parallel. For the symmetric
    /// adjacency input all three families share the sparse vector, so
    /// `family` selects only the coefficient matrix.
    ///
    /// # Panics
    ///
    /// Panics if `outer` is out of range.
    #[must_use]
    pub fn family_part(&self, field: &PrimeField, family: Family, outer: usize) -> Vec<u64> {
        let a0 = self.family_matrix(family);
        let splitter = SplitSparseYates::new(a0, self.t_pow, self.splitter.ell());
        splitter.part(field, &self.sparse, outer)
    }

    /// Polynomial-extension evaluation of a family's part polynomials at
    /// `z0` (§3.3) — the building block of the Theorem 3 proof
    /// polynomial.
    #[must_use]
    pub fn family_part_poly(&self, field: &PrimeField, family: Family, z0: u64) -> Vec<u64> {
        let a0 = self.family_matrix(family);
        let splitter = SplitSparseYates::new(a0, self.t_pow, self.splitter.ell());
        splitter.part_poly_eval(field, &self.sparse, z0)
    }

    fn family_matrix(&self, family: Family) -> camelot_linalg::SmallMatrix {
        match family {
            Family::Alpha => self.tensor.alpha0().transpose(),
            Family::Beta => self.tensor.beta0().transpose(),
            Family::Gamma => self.tensor.gamma0().transpose(),
        }
    }

    /// `trace(A³) mod q` assembled from all parts (what the community
    /// jointly computes; sequential reference for the parallel layout).
    #[must_use]
    pub fn trace_mod(&self, field: &PrimeField) -> u64 {
        let mut acc = 0u64;
        for outer in 0..self.part_count() {
            let a = self.family_part(field, Family::Alpha, outer);
            let b = self.family_part(field, Family::Beta, outer);
            let c = self.family_part(field, Family::Gamma, outer);
            for i in 0..a.len() {
                acc = field.add(acc, field.mul(field.mul(a[i], b[i]), c[i]));
            }
        }
        acc
    }

    /// Triangle count via the split (exact, single modulus `q > n³`).
    #[must_use]
    pub fn count_triangles(&self, field: &PrimeField) -> u64 {
        let trace = self.trace_mod(field);
        debug_assert!(field.modulus() > (self.n_padded as u64).pow(3));
        debug_assert_eq!(trace % 6, 0, "trace(A^3) is always divisible by 6");
        trace / 6
    }
}

/// Which coefficient family of the trilinear decomposition to apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// `α` (the `u`/first operand).
    Alpha,
    /// `β` (the `v`/second operand).
    Beta,
    /// `γ` (the `w`/third operand) — receives the *transposed* third
    /// matrix; for symmetric adjacency this is the same sparse input.
    Gamma,
}

/// The adjacency support of `g` in the interleaved Kronecker index space
/// (both orientations of every edge; value 1).
#[must_use]
pub fn adjacency_sparse(g: &Graph, n0: usize, t_pow: usize) -> SparseVec {
    let mut out = Vec::with_capacity(2 * g.edge_count());
    for &(u, v) in g.edges() {
        out.push((camelot_cliques::interleave(u, v, n0, t_pow), 1u64));
        out.push((camelot_cliques::interleave(v, u, n0, t_pow), 1u64));
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_graph::{count_triangles, gen};

    fn field_for(n: usize) -> PrimeField {
        let q = camelot_ff::next_prime(((n as u64).pow(3) + 10).max(1 << 20));
        PrimeField::new(q).unwrap()
    }

    #[test]
    fn split_counts_triangles_on_known_graphs() {
        let tensor = MatMulTensor::strassen();
        for g in [gen::complete(4), gen::complete(7), gen::cycle(5), gen::petersen()] {
            let split = TriangleSplit::new(&g, &tensor);
            let f = field_for(split.padded_size());
            assert_eq!(split.count_triangles(&f), count_triangles(&g), "graph {g}");
        }
    }

    #[test]
    fn split_counts_triangles_on_random_graphs() {
        let tensor = MatMulTensor::strassen();
        for seed in 0..4 {
            let g = gen::gnm(12, 30, seed);
            let split = TriangleSplit::new(&g, &tensor);
            let f = field_for(split.padded_size());
            assert_eq!(split.count_triangles(&f), count_triangles(&g), "seed {seed}");
        }
    }

    #[test]
    fn part_geometry_scales_with_support() {
        let tensor = MatMulTensor::strassen();
        // Sparse graph: few edges -> small parts, many of them.
        let sparse = TriangleSplit::new(&gen::cycle(16), &tensor);
        // Dense graph: many edges -> bigger parts, fewer of them.
        let dense = TriangleSplit::new(&gen::complete(16), &tensor);
        assert_eq!(sparse.rank(), dense.rank());
        assert!(sparse.part_len() <= dense.part_len());
        assert!(sparse.part_count() >= dense.part_count());
        // Each part holds at least the support (ℓ chosen per §3.2) unless
        // capped by k.
        assert!(dense.part_len() >= dense.support() || dense.part_count() == 1);
    }

    #[test]
    fn parts_are_consistent_with_poly_extension() {
        let tensor = MatMulTensor::strassen();
        let g = gen::gnm(8, 14, 3);
        let split = TriangleSplit::new(&g, &tensor);
        let f = field_for(split.padded_size());
        for family in [Family::Alpha, Family::Beta, Family::Gamma] {
            for outer in [0usize, 1, split.part_count() - 1] {
                assert_eq!(
                    split.family_part_poly(&f, family, outer as u64 + 1),
                    split.family_part(&f, family, outer),
                    "family {family:?} outer {outer}"
                );
            }
        }
    }

    #[test]
    fn trace_is_six_times_triangles() {
        let tensor = MatMulTensor::strassen();
        let g = gen::complete(5);
        let split = TriangleSplit::new(&g, &tensor);
        let f = field_for(split.padded_size());
        assert_eq!(split.trace_mod(&f), 6 * 10);
    }
}
