//! # camelot-triangles — sparsity-aware Camelot triangle counting
//!
//! §6 of *“How Proofs are Prepared at Camelot”*:
//!
//! * [`TriangleSplit`] — the Itai–Rodeh trace `trace(A³)` decomposed into
//!   `R` rank-one terms and produced in `O(R/m)` independent parts of
//!   `Õ(m)` work each by the split/sparse Yates algorithm (Theorem 4);
//! * [`TriangleCount`] — the proof polynomial obtained by substituting an
//!   indeterminate for the part index (Theorem 3): proof size
//!   `Õ(n^ω/m)`, per-node time `Õ(m)`;
//! * [`count_triangles_ayz`] — the high/low-degree split matching the
//!   Alon–Yuster–Zwick bound `O(m^{2ω/(ω+1)})` with `Õ(m)` per-node work
//!   (Theorem 5).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod ayz;
mod proof;
mod trace;

pub use ayz::{count_triangles_ayz, AyzRun};
pub use proof::TriangleCount;
pub use trace::{adjacency_sparse, Family, TriangleSplit};
