//! Scoped-thread splitting for the data-parallel algebra passes.
//!
//! The NTT butterfly rounds and the subproduct-tree descents are
//! embarrassingly parallel above a certain size; below it, thread spawn
//! and join overhead swamps the win. This module holds the process-wide
//! crossover (the work size — transform length or points under a tree
//! node — at which splitting engages) and the scoped-thread `join2`
//! primitive the recursive passes use. The worker count itself comes from
//! the unified [`camelot_ff::thread_budget`], so `CAMELOT_THREADS`
//! governs every layer at once; `CAMELOT_PAR_CROSSOVER` tunes only the
//! engagement size (`0` forces the parallel code paths everywhere — the
//! CI regression configuration).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default work size (transform length / points under a node) at which
/// the scoped-thread splitter engages. Fitted on `bench_algebra`: one
/// `std::thread::scope` spawn-join cycle costs tens of microseconds,
/// which a 2^15-length butterfly round amortizes comfortably while a
/// 2^12 round does not.
const PAR_DEFAULT_CROSSOVER: usize = 1 << 15;

fn crossover_cell() -> &'static AtomicUsize {
    static CELL: OnceLock<AtomicUsize> = OnceLock::new();
    CELL.get_or_init(|| {
        let from_env = std::env::var("CAMELOT_PAR_CROSSOVER").ok().and_then(|v| v.parse().ok());
        AtomicUsize::new(from_env.unwrap_or(PAR_DEFAULT_CROSSOVER))
    })
}

/// Work size at which the parallel NTT/tree passes engage. Initialized
/// from the `CAMELOT_PAR_CROSSOVER` environment variable when set (`0`
/// forces the parallel paths for every input).
#[must_use]
pub fn par_crossover() -> usize {
    crossover_cell().load(Ordering::Relaxed)
}

/// Overrides the parallel crossover process-wide (benchmark crossover
/// fitting and the CI forced-parallel smoke run).
pub fn set_par_crossover(len: usize) {
    crossover_cell().store(len, Ordering::Relaxed)
}

/// Worker count for a pass over `work` units: the full thread budget
/// once `work` reaches the crossover, and 1 (sequential) below it.
pub(crate) fn plan_workers(work: usize) -> usize {
    if work >= par_crossover() {
        camelot_ff::thread_budget()
    } else {
        1
    }
}

/// Runs `f` and `g`, on two scoped threads when `parallel` is set (the
/// second closure runs on the spawned thread; a panic there propagates
/// to the caller when the scope closes).
pub(crate) fn join2<A, B>(
    parallel: bool,
    f: impl FnOnce() -> A + Send,
    g: impl FnOnce() -> B + Send,
) -> (A, B)
where
    A: Send,
    B: Send,
{
    if !parallel {
        return (f(), g());
    }
    std::thread::scope(|s| {
        let handle = s.spawn(g);
        let a = f();
        let b = match handle.join() {
            Ok(b) => b,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (a, b)
    })
}

/// Serializes tests that mutate the process-wide threading knobs, so
/// save/restore pairs in concurrently running tests cannot interleave.
#[cfg(test)]
pub(crate) fn test_knob_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_is_overridable() {
        let _guard = test_knob_guard();
        let original = par_crossover();
        set_par_crossover(123);
        assert_eq!(par_crossover(), 123);
        set_par_crossover(0);
        assert!(plan_workers(0) >= 1, "crossover 0 forces the parallel gate open");
        set_par_crossover(original);
    }

    #[test]
    fn join2_runs_both_closures_in_both_modes() {
        for parallel in [false, true] {
            let (a, b) = join2(parallel, || 1 + 1, || "x".to_string() + "y");
            assert_eq!((a, b.as_str()), (2, "xy"));
        }
    }
}
