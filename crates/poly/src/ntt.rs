//! Number-theoretic transforms for NTT-friendly prime moduli.
//!
//! When `q ≡ 1 (mod 2^k)` the field has a primitive `2^k`-th root of
//! unity and degree-`< 2^{k-1}` polynomials multiply in `O(n log n)`
//! operations — the `M(d) = d log d log log d` toolbox of §2.2 of the
//! paper. The engine's deterministic prime schedule does not require
//! NTT-friendly primes, so this is an opt-in fast path: build an
//! [`NttPlan`] when the modulus admits one (e.g. from
//! [`camelot_ff::ntt_prime`]) and use [`NttPlan::multiply`].

use crate::dense::Poly;
use camelot_ff::{primitive_root, PrimeField};

/// A radix-2 NTT execution plan for transforms of length `2^k` over a
/// fixed prime field.
#[derive(Clone, Debug)]
pub struct NttPlan {
    field: PrimeField,
    log_len: u32,
    /// Primitive `2^k`-th root of unity.
    root: u64,
    /// Its inverse.
    root_inv: u64,
    /// `(2^k)^{-1} mod q`.
    len_inv: u64,
}

impl NttPlan {
    /// Builds a plan for transforms of length `2^log_len`, if the field
    /// supports one (`2^log_len` must divide `q - 1`).
    #[must_use]
    pub fn new(field: &PrimeField, log_len: u32) -> Option<Self> {
        let q = field.modulus();
        let len = 1u64 << log_len;
        if !(q - 1).is_multiple_of(len) {
            return None;
        }
        let g = primitive_root(q);
        let root = field.pow(g, (q - 1) >> log_len);
        Some(NttPlan {
            field: *field,
            log_len,
            root,
            root_inv: field.inv(root),
            len_inv: field.inv(field.reduce(len)),
        })
    }

    /// Transform length `2^log_len`.
    #[must_use]
    pub fn len(&self) -> usize {
        1 << self.log_len
    }

    /// Always false (a plan has positive length); provided alongside
    /// [`NttPlan::len`] per API convention.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward transform.
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == self.len()`.
    pub fn forward(&self, values: &mut [u64]) {
        self.transform(values, self.root);
    }

    /// In-place inverse transform (includes the `1/n` scaling).
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == self.len()`.
    pub fn inverse(&self, values: &mut [u64]) {
        self.transform(values, self.root_inv);
        for v in values.iter_mut() {
            *v = self.field.mul(*v, self.len_inv);
        }
    }

    /// Iterative Cooley–Tukey with bit-reversal permutation.
    fn transform(&self, values: &mut [u64], base_root: u64) {
        let n = self.len();
        assert_eq!(values.len(), n, "transform length mismatch");
        let f = &self.field;
        // Bit reversal.
        let shift = u32::BITS - self.log_len;
        for i in 0..n {
            let j = ((i as u32).reverse_bits() >> shift) as usize;
            if i < j {
                values.swap(i, j);
            }
        }
        // Butterflies.
        let mut span = 1usize;
        let mut round_root = vec![0u64; self.log_len as usize];
        // round_root[r] is the 2^{r+1}-th root: base_root^(n / 2^{r+1}).
        for (r, slot) in round_root.iter_mut().enumerate() {
            *slot = f.pow(base_root, (n >> (r + 1)) as u64);
        }
        for &w_span in &round_root {
            for block in (0..n).step_by(2 * span) {
                let mut w = 1u64;
                for i in block..block + span {
                    let a = values[i];
                    let b = f.mul(values[i + span], w);
                    values[i] = f.add(a, b);
                    values[i + span] = f.sub(a, b);
                    w = f.mul(w, w_span);
                }
            }
            span *= 2;
        }
    }

    /// Multiplies two polynomials through the transform.
    ///
    /// # Panics
    ///
    /// Panics if the product degree does not fit the transform length.
    #[must_use]
    pub fn multiply(&self, a: &Poly, b: &Poly) -> Poly {
        if a.is_zero() || b.is_zero() {
            return Poly::zero();
        }
        let out_len = a.coeffs().len() + b.coeffs().len() - 1;
        assert!(out_len <= self.len(), "product degree exceeds the transform length");
        let mut fa = a.coeffs().to_vec();
        let mut fb = b.coeffs().to_vec();
        fa.resize(self.len(), 0);
        fb.resize(self.len(), 0);
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = self.field.mul(*x, *y);
        }
        self.inverse(&mut fa);
        fa.truncate(out_len);
        Poly::from_reduced(fa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{ntt_prime, SplitMix64};

    fn plan(k: u32) -> (PrimeField, NttPlan) {
        let (q, _) = ntt_prime(1 << 20, k);
        let field = PrimeField::new(q).unwrap();
        let plan = NttPlan::new(&field, k).expect("prime was built for this length");
        (field, plan)
    }

    #[test]
    fn unfriendly_modulus_is_refused() {
        // 1_000_000_007 - 1 = 2 * 500000003: only one factor of two.
        let field = PrimeField::new(1_000_000_007).unwrap();
        assert!(NttPlan::new(&field, 1).is_some());
        assert!(NttPlan::new(&field, 2).is_none());
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let (field, plan) = plan(10);
        let mut rng = SplitMix64::new(5);
        let original: Vec<u64> = (0..1024).map(|_| field.sample(&mut rng)).collect();
        let mut values = original.clone();
        plan.forward(&mut values);
        assert_ne!(values, original, "transform must move the data");
        plan.inverse(&mut values);
        assert_eq!(values, original);
    }

    #[test]
    fn multiply_matches_karatsuba() {
        let (field, plan) = plan(11);
        let mut rng = SplitMix64::new(6);
        for (da, db) in [(0usize, 0usize), (5, 9), (300, 500), (1023, 1000)] {
            let a = Poly::from_reduced(
                (0..=da).map(|i| if i == da { 1 } else { field.sample(&mut rng) }).collect(),
            );
            let b = Poly::from_reduced(
                (0..=db).map(|i| if i == db { 1 } else { field.sample(&mut rng) }).collect(),
            );
            assert_eq!(plan.multiply(&a, &b), a.mul(&field, &b), "degrees {da},{db}");
        }
    }

    #[test]
    fn multiply_handles_zero() {
        let (field, plan) = plan(4);
        let a = Poly::from_coeffs(&field, [1, 2, 3]);
        assert!(plan.multiply(&a, &Poly::zero()).is_zero());
        assert!(plan.multiply(&Poly::zero(), &a).is_zero());
    }

    #[test]
    #[should_panic(expected = "exceeds the transform length")]
    fn oversize_product_rejected() {
        let (field, plan) = plan(3);
        let a = Poly::from_coeffs(&field, (1..=6).collect::<Vec<u64>>());
        let _ = plan.multiply(&a, &a); // degree 10 > 7
    }

    #[test]
    fn convolution_theorem_spot_check() {
        // Forward transform of a delta at position p is the geometric
        // sequence root^(p*i).
        let (field, plan) = plan(5);
        let mut values = vec![0u64; 32];
        values[1] = 1;
        plan.forward(&mut values);
        let w = values[1];
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(v, field.pow(w, i as u64), "index {i}");
        }
    }
}
