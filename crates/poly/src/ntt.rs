//! Number-theoretic transforms for NTT-friendly prime moduli.
//!
//! When `q ≡ 1 (mod 2^k)` the field has a primitive `2^k`-th root of
//! unity and degree-`< 2^{k-1}` polynomials multiply in `O(n log n)`
//! operations — the `M(d) = d log d log log d` toolbox of §2.2 of the
//! paper. The engine's deterministic prime schedule does not require
//! NTT-friendly primes, so this is an opt-in fast path: build an
//! [`NttPlan`] when the modulus admits one (e.g. from
//! [`camelot_ff::ntt_prime`]) and use [`NttPlan::multiply`].
//!
//! A plan precomputes the full per-round twiddle tables (with their Shoup
//! companions) at construction, so the butterfly loops run with two word
//! multiplications per twiddle application and no chained root powering.

use crate::dense::Poly;
use camelot_ff::{primitive_root, PrimeField};

/// One butterfly round's twiddles `w^0, …, w^{span-1}` with their Shoup
/// companions for [`PrimeField::mul_shoup`].
#[derive(Clone, Debug)]
struct TwiddleTable {
    w: Vec<u64>,
    shoup: Vec<u64>,
}

impl TwiddleTable {
    /// Powers `w_span^0 .. w_span^{span-1}` plus Shoup companions.
    fn new(field: &PrimeField, w_span: u64, span: usize) -> Self {
        let mut w = Vec::with_capacity(span);
        let mut acc = 1u64;
        for _ in 0..span {
            w.push(acc);
            acc = field.mul(acc, w_span);
        }
        let shoup = w.iter().map(|&c| field.shoup_precompute(c)).collect();
        TwiddleTable { w, shoup }
    }
}

/// A radix-2 NTT execution plan for transforms of length `2^k` over a
/// fixed prime field.
#[derive(Clone, Debug)]
pub struct NttPlan {
    field: PrimeField,
    log_len: u32,
    /// Primitive `2^k`-th root of unity.
    root: u64,
    /// `(2^k)^{-1} mod q` with its Shoup companion.
    len_inv: u64,
    len_inv_shoup: u64,
    /// Per-round twiddle tables, round `r` having span `2^r`.
    fwd: Vec<TwiddleTable>,
    inv: Vec<TwiddleTable>,
}

impl NttPlan {
    /// Builds a plan for transforms of length `2^log_len`, if the field
    /// supports one (`2^log_len` must divide `q - 1`).
    #[must_use]
    pub fn new(field: &PrimeField, log_len: u32) -> Option<Self> {
        let q = field.modulus();
        let len = 1u64 << log_len;
        if !(q - 1).is_multiple_of(len) {
            return None;
        }
        let g = primitive_root(q);
        let root = field.pow(g, (q - 1) >> log_len);
        Some(Self::from_root(field, log_len, root))
    }

    /// Builds a plan from a known primitive `2^log_len`-th root of unity,
    /// skipping the primitive-root search. Used to derive the plans for
    /// every smaller transform length from one top-level plan (see
    /// [`NttPlan::halved`]).
    ///
    /// # Panics
    ///
    /// Panics if `root` does not have multiplicative order exactly
    /// `2^log_len` (a wrong order would silently produce incorrect
    /// transforms; the two `pow` checks are negligible next to the
    /// twiddle-table construction).
    #[must_use]
    pub fn from_root(field: &PrimeField, log_len: u32, root: u64) -> Self {
        let len = 1u64 << log_len;
        assert_eq!(field.pow(root, len), 1, "root order mismatch");
        assert!(log_len == 0 || field.pow(root, len / 2) != 1, "root order mismatch");
        let root_inv = if log_len == 0 { 1 } else { field.inv(root) };
        let len_inv = field.inv(field.reduce(len));
        let build = |base: u64| {
            (0..log_len)
                .map(|r| {
                    let span = 1usize << r;
                    let w_span = field.pow(base, len >> (r + 1));
                    TwiddleTable::new(field, w_span, span)
                })
                .collect()
        };
        NttPlan {
            field: *field,
            log_len,
            root,
            len_inv,
            len_inv_shoup: field.shoup_precompute(len_inv),
            fwd: build(root),
            inv: build(root_inv),
        }
    }

    /// The plan for transforms of half this length (squares the root), or
    /// `None` for a length-1 plan.
    #[must_use]
    pub fn halved(&self) -> Option<NttPlan> {
        let log = self.log_len.checked_sub(1)?;
        Some(Self::from_root(&self.field, log, self.field.mul(self.root, self.root)))
    }

    /// Transform length `2^log_len`.
    #[must_use]
    pub fn len(&self) -> usize {
        1 << self.log_len
    }

    /// The primitive `2^log_len`-th root of unity the plan transforms
    /// with: `forward` output index `j` is the input polynomial evaluated
    /// at `root^j`.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Always false (a plan has positive length); provided alongside
    /// [`NttPlan::len`] per API convention.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    // lint:hot-begin(ntt-butterfly) — the transform kernel (and the
    // inverse's scaling pass) dominate every fast-path product; PR 6 made
    // the inner loop bounds-check-free and branchless. No `%`, no clones,
    // no allocation; camelot-lint enforces this region.

    /// In-place forward transform.
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == self.len()`.
    pub fn forward(&self, values: &mut [u64]) {
        self.transform(values, &self.fwd);
    }

    /// In-place inverse transform (includes the `1/n` scaling).
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == self.len()`.
    pub fn inverse(&self, values: &mut [u64]) {
        self.transform(values, &self.inv);
        for v in values.iter_mut() {
            *v = self.field.mul_shoup(*v, self.len_inv, self.len_inv_shoup);
        }
    }

    /// Iterative Cooley–Tukey with bit-reversal permutation, reading each
    /// round's twiddles from the precomputed tables.
    fn transform(&self, values: &mut [u64], tables: &[TwiddleTable]) {
        let n = self.len();
        assert_eq!(values.len(), n, "transform length mismatch");
        let f = &self.field;
        // Bit reversal.
        let shift = u32::BITS - self.log_len;
        if self.log_len > 0 {
            for i in 0..n {
                let j = ((i as u32).reverse_bits() >> shift) as usize;
                if i < j {
                    values.swap(i, j);
                }
            }
        }
        // Butterflies. Slice splitting instead of indexed access keeps
        // the inner loop free of bounds checks — the butterfly is the
        // hot spot of every fast-path product in the repo.
        let mut span = 1usize;
        for table in tables {
            for block in values.chunks_exact_mut(2 * span) {
                let (lo, hi) = block.split_at_mut(span);
                let twiddles = table.w.iter().zip(&table.shoup);
                for ((a, b), (&w, &ws)) in lo.iter_mut().zip(hi.iter_mut()).zip(twiddles) {
                    let x = *a;
                    let t = f.mul_shoup(*b, w, ws);
                    *a = f.add(x, t);
                    *b = f.sub(x, t);
                }
            }
            span *= 2;
        }
    }

    // lint:hot-end

    /// Multiplies two polynomials through the transform.
    ///
    /// # Panics
    ///
    /// Panics if the product degree does not fit the transform length.
    #[must_use]
    pub fn multiply(&self, a: &Poly, b: &Poly) -> Poly {
        if a.is_zero() || b.is_zero() {
            return Poly::zero();
        }
        let out_len = a.coeffs().len() + b.coeffs().len() - 1;
        assert!(out_len <= self.len(), "product degree exceeds the transform length");
        let mut fa = a.coeffs().to_vec();
        let mut fb = b.coeffs().to_vec();
        fa.resize(self.len(), 0);
        fb.resize(self.len(), 0);
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = self.field.mul(*x, *y);
        }
        self.inverse(&mut fa);
        fa.truncate(out_len);
        Poly::from_reduced(fa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{ntt_prime, SplitMix64};

    fn plan(k: u32) -> (PrimeField, NttPlan) {
        let (q, _) = ntt_prime(1 << 20, k);
        let field = PrimeField::new(q).unwrap();
        let plan = NttPlan::new(&field, k).expect("prime was built for this length");
        (field, plan)
    }

    #[test]
    fn unfriendly_modulus_is_refused() {
        // 1_000_000_007 - 1 = 2 * 500000003: only one factor of two.
        let field = PrimeField::new(1_000_000_007).unwrap();
        assert!(NttPlan::new(&field, 1).is_some());
        assert!(NttPlan::new(&field, 2).is_none());
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let (field, plan) = plan(10);
        let mut rng = SplitMix64::new(5);
        let original: Vec<u64> = (0..1024).map(|_| field.sample(&mut rng)).collect();
        let mut values = original.clone();
        plan.forward(&mut values);
        assert_ne!(values, original, "transform must move the data");
        plan.inverse(&mut values);
        assert_eq!(values, original);
    }

    #[test]
    fn multiply_matches_karatsuba() {
        let (field, plan) = plan(11);
        let mut rng = SplitMix64::new(6);
        for (da, db) in [(0usize, 0usize), (5, 9), (300, 500), (1023, 1000)] {
            let a = Poly::from_reduced(
                (0..=da).map(|i| if i == da { 1 } else { field.sample(&mut rng) }).collect(),
            );
            let b = Poly::from_reduced(
                (0..=db).map(|i| if i == db { 1 } else { field.sample(&mut rng) }).collect(),
            );
            assert_eq!(plan.multiply(&a, &b), a.mul(&field, &b), "degrees {da},{db}");
        }
    }

    #[test]
    fn multiply_handles_zero() {
        let (field, plan) = plan(4);
        let a = Poly::from_coeffs(&field, [1, 2, 3]);
        assert!(plan.multiply(&a, &Poly::zero()).is_zero());
        assert!(plan.multiply(&Poly::zero(), &a).is_zero());
    }

    #[test]
    #[should_panic(expected = "exceeds the transform length")]
    fn oversize_product_rejected() {
        let (field, plan) = plan(3);
        let a = Poly::from_coeffs(&field, (1..=6).collect::<Vec<u64>>());
        let _ = plan.multiply(&a, &a); // degree 10 > 7
    }

    #[test]
    fn convolution_theorem_spot_check() {
        // Forward transform of a delta at position p is the geometric
        // sequence root^(p*i).
        let (field, plan) = plan(5);
        let mut values = vec![0u64; 32];
        values[1] = 1;
        plan.forward(&mut values);
        let w = values[1];
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(v, field.pow(w, i as u64), "index {i}");
        }
    }

    #[test]
    fn halved_plans_agree_with_fresh_plans() {
        let (field, plan) = plan(9);
        let mut rng = SplitMix64::new(7);
        let mut current = plan;
        for k in (0..9).rev() {
            current = current.halved().expect("can halve down to length 1");
            assert_eq!(current.len(), 1 << k);
            let fresh = NttPlan::new(&field, k).expect("field supports all smaller lengths");
            let original: Vec<u64> = (0..1 << k).map(|_| field.sample(&mut rng)).collect();
            let mut a = original.clone();
            let mut b = original.clone();
            current.forward(&mut a);
            fresh.forward(&mut b);
            assert_eq!(a, b, "length 2^{k}");
            current.inverse(&mut a);
            assert_eq!(a, original);
        }
        assert!(current.halved().is_none());
    }
}
