//! Number-theoretic transforms for NTT-friendly prime moduli.
//!
//! When `q ≡ 1 (mod 2^k)` the field has a primitive `2^k`-th root of
//! unity and degree-`< 2^{k-1}` polynomials multiply in `O(n log n)`
//! operations — the `M(d) = d log d log log d` toolbox of §2.2 of the
//! paper. The engine's deterministic prime schedule does not require
//! NTT-friendly primes, so this is an opt-in fast path: build an
//! [`NttPlan`] when the modulus admits one (e.g. from
//! [`camelot_ff::ntt_prime`]) and use [`NttPlan::multiply`].
//!
//! A plan precomputes the full per-round twiddle tables (with their Shoup
//! companions) at construction, so the butterfly loops run with two word
//! multiplications per twiddle application and no chained root powering.
//!
//! The butterfly rounds themselves run through the lazy-reduction slice
//! kernels of `camelot-ff` (Harvey-style: values ride in `[0, 4q)`
//! through Cooley–Tukey rounds and `[0, 2q)` through Gentleman–Sande
//! rounds, with one conditional correction per butterfly instead of
//! three), and [`NttPlan::multiply`] skips all bit-reversal permutations
//! by pairing a decimation-in-frequency forward with a
//! decimation-in-time inverse. Rounds above the
//! [`crate::par_crossover`] work size split across scoped threads from
//! the [`camelot_ff::thread_budget`] pool; the decomposition assigns
//! each position to exactly one thread, so outputs are bit-identical to
//! the sequential schedule.

use crate::dense::Poly;
use crate::par::plan_workers;
use camelot_ff::{primitive_root, PrimeField};

/// One butterfly round's twiddles `w^0, …, w^{span-1}` with their Shoup
/// companions for [`PrimeField::mul_shoup`].
#[derive(Clone, Debug)]
struct TwiddleTable {
    w: Vec<u64>,
    shoup: Vec<u64>,
}

impl TwiddleTable {
    /// Powers `w_span^0 .. w_span^{span-1}` plus Shoup companions.
    fn new(field: &PrimeField, w_span: u64, span: usize) -> Self {
        let mut w = Vec::with_capacity(span);
        let mut acc = 1u64;
        for _ in 0..span {
            w.push(acc);
            acc = field.mul(acc, w_span);
        }
        let shoup = w.iter().map(|&c| field.shoup_precompute(c)).collect();
        TwiddleTable { w, shoup }
    }
}

/// A radix-2 NTT execution plan for transforms of length `2^k` over a
/// fixed prime field.
#[derive(Clone, Debug)]
pub struct NttPlan {
    field: PrimeField,
    log_len: u32,
    /// Primitive `2^k`-th root of unity.
    root: u64,
    /// `(2^k)^{-1} mod q` with its Shoup companion.
    len_inv: u64,
    len_inv_shoup: u64,
    /// Per-round twiddle tables, round `r` having span `2^r`.
    fwd: Vec<TwiddleTable>,
    inv: Vec<TwiddleTable>,
}

impl NttPlan {
    /// Builds a plan for transforms of length `2^log_len`, if the field
    /// supports one (`2^log_len` must divide `q - 1`).
    #[must_use]
    pub fn new(field: &PrimeField, log_len: u32) -> Option<Self> {
        let q = field.modulus();
        let len = 1u64 << log_len;
        if !(q - 1).is_multiple_of(len) {
            return None;
        }
        let g = primitive_root(q);
        let root = field.pow(g, (q - 1) >> log_len);
        Some(Self::from_root(field, log_len, root))
    }

    /// Builds a plan from a known primitive `2^log_len`-th root of unity,
    /// skipping the primitive-root search. Used to derive the plans for
    /// every smaller transform length from one top-level plan (see
    /// [`NttPlan::halved`]).
    ///
    /// # Panics
    ///
    /// Panics if `root` does not have multiplicative order exactly
    /// `2^log_len` (a wrong order would silently produce incorrect
    /// transforms; the two `pow` checks are negligible next to the
    /// twiddle-table construction).
    #[must_use]
    pub fn from_root(field: &PrimeField, log_len: u32, root: u64) -> Self {
        let len = 1u64 << log_len;
        assert_eq!(field.pow(root, len), 1, "root order mismatch");
        assert!(log_len == 0 || field.pow(root, len / 2) != 1, "root order mismatch");
        let root_inv = if log_len == 0 { 1 } else { field.inv(root) };
        let len_inv = field.inv(field.reduce(len));
        let build = |base: u64| {
            (0..log_len)
                .map(|r| {
                    let span = 1usize << r;
                    let w_span = field.pow(base, len >> (r + 1));
                    TwiddleTable::new(field, w_span, span)
                })
                .collect()
        };
        NttPlan {
            field: *field,
            log_len,
            root,
            len_inv,
            len_inv_shoup: field.shoup_precompute(len_inv),
            fwd: build(root),
            inv: build(root_inv),
        }
    }

    /// The plan for transforms of half this length (squares the root), or
    /// `None` for a length-1 plan.
    #[must_use]
    pub fn halved(&self) -> Option<NttPlan> {
        let log = self.log_len.checked_sub(1)?;
        Some(Self::from_root(&self.field, log, self.field.mul(self.root, self.root)))
    }

    /// Transform length `2^log_len`.
    #[must_use]
    pub fn len(&self) -> usize {
        1 << self.log_len
    }

    /// The primitive `2^log_len`-th root of unity the plan transforms
    /// with: `forward` output index `j` is the input polynomial evaluated
    /// at `root^j`.
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Always false (a plan has positive length); provided alongside
    /// [`NttPlan::len`] per API convention.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward transform (natural order in, natural order out,
    /// fully reduced `[0, q)` outputs).
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == self.len()`.
    pub fn forward(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.len(), "transform length mismatch");
        self.bit_reverse(values);
        self.ct_rounds(values, &self.fwd);
        self.field.reduce_lazy_slice(values);
    }

    /// In-place inverse transform (includes the `1/n` scaling; fully
    /// reduced `[0, q)` outputs).
    ///
    /// # Panics
    ///
    /// Panics unless `values.len() == self.len()`.
    pub fn inverse(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.len(), "transform length mismatch");
        self.bit_reverse(values);
        self.ct_rounds(values, &self.inv);
        // The Shoup scaling pass fully reduces the lazy `[0, 4q)` state.
        self.field.mul_const_shoup_slice(values, self.len_inv, self.len_inv_shoup);
    }

    /// Forward transform into **bit-reversed** order with lazy `[0, 2q)`
    /// outputs: Gentleman–Sande (decimation-in-frequency) rounds, no
    /// permutation pass. Paired with [`NttPlan::inverse_from_rev`] this
    /// skips all three bit-reversals of a permuted product; pointwise
    /// stages between the two must tolerate `[0, 2q)` operands (the
    /// `camelot-ff` slice kernels do).
    pub(crate) fn forward_lazy_rev(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.len(), "transform length mismatch");
        self.gs_rounds(values, &self.fwd);
    }

    /// Inverse transform consuming **bit-reversed** input (any values in
    /// `[0, 4q)`): Cooley–Tukey (decimation-in-time) rounds — whose
    /// permutation pass is exactly absorbed by the bit-reversed input
    /// order — plus the `1/n` scaling. Fully reduced `[0, q)` outputs in
    /// natural order.
    pub(crate) fn inverse_from_rev(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.len(), "transform length mismatch");
        self.ct_rounds(values, &self.inv);
        self.field.mul_const_shoup_slice(values, self.len_inv, self.len_inv_shoup);
    }

    /// In-place bit-reversal permutation.
    fn bit_reverse(&self, values: &mut [u64]) {
        if self.log_len == 0 {
            return;
        }
        let shift = u32::BITS - self.log_len;
        for i in 0..values.len() {
            let j = ((i as u32).reverse_bits() >> shift) as usize;
            if i < j {
                values.swap(i, j);
            }
        }
    }

    /// Cooley–Tukey rounds (spans `1, 2, …`) over bit-reversed input,
    /// splitting across scoped threads above the parallel crossover.
    /// Values ride lazily in `[0, 4q)`; callers reduce or scale after.
    fn ct_rounds(&self, values: &mut [u64], tables: &[TwiddleTable]) {
        let n = values.len();
        let t = split_factor(plan_workers(n), n);
        if t < 2 {
            self.ct_rounds_seq(values, tables);
            return;
        }
        // Phase 1: rounds whose blocks fit inside one macro-chunk are
        // independent per chunk — each of the `t` threads runs the first
        // `log2(n/t)` rounds on its own contiguous `n/t` slice.
        let chunk = n / t;
        let local_rounds = chunk.trailing_zeros() as usize;
        std::thread::scope(|s| {
            for part in values.chunks_exact_mut(chunk) {
                s.spawn(move || self.ct_rounds_seq(part, &tables[..local_rounds]));
            }
        });
        // Phase 2: the remaining log2(t) rounds have spans >= chunk, so
        // each block's lo/hi halves (and the twiddle table) are cut into
        // `n/(2t)`-wide sub-ranges, one scoped task per sub-range. Every
        // position is written by exactly one task, so the result is
        // bit-identical to the sequential schedule.
        let part_len = (n / (2 * t)).max(1);
        for table in &tables[local_rounds..] {
            let span = table.w.len();
            std::thread::scope(|s| {
                for block in values.chunks_exact_mut(2 * span) {
                    let (lo, hi) = block.split_at_mut(span);
                    let subs = lo.chunks_mut(part_len).zip(hi.chunks_mut(part_len));
                    for (k, (lo_sub, hi_sub)) in subs.enumerate() {
                        let off = k * part_len;
                        let w = &table.w[off..off + lo_sub.len()];
                        let ws = &table.shoup[off..off + lo_sub.len()];
                        s.spawn(move || self.field.butterfly_ct_lazy_slice(lo_sub, hi_sub, w, ws));
                    }
                }
            });
        }
    }

    /// Gentleman–Sande rounds (spans `n/2, …, 1`, i.e. the same twiddle
    /// tables iterated in reverse) from natural-order input, splitting
    /// across scoped threads above the parallel crossover. Values ride
    /// lazily in `[0, 2q)`; output is in bit-reversed order.
    fn gs_rounds(&self, values: &mut [u64], tables: &[TwiddleTable]) {
        let n = values.len();
        let t = split_factor(plan_workers(n), n);
        if t < 2 {
            self.gs_rounds_seq(values, tables);
            return;
        }
        // Mirror image of `ct_rounds`: the wide-span rounds come first
        // (in-block sub-range splitting), then each macro-chunk finishes
        // its local rounds on its own thread.
        let chunk = n / t;
        let local_rounds = chunk.trailing_zeros() as usize;
        let part_len = (n / (2 * t)).max(1);
        for table in tables[local_rounds..].iter().rev() {
            let span = table.w.len();
            std::thread::scope(|s| {
                for block in values.chunks_exact_mut(2 * span) {
                    let (lo, hi) = block.split_at_mut(span);
                    let subs = lo.chunks_mut(part_len).zip(hi.chunks_mut(part_len));
                    for (k, (lo_sub, hi_sub)) in subs.enumerate() {
                        let off = k * part_len;
                        let w = &table.w[off..off + lo_sub.len()];
                        let ws = &table.shoup[off..off + lo_sub.len()];
                        s.spawn(move || self.field.butterfly_gs_lazy_slice(lo_sub, hi_sub, w, ws));
                    }
                }
            });
        }
        std::thread::scope(|s| {
            for part in values.chunks_exact_mut(chunk) {
                s.spawn(move || self.gs_rounds_seq(part, &tables[..local_rounds]));
            }
        });
    }

    // lint:hot-begin(ntt-butterfly) — the sequential butterfly rounds
    // dominate every fast-path product; the inner loops run through the
    // lazy-reduction slice kernels of `camelot-ff` (one conditional
    // correction per butterfly, bounds-check-free fixed-width blocks).
    // No `%`, no clones, no allocation; camelot-lint enforces this
    // region.

    /// Sequential Cooley–Tukey rounds: spans `1, 2, …` reading
    /// `tables[r]` for span `2^r`. `values.len()` must be a power of two
    /// at least `2^tables.len()` (blocks of `2·span` tile the slice).
    fn ct_rounds_seq(&self, values: &mut [u64], tables: &[TwiddleTable]) {
        let f = &self.field;
        for table in tables {
            let span = table.w.len();
            for block in values.chunks_exact_mut(2 * span) {
                let (lo, hi) = block.split_at_mut(span);
                f.butterfly_ct_lazy_slice(lo, hi, &table.w, &table.shoup);
            }
        }
    }

    /// Sequential Gentleman–Sande rounds: the same tables iterated in
    /// reverse span order (`tables.last()` first).
    fn gs_rounds_seq(&self, values: &mut [u64], tables: &[TwiddleTable]) {
        let f = &self.field;
        for table in tables.iter().rev() {
            let span = table.w.len();
            for block in values.chunks_exact_mut(2 * span) {
                let (lo, hi) = block.split_at_mut(span);
                f.butterfly_gs_lazy_slice(lo, hi, &table.w, &table.shoup);
            }
        }
    }

    // lint:hot-end

    /// Multiplies two polynomials through the transform.
    ///
    /// Runs permutation-free: a decimation-in-frequency forward for each
    /// operand (bit-reversed, lazy `[0, 2q)` outputs), an order-agnostic
    /// pointwise [`PrimeField::mul_slice`], and a decimation-in-time
    /// inverse that absorbs the bit-reversed order — saving all three
    /// bit-reversal passes of the permuted route while producing
    /// bit-identical coefficients (the arithmetic is exact mod `q`).
    ///
    /// # Panics
    ///
    /// Panics if the product degree does not fit the transform length.
    #[must_use]
    pub fn multiply(&self, a: &Poly, b: &Poly) -> Poly {
        if a.is_zero() || b.is_zero() {
            return Poly::zero();
        }
        let out_len = a.coeffs().len() + b.coeffs().len() - 1;
        assert!(out_len <= self.len(), "product degree exceeds the transform length");
        let mut fa = a.coeffs().to_vec();
        let mut fb = b.coeffs().to_vec();
        fa.resize(self.len(), 0);
        fb.resize(self.len(), 0);
        self.forward_lazy_rev(&mut fa);
        self.forward_lazy_rev(&mut fb);
        self.field.mul_slice(&mut fa, &fb);
        self.inverse_from_rev(&mut fa);
        fa.truncate(out_len);
        Poly::from_reduced(fa)
    }
}

/// Largest power of two `t` with `t <= workers` and `2t <= n`: the number
/// of scoped threads a length-`n` transform can occupy (each needs at
/// least one butterfly per phase-2 sub-range). Returns 1 (sequential)
/// when splitting cannot help.
fn split_factor(workers: usize, n: usize) -> usize {
    if workers < 2 || n < 4 {
        return 1;
    }
    let cap = workers.min(n / 2);
    1usize << (usize::BITS - 1 - cap.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::set_par_crossover;
    use camelot_ff::{ntt_prime, set_thread_budget, thread_budget, SplitMix64};

    fn plan(k: u32) -> (PrimeField, NttPlan) {
        let (q, _) = ntt_prime(1 << 20, k);
        let field = PrimeField::new(q).unwrap();
        let plan = NttPlan::new(&field, k).expect("prime was built for this length");
        (field, plan)
    }

    #[test]
    fn unfriendly_modulus_is_refused() {
        // 1_000_000_007 - 1 = 2 * 500000003: only one factor of two.
        let field = PrimeField::new(1_000_000_007).unwrap();
        assert!(NttPlan::new(&field, 1).is_some());
        assert!(NttPlan::new(&field, 2).is_none());
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let (field, plan) = plan(10);
        let mut rng = SplitMix64::new(5);
        let original: Vec<u64> = (0..1024).map(|_| field.sample(&mut rng)).collect();
        let mut values = original.clone();
        plan.forward(&mut values);
        assert_ne!(values, original, "transform must move the data");
        plan.inverse(&mut values);
        assert_eq!(values, original);
    }

    #[test]
    fn multiply_matches_karatsuba() {
        let (field, plan) = plan(11);
        let mut rng = SplitMix64::new(6);
        for (da, db) in [(0usize, 0usize), (5, 9), (300, 500), (1023, 1000)] {
            let a = Poly::from_reduced(
                (0..=da).map(|i| if i == da { 1 } else { field.sample(&mut rng) }).collect(),
            );
            let b = Poly::from_reduced(
                (0..=db).map(|i| if i == db { 1 } else { field.sample(&mut rng) }).collect(),
            );
            assert_eq!(plan.multiply(&a, &b), a.mul(&field, &b), "degrees {da},{db}");
        }
    }

    #[test]
    fn multiply_handles_zero() {
        let (field, plan) = plan(4);
        let a = Poly::from_coeffs(&field, [1, 2, 3]);
        assert!(plan.multiply(&a, &Poly::zero()).is_zero());
        assert!(plan.multiply(&Poly::zero(), &a).is_zero());
    }

    #[test]
    #[should_panic(expected = "exceeds the transform length")]
    fn oversize_product_rejected() {
        let (field, plan) = plan(3);
        let a = Poly::from_coeffs(&field, (1..=6).collect::<Vec<u64>>());
        let _ = plan.multiply(&a, &a); // degree 10 > 7
    }

    #[test]
    fn convolution_theorem_spot_check() {
        // Forward transform of a delta at position p is the geometric
        // sequence root^(p*i).
        let (field, plan) = plan(5);
        let mut values = vec![0u64; 32];
        values[1] = 1;
        plan.forward(&mut values);
        let w = values[1];
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(v, field.pow(w, i as u64), "index {i}");
        }
    }

    #[test]
    fn halved_plans_agree_with_fresh_plans() {
        let (field, plan) = plan(9);
        let mut rng = SplitMix64::new(7);
        let mut current = plan;
        for k in (0..9).rev() {
            current = current.halved().expect("can halve down to length 1");
            assert_eq!(current.len(), 1 << k);
            let fresh = NttPlan::new(&field, k).expect("field supports all smaller lengths");
            let original: Vec<u64> = (0..1 << k).map(|_| field.sample(&mut rng)).collect();
            let mut a = original.clone();
            let mut b = original.clone();
            current.forward(&mut a);
            fresh.forward(&mut b);
            assert_eq!(a, b, "length 2^{k}");
            current.inverse(&mut a);
            assert_eq!(a, original);
        }
        assert!(current.halved().is_none());
    }

    #[test]
    fn lazy_rev_forward_agrees_with_permuted_forward() {
        // forward_lazy_rev + full reduction + un-bit-reversal must equal
        // the public natural-order forward for every length down to 1.
        for k in 0..=10u32 {
            let (field, plan) = plan(k);
            let n = 1usize << k;
            let mut rng = SplitMix64::new(11 + u64::from(k));
            let original: Vec<u64> = (0..n).map(|_| field.sample(&mut rng)).collect();
            let q = field.modulus();

            let mut reference = original.clone();
            plan.forward(&mut reference);

            let mut lazy = original.clone();
            plan.forward_lazy_rev(&mut lazy);
            for &v in &lazy {
                assert!(v < 2 * q, "lazy output out of [0, 2q)");
            }
            let mut unscrambled = vec![0u64; n];
            let shift = u32::BITS - k.max(1);
            for (i, &v) in lazy.iter().enumerate() {
                let j = if k == 0 { 0 } else { ((i as u32).reverse_bits() >> shift) as usize };
                unscrambled[j] = v.min(v.wrapping_sub(q));
            }
            assert_eq!(unscrambled, reference, "length 2^{k}");

            // And the permutation-free inverse round-trips the pair.
            plan.inverse_from_rev(&mut lazy);
            assert_eq!(lazy, original, "length 2^{k} roundtrip");
        }
    }

    #[test]
    fn threaded_rounds_match_sequential() {
        // Force the parallel decomposition on small inputs and pin the
        // outputs bit-identical to the sequential schedule.
        let (field, plan) = plan(8);
        let mut rng = SplitMix64::new(13);
        let original: Vec<u64> = (0..256).map(|_| field.sample(&mut rng)).collect();

        let _guard = crate::par::test_knob_guard();
        let saved_budget = thread_budget();
        let saved_crossover = crate::par_crossover();
        set_thread_budget(1);
        set_par_crossover(usize::MAX);
        let mut seq_fwd = original.clone();
        plan.forward(&mut seq_fwd);
        let mut seq_rev = original.clone();
        plan.forward_lazy_rev(&mut seq_rev);

        set_thread_budget(4);
        set_par_crossover(0);
        let mut par_fwd = original.clone();
        plan.forward(&mut par_fwd);
        assert_eq!(par_fwd, seq_fwd, "threaded CT rounds diverged");
        let mut par_rev = original.clone();
        plan.forward_lazy_rev(&mut par_rev);
        assert_eq!(par_rev, seq_rev, "threaded GS rounds diverged");
        plan.inverse(&mut par_fwd);
        assert_eq!(par_fwd, original, "threaded inverse diverged");

        // Thread counts beyond the butterfly count must clamp cleanly.
        set_thread_budget(64);
        let mut tiny = vec![1u64, 2, 3, 4];
        let small = NttPlan::new(&field, 2).unwrap();
        let mut tiny_seq = tiny.clone();
        small.forward(&mut tiny);
        set_thread_budget(1);
        small.forward(&mut tiny_seq);
        assert_eq!(tiny, tiny_seq);

        set_thread_budget(saved_budget);
        set_par_crossover(saved_crossover);
    }

    #[test]
    fn split_factor_is_a_safe_power_of_two() {
        assert_eq!(split_factor(1, 1024), 1);
        assert_eq!(split_factor(4, 2), 1);
        assert_eq!(split_factor(3, 1024), 2);
        assert_eq!(split_factor(4, 1024), 4);
        assert_eq!(split_factor(usize::MAX, 8), 4);
        for workers in 1..=9 {
            for logn in 0..=6u32 {
                let n = 1usize << logn;
                let t = split_factor(workers, n);
                assert!(t.is_power_of_two());
                assert!(t <= workers.max(1));
                assert!(t == 1 || 2 * t <= n);
            }
        }
    }
}
