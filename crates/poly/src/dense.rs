//! Dense univariate polynomials over a prime field.
//!
//! The fast-arithmetic toolbox of §2.2 of the paper: addition, subtraction,
//! multiplication (schoolbook for short operands, Karatsuba above a
//! threshold), Euclidean division, GCD, and the *partial* extended
//! Euclidean algorithm with an early degree stop — the exact primitive the
//! Gao Reed–Solomon decoder needs (footnote 14 of the paper).

use camelot_ff::PrimeField;

/// Operand length above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

/// A dense polynomial `p_0 + p_1 x + ... + p_d x^d` over `Z_q`.
///
/// Coefficients are stored little-endian with no trailing zeros; the zero
/// polynomial has an empty coefficient vector. All operations take the
/// [`PrimeField`] explicitly — a polynomial does not remember its field,
/// which keeps values plain data and mirrors how Camelot nodes rerun the
/// same computation modulo several primes.
#[derive(Clone, Debug, PartialEq, Eq, Default, Hash)]
pub struct Poly {
    coeffs: Vec<u64>,
}

impl Poly {
    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `c` (pass a reduced value).
    #[must_use]
    pub fn constant(c: u64) -> Self {
        if c == 0 {
            Self::zero()
        } else {
            Poly { coeffs: vec![c] }
        }
    }

    /// The monomial `c x^k`.
    #[must_use]
    pub fn monomial(c: u64, k: usize) -> Self {
        if c == 0 {
            return Self::zero();
        }
        let mut coeffs = vec![0; k + 1];
        coeffs[k] = c;
        Poly { coeffs }
    }

    /// Builds a polynomial from little-endian coefficients, reducing each
    /// into the field and trimming trailing zeros.
    #[must_use]
    pub fn from_coeffs(field: &PrimeField, coeffs: impl IntoIterator<Item = u64>) -> Self {
        let mut p = Poly { coeffs: coeffs.into_iter().map(|c| field.reduce(c)).collect() };
        p.normalize();
        p
    }

    /// Builds from already-reduced coefficients without re-reduction.
    #[must_use]
    pub fn from_reduced(coeffs: Vec<u64>) -> Self {
        let mut p = Poly { coeffs };
        p.normalize();
        p
    }

    /// Little-endian coefficients (no trailing zeros).
    #[must_use]
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Consumes the polynomial, returning its coefficients.
    #[must_use]
    pub fn into_coeffs(self) -> Vec<u64> {
        self.coeffs
    }

    /// Coefficient of `x^k` (zero beyond the degree).
    #[must_use]
    pub fn coeff(&self, k: usize) -> u64 {
        self.coeffs.get(k).copied().unwrap_or(0)
    }

    /// True for the zero polynomial.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Degree, or `None` for the zero polynomial.
    #[must_use]
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    fn normalize(&mut self) {
        while self.coeffs.last() == Some(&0) {
            self.coeffs.pop();
        }
    }

    /// `self + other`.
    #[must_use]
    pub fn add(&self, field: &PrimeField, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(field.add(self.coeff(i), other.coeff(i)));
        }
        Poly::from_reduced(out)
    }

    /// `self - other`.
    #[must_use]
    pub fn sub(&self, field: &PrimeField, other: &Poly) -> Poly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(field.sub(self.coeff(i), other.coeff(i)));
        }
        Poly::from_reduced(out)
    }

    /// `c * self` for a scalar `c`.
    #[must_use]
    pub fn scale(&self, field: &PrimeField, c: u64) -> Poly {
        Poly::from_reduced(self.coeffs.iter().map(|&a| field.mul(a, c)).collect())
    }

    /// `self mod x^n`: the low `n` coefficients.
    #[must_use]
    pub fn truncated(&self, n: usize) -> Poly {
        if self.coeffs.len() <= n {
            return self.clone();
        }
        Poly::from_reduced(self.coeffs[..n].to_vec())
    }

    /// The length-`len` coefficient reversal `rev_len(f)`: coefficient
    /// `k` of the result is the coefficient of `x^{len-1-k}` in `self`
    /// (zero beyond the stored degree). For `len = deg + 1` this is the
    /// classical reversal `x^deg · f(1/x)` used by Newton-iteration
    /// division.
    #[must_use]
    pub fn reversed(&self, len: usize) -> Poly {
        Poly::from_reduced((0..len).map(|k| self.coeff(len - 1 - k)).collect())
    }

    /// `self quo x^k`: drops the `k` low-order coefficients (the
    /// truncation the half-GCD speculates on).
    #[must_use]
    pub fn shift_down(&self, k: usize) -> Poly {
        if k == 0 {
            return self.clone();
        }
        if self.coeffs.len() <= k {
            return Poly::zero();
        }
        Poly::from_reduced(self.coeffs[k..].to_vec())
    }

    /// `self * x^k`.
    #[must_use]
    pub fn shift(&self, k: usize) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![0; k];
        coeffs.extend_from_slice(&self.coeffs);
        Poly { coeffs }
    }

    /// `self * other` (schoolbook for short operands, Karatsuba above an
    /// internal threshold).
    #[must_use]
    pub fn mul(&self, field: &PrimeField, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let out = mul_rec(field, &self.coeffs, &other.coeffs);
        Poly::from_reduced(out)
    }

    /// Evaluates at `x0` by Horner's rule (this is the verifier's
    /// right-hand side of check (2) in the paper).
    #[must_use]
    pub fn eval(&self, field: &PrimeField, x0: u64) -> u64 {
        let mut acc = 0u64;
        for &c in self.coeffs.iter().rev() {
            acc = field.mul_add(c, acc, x0);
        }
        acc
    }

    /// Formal derivative.
    #[must_use]
    pub fn derivative(&self, field: &PrimeField) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        let out = self.coeffs[1..]
            .iter()
            .enumerate()
            .map(|(i, &c)| field.mul(c, field.reduce(i as u64 + 1)))
            .collect();
        Poly::from_reduced(out)
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self = q * other + r` and `deg r < deg other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is the zero polynomial.
    #[must_use]
    pub fn div_rem(&self, field: &PrimeField, other: &Poly) -> (Poly, Poly) {
        assert!(!other.is_zero(), "polynomial division by zero");
        let d = other.coeffs.len() - 1;
        if self.coeffs.len() <= d {
            return (Poly::zero(), self.clone());
        }
        let lead_inv = field.inv(*other.coeffs.last().expect("nonzero divisor"));
        let mut rem = self.coeffs.clone();
        let mut quot = vec![0u64; self.coeffs.len() - d];
        for i in (d..rem.len()).rev() {
            let c = field.mul(rem[i], lead_inv);
            if c == 0 {
                continue;
            }
            quot[i - d] = c;
            for (j, &oc) in other.coeffs.iter().enumerate() {
                let idx = i - d + j;
                rem[idx] = field.sub(rem[idx], field.mul(c, oc));
            }
        }
        rem.truncate(d);
        (Poly::from_reduced(quot), Poly::from_reduced(rem))
    }

    /// Monic greatest common divisor.
    #[must_use]
    pub fn gcd(&self, field: &PrimeField, other: &Poly) -> Poly {
        let (mut a, mut b) = (self.clone(), other.clone());
        while !b.is_zero() {
            let (_, r) = a.div_rem(field, &b);
            a = b;
            b = r;
        }
        a.monic(field)
    }

    /// Scales so the leading coefficient is 1 (zero stays zero).
    #[must_use]
    pub fn monic(&self, field: &PrimeField) -> Poly {
        match self.coeffs.last() {
            None => Poly::zero(),
            Some(&lead) => self.scale(field, field.inv(lead)),
        }
    }

    /// Partial extended Euclidean algorithm with an early stop: runs the
    /// remainder sequence of `(self, other)` and returns `(u, v, g)` with
    /// `u * self + v * other = g`, stopping as soon as
    /// `deg g < stop_degree`.
    ///
    /// This is exactly the primitive the Gao decoder consumes (§2.3 of the
    /// paper): stop once the remainder drops below `(e + d + 1) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if both inputs are zero.
    #[must_use]
    pub fn partial_xgcd(
        &self,
        field: &PrimeField,
        other: &Poly,
        stop_degree: usize,
    ) -> (Poly, Poly, Poly) {
        assert!(!(self.is_zero() && other.is_zero()), "partial_xgcd of two zero polynomials");
        let (mut r0, mut r1) = (self.clone(), other.clone());
        let (mut u0, mut u1) = (Poly::constant(1), Poly::zero());
        let (mut v0, mut v1) = (Poly::zero(), Poly::constant(1));
        while !r1.is_zero() && r0.degree().is_some_and(|d| d >= stop_degree) {
            let (k, r) = r0.div_rem(field, &r1);
            let nu = u0.sub(field, &k.mul(field, &u1));
            let nv = v0.sub(field, &k.mul(field, &v1));
            (r0, r1) = (r1, r);
            (u0, u1) = (u1, nu);
            (v0, v1) = (v1, nv);
        }
        (u0, v0, r0)
    }

    /// Drop-in fast version of [`Poly::partial_xgcd`]: identical
    /// contract and bit-identical output, running the structured
    /// half-GCD of [`crate::partial_xgcd_fast`] past the
    /// [`crate::hgcd_crossover`] operand length and the classical loop
    /// below it.
    ///
    /// # Panics
    ///
    /// Panics if both inputs are zero.
    #[must_use]
    pub fn partial_xgcd_fast(
        &self,
        field: &PrimeField,
        other: &Poly,
        stop_degree: usize,
    ) -> (Poly, Poly, Poly) {
        crate::hgcd::partial_xgcd_fast(field, self, other, stop_degree)
    }
}

/// Recursive multiplication dispatcher on raw coefficient slices.
fn mul_rec(field: &PrimeField, a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.len().min(b.len()) <= KARATSUBA_THRESHOLD {
        return mul_schoolbook(field, a, b);
    }
    mul_karatsuba(field, a, b)
}

fn mul_schoolbook(field: &PrimeField, a: &[u64], b: &[u64]) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len() - 1];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        for (j, &bj) in b.iter().enumerate() {
            out[i + j] = field.mul_add(out[i + j], ai, bj);
        }
    }
    out
}

fn mul_karatsuba(field: &PrimeField, a: &[u64], b: &[u64]) -> Vec<u64> {
    let half = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = a.split_at(a.len().min(half));
    let (b0, b1) = b.split_at(b.len().min(half));
    let z0 = mul_rec(field, a0, b0);
    let z2 = if a1.is_empty() || b1.is_empty() { Vec::new() } else { mul_rec(field, a1, b1) };
    let asum = slice_add(field, a0, a1);
    let bsum = slice_add(field, b0, b1);
    let mut z1 = mul_rec(field, &asum, &bsum);
    // z1 -= z0 + z2
    for (i, &c) in z0.iter().enumerate() {
        z1[i] = field.sub(z1[i], c);
    }
    for (i, &c) in z2.iter().enumerate() {
        z1[i] = field.sub(z1[i], c);
    }
    // z1/z2 may carry trailing zero coefficients past the true product
    // degree for unbalanced operands; size the buffer for the largest
    // placement and let the caller trim.
    let len = (a.len() + b.len() - 1).max(half + z1.len()).max(if z2.is_empty() {
        0
    } else {
        2 * half + z2.len()
    });
    let mut out = vec![0u64; len];
    for (i, &c) in z0.iter().enumerate() {
        out[i] = field.add(out[i], c);
    }
    for (i, &c) in z1.iter().enumerate() {
        out[i + half] = field.add(out[i + half], c);
    }
    for (i, &c) in z2.iter().enumerate() {
        out[i + 2 * half] = field.add(out[i + 2 * half], c);
    }
    out
}

fn slice_add(field: &PrimeField, a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len().max(b.len());
    (0..n)
        .map(|i| field.add(a.get(i).copied().unwrap_or(0), b.get(i).copied().unwrap_or(0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{RngLike, SplitMix64};

    fn f() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    fn random_poly(field: &PrimeField, deg: usize, rng: &mut SplitMix64) -> Poly {
        Poly::from_reduced(
            (0..=deg)
                .map(|i| {
                    if i == deg {
                        1 + rng.next_u64() % (field.modulus() - 1)
                    } else {
                        rng.next_u64() % field.modulus()
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn normalization_and_degree() {
        let field = f();
        assert!(Poly::zero().is_zero());
        assert_eq!(Poly::zero().degree(), None);
        assert_eq!(Poly::from_coeffs(&field, [1, 2, 0, 0]).degree(), Some(1));
        assert_eq!(Poly::constant(0), Poly::zero());
        assert_eq!(Poly::monomial(5, 3).degree(), Some(3));
    }

    #[test]
    fn add_sub_inverse() {
        let field = f();
        let mut rng = SplitMix64::new(1);
        let a = random_poly(&field, 17, &mut rng);
        let b = random_poly(&field, 9, &mut rng);
        assert_eq!(a.add(&field, &b).sub(&field, &b), a);
        assert!(a.sub(&field, &a).is_zero());
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        let field = f();
        let mut rng = SplitMix64::new(2);
        for (da, db) in [(70, 70), (100, 33), (33, 100), (65, 1), (200, 199)] {
            let a = random_poly(&field, da, &mut rng);
            let b = random_poly(&field, db, &mut rng);
            let fast = a.mul(&field, &b);
            let slow = Poly::from_reduced(mul_schoolbook(&field, a.coeffs(), b.coeffs()));
            assert_eq!(fast, slow, "degrees {da},{db}");
        }
    }

    #[test]
    fn mul_degree_and_identity() {
        let field = f();
        let mut rng = SplitMix64::new(3);
        let a = random_poly(&field, 12, &mut rng);
        assert_eq!(a.mul(&field, &Poly::constant(1)), a);
        assert!(a.mul(&field, &Poly::zero()).is_zero());
        let b = random_poly(&field, 7, &mut rng);
        assert_eq!(a.mul(&field, &b).degree(), Some(19));
    }

    #[test]
    fn eval_is_ring_homomorphism() {
        let field = f();
        let mut rng = SplitMix64::new(4);
        let a = random_poly(&field, 20, &mut rng);
        let b = random_poly(&field, 15, &mut rng);
        for _ in 0..10 {
            let x = field.sample(&mut rng);
            assert_eq!(
                a.mul(&field, &b).eval(&field, x),
                field.mul(a.eval(&field, x), b.eval(&field, x))
            );
            assert_eq!(
                a.add(&field, &b).eval(&field, x),
                field.add(a.eval(&field, x), b.eval(&field, x))
            );
        }
    }

    #[test]
    fn div_rem_reconstructs() {
        let field = f();
        let mut rng = SplitMix64::new(5);
        for (da, db) in [(25, 7), (7, 25), (10, 10), (40, 1)] {
            let a = random_poly(&field, da, &mut rng);
            let b = random_poly(&field, db, &mut rng);
            let (q, r) = a.div_rem(&field, &b);
            assert!(r.degree().is_none_or(|dr| dr < db));
            assert_eq!(q.mul(&field, &b).add(&field, &r), a);
        }
    }

    #[test]
    fn gcd_of_products_contains_common_factor() {
        let field = f();
        let mut rng = SplitMix64::new(6);
        let g = random_poly(&field, 5, &mut rng).monic(&field);
        let a = g.mul(&field, &random_poly(&field, 8, &mut rng));
        let b = g.mul(&field, &random_poly(&field, 6, &mut rng));
        let d = a.gcd(&field, &b);
        // g divides gcd(a, b)
        let (_, r) = d.div_rem(&field, &g);
        assert!(r.is_zero(), "gcd must be divisible by the planted factor");
    }

    #[test]
    fn derivative_product_rule() {
        let field = f();
        let mut rng = SplitMix64::new(7);
        let a = random_poly(&field, 6, &mut rng);
        let b = random_poly(&field, 5, &mut rng);
        let lhs = a.mul(&field, &b).derivative(&field);
        let rhs =
            a.derivative(&field).mul(&field, &b).add(&field, &a.mul(&field, &b.derivative(&field)));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn partial_xgcd_bezout_and_stop_degree() {
        let field = f();
        let mut rng = SplitMix64::new(8);
        let a = random_poly(&field, 30, &mut rng);
        let b = random_poly(&field, 24, &mut rng);
        for stop in [0usize, 5, 12, 20] {
            let (u, v, g) = a.partial_xgcd(&field, &b, stop);
            let lhs = u.mul(&field, &a).add(&field, &v.mul(&field, &b));
            assert_eq!(lhs, g, "Bezout identity at stop {stop}");
            if stop > 0 {
                assert!(g.degree().is_none_or(|d| d < stop + 25), "degree dropped");
            }
        }
        // Full run (stop 0 means run while deg >= 0, i.e. until r1 = 0):
        let (_, _, g) = a.partial_xgcd(&field, &b, 0);
        let reference = a.gcd(&field, &b);
        assert_eq!(g.monic(&field), reference);
    }

    #[test]
    fn shift_multiplies_by_monomial() {
        let field = f();
        let a = Poly::from_coeffs(&field, [3, 1, 4]);
        assert_eq!(a.shift(2), Poly::from_coeffs(&field, [0, 0, 3, 1, 4]));
        assert_eq!(Poly::zero().shift(5), Poly::zero());
    }
}
