//! Interpolation and multipoint evaluation.
//!
//! Camelot proof polynomials are repeatedly moved between *evaluation
//! form* (the Reed–Solomon codeword the nodes produce) and *coefficient
//! form* (the proof the verifier spot-checks). This module provides Newton
//! interpolation at arbitrary distinct points, plus the special-cased
//! `O(R)` evaluation of all Lagrange basis polynomials
//! `Λ_r(x_0)` over the consecutive points `1..=R` used by the clique and
//! triangle evaluation algorithms (§5.3 and §3.3 of the paper).

use crate::dense::Poly;
use camelot_ff::PrimeField;

/// Interpolates the unique polynomial of degree `< points.len()` through
/// the given `(x, y)` pairs, via Newton's divided differences (`O(n²)`).
///
/// # Panics
///
/// Panics if two points share an abscissa.
#[must_use]
pub fn interpolate(field: &PrimeField, points: &[(u64, u64)]) -> Poly {
    if points.is_empty() {
        return Poly::zero();
    }
    let n = points.len();
    // Divided-difference coefficients c_i (Newton form). The node
    // differences of each level are inverted together with Montgomery's
    // trick — one extended Euclid per level instead of one per cell.
    let mut coef: Vec<u64> = points.iter().map(|&(_, y)| field.reduce(y)).collect();
    let xs: Vec<u64> = points.iter().map(|&(x, _)| field.reduce(x)).collect();
    for level in 1..n {
        let mut inv_dx: Vec<u64> = (level..n).map(|i| field.sub(xs[i], xs[i - level])).collect();
        assert!(inv_dx.iter().all(|&dx| dx != 0), "interpolation points must be distinct (mod q)");
        field.inv_batch_blocked(&mut inv_dx);
        for i in (level..n).rev() {
            coef[i] = field.mul(field.sub(coef[i], coef[i - 1]), inv_dx[i - level]);
        }
    }
    // Expand Newton form to monomial coefficients by Horner on the nodes:
    // p(x) = c_0 + (x - x_0)(c_1 + (x - x_1)(...)).
    let mut poly = Poly::zero();
    for i in (0..n).rev() {
        let xi = field.reduce(points[i].0);
        // poly = poly * (x - x_i) + c_i
        let shifted = poly.shift(1);
        let scaled = poly.scale(field, field.neg(xi));
        poly = shifted.add(field, &scaled).add(field, &Poly::constant(coef[i]));
    }
    poly
}

/// Evaluates `poly` at each point (Horner per point, `O(d·n)`).
#[must_use]
pub fn eval_many(field: &PrimeField, poly: &Poly, xs: &[u64]) -> Vec<u64> {
    xs.iter().map(|&x| poly.eval(field, x)).collect()
}

/// Evaluates all `R` Lagrange basis polynomials over the consecutive nodes
/// `1, 2, ..., R` at the point `x0`, in `O(R)` field operations.
///
/// `Λ_r(x) = Π_{j != r} (x - j) / (r - j)` — returned as a vector indexed
/// by `r - 1`. This is the initialization step of the proof-polynomial
/// evaluation algorithm in §5.3 of the paper: precompute factorials
/// `F_j`, the product `Γ(x0) = Π_j (x0 - j)`, and combine
/// `Λ_r(x0) = Γ(x0) / ((x0 - r) · (-1)^{R-r} F_{r-1} F_{R-r})`.
///
/// # Panics
///
/// Panics if `r_count == 0` or `r_count >= q` (the nodes `1..=R` must be
/// distinct field elements).
#[must_use]
pub fn lagrange_basis_at(field: &PrimeField, r_count: usize, x0: u64) -> Vec<u64> {
    assert!(r_count > 0, "need at least one interpolation node");
    let r64 = u64::try_from(r_count).expect("node count fits u64");
    assert!(r64 < field.modulus(), "nodes 1..=R must be distinct mod q");
    let x0 = field.reduce(x0);
    // Inside the node range the basis is an indicator vector.
    if (1..=r64).contains(&x0) {
        let mut out = vec![0u64; r_count];
        out[(x0 - 1) as usize] = 1;
        return out;
    }
    // Factorials F_0..F_{R-1}.
    let mut fact = Vec::with_capacity(r_count);
    let mut acc = 1u64;
    for j in 0..r_count as u64 {
        if j > 0 {
            acc = field.mul(acc, field.reduce(j));
        }
        fact.push(acc);
    }
    // Γ(x0) and the per-node denominators (x0 - r).
    let mut diffs: Vec<u64> = (1..=r64).map(|r| field.sub(x0, field.reduce(r))).collect();
    let mut gamma = 1u64;
    for &d in &diffs {
        gamma = field.mul(gamma, d);
    }
    // Batch-invert denominators and factorials together.
    let mut to_invert = diffs.clone();
    to_invert.extend_from_slice(&fact);
    field.inv_batch_blocked(&mut to_invert);
    let (inv_diffs, inv_fact) = to_invert.split_at(r_count);
    diffs.clear();
    let mut out = Vec::with_capacity(r_count);
    for r in 1..=r_count {
        let mut v = field.mul(gamma, inv_diffs[r - 1]);
        v = field.mul(v, inv_fact[r - 1]);
        v = field.mul(v, inv_fact[r_count - r]);
        if (r_count - r) % 2 == 1 {
            v = field.neg(v);
        }
        out.push(v);
    }
    out
}

/// Interpolates a polynomial from its values at the consecutive points
/// `0, 1, ..., n-1` (thin wrapper over [`interpolate`], kept as named API
/// because the Camelot recovery step uses it pervasively).
#[must_use]
pub fn interpolate_consecutive(field: &PrimeField, values: &[u64]) -> Poly {
    let pts: Vec<(u64, u64)> = values.iter().enumerate().map(|(i, &y)| (i as u64, y)).collect();
    interpolate(field, &pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{RngLike, SplitMix64};

    fn f() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    #[test]
    fn interpolation_roundtrip_random() {
        let field = f();
        let mut rng = SplitMix64::new(11);
        for deg in [0usize, 1, 2, 7, 33] {
            let poly = Poly::from_reduced(
                (0..=deg)
                    .map(|i| if i == deg { 1 } else { rng.next_u64() % field.modulus() })
                    .collect(),
            );
            let xs: Vec<u64> = (0..=deg as u64).collect();
            let pts: Vec<(u64, u64)> = xs.iter().map(|&x| (x, poly.eval(&field, x))).collect();
            assert_eq!(interpolate(&field, &pts), poly, "degree {deg}");
        }
    }

    #[test]
    fn interpolation_arbitrary_nodes() {
        let field = f();
        let mut rng = SplitMix64::new(12);
        let poly = Poly::from_coeffs(&field, [5, 0, 3, 9, 1]);
        let mut xs = std::collections::BTreeSet::new();
        while xs.len() < 5 {
            xs.insert(field.sample(&mut rng));
        }
        let pts: Vec<(u64, u64)> = xs.iter().map(|&x| (x, poly.eval(&field, x))).collect();
        assert_eq!(interpolate(&field, &pts), poly);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn repeated_nodes_rejected() {
        let field = f();
        let _ = interpolate(&field, &[(1, 2), (1, 3)]);
    }

    #[test]
    fn lagrange_basis_matches_definition() {
        let field = f();
        let r_count = 9;
        // Reference: build each Λ_r explicitly by interpolation of the
        // indicator values.
        let mut rng = SplitMix64::new(13);
        for _ in 0..5 {
            let x0 = field.sample(&mut rng);
            let fast = lagrange_basis_at(&field, r_count, x0);
            for r in 1..=r_count {
                let pts: Vec<(u64, u64)> =
                    (1..=r_count as u64).map(|j| (j, u64::from(j == r as u64))).collect();
                let basis = interpolate(&field, &pts);
                assert_eq!(fast[r - 1], basis.eval(&field, x0), "r = {r}");
            }
        }
    }

    #[test]
    fn lagrange_basis_partition_of_unity() {
        let field = f();
        let mut rng = SplitMix64::new(14);
        for r_count in [1usize, 2, 8, 100] {
            let x0 = field.sample(&mut rng);
            let basis = lagrange_basis_at(&field, r_count, x0);
            let sum = basis.iter().fold(0u64, |a, &b| field.add(a, b));
            assert_eq!(sum, 1, "Σ_r Λ_r(x) = 1 for R = {r_count}");
        }
    }

    #[test]
    fn lagrange_basis_indicator_inside_range() {
        let field = f();
        let basis = lagrange_basis_at(&field, 6, 4);
        assert_eq!(basis, vec![0, 0, 0, 1, 0, 0]);
        let basis0 = lagrange_basis_at(&field, 6, 0);
        // x0 = 0 is outside 1..=6; check against the definition instead.
        let sum = basis0.iter().fold(0u64, |a, &b| field.add(a, b));
        assert_eq!(sum, 1);
    }

    #[test]
    fn consecutive_interpolation_matches_general() {
        let field = f();
        let values = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let a = interpolate_consecutive(&field, &values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(a.eval(&field, i as u64), v);
        }
        assert!(a.degree().unwrap() < values.len());
    }
}
