//! Half-GCD structured partial extended Euclid.
//!
//! [`Poly::partial_xgcd`] walks the Euclidean remainder sequence one
//! division at a time — quadratic in the degree, and the committed
//! `BENCH_algebra.json` trajectory shows it dominating Gao decoding past
//! 2^12. This module computes the *same prefix of the same remainder
//! sequence* by the divide-and-conquer half-GCD: quotients are
//! speculated from the top coefficients of the pair, accumulated in a
//! 2×2 matrix of cofactor polynomials, and applied in bulk through the
//! cached [`crate::NttPlan`] products of the multipoint machinery
//! (Karatsuba below the transform threshold or for moduli without
//! two-adic structure) — `O(M(e) log e)` end to end.
//!
//! Speculation is *defensively verified*: a matrix computed from
//! truncated operands is applied to the full pair and accepted only if
//! the resulting degrees certify it as a genuine quotient prefix. A
//! regular matrix (a product of Euclidean step matrices with
//! positive-degree quotients) whose image keeps strictly decreasing
//! degrees *is* the Euclidean prefix of the pair — continued-fraction
//! uniqueness — so a rejected window simply falls back to classical
//! division steps for that stretch. The output is therefore
//! bit-identical to [`Poly::partial_xgcd`] on every input: the
//! remainder, quotient, and cofactor sequences of a pair are unique and
//! no normalization is applied anywhere.

use crate::dense::Poly;
use crate::multipoint::{div_rem_ctx, MulContext};
use camelot_ff::PrimeField;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default operand length (coefficients, max of the two inputs) at which
/// [`partial_xgcd_fast`] leaves the classical remainder loop for the
/// structured path. Fitted on the committed `BENCH_algebra.json`
/// trajectory: on the Gao decode shape the structured path wins at every
/// measured size — the final-division shortcut alone beats the classical
/// loop even below the transform threshold — so only toy inputs, where
/// the two are within noise, stay on the classical loop.
const HGCD_DEFAULT_CROSSOVER: usize = 32;

/// Degree gap (current head degree minus the target) below which
/// [`reduce`] steps classically instead of recursing: a handful of
/// short-quotient divisions is cheaper than matrix bookkeeping.
const HGCD_BASE_GAP: usize = 16;

fn crossover_cell() -> &'static AtomicUsize {
    static CELL: OnceLock<AtomicUsize> = OnceLock::new();
    CELL.get_or_init(|| {
        let from_env = std::env::var("CAMELOT_HGCD_CROSSOVER").ok().and_then(|v| v.parse().ok());
        AtomicUsize::new(from_env.unwrap_or(HGCD_DEFAULT_CROSSOVER))
    })
}

/// Operand length at which [`partial_xgcd_fast`] switches from the
/// classical remainder loop to the structured half-GCD path.
/// Initialized from the `CAMELOT_HGCD_CROSSOVER` environment variable
/// when set (`0` forces the structured path for every input).
#[must_use]
pub fn hgcd_crossover() -> usize {
    crossover_cell().load(Ordering::Relaxed)
}

/// Overrides the half-GCD crossover process-wide (benchmark crossover
/// fitting and the CI forced-path smoke run).
pub fn set_hgcd_crossover(len: usize) {
    crossover_cell().store(len, Ordering::Relaxed)
}

/// A 2×2 matrix of cofactor polynomials acting on a remainder pair:
/// `(r0'; r1') = M · (r0; r1)`. Row 0 holds the Bézout cofactors of the
/// current head `r0'`, row 1 those of `r1'` — exactly the
/// `(u0, v0) / (u1, v1)` state of the classical loop.
#[derive(Clone)]
struct Mat22 {
    m: [[Poly; 2]; 2],
    /// Euclidean quotient steps folded into this matrix (0 ⇔ identity).
    steps: usize,
}

impl Mat22 {
    fn identity() -> Self {
        Mat22 {
            m: [[Poly::constant(1), Poly::zero()], [Poly::zero(), Poly::constant(1)]],
            steps: 0,
        }
    }

    fn row(&self, i: usize) -> (Poly, Poly) {
        (self.m[i][0].clone(), self.m[i][1].clone())
    }

    /// Folds one Euclidean step with quotient `q`: `self ← Q·self` with
    /// `Q = [[0, 1], [1, -q]]` — row swap plus one row update, cheaper
    /// than a general product. The two `q`-products share `q`'s forward
    /// transform (3 forwards + 2 inverses instead of 4 + 2) when the
    /// spectral route applies.
    fn push_step(&mut self, ctx: &MulContext, q: &Poly) {
        let f = ctx.field();
        self.m.swap(0, 1);
        let lens = [q.coeffs().len(), self.m[0][0].coeffs().len(), self.m[0][1].coeffs().len()];
        let out = (lens[0] + lens[1]).max(lens[0] + lens[2]).saturating_sub(1);
        let (q0, q1) = match ctx.shared_plan(&lens, out) {
            Some(k) => {
                let sq = ctx.spectrum(q, k);
                let s0 = ctx.spectrum(&self.m[0][0], k);
                let s1 = ctx.spectrum(&self.m[0][1], k);
                (
                    ctx.spectral_mul_add(&sq, &s0, None, out),
                    ctx.spectral_mul_add(&sq, &s1, None, out),
                )
            }
            None => (ctx.mul(q, &self.m[0][0]), ctx.mul(q, &self.m[0][1])),
        };
        let r10 = self.m[1][0].sub(f, &q0);
        let r11 = self.m[1][1].sub(f, &q1);
        self.m[1] = [r10, r11];
        self.steps += 1;
    }

    /// `later · earlier` (the matrix applied second multiplies from the
    /// left). Each of the eight entry polynomials is forward-transformed
    /// once and reused across the two products it appears in (8 forwards
    /// plus 4 inverses instead of 16 + 8 plus four add passes) when the
    /// spectral route applies; the fallback formula and the shared route
    /// produce bit-identical entries (exact arithmetic mod `q`).
    fn compose(ctx: &MulContext, later: &Mat22, earlier: &Mat22) -> Mat22 {
        if earlier.steps == 0 {
            return later.clone();
        }
        if later.steps == 0 {
            return earlier.clone();
        }
        let f = ctx.field();
        let lens: Vec<usize> =
            later.m.iter().chain(earlier.m.iter()).flatten().map(|p| p.coeffs().len()).collect();
        let pair_out = |a: usize, b: usize| (lens[a] + lens[4 + b]).saturating_sub(1);
        let out = (0..2)
            .flat_map(|i| (0..2).map(move |j| pair_out(2 * i, j).max(pair_out(2 * i + 1, 2 + j))))
            .max()
            .unwrap_or(0);
        let m = match ctx.shared_plan(&lens, out) {
            Some(k) => {
                let sl = later.m.each_ref().map(|row| row.each_ref().map(|p| ctx.spectrum(p, k)));
                let se = earlier.m.each_ref().map(|row| row.each_ref().map(|p| ctx.spectrum(p, k)));
                let entry = |i: usize, j: usize| {
                    ctx.spectral_mul_add(&sl[i][0], &se[0][j], Some((&sl[i][1], &se[1][j])), out)
                };
                [[entry(0, 0), entry(0, 1)], [entry(1, 0), entry(1, 1)]]
            }
            None => {
                let entry = |i: usize, j: usize| {
                    ctx.mul(&later.m[i][0], &earlier.m[0][j])
                        .add(f, &ctx.mul(&later.m[i][1], &earlier.m[1][j]))
                };
                [[entry(0, 0), entry(0, 1)], [entry(1, 0), entry(1, 1)]]
            }
        };
        Mat22 { m, steps: later.steps + earlier.steps }
    }
}

/// Reconstructs the full-size image of a matrix speculated on the top
/// `2·gap` coefficients and accepts it only when the resulting degrees
/// certify a genuine, non-overshooting quotient prefix: the image head
/// must be nonzero with degree in `[target, deg r1]` and strictly above
/// the image tail. Any regular matrix passing this check is *the*
/// Euclidean prefix of `(s0, s1)` (continued-fraction uniqueness), and
/// `deg ≥ target` rules out skipping past the straddle point.
///
/// `(th, tl)` is the recursion's image of the truncated pair, so with
/// `s_i = top_i·x^l + low_i` the full image is `M·(s0; s1) =
/// (th; tl)·x^l + M·(low0; low1)` — four products on half-size operands
/// instead of full-size ones.
#[allow(clippy::too_many_arguments)]
fn reconstruct_verified(
    ctx: &MulContext,
    rm: &Mat22,
    s0: &Poly,
    s1: &Poly,
    th: &Poly,
    tl: &Poly,
    l: usize,
    target: usize,
    d1: usize,
) -> Option<(Poly, Poly)> {
    if rm.steps == 0 {
        return None;
    }
    let f = ctx.field();
    let low0 = s0.truncated(l);
    let low1 = s1.truncated(l);
    // The two matrix-vector rows share the forward transforms of the
    // vector (and each matrix entry transforms once): 6 forwards + 2
    // inverses instead of 8 + 4 when the spectral route applies.
    let lens = [
        rm.m[0][0].coeffs().len(),
        rm.m[0][1].coeffs().len(),
        rm.m[1][0].coeffs().len(),
        rm.m[1][1].coeffs().len(),
        low0.coeffs().len(),
        low1.coeffs().len(),
    ];
    let out = (0..4).map(|e| lens[e] + lens[4 + (e & 1)]).max().unwrap_or(1).saturating_sub(1);
    let (ra, rb) = match ctx.shared_plan(&lens, out) {
        Some(k) => {
            let v0 = ctx.spectrum(&low0, k);
            let v1 = ctx.spectrum(&low1, k);
            let row = |i: usize| {
                let m0 = ctx.spectrum(&rm.m[i][0], k);
                let m1 = ctx.spectrum(&rm.m[i][1], k);
                ctx.spectral_mul_add(&m0, &v0, Some((&m1, &v1)), out)
            };
            (row(0), row(1))
        }
        None => (
            ctx.mul(&rm.m[0][0], &low0).add(f, &ctx.mul(&rm.m[0][1], &low1)),
            ctx.mul(&rm.m[1][0], &low0).add(f, &ctx.mul(&rm.m[1][1], &low1)),
        ),
    };
    let a2 = ra.add(f, &th.shift(l));
    let b2 = rb.add(f, &tl.shift(l));
    let da = a2.degree()?;
    if da < target || da > d1 || b2.degree().is_some_and(|db| db >= da) {
        return None;
    }
    Some((a2, b2))
}

/// Advances the genuine remainder pair `(r0, r1)` (requires
/// `deg r0 > deg r1`, `r1` may be zero) until `r1` is zero or
/// `deg r1 < target`, returning the regular transition matrix `M` with
/// `(s0; s1) = M · (r0; r1)`. The returned pair straddles the target:
/// `deg s0 >= target` whenever `deg r0 >= target` on entry.
fn reduce(ctx: &MulContext, r0: &Poly, r1: &Poly, target: usize) -> (Mat22, Poly, Poly) {
    let mut m = Mat22::identity();
    let (mut s0, mut s1) = (r0.clone(), r1.clone());
    loop {
        let Some(d1) = s1.degree() else { return (m, s0, s1) };
        if d1 < target {
            return (m, s0, s1);
        }
        let d0 = s0.degree().expect("remainder pair head is nonzero");
        debug_assert!(d0 > d1, "remainder pair degrees must strictly decrease");
        let gap = d0 - target;
        if gap >= HGCD_BASE_GAP {
            if d0 > 2 * gap {
                // Safe window: the quotient sequence down to degree
                // `target` is determined by the top `2·gap` coefficients
                // alone, so speculate there and verify on the full pair.
                let l = d0 - 2 * gap;
                let (rm, th, tl) = reduce(ctx, &s0.shift_down(l), &s1.shift_down(l), gap);
                if let Some((a2, b2)) =
                    reconstruct_verified(ctx, &rm, &s0, &s1, &th, &tl, l, target, d1)
                {
                    m = Mat22::compose(ctx, &rm, &m);
                    (s0, s1) = (a2, b2);
                    continue;
                }
            } else {
                // The pair is not long enough to truncate: close half the
                // gap by exact recursion on the same pair (which *can*
                // truncate internally), then loop for the rest.
                let mid = d0 - gap.div_ceil(2);
                if d1 >= mid {
                    let (rm, a2, b2) = reduce(ctx, &s0, &s1, mid);
                    m = Mat22::compose(ctx, &rm, &m);
                    (s0, s1) = (a2, b2);
                    continue;
                }
            }
        }
        // Base gap, rejected speculation, or a quotient already spanning
        // the recursion window: one classical step (genuine by
        // construction; the quotient here is short in all three cases,
        // so the Newton division is cheap).
        let (q, r) = div_rem_ctx(ctx, &s0, &s1);
        m.push_step(ctx, &q);
        (s0, s1) = (s1, r);
    }
}

/// Drop-in fast version of [`Poly::partial_xgcd`]: identical
/// `(u, v, r)` contract and stop-degree semantics, bit-identical output,
/// dispatching to the structured half-GCD path once either operand
/// reaches [`hgcd_crossover`] coefficients and to the classical loop
/// below it.
///
/// # Panics
///
/// Panics if both inputs are zero.
#[must_use]
pub fn partial_xgcd_fast(
    field: &PrimeField,
    a: &Poly,
    b: &Poly,
    stop_degree: usize,
) -> (Poly, Poly, Poly) {
    if a.coeffs().len().max(b.coeffs().len()) < hgcd_crossover() {
        return a.partial_xgcd(field, b, stop_degree);
    }
    partial_xgcd_structured(field, a, b, stop_degree)
}

/// The structured half-GCD path with no crossover dispatch — what
/// [`partial_xgcd_fast`] runs past the crossover, callable directly at
/// any size (property tests, crossover fitting).
///
/// # Panics
///
/// Panics if both inputs are zero.
#[must_use]
pub fn partial_xgcd_structured(
    field: &PrimeField,
    a: &Poly,
    b: &Poly,
    stop_degree: usize,
) -> (Poly, Poly, Poly) {
    assert!(!(a.is_zero() && b.is_zero()), "partial_xgcd of two zero polynomials");
    let ctx = MulContext::new(field, a.coeffs().len() + b.coeffs().len() + 2);
    let mut m = Mat22::identity();
    let (mut r0, mut r1) = (a.clone(), b.clone());
    loop {
        if r1.is_zero() {
            break;
        }
        let Some(d0) = r0.degree() else { break };
        if d0 < stop_degree {
            break;
        }
        let d1 = r1.degree().expect("checked nonzero");
        if d1 >= d0 {
            // Irregular head (`deg b >= deg a` on entry — never inside a
            // genuine sequence): one classical step restores the
            // invariant.
            let (q, r) = div_rem_ctx(&ctx, &r0, &r1);
            m.push_step(&ctx, &q);
            (r0, r1) = (r1, r);
            continue;
        }
        if d1 < stop_degree {
            // The classical loop's final iteration only promotes r1 and
            // its cofactor row; no division result is ever used.
            let (u, v) = m.row(1);
            return (u, v, r1);
        }
        let (rm, s0, s1) = reduce(&ctx, &r0, &r1, stop_degree);
        m = Mat22::compose(&ctx, &rm, &m);
        (r0, r1) = (s0, s1);
    }
    let (u, v) = m.row(0);
    (u, v, r0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{ntt_prime, SplitMix64};

    fn ntt_field() -> PrimeField {
        let (q, _) = ntt_prime(1 << 20, 14);
        PrimeField::new(q).unwrap()
    }

    fn plain_field() -> PrimeField {
        PrimeField::new(1_000_000_007).unwrap()
    }

    fn random_poly(field: &PrimeField, deg: usize, rng: &mut SplitMix64) -> Poly {
        Poly::from_reduced(
            (0..=deg).map(|i| if i == deg { 1 } else { field.sample(rng) }).collect(),
        )
    }

    fn assert_matches_classical(field: &PrimeField, a: &Poly, b: &Poly, stop: usize) {
        let classical = a.partial_xgcd(field, b, stop);
        let structured = partial_xgcd_structured(field, a, b, stop);
        assert_eq!(
            structured,
            classical,
            "deg a = {:?}, deg b = {:?}, stop = {stop}, q = {}",
            a.degree(),
            b.degree(),
            field.modulus()
        );
    }

    /// Randomized pairs across degrees straddling the dispatch crossover,
    /// with every stop-degree regime (0 = full gcd, middle, above both
    /// degrees), against the classical loop — for an NTT-friendly prime
    /// and one with no two-adic structure.
    #[test]
    fn structured_matches_classical_on_random_pairs() {
        for field in [ntt_field(), plain_field()] {
            let mut rng = SplitMix64::new(41);
            for (da, db) in
                [(20usize, 11usize), (64, 63), (200, 100), (257, 255), (400, 399), (900, 500)]
            {
                let a = random_poly(&field, da, &mut rng);
                let b = random_poly(&field, db, &mut rng);
                for stop in [0usize, 1, db / 2, db, da / 2 + db / 2, da, da + 5] {
                    assert_matches_classical(&field, &a, &b, stop);
                }
            }
        }
    }

    /// Planted common factors produce degenerate remainder sequences
    /// (large quotients, early termination); the structured path must
    /// track them exactly down to the gcd.
    #[test]
    fn structured_matches_classical_with_planted_gcd() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(42);
        let g = random_poly(&field, 40, &mut rng);
        let a = g.mul(&field, &random_poly(&field, 160, &mut rng));
        let b = g.mul(&field, &random_poly(&field, 120, &mut rng));
        for stop in [0usize, 20, 41, 100, 170] {
            assert_matches_classical(&field, &a, &b, stop);
        }
        // Exact multiples: the sequence ends after a single division.
        let k = random_poly(&field, 90, &mut rng);
        let a = g.mul(&field, &k);
        for stop in [0usize, 40, 95] {
            assert_matches_classical(&field, &a, &g, stop);
        }
    }

    /// Edge cases the classical loop defines behaviour for: one zero
    /// operand (either side), equal degrees, `deg b > deg a`, constants.
    #[test]
    fn structured_matches_classical_on_edge_cases() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(43);
        let p = random_poly(&field, 300, &mut rng);
        let q = random_poly(&field, 300, &mut rng);
        let small = random_poly(&field, 3, &mut rng);
        for stop in [0usize, 5, 150, 301] {
            assert_matches_classical(&field, &p, &Poly::zero(), stop);
            assert_matches_classical(&field, &Poly::zero(), &p, stop);
            assert_matches_classical(&field, &p, &q, stop); // equal degrees
            assert_matches_classical(&field, &small, &p, stop); // deg b > deg a
            assert_matches_classical(&field, &p, &Poly::constant(7), stop);
            assert_matches_classical(&field, &Poly::constant(7), &p, stop);
        }
    }

    #[test]
    #[should_panic(expected = "two zero polynomials")]
    fn structured_rejects_two_zeros() {
        let field = ntt_field();
        let _ = partial_xgcd_structured(&field, &Poly::zero(), &Poly::zero(), 3);
    }

    /// The dispatching entry point must agree with the classical loop on
    /// both sides of the crossover (below: it *is* the classical loop;
    /// above: the structured path).
    #[test]
    fn fast_dispatch_matches_classical_across_crossover() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(44);
        for deg in [30usize, HGCD_DEFAULT_CROSSOVER, 2 * HGCD_DEFAULT_CROSSOVER] {
            let a = random_poly(&field, deg, &mut rng);
            let b = random_poly(&field, deg - 7, &mut rng);
            let stop = deg / 2;
            assert_eq!(
                partial_xgcd_fast(&field, &a, &b, stop),
                a.partial_xgcd(&field, &b, stop),
                "deg = {deg}"
            );
        }
    }

    /// The Gao-shaped call: `a` is a vanishing polynomial, `b` an
    /// interpolation of corrupted values, stop just past half — the exact
    /// workload `RsCode::decode` hands over.
    #[test]
    fn structured_matches_classical_on_gao_shape() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(45);
        let e = 512usize;
        let d = 255usize;
        let xs: Vec<u64> = (0..e as u64).collect();
        let g0 = crate::multipoint::vanishing_poly(&field, &xs);
        let pts: Vec<(u64, u64)> = xs.iter().map(|&x| (x, field.sample(&mut rng))).collect();
        let g1 = crate::interp::interpolate(&field, &pts);
        let stop = (e + d + 2) / 2;
        assert_matches_classical(&field, &g0, &g1, stop);
    }
}
