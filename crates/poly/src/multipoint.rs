//! Subproduct-tree multipoint evaluation and fast interpolation.
//!
//! The remaining pieces of the `M(d) = d log d log log d` fast-arithmetic
//! toolbox of §2.2 of the paper: [`eval_many_fast`] evaluates a degree-`d`
//! polynomial at `n` points in `O(M(n) log n)` instead of Horner's
//! `O(d·n)`, and [`interpolate_fast`] inverts that map in the same bound
//! instead of Newton's `O(n²)`. Both walk a *subproduct tree* over the
//! evaluation points; every polynomial product along the way is routed
//! through [`NttPlan::multiply`] when the modulus is NTT-friendly at the
//! required transform length, and falls back to the Karatsuba path in
//! [`Poly::mul`] otherwise. Divisions use Newton iteration on the
//! reversed divisor (power-series inversion), so a full tree descent
//! costs `O(M(n) log n)` rather than the `O(n²)` a classical remainder
//! sequence would pay at the root.
//!
//! The naive routines ([`crate::eval_many`], [`crate::interpolate`]) are
//! retained unchanged as oracles; the `*_fast` entry points dispatch to
//! them below a crossover size, so callers can use the fast names
//! unconditionally.

use crate::dense::Poly;
use crate::interp::{eval_many, interpolate};
use crate::ntt::NttPlan;
use crate::par::{join2, plan_workers};
use camelot_ff::PrimeField;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Evaluation points per subproduct-tree leaf. Below this size quadratic
/// Horner/synthetic-division work beats transform bookkeeping, so the
/// tree bottoms out in chunks instead of single points.
const LEAF_SIZE: usize = 32;

/// Minimum operand length for routing a product through the NTT; shorter
/// products stay on the schoolbook/Karatsuba path.
const NTT_MUL_THRESHOLD: usize = 32;

/// Divisor length at which Euclidean division switches from the classical
/// `O(n·m)` loop to Newton iteration on the reversed divisor.
const FAST_DIV_THRESHOLD: usize = 32;

/// Minimum point count for subproduct-tree evaluation. Horner costs
/// `O(d·n)` while the tree costs `~EVAL_DEGREE_FACTOR·n·log²n` field
/// operations, so the tree also needs the degree gate below; both
/// constants are fitted on the committed `BENCH_algebra.json` trajectory
/// (the tree's Newton divisions carry a large constant, so quadratic
/// Horner stays competitive surprisingly long).
const EVAL_MIN_POINTS: usize = 1024;

/// Degree gate for tree evaluation: tree only when
/// `poly_len >= EVAL_DEGREE_FACTOR · log2(n)²` (e.g. degree ≥ n at
/// n = 2^12, degree ≥ n/2 at 2^13 — below that the trajectory shows the
/// tree at or under parity with Horner).
const EVAL_DEGREE_FACTOR: usize = 17;

/// Point count at which tree interpolation overtakes Newton divided
/// differences with NTT products.
const INTERP_CROSSOVER_NTT: usize = 2048;

/// Crossover when products can only use Karatsuba (NTT-unfriendly
/// modulus): the tree's constant factor is much larger, so the quadratic
/// routines stay competitive far longer.
const TREE_CROSSOVER_KARATSUBA: usize = 4096;

/// Point count past which [`vanishing_poly`] builds by tree; incremental
/// multiplication below (the tree also wins earlier here, since no
/// divisions are involved).
const VANISH_CROSSOVER: usize = 128;

/// `ceil(log2 n)` for `n >= 1`.
fn ceil_log2(n: usize) -> u32 {
    n.next_power_of_two().trailing_zeros()
}

/// Multiplication strategy for one field: NTT plans for every transform
/// length the modulus supports (capped at the requested maximum product
/// length), with [`Poly::mul`] as the fallback.
#[derive(Clone)]
pub(crate) struct MulContext {
    field: PrimeField,
    /// `plans[k]` runs transforms of length `2^k`; empty when the modulus
    /// has no two-adic structure.
    plans: Arc<Vec<Arc<NttPlan>>>,
    /// Whether the plans cover the maximum product length this context
    /// was built for (false forces Karatsuba for the large products).
    covers_max: bool,
}

/// Plans for transform lengths `2^0 .. 2^k` over one modulus.
type PlanChain = Arc<Vec<Arc<NttPlan>>>;

/// Bound on the plan cache: one engine run touches a handful of primes,
/// so this is generous, but it keeps a long-lived process that walks
/// many prime schedules from accumulating twiddle tables forever.
const PLAN_CACHE_CAPACITY: usize = 64;

/// Process-wide cache of NTT plan chains keyed by modulus, so repeated
/// tree operations over the same field (one field per engine prime) pay
/// the primitive-root search and twiddle-table construction once.
fn plan_chain(field: &PrimeField, log_len: u32) -> PlanChain {
    static CACHE: OnceLock<Mutex<HashMap<u64, PlanChain>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("NTT plan cache poisoned");
    if let Some(chain) = map.get(&field.modulus()) {
        if chain.len() > log_len as usize {
            return Arc::clone(chain);
        }
    }
    if map.len() >= PLAN_CACHE_CAPACITY {
        // Wholesale reset beats per-entry LRU bookkeeping here: hitting
        // the bound at all means the workload churns through moduli, and
        // rebuilding a chain is cheap relative to using it.
        map.clear();
    }
    let mut chain = Vec::with_capacity(log_len as usize + 1);
    let mut cur = NttPlan::new(field, log_len);
    while let Some(plan) = cur {
        cur = plan.halved();
        chain.push(Arc::new(plan));
    }
    chain.reverse();
    let chain = Arc::new(chain);
    map.insert(field.modulus(), Arc::clone(&chain));
    chain
}

/// A shared, process-cached NTT plan of length `2^log_len` over `field`,
/// or `None` when the modulus does not admit one (`2^log_len` must
/// divide `q - 1`). Repeated callers (one Reed–Solomon code per engine
/// prime, every subproduct-tree product) reuse the same twiddle tables.
#[must_use]
pub fn cached_ntt_plan(field: &PrimeField, log_len: u32) -> Option<Arc<NttPlan>> {
    if !(field.modulus() - 1).is_multiple_of(1u64 << log_len) {
        return None;
    }
    plan_chain(field, log_len).get(log_len as usize).cloned()
}

impl MulContext {
    /// Builds a strategy for products of up to `max_product_len`
    /// coefficients over `field`.
    pub(crate) fn new(field: &PrimeField, max_product_len: usize) -> Self {
        let need = ceil_log2(max_product_len.max(1));
        let supported = (field.modulus() - 1).trailing_zeros();
        let k = need.min(supported);
        // Transforms shorter than the NTT threshold would never be used.
        let plans = if (1u64 << k) >= NTT_MUL_THRESHOLD as u64 {
            plan_chain(field, k)
        } else {
            Arc::new(Vec::new())
        };
        MulContext { field: *field, plans, covers_max: k == need }
    }

    /// The field this context multiplies over.
    pub(crate) fn field(&self) -> &PrimeField {
        &self.field
    }

    /// `a * b`, through the NTT when both operands are long enough and a
    /// plan of the required length exists.
    pub(crate) fn mul(&self, a: &Poly, b: &Poly) -> Poly {
        if a.is_zero() || b.is_zero() {
            return Poly::zero();
        }
        let (alen, blen) = (a.coeffs().len(), b.coeffs().len());
        if alen.min(blen) >= NTT_MUL_THRESHOLD {
            let k = ceil_log2(alen + blen - 1) as usize;
            if let Some(plan) = self.plans.get(k) {
                return plan.multiply(a, b);
            }
        }
        a.mul(&self.field, b)
    }

    /// Index of the plan covering `out_len`-coefficient products, when
    /// the modulus supports a transform that long.
    pub(crate) fn spectral_plan(&self, out_len: usize) -> Option<usize> {
        let k = ceil_log2(out_len.max(1)) as usize;
        if self.plans.get(k).is_some() {
            Some(k)
        } else {
            None
        }
    }

    /// Forward-transforms `p` under plan `k`. The returned [`Spectrum`]
    /// is the transform-sharing currency: a polynomial transformed once
    /// multiplies pointwise against every partner spectrum, so a matrix
    /// product pays one forward per distinct entry instead of one per
    /// product it appears in.
    pub(crate) fn spectrum(&self, p: &Poly, k: usize) -> Spectrum {
        let plan = &self.plans[k];
        let mut data = p.coeffs().to_vec();
        data.resize(plan.len(), 0);
        plan.forward_lazy_rev(&mut data);
        Spectrum { k, data }
    }

    /// `a·b` (plus `c·d` when given) back in the coefficient domain,
    /// truncated to `out_len` coefficients: one pointwise pass per
    /// product and a single inverse transform, against two full
    /// multiplies and an add pass. All spectra must come from plan `a.k`
    /// and both products must fit `out_len`.
    pub(crate) fn spectral_mul_add(
        &self,
        a: &Spectrum,
        b: &Spectrum,
        cd: Option<(&Spectrum, &Spectrum)>,
        out_len: usize,
    ) -> Poly {
        let plan = &self.plans[a.k];
        debug_assert!(out_len <= plan.len(), "product exceeds the shared transform length");
        let mut acc = a.data.clone();
        self.field.mul_slice(&mut acc, &b.data);
        if let Some((c, d)) = cd {
            debug_assert!(a.k == b.k && a.k == c.k && a.k == d.k, "mixed-plan spectra");
            self.field.mul_add_slice(&mut acc, &c.data, &d.data);
        }
        plan.inverse_from_rev(&mut acc);
        acc.truncate(out_len);
        Poly::from_reduced(acc)
    }

    /// Plan index for transform-sharing a family of products: engages
    /// only when *every* operand clears the NTT threshold (short
    /// operands multiply faster classically) and a plan covers the
    /// longest product. `None` means the caller should fall back to its
    /// [`MulContext::mul`]-based formula.
    pub(crate) fn shared_plan(&self, operand_lens: &[usize], out_len: usize) -> Option<usize> {
        if operand_lens.iter().all(|&l| l >= NTT_MUL_THRESHOLD) {
            self.spectral_plan(out_len)
        } else {
            None
        }
    }

    /// `a·b + c·d` with shared transforms (4 forwards + 1 inverse
    /// instead of 4 + 2 and an add pass) when the spectral route
    /// applies, falling back to two [`MulContext::mul`]s otherwise.
    /// Bit-identical either way: the arithmetic is exact mod `q`.
    pub(crate) fn mul2_add(&self, a: &Poly, b: &Poly, c: &Poly, d: &Poly) -> Poly {
        let lens = [a, b, c, d].map(|p| p.coeffs().len());
        let out_len = (lens[0] + lens[1]).max(lens[2] + lens[3]).saturating_sub(1);
        if let Some(k) = self.shared_plan(&lens, out_len) {
            let (sa, sb) = (self.spectrum(a, k), self.spectrum(b, k));
            let (sc, sd) = (self.spectrum(c, k), self.spectrum(d, k));
            return self.spectral_mul_add(&sa, &sb, Some((&sc, &sd)), out_len);
        }
        self.mul(a, b).add(&self.field, &self.mul(c, d))
    }
}

/// The frequency-domain image of a polynomial under the plan of index
/// `k` in a [`MulContext`]: `forward_lazy_rev` output — bit-reversed
/// order, lazy `[0, 2q)` values — consumable by the order-agnostic
/// pointwise slice kernels.
pub(crate) struct Spectrum {
    k: usize,
    data: Vec<u64>,
}

/// Maximum number of wrapped-around coefficients [`low_product`]
/// corrects by direct convolution; past this the next transform size is
/// cheaper than the scalar correction.
const WRAP_CORRECT_MAX: usize = 64;

/// The low `m` coefficients of `a·b` — `mul(a, b).truncated(m)` — with
/// one transform-size reduction where it matters: when the full product
/// length only *just* exceeds the power of two covering the operands
/// (the systematic shape in Newton division, where operand lengths sit a
/// few coefficients past `2^k`), the plain product pays for a `2^(k+1)`
/// transform to carry a handful of top coefficients. Instead, multiply
/// cyclically at `2^k` and repair the few low coefficients polluted by
/// the wrap-around with a direct `O(wrapped²)` convolution of the
/// operand tops. Bit-identical to the plain truncated product (exact
/// arithmetic mod `q`; the true coefficients are unique).
fn low_product(ctx: &MulContext, a: &Poly, b: &Poly, m: usize) -> Poly {
    let (alen, blen) = (a.coeffs().len(), b.coeffs().len());
    if alen == 0 || blen == 0 {
        return Poly::zero();
    }
    let full = alen + blen - 1;
    let n = alen.max(blen).max(m).next_power_of_two();
    let wrapped = full.saturating_sub(n);
    if wrapped == 0 || wrapped > WRAP_CORRECT_MAX || alen.min(blen) < NTT_MUL_THRESHOLD {
        return ctx.mul(a, b).truncated(m);
    }
    let Some(k) = ctx.spectral_plan(n) else {
        return ctx.mul(a, b).truncated(m);
    };
    let sa = ctx.spectrum(a, k);
    let sb = ctx.spectrum(b, k);
    let mut w = ctx.spectral_mul_add(&sa, &sb, None, n).into_coeffs();
    w.resize(n, 0);
    // Coefficient `n + j` of the true product wrapped onto `w[j]`;
    // recompute it directly from the operand tops and subtract.
    let f = ctx.field();
    let (ac, bc) = (a.coeffs(), b.coeffs());
    for (j, wj) in w.iter_mut().enumerate().take(wrapped) {
        let cj = n + j;
        let lo = cj + 1 - blen;
        let hi = alen - 1;
        let mut s = 0u64;
        for i in lo..=hi {
            s = f.mul_add(s, ac[i], bc[cj - i]);
        }
        *wj = f.sub(*wj, s);
    }
    w.truncate(m);
    Poly::from_reduced(w)
}

/// `a - q·b` when the difference is known to have degree below `db` —
/// the remainder of an exact Euclidean division. The product is needed
/// only modulo `x^N - 1` for any `N > deg r`, so fold `q`, `b`, and `a`
/// into the smallest transform covering `db` and multiply cyclically —
/// typically a quarter of the full linear product's transform work.
/// `None` when the cyclic route does not apply (short operands, no
/// plan); bit-identical to the linear formula otherwise (the remainder
/// is unique and its degree bound is a theorem, not a guess).
fn cyclic_remainder(ctx: &MulContext, a: &Poly, q: &Poly, b: &Poly, db: usize) -> Option<Poly> {
    let n = db.max(1).next_power_of_two();
    if q.coeffs().len().min(b.coeffs().len()) < NTT_MUL_THRESHOLD {
        return None;
    }
    // Only profitable when the fold actually shrinks the transform.
    if n >= (q.coeffs().len() + b.coeffs().len() - 1).next_power_of_two() {
        return None;
    }
    let k = ctx.spectral_plan(n)?;
    let field = ctx.field();
    let fold = |p: &Poly| {
        let mut out = vec![0u64; n];
        for (i, &c) in p.coeffs().iter().enumerate() {
            let slot = i % n;
            out[slot] = field.add(out[slot], c);
        }
        Poly::from_reduced(out)
    };
    let sq = ctx.spectrum(&fold(q), k);
    let sb = ctx.spectrum(&fold(b), k);
    let qb = ctx.spectral_mul_add(&sq, &sb, None, n);
    Some(fold(a).sub(field, &qb))
}

/// Power-series inverse of `f` modulo `x^n` by Newton iteration with
/// the middle-product refinement: since `g` entering a step *is* the
/// unique inverse mod `x^p`, the product `f·g mod x^k` is `1` in its
/// low `p` coefficients, so `g·(2 − fg) mod x^k` collapses to
/// `g − x^p·(g·e mod x^{k−p})` with `e` the coefficients `[p, k)` of
/// `f·g` — two products at half the naive step's operand sizes, both
/// routed through [`low_product`] (transform-size-exact, shared cached
/// plans). Bit-identical to the textbook step: the inverse series mod
/// `x^k` is unique.
///
/// `f.coeff(0)` must be invertible (nonzero).
fn inv_series(ctx: &MulContext, f: &Poly, n: usize) -> Poly {
    let field = &ctx.field;
    let mut g = Poly::constant(field.inv(f.coeff(0)));
    let mut k = 1usize;
    while k < n {
        let p = k;
        k = (2 * k).min(n);
        let f_k = f.truncated(k);
        let fg = low_product(ctx, &f_k, &g, k);
        let fgc = fg.coeffs();
        debug_assert!(
            fgc.first().is_none_or(|&c| c == 1) && fgc.iter().take(p).skip(1).all(|&c| c == 0),
            "Newton invariant violated: f·g must be 1 mod x^p"
        );
        let e = Poly::from_reduced(fgc.iter().skip(p).copied().collect());
        if e.is_zero() {
            // g is already exact to the higher precision.
            continue;
        }
        let delta = low_product(ctx, &g, &e, k - p);
        let mut coeffs = g.coeffs().to_vec();
        coeffs.resize(p, 0);
        coeffs.extend(delta.coeffs().iter().map(|&c| field.neg(c)));
        g = Poly::from_reduced(coeffs);
    }
    g
}

/// Euclidean division `(quotient, remainder)` dispatching to Newton
/// iteration past [`FAST_DIV_THRESHOLD`], classical [`Poly::div_rem`]
/// below it.
///
/// # Panics
///
/// Panics if `b` is the zero polynomial.
pub(crate) fn div_rem_ctx(ctx: &MulContext, a: &Poly, b: &Poly) -> (Poly, Poly) {
    let db = b.degree().expect("polynomial division by zero");
    let Some(da) = a.degree() else {
        return (Poly::zero(), Poly::zero());
    };
    if da < db {
        return (Poly::zero(), a.clone());
    }
    if b.coeffs().len() < FAST_DIV_THRESHOLD {
        return a.div_rem(&ctx.field, b);
    }
    let n_q = da - db + 1;
    // rev(a) = rev(b) · rev(q) mod x^{n_q}, so q is the length-n_q
    // reversal of rev(a) · rev(b)^{-1}.
    let inv_rb = inv_series(ctx, &b.reversed(db + 1), n_q);
    let ra = a.reversed(da + 1).truncated(n_q);
    let q = low_product(ctx, &ra, &inv_rb, n_q).reversed(n_q);
    // r = a - q·b has degree < db, so the product is needed only modulo
    // x^N - 1 for the smallest transform N covering db.
    let r =
        cyclic_remainder(ctx, a, &q, b, db).unwrap_or_else(|| a.sub(&ctx.field, &ctx.mul(&q, b)));
    debug_assert!(r.degree().is_none_or(|dr| dr < db), "fast division remainder too large");
    (q, r)
}

/// Euclidean division `(quotient, remainder)` through the cached-plan
/// fast path: Newton inverse-series division with NTT products past the
/// internal thresholds, classical [`Poly::div_rem`] below them.
/// Bit-identical to the classical routine (the field quotient and
/// remainder are unique) — a drop-in replacement for long divisions on
/// hot paths such as the Gao decoder's `g / v` step.
///
/// # Panics
///
/// Panics if `b` is the zero polynomial.
#[must_use]
pub fn div_rem_fast(field: &PrimeField, a: &Poly, b: &Poly) -> (Poly, Poly) {
    let ctx = MulContext::new(field, a.coeffs().len() + 2);
    div_rem_ctx(&ctx, a, b)
}

/// Quotient of `l` by the linear factor `(x - xi)` via synthetic
/// division, discarding the remainder (exact when `xi` is a root of `l`).
fn synthetic_div_linear(field: &PrimeField, l: &Poly, xi: u64) -> Poly {
    let cs = l.coeffs();
    debug_assert!(cs.len() > 1, "dividend must have positive degree");
    let d = cs.len() - 1;
    let mut out = vec![0u64; d];
    let mut acc = 0u64;
    // lint:hot-begin(synthetic-division) — one fused mul-add per
    // coefficient; the erasure-root divisions in decode run through here.
    for k in (0..d).rev() {
        acc = field.mul_add(cs[k + 1], acc, xi);
        out[k] = acc;
    }
    // lint:hot-end
    Poly::from_reduced(out)
}

/// A subproduct tree over a list of (reduced, distinct-or-not) points:
/// level 0 holds the products `Π (x - x_i)` over [`LEAF_SIZE`]-point
/// chunks, and each higher level pairwise-multiplies the one below (an
/// odd tail node is carried up unchanged). The root is the vanishing
/// polynomial of the whole point set.
struct SubproductTree {
    points: Vec<u64>,
    /// Start index (into `points`) of each level-0 leaf chunk. Uniform
    /// [`LEAF_SIZE`] chunks for a freshly built tree; a punctured tree
    /// keeps its parent's chunk partition minus the erased points, so
    /// chunk sizes vary (and may reach zero — such a leaf holds the
    /// empty product, the constant 1).
    leaf_starts: Vec<usize>,
    levels: Vec<Vec<Poly>>,
}

impl SubproductTree {
    fn build(ctx: &MulContext, points: &[u64]) -> Self {
        debug_assert!(!points.is_empty(), "subproduct tree needs at least one point");
        let field = &ctx.field;
        let leaf_starts: Vec<usize> = (0..points.len()).step_by(LEAF_SIZE).collect();
        let leaves: Vec<Poly> = points
            .chunks(LEAF_SIZE)
            .map(|chunk| {
                let mut g = Poly::constant(1);
                for &x in chunk {
                    g = g.mul(field, &Poly::from_reduced(vec![field.neg(x), 1]));
                }
                g
            })
            .collect();
        let workers = plan_workers(points.len());
        let mut levels = vec![leaves];
        while levels.last().expect("nonempty tree").len() > 1 {
            let prev = levels.last().expect("nonempty tree");
            let pairs: Vec<&[Poly]> = prev.chunks(2).collect();
            let product = |pair: &[Poly]| {
                if let [l, r] = pair {
                    ctx.mul(l, r)
                } else {
                    pair[0].clone()
                }
            };
            // Pair products within a level are independent; split them
            // into contiguous groups across scoped threads, one group
            // per worker, and re-concatenate in order — the level is
            // position-for-position what the sequential build produces.
            let next: Vec<Poly> = if workers >= 2 && pairs.len() >= 2 * workers {
                let group = pairs.len().div_ceil(workers);
                std::thread::scope(|s| {
                    let handles: Vec<_> = pairs
                        .chunks(group)
                        .map(|g| s.spawn(move || g.iter().map(|p| product(p)).collect::<Vec<_>>()))
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| match h.join() {
                            Ok(v) => v,
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect()
                })
            } else {
                pairs.iter().map(|p| product(p)).collect()
            };
            levels.push(next);
        }
        SubproductTree { points: points.to_vec(), leaf_starts, levels }
    }

    /// The vanishing polynomial `Π_i (x - x_i)`.
    fn root(&self) -> &Poly {
        &self.levels.last().expect("nonempty tree")[0]
    }

    fn top_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// Point-index bounds `[start, end)` of leaf `idx`.
    fn leaf_bounds(&self, idx: usize) -> (usize, usize) {
        let start = self.leaf_starts[idx];
        let end = self.leaf_starts.get(idx + 1).copied().unwrap_or(self.points.len());
        (start, end)
    }

    /// The chunk of points owned by leaf `idx`.
    fn leaf_points(&self, idx: usize) -> &[u64] {
        let (start, end) = self.leaf_bounds(idx);
        &self.points[start..end]
    }

    /// Number of points below node `(level, idx)`.
    fn count_points(&self, level: usize, idx: usize) -> usize {
        let nleaves = self.leaf_starts.len();
        let lo = idx << level;
        let hi = ((idx + 1) << level).min(nleaves);
        let start = self.leaf_starts[lo];
        let end = if hi == nleaves { self.points.len() } else { self.leaf_starts[hi] };
        end - start
    }
}

/// Point count at or above which a consumer holding a point set for
/// repeated use (e.g. a Reed–Solomon code) should build and keep a
/// [`PointTree`]: the tree is being built for the vanishing polynomial
/// anyway past this size, so caching it is free.
pub const TREE_CACHE_CROSSOVER: usize = VANISH_CROSSOVER;

/// A reusable subproduct tree over a fixed point set, with memoized
/// per-node inverse series (the Newton-division scaffolding of every
/// tree descent) and Lagrange weights. Callers that evaluate or
/// interpolate over the *same* points repeatedly — a Reed–Solomon code
/// encodes, re-encodes, and interpolates per decode, at every deciding
/// node — pay the tree construction once instead of per call.
///
/// All entry points apply exactly the crossover dispatch of
/// [`eval_many_fast`] / [`interpolate_fast`] and return bit-identical
/// results; the cache only removes rebuilding.
pub struct PointTree {
    ctx: MulContext,
    tree: SubproductTree,
    /// Per `(level, idx)` memo of the inverse series of the node
    /// polynomial reversed, to the maximum precision any descent
    /// division against the node can need (its sibling's degree).
    inv: Vec<Vec<OnceLock<Poly>>>,
    /// Inverted Lagrange denominators `1 / M'(x_i)`.
    weights: OnceLock<Vec<u64>>,
}

impl std::fmt::Debug for PointTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PointTree({} points mod {})", self.len(), self.ctx.field.modulus())
    }
}

impl PointTree {
    /// Builds the tree over `points` (reduced mod `q`; need not be
    /// distinct — interpolation will reject duplicates, evaluation does
    /// not care).
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    #[must_use]
    pub fn new(field: &PrimeField, points: &[u64]) -> Self {
        let reduced: Vec<u64> = points.iter().map(|&x| field.reduce(x)).collect();
        let ctx = MulContext::new(field, reduced.len() + 1);
        Self::with_ctx(ctx, reduced)
    }

    /// Builds over already-reduced points with a caller-supplied
    /// multiplication strategy.
    fn with_ctx(ctx: MulContext, reduced: Vec<u64>) -> Self {
        let tree = SubproductTree::build(&ctx, &reduced);
        let inv = tree
            .levels
            .iter()
            .map(|level| level.iter().map(|_| OnceLock::new()).collect())
            .collect();
        PointTree { ctx, tree, inv, weights: OnceLock::new() }
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tree.points.len()
    }

    /// True when the tree holds no points (never constructible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tree.points.is_empty()
    }

    /// The (reduced) points.
    #[must_use]
    pub fn points(&self) -> &[u64] {
        &self.tree.points
    }

    /// The modulus the tree was built over.
    #[must_use]
    pub fn modulus(&self) -> u64 {
        self.ctx.field.modulus()
    }

    /// The vanishing polynomial `Π_i (x - x_i)` (the tree root).
    #[must_use]
    pub fn vanishing(&self) -> &Poly {
        self.tree.root()
    }

    /// The tree over this tree's points minus the erased indices,
    /// reusing every node — polynomial *and* memoized inverse series —
    /// whose span contains no erasure; only the spine above touched
    /// leaves is remultiplied. Erasure decoding punctures the same full
    /// tree every round, so this turns the per-decode rebuild into
    /// `O(M(n))` work on the dirty spine (and a cache of punctured trees
    /// turns repeats into a lookup).
    ///
    /// The result evaluates and interpolates bit-identically to a tree
    /// freshly built over the surviving points: every node is the
    /// product of the same linear factors in exact field arithmetic, so
    /// association order cannot change any value. In particular
    /// [`Self::vanishing`] of the result *is*
    /// `vanishing_poly(field, surviving)`.
    ///
    /// # Panics
    ///
    /// Panics if `erased` is not strictly increasing, indexes out of
    /// range, or covers every point.
    #[must_use]
    pub fn punctured(&self, erased: &[usize]) -> PointTree {
        assert!(
            erased.windows(2).all(|w| w[0] < w[1]),
            "erasure indices must be strictly increasing"
        );
        assert!(erased.last().is_none_or(|&i| i < self.len()), "erasure index out of range");
        assert!(erased.len() < self.len(), "cannot erase every point");
        let field = self.ctx.field();
        let old = &self.tree;
        let nleaves = old.leaf_starts.len();
        let mut points = Vec::with_capacity(self.len() - erased.len());
        let mut leaf_starts = Vec::with_capacity(nleaves);
        let mut leaves = Vec::with_capacity(nleaves);
        let mut dirty = Vec::with_capacity(nleaves);
        let mut e = 0usize;
        for idx in 0..nleaves {
            let (lo, hi) = old.leaf_bounds(idx);
            leaf_starts.push(points.len());
            let erased_before = e;
            for i in lo..hi {
                if erased.get(e) == Some(&i) {
                    e += 1;
                } else {
                    points.push(old.points[i]);
                }
            }
            if e == erased_before {
                dirty.push(false);
                leaves.push(old.levels[0][idx].clone());
            } else {
                dirty.push(true);
                let mut g = Poly::constant(1);
                for &x in &points[leaf_starts[idx]..] {
                    g = g.mul(field, &Poly::from_reduced(vec![field.neg(x), 1]));
                }
                leaves.push(g);
            }
        }
        debug_assert_eq!(e, erased.len(), "every erasure index consumed");
        // Rebuild upward, but only above dirty children; the punctured
        // tree has the same leaf count and pairing as its parent, so
        // clean nodes are position-for-position clones.
        let mut levels = vec![leaves];
        let mut dirt = vec![dirty];
        while levels.last().expect("nonempty tree").len() > 1 {
            let (next, next_dirty) = {
                let prev = levels.last().expect("nonempty tree");
                let prev_dirty = dirt.last().expect("nonempty tree");
                let lvl = levels.len();
                let n = prev.len().div_ceil(2);
                let mut next = Vec::with_capacity(n);
                let mut next_dirty = Vec::with_capacity(n);
                for j in 0..n {
                    let (li, ri) = (2 * j, 2 * j + 1);
                    if ri >= prev.len() {
                        next.push(prev[li].clone());
                        next_dirty.push(prev_dirty[li]);
                    } else if prev_dirty[li] || prev_dirty[ri] {
                        next.push(self.ctx.mul(&prev[li], &prev[ri]));
                        next_dirty.push(true);
                    } else {
                        next.push(old.levels[lvl][j].clone());
                        next_dirty.push(false);
                    }
                }
                (next, next_dirty)
            };
            levels.push(next);
            dirt.push(next_dirty);
        }
        // A clean node's memoized inverse series carries over: it
        // depends only on the node polynomial and its precision, and the
        // old precision (the old sibling degree) can only shrink under
        // puncturing, so a longer memo truncates to the new need.
        let inv: Vec<Vec<OnceLock<Poly>>> = dirt
            .iter()
            .enumerate()
            .map(|(lvl, flags)| {
                flags
                    .iter()
                    .enumerate()
                    .map(
                        |(j, &is_dirty)| {
                            if is_dirty {
                                OnceLock::new()
                            } else {
                                self.inv[lvl][j].clone()
                            }
                        },
                    )
                    .collect()
            })
            .collect();
        PointTree {
            ctx: self.ctx.clone(),
            tree: SubproductTree { points, leaf_starts, levels },
            inv,
            weights: OnceLock::new(),
        }
    }

    /// Evaluates `poly` at every point — identical dispatch and output
    /// to [`eval_many_fast`], reusing the cached tree when the tree
    /// path engages.
    #[must_use]
    pub fn eval_many(&self, poly: &Poly) -> Vec<u64> {
        let n = self.len();
        let lg = ceil_log2(n.max(2)) as usize;
        if n < EVAL_MIN_POINTS
            || poly.coeffs().len() < EVAL_DEGREE_FACTOR * lg * lg
            || !tree_pays_off(&self.ctx, n, EVAL_MIN_POINTS)
        {
            return eval_many(&self.ctx.field, poly, self.points());
        }
        self.eval_core(poly)
    }

    /// Interpolates the unique polynomial of degree `< n` with
    /// `value[i]` at point `i` — identical dispatch and output to
    /// [`interpolate_fast`], reusing the cached tree and Lagrange
    /// weights when the tree path engages.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not point-count-sized or two points share
    /// an abscissa (mod `q`).
    #[must_use]
    pub fn interpolate(&self, values: &[u64]) -> Poly {
        assert_eq!(values.len(), self.len(), "one value per point");
        let n = self.len();
        if n < INTERP_CROSSOVER_NTT || !tree_pays_off(&self.ctx, n, INTERP_CROSSOVER_NTT) {
            let pts: Vec<(u64, u64)> =
                self.points().iter().copied().zip(values.iter().copied()).collect();
            return interpolate(&self.ctx.field, &pts);
        }
        self.interpolate_core(values)
    }

    /// The tree descent without crossover dispatch.
    fn eval_core(&self, poly: &Poly) -> Vec<u64> {
        let n = self.len();
        // Reduce once modulo the vanishing polynomial; a no-op whenever
        // deg poly < n (always true for Reed–Solomon encoding).
        let rem = if poly.degree().is_some_and(|d| d >= n) {
            div_rem_ctx(&self.ctx, poly, self.tree.root()).1
        } else {
            poly.clone()
        };
        self.eval_down_collect(&rem, self.tree.top_level(), 0, plan_workers(n))
    }

    /// Tree interpolation without crossover dispatch.
    fn interpolate_core(&self, values: &[u64]) -> Poly {
        let field = &self.ctx.field;
        let weights = self.lagrange_weights();
        let c: Vec<u64> =
            values.iter().zip(weights).map(|(&y, &w)| field.mul(field.reduce(y), w)).collect();
        self.combine_up_par(&c, self.tree.top_level(), 0, plan_workers(self.len()))
    }

    /// `1 / M'(x_i)` per point, computed once per tree.
    ///
    /// # Panics
    ///
    /// Panics if two points coincide (a Lagrange denominator vanishes).
    fn lagrange_weights(&self) -> &[u64] {
        self.weights.get_or_init(|| {
            let field = &self.ctx.field;
            // M' has degree n - 1 < n, so it is already reduced modulo
            // the root and descends directly.
            let m_prime = self.tree.root().derivative(field);
            let mut weights = self.eval_down_collect(
                &m_prime,
                self.tree.top_level(),
                0,
                plan_workers(self.len()),
            );
            assert!(
                weights.iter().all(|&w| w != 0),
                "interpolation points must be distinct (mod q)"
            );
            field.inv_batch_blocked(&mut weights);
            weights
        })
    }

    /// The maximum quotient length any in-tree division against node
    /// `(level, idx)` can need: descents divide a remainder of degree
    /// below the parent's, so the quotient length is bounded by the
    /// sibling's degree. Zero when the node has no sibling (carried-up
    /// odd nodes are never divisors).
    fn max_quotient_len(&self, level: usize, idx: usize) -> usize {
        let sibling = idx ^ 1;
        match self.tree.levels[level].get(sibling) {
            Some(poly) => poly.degree().unwrap_or(0),
            None => 0,
        }
    }

    /// The inverse series of the reversed node polynomial, memoized at
    /// the node's maximum useful precision.
    fn node_inv(&self, level: usize, idx: usize) -> &Poly {
        self.inv[level][idx].get_or_init(|| {
            let b = &self.tree.levels[level][idx];
            let db = b.degree().expect("tree node polynomials are nonzero");
            inv_series(&self.ctx, &b.reversed(db + 1), self.max_quotient_len(level, idx))
        })
    }

    /// Euclidean division of `a` by tree node `(level, idx)`, through
    /// the memoized inverse series when Newton division engages.
    /// Bit-identical to [`div_rem_ctx`] (the inverse series mod `x^k`
    /// is unique, so a truncated longer series is the series).
    fn div_rem_node(&self, a: &Poly, level: usize, idx: usize) -> (Poly, Poly) {
        let b = &self.tree.levels[level][idx];
        let db = b.degree().expect("tree node polynomials are nonzero");
        let Some(da) = a.degree() else {
            return (Poly::zero(), Poly::zero());
        };
        if da < db {
            return (Poly::zero(), a.clone());
        }
        if b.coeffs().len() < FAST_DIV_THRESHOLD {
            return a.div_rem(&self.ctx.field, b);
        }
        let n_q = da - db + 1;
        if n_q > self.max_quotient_len(level, idx) {
            return div_rem_ctx(&self.ctx, a, b);
        }
        let inv_rb = self.node_inv(level, idx).truncated(n_q);
        let ra = a.reversed(da + 1).truncated(n_q);
        let q = low_product(&self.ctx, &ra, &inv_rb, n_q).reversed(n_q);
        let r = cyclic_remainder(&self.ctx, a, &q, b, db)
            .unwrap_or_else(|| a.sub(&self.ctx.field, &self.ctx.mul(&q, b)));
        debug_assert!(r.degree().is_none_or(|dr| dr < db), "cached division remainder too large");
        (q, r)
    }

    /// Pushes `rem(x_i)` for every point below node `(level, idx)`, in
    /// point order. `rem` must already be reduced modulo the node's
    /// polynomial.
    fn eval_down(&self, rem: &Poly, level: usize, idx: usize, out: &mut Vec<u64>) {
        if level == 0 {
            for &x in self.tree.leaf_points(idx) {
                out.push(rem.eval(&self.ctx.field, x));
            }
            return;
        }
        let child = level - 1;
        let (li, ri) = (2 * idx, 2 * idx + 1);
        if ri >= self.tree.levels[child].len() {
            self.eval_down(rem, child, li, out);
            return;
        }
        let (_, rl) = self.div_rem_node(rem, child, li);
        let (_, rr) = self.div_rem_node(rem, child, ri);
        self.eval_down(&rl, child, li, out);
        self.eval_down(&rr, child, ri, out);
    }

    /// [`Self::eval_down`] with budget-halving scoped-thread splitting:
    /// the two child descents run on separate threads while the budget
    /// and the points below the node stay above the parallel gates. The
    /// left results are concatenated before the right, so output order —
    /// and every value, the arithmetic being identical — matches the
    /// sequential descent exactly.
    fn eval_down_collect(&self, rem: &Poly, level: usize, idx: usize, budget: usize) -> Vec<u64> {
        let count = self.tree.count_points(level, idx);
        if level == 0 || budget < 2 || count < crate::par::par_crossover().max(2) {
            let mut out = Vec::with_capacity(count);
            self.eval_down(rem, level, idx, &mut out);
            return out;
        }
        let child = level - 1;
        let (li, ri) = (2 * idx, 2 * idx + 1);
        if ri >= self.tree.levels[child].len() {
            return self.eval_down_collect(rem, child, li, budget);
        }
        let (_, rl) = self.div_rem_node(rem, child, li);
        let (_, rr) = self.div_rem_node(rem, child, ri);
        let (lb, rb) = (budget - budget / 2, budget / 2);
        let (mut left, right) = join2(
            true,
            || self.eval_down_collect(&rl, child, li, lb),
            || self.eval_down_collect(&rr, child, ri, rb),
        );
        left.extend_from_slice(&right);
        left
    }

    /// The linear combination `Σ_i c_i · Π_{j≠i} (x - x_j)` over the
    /// points below node `(level, idx)`, where `c` covers exactly those
    /// points — the combination step of fast Lagrange interpolation.
    fn combine_up(&self, c: &[u64], level: usize, idx: usize) -> Poly {
        let field = &self.ctx.field;
        if level == 0 {
            let leaf = &self.tree.levels[0][idx];
            let mut acc = Poly::zero();
            for (i, &xi) in self.tree.leaf_points(idx).iter().enumerate() {
                let partial = synthetic_div_linear(field, leaf, xi).scale(field, c[i]);
                acc = acc.add(field, &partial);
            }
            return acc;
        }
        let child = level - 1;
        let (li, ri) = (2 * idx, 2 * idx + 1);
        if ri >= self.tree.levels[child].len() {
            return self.combine_up(c, child, li);
        }
        let (cl, cr) = c.split_at(self.tree.count_points(child, li));
        let left = self.combine_up(cl, child, li);
        let right = self.combine_up(cr, child, ri);
        self.ctx.mul2_add(&left, &self.tree.levels[child][ri], &right, &self.tree.levels[child][li])
    }

    /// [`Self::combine_up`] with budget-halving scoped-thread splitting,
    /// mirroring [`Self::eval_down_collect`]; the cross product at each
    /// joined node runs through the transform-shared
    /// [`MulContext::mul2_add`], exactly as the sequential combine does.
    fn combine_up_par(&self, c: &[u64], level: usize, idx: usize, budget: usize) -> Poly {
        let count = self.tree.count_points(level, idx);
        if level == 0 || budget < 2 || count < crate::par::par_crossover().max(2) {
            return self.combine_up(c, level, idx);
        }
        let child = level - 1;
        let (li, ri) = (2 * idx, 2 * idx + 1);
        if ri >= self.tree.levels[child].len() {
            return self.combine_up_par(c, child, li, budget);
        }
        let (cl, cr) = c.split_at(self.tree.count_points(child, li));
        let (lb, rb) = (budget - budget / 2, budget / 2);
        let (left, right) = join2(
            true,
            || self.combine_up_par(cl, child, li, lb),
            || self.combine_up_par(cr, child, ri, rb),
        );
        self.ctx.mul2_add(&left, &self.tree.levels[child][ri], &right, &self.tree.levels[child][li])
    }
}

/// True when the tree machinery should be used for `n` points with the
/// given context: past the supplied NTT crossover when transforms cover
/// the products, past the (much larger) Karatsuba crossover otherwise.
fn tree_pays_off(ctx: &MulContext, n: usize, ntt_crossover: usize) -> bool {
    if ctx.covers_max {
        n >= ntt_crossover
    } else {
        n >= TREE_CROSSOVER_KARATSUBA
    }
}

/// Subproduct-tree evaluation with no crossover dispatch (testable
/// directly at any size); builds a transient [`PointTree`].
fn eval_many_tree(ctx: &MulContext, poly: &Poly, xs: &[u64]) -> Vec<u64> {
    let field = &ctx.field;
    let reduced: Vec<u64> = xs.iter().map(|&x| field.reduce(x)).collect();
    PointTree::with_ctx(ctx.clone(), reduced).eval_core(poly)
}

/// Subproduct-tree interpolation with no crossover dispatch (testable
/// directly at any size); builds a transient [`PointTree`].
fn interpolate_tree(ctx: &MulContext, points: &[(u64, u64)]) -> Poly {
    let field = &ctx.field;
    let xs: Vec<u64> = points.iter().map(|&(x, _)| field.reduce(x)).collect();
    let ys: Vec<u64> = points.iter().map(|&(_, y)| y).collect();
    PointTree::with_ctx(ctx.clone(), xs).interpolate_core(&ys)
}

/// Evaluates `poly` at each point in `O(M(n) log n)` via a subproduct
/// tree, falling back to Horner-per-point ([`eval_many`]) below the
/// crossover size (where quadratic work wins on constants).
///
/// Always returns exactly what [`eval_many`] returns.
#[must_use]
pub fn eval_many_fast(field: &PrimeField, poly: &Poly, xs: &[u64]) -> Vec<u64> {
    let n = xs.len();
    let lg = ceil_log2(n.max(2)) as usize;
    if n < EVAL_MIN_POINTS || poly.coeffs().len() < EVAL_DEGREE_FACTOR * lg * lg {
        return eval_many(field, poly, xs);
    }
    let ctx = MulContext::new(field, n.max(poly.coeffs().len()) + 1);
    if !tree_pays_off(&ctx, n, EVAL_MIN_POINTS) {
        return eval_many(field, poly, xs);
    }
    eval_many_tree(&ctx, poly, xs)
}

/// Interpolates the unique polynomial of degree `< points.len()` through
/// the given `(x, y)` pairs in `O(M(n) log n)` via a subproduct tree
/// (Lagrange weights from the derivative of the vanishing polynomial),
/// falling back to Newton interpolation ([`interpolate`]) below the
/// crossover size.
///
/// Always returns exactly what [`interpolate`] returns.
///
/// # Panics
///
/// Panics if two points share an abscissa (mod `q`).
#[must_use]
pub fn interpolate_fast(field: &PrimeField, points: &[(u64, u64)]) -> Poly {
    let n = points.len();
    if n < INTERP_CROSSOVER_NTT {
        return interpolate(field, points);
    }
    let ctx = MulContext::new(field, n + 1);
    if !tree_pays_off(&ctx, n, INTERP_CROSSOVER_NTT) {
        return interpolate(field, points);
    }
    interpolate_tree(&ctx, points)
}

/// `Π_i (x - x_i)`, by subproduct tree past the crossover size and by
/// incremental multiplication below it.
#[must_use]
pub fn vanishing_poly(field: &PrimeField, points: &[u64]) -> Poly {
    let reduced: Vec<u64> = points.iter().map(|&x| field.reduce(x)).collect();
    if reduced.len() >= VANISH_CROSSOVER {
        let ctx = MulContext::new(field, reduced.len() + 1);
        return SubproductTree::build(&ctx, &reduced).root().clone();
    }
    let mut g = Poly::constant(1);
    for &x in &reduced {
        g = g.mul(field, &Poly::from_reduced(vec![field.neg(x), 1]));
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use camelot_ff::{ntt_prime, RngLike, SplitMix64};

    fn ntt_field() -> PrimeField {
        // 2^14-smooth prime: full NTT coverage for every size used here.
        let (q, _) = ntt_prime(1 << 20, 14);
        PrimeField::new(q).unwrap()
    }

    fn plain_field() -> PrimeField {
        // 1e9+7 has two-adicity 1: every tree product falls back to
        // Karatsuba.
        PrimeField::new(1_000_000_007).unwrap()
    }

    fn random_poly(field: &PrimeField, deg: usize, rng: &mut SplitMix64) -> Poly {
        Poly::from_reduced(
            (0..=deg).map(|i| if i == deg { 1 } else { field.sample(rng) }).collect(),
        )
    }

    fn distinct_points(field: &PrimeField, n: usize, rng: &mut SplitMix64) -> Vec<u64> {
        let mut set = std::collections::BTreeSet::new();
        while set.len() < n {
            set.insert(field.sample(rng));
        }
        let mut v: Vec<u64> = set.into_iter().collect();
        // Shuffle so point order is unrelated to value order.
        for i in (1..v.len()).rev() {
            v.swap(i, (rng.next_u64() as usize) % (i + 1));
        }
        v
    }

    #[test]
    fn inv_series_is_inverse() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(21);
        let ctx = MulContext::new(&field, 1 << 10);
        for n in [1usize, 2, 7, 64, 200] {
            let mut f = random_poly(&field, 150, &mut rng);
            if f.coeff(0) == 0 {
                f = f.add(&field, &Poly::constant(1));
            }
            let g = inv_series(&ctx, &f, n);
            let prod = ctx.mul(&f, &g).truncated(n);
            assert_eq!(prod, Poly::constant(1), "f * f^-1 != 1 mod x^{n}");
        }
    }

    #[test]
    fn fast_division_matches_classical() {
        for field in [ntt_field(), plain_field()] {
            let mut rng = SplitMix64::new(22);
            let ctx = MulContext::new(&field, 1 << 10);
            for (da, db) in [(300usize, 40usize), (200, 200), (500, 33), (40, 100)] {
                let a = random_poly(&field, da, &mut rng);
                let b = random_poly(&field, db, &mut rng);
                let (qf, rf) = div_rem_ctx(&ctx, &a, &b);
                let (qc, rc) = a.div_rem(&field, &b);
                assert_eq!(qf, qc, "quotient for degrees {da}/{db}");
                assert_eq!(rf, rc, "remainder for degrees {da}/{db}");
            }
        }
    }

    /// Division shapes whose operand lengths straddle powers of two —
    /// the regime where [`low_product`] multiplies cyclically and
    /// repairs the wrapped coefficients, and [`cyclic_remainder`] folds
    /// the remainder product into a smaller transform (the Gao decode
    /// division `g / v` has exactly this shape). Exact divisions pin the
    /// `r = 0` path the decoder relies on.
    #[test]
    fn fast_division_matches_classical_at_power_of_two_boundaries() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(24);
        let ctx = MulContext::new(&field, 1 << 12);
        for (da, db) in [
            (769usize, 256usize), // n_q = 514: wrapped quotient product
            (768, 256),           // n_q = 513: single wrapped coefficient
            (1023, 255),          // no wrap, cyclic remainder at 256
            (1025, 513),          // both lengths just past a power of two
            (511, 257),           // quotient shorter than the divisor
        ] {
            let a = random_poly(&field, da, &mut rng);
            let b = random_poly(&field, db, &mut rng);
            let (qf, rf) = div_rem_ctx(&ctx, &a, &b);
            let (qc, rc) = a.div_rem(&field, &b);
            assert_eq!((qf, rf), (qc, rc), "degrees {da}/{db}");
            // Exact division: the remainder must come out identically zero.
            let exact = ctx.mul(&b, &random_poly(&field, da - db, &mut rng));
            let (qe, re) = div_rem_ctx(&ctx, &exact, &b);
            assert!(re.is_zero(), "exact division left a remainder at {da}/{db}");
            assert_eq!(ctx.mul(&qe, &b), exact, "exact quotient reconstructs the dividend");
        }
    }

    /// The tree internals (no crossover dispatch) must match the Horner
    /// oracle at every size and shape, for NTT-friendly and unfriendly
    /// primes alike.
    #[test]
    fn eval_many_tree_matches_naive() {
        for (field, sizes) in [
            (ntt_field(), vec![(5usize, 100usize), (100, 70), (200, 300), (511, 600)]),
            (plain_field(), vec![(100, 80), (600, 600)]),
        ] {
            let mut rng = SplitMix64::new(23);
            for (deg, npts) in sizes {
                let poly = random_poly(&field, deg, &mut rng);
                let xs = distinct_points(&field, npts, &mut rng);
                let ctx = MulContext::new(&field, npts.max(deg + 1) + 1);
                assert_eq!(
                    eval_many_tree(&ctx, &poly, &xs),
                    eval_many(&field, &poly, &xs),
                    "deg {deg}, {npts} points, q = {}",
                    field.modulus()
                );
            }
        }
    }

    #[test]
    fn eval_many_tree_consecutive_points_and_high_degree() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(24);
        // Consecutive points (the Reed–Solomon schedule) and a dividend
        // whose degree exceeds the point count (forces the root
        // reduction).
        let xs: Vec<u64> = (0..257u64).collect();
        for deg in [80usize, 256, 700] {
            let poly = random_poly(&field, deg, &mut rng);
            let ctx = MulContext::new(&field, 257.max(deg + 1) + 1);
            assert_eq!(
                eval_many_tree(&ctx, &poly, &xs),
                eval_many(&field, &poly, &xs),
                "deg {deg}"
            );
        }
    }

    /// The public entry point must agree with the oracle on both sides of
    /// the crossover (naive below, tree above).
    #[test]
    fn eval_many_fast_matches_naive_across_crossover() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(28);
        for (deg, npts) in [(300usize, 400usize), (2100, 2150)] {
            let poly = random_poly(&field, deg, &mut rng);
            let xs: Vec<u64> = (0..npts as u64).collect();
            assert_eq!(
                eval_many_fast(&field, &poly, &xs),
                eval_many(&field, &poly, &xs),
                "deg {deg}, {npts} points"
            );
        }
    }

    #[test]
    fn interpolate_tree_matches_naive() {
        for (field, ns) in [(ntt_field(), vec![70usize, 129, 300]), (plain_field(), vec![600])] {
            let mut rng = SplitMix64::new(25);
            for n in ns {
                let xs = distinct_points(&field, n, &mut rng);
                let pts: Vec<(u64, u64)> =
                    xs.iter().map(|&x| (x, field.sample(&mut rng))).collect();
                let ctx = MulContext::new(&field, n + 1);
                assert_eq!(
                    interpolate_tree(&ctx, &pts),
                    interpolate(&field, &pts),
                    "{n} points, q = {}",
                    field.modulus()
                );
            }
        }
    }

    #[test]
    fn interpolate_fast_matches_naive_across_crossover() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(29);
        for n in [200usize, INTERP_CROSSOVER_NTT + 30] {
            let xs: Vec<u64> = (0..n as u64).collect();
            let pts: Vec<(u64, u64)> = xs.iter().map(|&x| (x, field.sample(&mut rng))).collect();
            assert_eq!(interpolate_fast(&field, &pts), interpolate(&field, &pts), "{n} points");
        }
    }

    #[test]
    fn interpolate_tree_roundtrips_evaluation() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(26);
        for n in [64usize, 200] {
            let poly = random_poly(&field, n - 1, &mut rng);
            let xs = distinct_points(&field, n, &mut rng);
            let ctx = MulContext::new(&field, n + 1);
            let ys = eval_many_tree(&ctx, &poly, &xs);
            let pts: Vec<(u64, u64)> = xs.iter().copied().zip(ys).collect();
            assert_eq!(interpolate_tree(&ctx, &pts), poly, "{n} points");
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn interpolate_tree_rejects_repeated_nodes() {
        let field = ntt_field();
        let mut pts: Vec<(u64, u64)> = (0..100u64).map(|x| (x, x + 1)).collect();
        pts[77] = (5, 99); // duplicate abscissa 5
        let ctx = MulContext::new(&field, pts.len() + 1);
        let _ = interpolate_tree(&ctx, &pts);
    }

    /// A kept [`PointTree`] must return the oracle answers on repeated
    /// evaluation and interpolation calls — the warm inverse-series and
    /// weight caches change nothing but the rebuild cost.
    #[test]
    fn point_tree_reuse_is_stable_and_matches_oracles() {
        for field in [ntt_field(), plain_field()] {
            let mut rng = SplitMix64::new(31);
            let n = 300;
            let xs = distinct_points(&field, n, &mut rng);
            let tree = PointTree::new(&field, &xs);
            assert_eq!(tree.len(), n);
            assert_eq!(tree.vanishing(), &vanishing_poly(&field, &xs));
            for deg in [40usize, 299, 500] {
                let poly = random_poly(&field, deg, &mut rng);
                let expect = eval_many(&field, &poly, &xs);
                // Twice: the second call runs on warm caches.
                assert_eq!(tree.eval_core(&poly), expect, "deg {deg} cold");
                assert_eq!(tree.eval_core(&poly), expect, "deg {deg} warm");
            }
            for trial in 0..2 {
                let ys: Vec<u64> = (0..n).map(|_| field.sample(&mut rng)).collect();
                let pts: Vec<(u64, u64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
                assert_eq!(tree.interpolate_core(&ys), interpolate(&field, &pts), "trial {trial}");
            }
        }
    }

    /// The gated public entry points must agree with the free-function
    /// dispatch on both sides of the crossovers.
    #[test]
    fn point_tree_dispatch_matches_free_functions() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(32);
        for (deg, n) in [(300usize, 400usize), (2100, 2150)] {
            let xs: Vec<u64> = (0..n as u64).collect();
            let tree = PointTree::new(&field, &xs);
            let poly = random_poly(&field, deg, &mut rng);
            assert_eq!(tree.eval_many(&poly), eval_many_fast(&field, &poly, &xs), "eval n={n}");
            let ys: Vec<u64> = (0..n).map(|_| field.sample(&mut rng)).collect();
            let pts: Vec<(u64, u64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
            assert_eq!(tree.interpolate(&ys), interpolate_fast(&field, &pts), "interp n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn point_tree_interpolation_rejects_repeated_nodes() {
        let field = ntt_field();
        let mut xs: Vec<u64> = (0..100).collect();
        xs[77] = 5; // duplicate abscissa 5
        let tree = PointTree::new(&field, &xs);
        let _ = tree.interpolate_core(&vec![1u64; 100]);
    }

    /// A punctured tree must be indistinguishable from a tree freshly
    /// built over the surviving points: same vanishing polynomial, same
    /// evaluations, same interpolation — for erasure patterns that leave
    /// chunks untouched, gut chunks entirely, and straddle chunk
    /// boundaries, on NTT-friendly and unfriendly moduli.
    #[test]
    fn punctured_tree_matches_fresh_tree() {
        for field in [ntt_field(), plain_field()] {
            let mut rng = SplitMix64::new(33);
            let n = 300; // ~10 leaves of LEAF_SIZE = 32
            let xs = distinct_points(&field, n, &mut rng);
            let tree = PointTree::new(&field, &xs);
            let patterns: Vec<Vec<usize>> = vec![
                vec![5],                     // one point, one dirty leaf
                (64..96).collect(),          // exactly one whole chunk
                vec![0, 31, 32, 63, 299],    // chunk boundaries + tail
                (0..n).step_by(7).collect(), // spread over every leaf
                (0..250).collect(),          // almost everything
            ];
            for erased in patterns {
                let survivors: Vec<u64> = xs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| erased.binary_search(i).is_err())
                    .map(|(_, &x)| x)
                    .collect();
                let punct = tree.punctured(&erased);
                assert_eq!(punct.len(), survivors.len());
                assert_eq!(punct.points(), &survivors[..], "{} erased", erased.len());
                assert_eq!(
                    punct.vanishing(),
                    &vanishing_poly(&field, &survivors),
                    "{} erased, q = {}",
                    erased.len(),
                    field.modulus()
                );
                let poly = random_poly(&field, survivors.len().saturating_sub(1).max(1), &mut rng);
                assert_eq!(
                    punct.eval_core(&poly),
                    eval_many(&field, &poly, &survivors),
                    "{} erased",
                    erased.len()
                );
                let ys: Vec<u64> = (0..survivors.len()).map(|_| field.sample(&mut rng)).collect();
                let pts: Vec<(u64, u64)> =
                    survivors.iter().copied().zip(ys.iter().copied()).collect();
                // Twice: the second interpolation runs on the punctured
                // tree's warm weight/inverse caches.
                assert_eq!(punct.interpolate_core(&ys), interpolate(&field, &pts));
                assert_eq!(punct.interpolate_core(&ys), interpolate(&field, &pts));
            }
        }
    }

    /// Puncturing composes: a punctured tree can itself be punctured
    /// (variable-width chunks), and warming the parent's caches first
    /// changes nothing (the memoized inverse series carry over).
    #[test]
    fn punctured_tree_composes_and_survives_warm_caches() {
        let field = ntt_field();
        let mut rng = SplitMix64::new(34);
        let n = 200;
        let xs = distinct_points(&field, n, &mut rng);
        let tree = PointTree::new(&field, &xs);
        // Warm the parent's inverse-series and weight memos.
        let ys: Vec<u64> = (0..n).map(|_| field.sample(&mut rng)).collect();
        let _ = tree.interpolate_core(&ys);
        let first: Vec<usize> = (10..40).collect();
        let once = tree.punctured(&first);
        let second: Vec<usize> = (0..once.len()).step_by(11).collect();
        let twice = once.punctured(&second);
        let survivors: Vec<u64> = once
            .points()
            .iter()
            .enumerate()
            .filter(|(i, _)| second.binary_search(i).is_err())
            .map(|(_, &x)| x)
            .collect();
        assert_eq!(twice.points(), &survivors[..]);
        assert_eq!(twice.vanishing(), &vanishing_poly(&field, &survivors));
        let sy: Vec<u64> = (0..survivors.len()).map(|_| field.sample(&mut rng)).collect();
        let pts: Vec<(u64, u64)> = survivors.iter().copied().zip(sy.iter().copied()).collect();
        assert_eq!(twice.interpolate_core(&sy), interpolate(&field, &pts));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn punctured_tree_rejects_unsorted_erasures() {
        let field = ntt_field();
        let tree = PointTree::new(&field, &(0..100u64).collect::<Vec<_>>());
        let _ = tree.punctured(&[5, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot erase every point")]
    fn punctured_tree_rejects_total_erasure() {
        let field = ntt_field();
        let tree = PointTree::new(&field, &(0..10u64).collect::<Vec<_>>());
        let _ = tree.punctured(&(0..10usize).collect::<Vec<_>>());
    }

    #[test]
    fn cached_plans_are_shared_and_correct() {
        let field = ntt_field();
        let a = cached_ntt_plan(&field, 9).expect("field supports 2^9");
        let b = cached_ntt_plan(&field, 9).expect("field supports 2^9");
        assert!(Arc::ptr_eq(&a, &b), "same plan instance must be reused");
        assert_eq!(a.len(), 512);
        // Evaluation semantics: forward output j = poly(root^j).
        let poly = Poly::from_coeffs(&field, [3, 1, 4, 1, 5]);
        let mut vals = poly.coeffs().to_vec();
        vals.resize(a.len(), 0);
        a.forward(&mut vals);
        let mut x = 1u64;
        for (j, &v) in vals.iter().enumerate() {
            assert_eq!(v, poly.eval(&field, x), "index {j}");
            x = field.mul(x, a.root());
        }
        // Unfriendly modulus refuses.
        assert!(cached_ntt_plan(&plain_field(), 2).is_none());
    }

    #[test]
    fn vanishing_poly_matches_incremental() {
        for field in [ntt_field(), plain_field()] {
            let mut rng = SplitMix64::new(27);
            for n in [1usize, 40, 600] {
                let xs = distinct_points(&field, n, &mut rng);
                let mut expect = Poly::constant(1);
                for &x in &xs {
                    expect = expect.mul(&field, &Poly::from_reduced(vec![field.neg(x), 1]));
                }
                assert_eq!(vanishing_poly(&field, &xs), expect, "{n} points");
            }
        }
    }

    #[test]
    fn vanishing_poly_of_empty_set_is_one() {
        let field = ntt_field();
        assert_eq!(vanishing_poly(&field, &[]), Poly::constant(1));
    }

    /// `mul2_add` must equal the two-products-plus-add formula on both
    /// sides of its spectral gate (short operands fall back, long ones
    /// share transforms) and for degenerate operands.
    #[test]
    fn mul2_add_matches_separate_products() {
        for field in [ntt_field(), plain_field()] {
            let mut rng = SplitMix64::new(36);
            let ctx = MulContext::new(&field, 1 << 11);
            let shapes = [
                (3usize, 5usize, 4usize, 2usize), // all short: fallback
                (100, 90, 80, 110),               // all long: spectral
                (200, 3, 150, 160),               // mixed: fallback
                (0, 90, 80, 110),                 // zero operand
            ];
            for (da, db, dc, dd) in shapes {
                let p = |d: usize, rng: &mut SplitMix64| {
                    if d == 0 {
                        Poly::zero()
                    } else {
                        random_poly(&field, d, rng)
                    }
                };
                let (a, b) = (p(da, &mut rng), p(db, &mut rng));
                let (c, d) = (p(dc, &mut rng), p(dd, &mut rng));
                let expect = ctx.mul(&a, &b).add(&field, &ctx.mul(&c, &d));
                assert_eq!(
                    ctx.mul2_add(&a, &b, &c, &d),
                    expect,
                    "shape {da}/{db}/{dc}/{dd}, q = {}",
                    field.modulus()
                );
            }
        }
    }

    /// Forced-parallel tree build, evaluation, and interpolation must be
    /// bit-identical to the sequential paths (`CAMELOT_PAR_CROSSOVER=0`
    /// regression: every split gate opens, with a thread budget larger
    /// than the machine's).
    #[test]
    fn forced_parallel_tree_matches_sequential() {
        use camelot_ff::{set_thread_budget, thread_budget};
        let field = ntt_field();
        let mut rng = SplitMix64::new(37);
        let n = 400;
        let xs = distinct_points(&field, n, &mut rng);
        let poly = random_poly(&field, n - 1, &mut rng);
        let ys: Vec<u64> = (0..n).map(|_| field.sample(&mut rng)).collect();

        let _guard = crate::par::test_knob_guard();
        let saved_budget = thread_budget();
        let saved_crossover = crate::par_crossover();
        set_thread_budget(1);
        crate::set_par_crossover(usize::MAX);
        let tree_seq = PointTree::new(&field, &xs);
        let ev_seq = tree_seq.eval_core(&poly);
        let ip_seq = tree_seq.interpolate_core(&ys);

        set_thread_budget(4);
        crate::set_par_crossover(0);
        let tree_par = PointTree::new(&field, &xs);
        assert_eq!(tree_par.vanishing(), tree_seq.vanishing(), "parallel build diverged");
        assert_eq!(tree_par.eval_core(&poly), ev_seq, "parallel eval diverged");
        assert_eq!(tree_par.interpolate_core(&ys), ip_seq, "parallel interpolate diverged");
        // The warm-cache repeat must agree too.
        assert_eq!(tree_par.interpolate_core(&ys), ip_seq, "warm parallel interpolate diverged");

        set_thread_budget(saved_budget);
        crate::set_par_crossover(saved_crossover);
    }
}
