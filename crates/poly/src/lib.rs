//! # camelot-poly — polynomial arithmetic for the Camelot framework
//!
//! The fast polynomial toolbox of §2.2 of *“How Proofs are Prepared at
//! Camelot”*: dense polynomials over `Z_q` with multiplication, Euclidean
//! division, (partial, early-stopping) extended Euclid, Horner evaluation,
//! Newton interpolation, and the `O(R)` consecutive-node Lagrange basis
//! evaluation of §5.3 that the clique/triangle evaluation algorithms use.
//!
//! Past measured crossover sizes, [`eval_many_fast`] and
//! [`interpolate_fast`] switch to subproduct-tree algorithms
//! (`O(M(n) log n)`) whose products run through cached [`NttPlan`]s when
//! the modulus is NTT-friendly; the naive routines are retained as
//! oracles.
//!
//! ## Example
//!
//! ```
//! use camelot_ff::PrimeField;
//! use camelot_poly::{interpolate, Poly};
//!
//! let f = PrimeField::new(101)?;
//! let p = Poly::from_coeffs(&f, [2, 0, 1]); // 2 + x^2
//! let pts: Vec<(u64, u64)> = (0..3).map(|x| (x, p.eval(&f, x))).collect();
//! assert_eq!(interpolate(&f, &pts), p);
//! # Ok::<(), camelot_ff::FieldError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod dense;
mod hgcd;
mod interp;
mod multipoint;
mod ntt;
mod par;

pub use dense::Poly;
pub use hgcd::{hgcd_crossover, partial_xgcd_fast, partial_xgcd_structured, set_hgcd_crossover};
pub use interp::{eval_many, interpolate, interpolate_consecutive, lagrange_basis_at};
pub use multipoint::{
    cached_ntt_plan, div_rem_fast, eval_many_fast, interpolate_fast, vanishing_poly, PointTree,
    TREE_CACHE_CROSSOVER,
};
pub use ntt::NttPlan;
pub use par::{par_crossover, set_par_crossover};
